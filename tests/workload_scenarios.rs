//! Property tests for the adversarial workload generators: seed
//! determinism for every generator, and the exactness guarantees of the
//! multi-tenant interleave (event-count, per-tenant order, namespace
//! disjointness).

use farmer::prelude::*;
use farmer::trace::workload::{ChurnSpec, DriftSpec, MultiTenantSpec, ScanStormSpec};
use proptest::prelude::*;

/// A small base workload parameterized by family index and seed — small
/// enough that proptest can afford dozens of generations per property.
fn base(family: u8, seed: u64) -> WorkloadSpec {
    let spec = match family % 4 {
        0 => WorkloadSpec::llnl().scaled(0.01),
        1 => WorkloadSpec::ins().scaled(0.05),
        2 => WorkloadSpec::res().scaled(0.03),
        _ => WorkloadSpec::hp().scaled(0.02),
    };
    spec.with_seed(seed)
}

fn assert_identical(a: &Trace, b: &Trace, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: event counts diverged");
    for (x, y) in a.events.iter().zip(&b.events) {
        assert_eq!(x, y, "{what}: events diverged");
    }
    assert_eq!(a.num_files(), b.num_files(), "{what}: namespaces diverged");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every adversarial generator is a pure function of its spec: equal
    /// (family, seed, shape) inputs give byte-identical traces, and a
    /// different seed gives a different stream.
    #[test]
    fn generators_deterministic_under_fixed_seed(
        family in 0u8..4,
        seed in 0u64..1_000_000,
        phases in 2usize..6,
        tenants in 2usize..4,
    ) {
        let spec = base(family, seed);

        let drift = |s: u64| DriftSpec::new(base(family, s)).with_phases(phases).generate();
        assert_identical(&drift(seed), &drift(seed), "drift");

        let storm = |s: u64| ScanStormSpec::new(base(family, s)).generate();
        assert_identical(&storm(seed), &storm(seed), "storm");

        let churn = |s: u64| ChurnSpec::new(base(family, s)).generate();
        assert_identical(&churn(seed), &churn(seed), "churn");

        let tenant = |s: u64| MultiTenantSpec::homogeneous(base(family, s), tenants).generate();
        assert_identical(&tenant(seed), &tenant(seed), "tenants");

        // A different seed must actually change the stream.
        let a = drift(seed);
        let b = drift(seed.wrapping_add(1));
        prop_assert!(
            a.events.iter().zip(&b.events).any(|(x, y)| x != y),
            "distinct seeds produced identical drift traces"
        );
        let _ = spec;
    }

    /// The multi-tenant interleave is event-count-exact against its parts:
    /// the merged stream holds precisely the union of the tenants' events,
    /// per-tenant order and op/byte payloads preserved, over a disjoint
    /// union of the tenant namespaces.
    #[test]
    fn multi_tenant_interleave_is_event_count_exact(
        family in 0u8..4,
        seed in 0u64..1_000_000,
        tenants in 1usize..5,
    ) {
        let spec = MultiTenantSpec::homogeneous(base(family, seed), tenants);
        let parts = spec.parts();
        let merged = MultiTenantSpec::interleave(&parts);
        prop_assert_eq!(merged.validate(), Ok(()));

        // Exactness: total count, per-tenant count, and per-tenant order.
        prop_assert_eq!(merged.len(), parts.iter().map(Trace::len).sum::<usize>());
        prop_assert_eq!(
            merged.num_files(),
            parts.iter().map(Trace::num_files).sum::<usize>()
        );
        let mut file_off = 0u32;
        for (t, part) in parts.iter().enumerate() {
            let range = file_off..file_off + part.num_files() as u32;
            let mine: Vec<&TraceEvent> = merged
                .events
                .iter()
                .filter(|e| range.contains(&e.file.raw()))
                .collect();
            prop_assert_eq!(mine.len(), part.len(), "tenant {} count diverged", t);
            for (got, want) in mine.iter().zip(&part.events) {
                prop_assert_eq!(got.file.raw(), want.file.raw() + file_off);
                prop_assert_eq!(got.op, want.op, "tenant {} op diverged", t);
                prop_assert_eq!(got.bytes, want.bytes);
            }
            file_off += part.num_files() as u32;
        }

        // Timestamps stay monotone through the round-robin.
        for w in merged.events.windows(2) {
            prop_assert!(w[0].timestamp_us <= w[1].timestamp_us);
        }
    }
}

/// Drift changes the co-access structure between phases but never the
/// event count, timestamps or attribute stream.
#[test]
fn drift_preserves_everything_but_file_identity() {
    let spec = WorkloadSpec::hp().scaled(0.05);
    let plain = spec.clone().generate();
    let drift = DriftSpec::new(spec).with_phases(4).generate();
    assert_eq!(plain.len(), drift.len());
    for (a, b) in plain.events.iter().zip(&drift.events) {
        assert_eq!(a.timestamp_us, b.timestamp_us);
        assert_eq!(a.uid, b.uid);
        assert_eq!(a.pid, b.pid);
        assert_eq!(a.host, b.host);
        assert_eq!(a.op, b.op);
    }
    // ... and the later phases do move file identity.
    assert!(
        plain
            .events
            .iter()
            .zip(&drift.events)
            .skip(plain.len() / 2)
            .any(|(a, b)| a.file != b.file),
        "drift failed to rotate any ids"
    );
}

/// The churn scenario end to end: a bounded-memory streaming miner fed
/// the churn trace (forgetting on unlink) holds no state for any dead
/// generation at the end, while a forget-less miner does — the regression
/// the scenario exists to catch.
#[test]
fn churn_forgetting_drops_dead_generations() {
    let churn = ChurnSpec::new(WorkloadSpec::hp().scaled(0.05));
    let trace = churn.generate();
    let base_files = churn.base.generate().num_files();

    let mut forgetting = Farmer::new(FarmerConfig::default());
    let mut hoarding = Farmer::new(FarmerConfig::default());
    for e in &trace.events {
        if e.op == Op::Unlink {
            forgetting.forget_file(e.file);
        } else {
            forgetting.observe_event(&trace, e);
        }
        hoarding.observe_event(&trace, e);
    }
    for g in 0..churn.generations {
        for j in 0..churn.files_per_gen {
            let f = churn.ephemeral_id(base_files, g, j);
            assert!(
                forgetting.correlators(f).is_empty(),
                "dead gen {g} file {j} still served after forget"
            );
        }
    }
    // The hoarding miner retains dead-generation state — churn without
    // forget support measurably leaks.
    let dead: usize = (0..churn.generations)
        .flat_map(|g| (0..churn.files_per_gen).map(move |j| (g, j)))
        .filter(|&(g, j)| {
            !hoarding
                .correlators(churn.ephemeral_id(base_files, g, j))
                .is_empty()
        })
        .count();
    assert!(dead > 0, "churn trace failed to build any ephemeral state");
}

//! Cross-crate property tests on the core data structures' invariants.

use std::collections::VecDeque;

use farmer::prelude::*;
use proptest::prelude::*;

/// Reference LRU-cache model: a VecDeque of file ids, front = MRU.
#[derive(Default)]
struct ModelCache {
    items: VecDeque<u32>,
    capacity: usize,
}

impl ModelCache {
    fn access(&mut self, f: u32) -> bool {
        if let Some(pos) = self.items.iter().position(|&x| x == f) {
            self.items.remove(pos);
            self.items.push_front(f);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, f: u32) {
        if let Some(pos) = self.items.iter().position(|&x| x == f) {
            self.items.remove(pos);
        } else if self.items.len() == self.capacity {
            self.items.pop_back();
        }
        self.items.push_front(f);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The metadata cache behaves exactly like the reference LRU model
    /// under arbitrary access/insert/invalidate sequences.
    #[test]
    fn metadata_cache_matches_reference_model(
        ops in proptest::collection::vec((0u8..4, 0u32..40), 1..300),
        capacity in 1usize..16,
    ) {
        let mut sys = MetadataCache::new(capacity);
        let mut model = ModelCache { items: VecDeque::new(), capacity };
        for (op, file) in ops {
            match op {
                0 => {
                    let got = sys.access(FileId::new(file));
                    let want = model.access(file);
                    prop_assert_eq!(got, want, "access({}) diverged", file);
                }
                1 => {
                    sys.insert_demand(FileId::new(file));
                    model.insert(file);
                }
                2 => {
                    // Prefetch insert only fills absent entries.
                    let was_resident = model.items.contains(&file);
                    sys.insert_prefetch(FileId::new(file));
                    if !was_resident {
                        model.insert(file);
                    }
                }
                _ => {
                    sys.invalidate(FileId::new(file));
                    if let Some(pos) = model.items.iter().position(|&x| x == file) {
                        model.items.remove(pos);
                    }
                }
            }
            prop_assert_eq!(sys.len(), model.items.len());
            for &f in &model.items {
                prop_assert!(sys.contains(FileId::new(f)), "missing {}", f);
            }
        }
    }

    /// FARMER model invariants hold under arbitrary request streams:
    /// degrees stay in [0, 1], lists stay sorted and thresholded, and
    /// successor counts respect the configured cap.
    #[test]
    fn farmer_invariants_under_random_streams(
        stream in proptest::collection::vec((0u32..30, 0u32..4, 0u32..6, 0u32..3), 10..400),
        p in 0.0f64..=1.0,
        max_strength in 0.0f64..=1.0,
        window in 1usize..8,
        max_successors in 1usize..8,
    ) {
        let mut cfg = FarmerConfig::default();
        cfg.p = p;
        cfg.max_strength = max_strength;
        cfg.window = window;
        cfg.max_successors = max_successors;
        cfg.prune_interval = 64;
        let mut farmer = Farmer::new(cfg);

        for (file, uid, pid, host) in &stream {
            farmer.observe(
                Request {
                    file: FileId::new(*file),
                    uid: farmer::trace::UserId::new(*uid),
                    pid: farmer::trace::ProcId::new(*pid),
                    host: farmer::trace::HostId::new(*host),
                    dev: farmer::trace::DevId::new(0),
                },
                None,
            );
        }

        prop_assert_eq!(farmer.observed(), stream.len() as u64);
        for file in 0..30u32 {
            let list = farmer.correlators(FileId::new(file));
            prop_assert!(list.len() <= max_successors);
            let mut last = f64::INFINITY;
            for c in list.entries() {
                prop_assert!((0.0..=1.0 + 1e-9).contains(&c.degree), "degree {}", c.degree);
                prop_assert!(c.degree >= max_strength, "threshold violated");
                prop_assert!(c.degree <= last, "unsorted list");
                prop_assert!(c.file != FileId::new(file), "self-correlation");
                last = c.degree;
            }
        }
    }

    /// Trace-parser round-trips preserve every event for arbitrary small
    /// hand-built traces.
    #[test]
    fn parser_roundtrip_arbitrary_events(
        events in proptest::collection::vec((0u32..5, 0u32..3, 1u32..5, 0u32..3, 0u64..1000), 0..100),
    ) {
        use farmer::trace::{parser, FileMeta, Trace, TraceFamily, DevId};
        let mut t = Trace::empty(TraceFamily::Ins);
        for i in 0..5 {
            t.files.push(FileMeta {
                path: None,
                dev: DevId::new(i % 3),
                size: 100 * i as u64,
                read_only: i % 2 == 0,
            });
        }
        let mut ts = 0u64;
        for (i, (file, uid, pid, host, dt)) in events.iter().enumerate() {
            ts += dt;
            let mut e = TraceEvent::synthetic(
                i as u64,
                FileId::new(*file),
                farmer::trace::UserId::new(*uid),
                farmer::trace::ProcId::new(*pid),
                farmer::trace::HostId::new(*host),
            );
            e.timestamp_us = ts;
            // The text format derives an event's dev from the file table,
            // so events must be built consistently with it.
            e.dev = t.files[*file as usize].dev;
            t.events.push(e);
        }
        t.num_users = 3;
        t.num_hosts = 3;
        prop_assert!(t.validate().is_ok());
        let parsed = parser::from_text(&parser::to_text(&t)).expect("roundtrip");
        prop_assert_eq!(parsed.len(), t.len());
        for (a, b) in t.events.iter().zip(&parsed.events) {
            prop_assert_eq!(a, b);
        }
    }
}

//! The `CorrelationSource` contract, pinned across every back-end: the
//! live model, an exported table, a merged stream snapshot, and a store
//! round-trip must answer every query identically for the same mined
//! state. This is the guarantee that lets a serving tier swap back-ends
//! (self-mining → streamed snapshot → restart from the store) without its
//! consumers noticing.

use farmer::core::{
    CorrelationSource, Correlator, CorrelatorList, CorrelatorTable, Farmer, FarmerConfig,
};
use farmer::prelude::*;
use farmer::stream::ShardedMiner;

const TOL: f64 = 1e-12;

/// All four back-ends built from the same mined state, plus the validity
/// threshold the exported ones were built with.
struct Backends {
    live: Farmer,
    table: CorrelatorTable,
    snapshot: StreamSnapshot,
    stored: farmer::store::CorrelatorView,
    threshold: f64,
    num_files: usize,
}

fn backends() -> Backends {
    let trace = WorkloadSpec::hp().scaled(0.03).generate();
    let live = Farmer::mine_trace(&trace, FarmerConfig::default());
    let threshold = live.config().max_strength;

    // Exported table via the trait's own exporter path.
    let mut table = CorrelatorTable::new();
    live.for_each_list(&mut |owner, entries| {
        table.insert(CorrelatorList::from_sorted(owner, entries.to_vec()));
    });

    // Streamed: the same events through 3 shards under a cap no stream can
    // hit, merged into one consistent snapshot.
    let cfg = StreamConfig::default()
        .with_shards(3)
        .with_node_cap(1 << 20);
    let mut miner = ShardedMiner::spawn(cfg);
    for e in &trace.events {
        miner.route_event(&trace, e);
    }
    let snapshot = miner.snapshot();

    // Persisted: live model -> store -> byte image -> restore -> view.
    let mut store = MetaStore::new();
    let written = store.put_correlation_source(&live);
    assert!(written > 0, "nothing persisted");
    let image = store.snapshot();
    let mut restored = MetaStore::restore(&image).expect("restore");
    let stored = restored.correlator_view();

    Backends {
        live,
        table,
        snapshot,
        stored,
        threshold,
        num_files: trace.num_files(),
    }
}

fn assert_same(tag: &str, owner: FileId, got: &[Correlator], want: &[Correlator]) {
    assert_eq!(
        got.len(),
        want.len(),
        "{tag}: list length diverged for {owner}"
    );
    for (g, w) in got.iter().zip(want) {
        assert_eq!(g.file, w.file, "{tag}: order diverged for {owner}");
        assert!(
            (g.degree - w.degree).abs() < TOL,
            "{tag}: degree diverged for {owner}->{}: {} vs {}",
            g.file,
            g.degree,
            w.degree
        );
    }
}

#[test]
fn all_backends_serve_identical_top_k() {
    let b = backends();
    let sources: [(&str, &dyn CorrelationSource); 4] = [
        ("live", &b.live),
        ("table", &b.table),
        ("snapshot", &b.snapshot),
        ("stored", &b.stored),
    ];
    let mut want = Vec::new();
    let mut got = Vec::new();
    let mut non_empty = 0usize;
    for fid in 0..b.num_files as u32 {
        let file = FileId::new(fid);
        // Exported back-ends retain only valid (>= threshold) entries, so
        // the live model is queried at the same threshold.
        for k in [1usize, 4, 8, usize::MAX] {
            b.live.top_k_into(file, k, b.threshold, &mut want);
            for (tag, src) in &sources[1..] {
                src.top_k_into(file, k, 0.0, &mut got);
                assert_same(tag, file, &got, &want);
            }
        }
        if !want.is_empty() {
            non_empty += 1;
        }
    }
    assert!(non_empty > 100, "only {non_empty} files had correlators");
}

#[test]
fn all_backends_agree_on_strongest_and_degree() {
    let b = backends();
    let mut checked_pairs = 0usize;
    for fid in 0..b.num_files as u32 {
        let file = FileId::new(fid);
        let want = b.live.strongest(file, b.threshold);
        for (tag, got) in [
            ("table", b.table.strongest(file, 0.0)),
            ("snapshot", b.snapshot.strongest(file, 0.0)),
            ("stored", b.stored.strongest(file, 0.0)),
        ] {
            match (want, got) {
                (None, None) => {}
                (Some(w), Some(g)) => {
                    assert_eq!(g.file, w.file, "{tag}: strongest diverged for {file}");
                    assert!((g.degree - w.degree).abs() < TOL);
                    // Pairwise degree agrees everywhere the pair is retained.
                    let d_live = CorrelationSource::degree(&b.live, file, w.file).unwrap();
                    let d_tab = CorrelationSource::degree(&b.table, file, w.file).unwrap();
                    let d_snap = CorrelationSource::degree(&b.snapshot, file, w.file).unwrap();
                    let d_store = CorrelationSource::degree(&b.stored, file, w.file).unwrap();
                    for d in [d_tab, d_snap, d_store] {
                        assert!((d - d_live).abs() < TOL, "degree diverged for {file}");
                    }
                    checked_pairs += 1;
                }
                (w, g) => panic!("{tag}: strongest diverged for {file}: {w:?} vs {g:?}"),
            }
        }
    }
    assert!(
        checked_pairs > 100,
        "too few pairs checked: {checked_pairs}"
    );
}

#[test]
fn exports_agree_list_by_list() {
    let b = backends();
    // for_each_list over the exported backends covers exactly the owners
    // the live model exports, entry for entry.
    let mut live_lists = std::collections::BTreeMap::new();
    b.live.for_each_list(&mut |owner, entries| {
        live_lists.insert(owner.raw(), entries.to_vec());
    });
    for (tag, src) in [
        ("table", &b.table as &dyn CorrelationSource),
        ("snapshot", &b.snapshot),
        ("stored", &b.stored),
    ] {
        let mut seen = 0usize;
        src.for_each_list(&mut |owner, entries| {
            seen += 1;
            let want = live_lists
                .get(&owner.raw())
                .unwrap_or_else(|| panic!("{tag}: unexpected owner {owner}"));
            assert_same(tag, owner, entries, want);
        });
        assert_eq!(seen, live_lists.len(), "{tag}: owner coverage diverged");
    }
}

#[test]
fn versions_move_with_their_backends() {
    let trace = WorkloadSpec::hp().scaled(0.01).generate();
    let mut live = Farmer::mine_trace(&trace, FarmerConfig::default());
    let v = live.version();
    live.observe_event(&trace, &trace.events[0]);
    assert!(live.version() > v, "mutation must advance the live version");

    let mut table = CorrelatorTable::new();
    let v = CorrelationSource::version(&table);
    table.insert(CorrelatorList::build(
        FileId::new(0),
        vec![Correlator {
            file: FileId::new(1),
            degree: 0.5,
        }],
        0.0,
    ));
    assert!(CorrelationSource::version(&table) > v);
}

#[test]
fn predictor_serves_identically_from_any_backend() {
    // The consumer-level corollary: FPA refreshed with the table, the
    // snapshot, or the store view produces identical predictions.
    let b = backends();
    let trace = WorkloadSpec::hp().scaled(0.03).generate();
    let mut from_table = FpaPredictor::for_trace(&trace);
    from_table.refresh(b.table, 1);
    let mut from_snap = FpaPredictor::for_trace(&trace);
    from_snap.refresh(b.snapshot, 1);
    let mut from_store = FpaPredictor::for_trace(&trace);
    from_store.refresh(b.stored, 1);
    let (mut a, mut c, mut d) = (Vec::new(), Vec::new(), Vec::new());
    for e in trace.events.iter().take(3000) {
        from_table.on_access_into(&trace, e, &mut a);
        from_snap.on_access_into(&trace, e, &mut c);
        from_store.on_access_into(&trace, e, &mut d);
        assert_eq!(a, c, "snapshot-served predictions diverged");
        assert_eq!(a, d, "store-served predictions diverged");
    }
}

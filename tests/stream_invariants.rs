//! Cross-crate invariants of the streaming subsystem (`farmer-stream`).
//!
//! Two contracts are pinned here, per the subsystem's design:
//!
//! 1. **Bounded memory** — for *arbitrary* event streams, the number of
//!    tracked files never exceeds the node cap and the edge count never
//!    exceeds `cap × max_successors`, at every point of the stream.
//! 2. **Convergence** — a sharded streaming run over a finite trace agrees
//!    with batch `Farmer::mine_trace` on the strong correlations: for every
//!    file whose batch Correlator List head clears a high-strength bar with
//!    a clear margin, the streamed snapshot reports the same top-1.

use farmer::core::{Farmer, FarmerConfig, Request};
use farmer::prelude::*;
use farmer::stream::StreamMiner;
use proptest::prelude::*;

fn req(file: u32, uid: u32, pid: u32, host: u32) -> Request {
    Request {
        file: FileId::new(file),
        uid: farmer::trace::UserId::new(uid),
        pid: farmer::trace::ProcId::new(pid),
        host: farmer::trace::HostId::new(host),
        dev: farmer::trace::DevId::new(0),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contract 1: the memory budget holds at every stream position, for
    /// any interleaving of files, users, processes and hosts, any cap and
    /// any eviction batch size.
    #[test]
    fn node_and_edge_caps_hold_under_arbitrary_streams(
        stream in proptest::collection::vec((0u32..300, 0u32..5, 0u32..7, 0u32..3), 1..800),
        cap in 1usize..24,
        evict_batch in 0usize..6,
    ) {
        let mut cfg = StreamConfig::default().with_node_cap(cap);
        cfg.evict_batch = evict_batch;
        cfg.decay_interval = 64;
        let max_edges = cap * cfg.farmer.max_successors;
        let mut m = StreamMiner::new(cfg);
        for (file, uid, pid, host) in stream {
            m.ingest(req(file, uid, pid, host), None);
            prop_assert!(m.tracked_files() <= cap, "tracked {} > cap {cap}", m.tracked_files());
            prop_assert!(
                m.farmer().graph().active_nodes() <= cap,
                "active nodes {} > cap {cap}",
                m.farmer().graph().active_nodes()
            );
            prop_assert!(
                m.farmer().graph().num_edges() <= max_edges,
                "edges {} > {max_edges}",
                m.farmer().graph().num_edges()
            );
        }
        // The snapshot only exports live owned files.
        let snap = m.snapshot();
        prop_assert!(snap.lists.len() <= cap);
    }

    /// Sharding never double-assigns a file: exactly one shard owns each,
    /// so merged snapshots can never collide (the merge asserts this too).
    #[test]
    fn ownership_is_a_partition(file in 0u32..50_000, shards in 1usize..9) {
        let owners = (0..shards)
            .filter(|&s| farmer::stream::engine::owns_file(FileId::new(file), s, shards))
            .count();
        prop_assert_eq!(owners, 1);
    }
}

/// Contract 2: streamed top-1 correlators match batch mining on
/// high-strength pairs, across shard counts, on a real workload (paths,
/// multi-process interleaving, noise).
#[test]
fn sharded_stream_converges_to_batch_top1_on_strong_pairs() {
    let trace = WorkloadSpec::hp().scaled(0.05).generate();
    let batch = Farmer::mine_trace(&trace, FarmerConfig::default());

    for shards in [1usize, 2, 4] {
        // Cap well above the namespace: convergence, not eviction, is
        // under test here (eviction behaviour is contract 1).
        let cfg = StreamConfig::default()
            .with_shards(shards)
            .with_node_cap(1 << 20);
        let mut miner = ShardedMiner::spawn(cfg);
        for e in &trace.events {
            miner.route_event(&trace, e);
        }
        let snap = miner.snapshot();

        let mut strong = 0usize;
        for f in 0..trace.num_files() as u32 {
            let want = batch.correlators(FileId::new(f));
            let Some(head) = want.head() else { continue };
            // High strength with a clear margin over the runner-up.
            let margin_ok = want
                .entries()
                .get(1)
                .is_none_or(|second| head.degree - second.degree > 1e-9);
            if head.degree < 0.6 || !margin_ok {
                continue;
            }
            strong += 1;
            let got = snap
                .correlators(FileId::new(f))
                .unwrap_or_else(|| panic!("no streamed list for strong file f{f}"));
            assert_eq!(
                got.head().unwrap().file,
                head.file,
                "top-1 diverged for f{f} at {shards} shard(s)"
            );
        }
        assert!(
            strong > 50,
            "workload produced only {strong} strong pairs; test is vacuous"
        );
    }
}

/// The full online loop: stream -> snapshot -> FpaPredictor::refresh gives
/// the same predictions as a batch-mined FPA, and a later refresh really
/// swaps the serving state.
#[test]
fn snapshot_refresh_matches_batch_predictions() {
    let trace = WorkloadSpec::hp().scaled(0.03).generate();

    // Batch-mined reference predictions.
    let batch = Farmer::mine_trace(&trace, FarmerConfig::default());

    // Streamed: same events through 3 shards, then refresh an FPA.
    let cfg = StreamConfig::default()
        .with_shards(3)
        .with_node_cap(1 << 20);
    let mut miner = ShardedMiner::spawn(cfg);
    for e in &trace.events {
        miner.route_event(&trace, e);
    }
    let snap = miner.snapshot();
    let events = snap.events;
    let mut fpa = FpaPredictor::for_trace(&trace);
    // The snapshot itself is the correlation source — no table copy.
    fpa.refresh(snap, events);

    let mut checked = 0usize;
    for e in trace.events.iter().take(2000) {
        let preds = fpa.on_access(&trace, e);
        let want: Vec<FileId> = batch
            .correlators(e.file)
            .top(fpa.group_limit)
            .iter()
            .map(|c| c.file)
            .collect();
        assert_eq!(preds, want, "prediction diverged for {}", e.file);
        checked += preds.len();
    }
    assert!(
        checked > 100,
        "too few predictions to be meaningful: {checked}"
    );

    // A fresh (empty) refresh swaps serving state at once.
    fpa.refresh(farmer::core::CorrelatorTable::new(), events + 1);
    assert!(fpa.on_access(&trace, &trace.events[0]).is_empty());
}

/// Capped-eviction parity: under a small `node_cap` (the regime the
/// matrix's `capped*` cells exercise), the threaded sharded path must
/// evict *exactly* like the in-process engine — same victims, same
/// order, same surviving lists — at every shard count. A divergence in
/// eviction order between `ShardedMiner`'s worker loop and a direct
/// `StreamMiner` (or between shard counts, given each shard's
/// deterministic owned sub-stream) would silently change the capped
/// matrix cells; this pins it outside the bench.
#[test]
fn capped_eviction_parity_batch_vs_sharded() {
    let trace = WorkloadSpec::hp().scaled(0.05).generate();
    let cap = 48;

    // Drive one direct engine per shard count: for `n` shards, shard `i`
    // is a StreamMiner::for_shard(i, n) fed the FULL stream (broadcast
    // routing) with forgets applied at the same positions.
    for shards in [1usize, 2, 4] {
        let cfg = StreamConfig::default()
            .with_node_cap(cap)
            .with_shards(shards);
        let mut sharded = ShardedMiner::spawn(cfg.clone());
        let mut oracles: Vec<StreamMiner> = (0..shards)
            .map(|i| StreamMiner::for_shard(cfg.clone(), i, shards))
            .collect();
        for (k, e) in trace.events.iter().enumerate() {
            if k % 101 == 0 {
                sharded.route_forget(e.file);
                for o in oracles.iter_mut() {
                    o.forget(e.file);
                }
            }
            sharded.route_event(&trace, e);
            for o in oracles.iter_mut() {
                o.ingest_event(&trace, e);
            }
        }
        let snap = sharded.snapshot();
        let want = farmer::stream::StreamSnapshot::merge(oracles.iter().map(|o| o.snapshot()));
        assert!(
            want.evictions > 0,
            "{shards} shard(s): cap {cap} never forced eviction; test is vacuous"
        );
        assert_eq!(
            snap.evictions, want.evictions,
            "{shards} shard(s): eviction counts diverged"
        );
        assert_eq!(
            snap.tracked_files, want.tracked_files,
            "{shards} shard(s): tracked-file counts diverged"
        );
        assert_eq!(
            snap.num_lists(),
            want.num_lists(),
            "{shards} shard(s): surviving list sets diverged"
        );
        want.table.iter().for_each(|w| {
            let got = snap.correlators(w.owner).unwrap_or_else(|| {
                panic!(
                    "{shards} shard(s): owner {} missing from sharded snapshot",
                    w.owner
                )
            });
            assert_eq!(
                got.len(),
                w.len(),
                "{shards} shard(s): list length diverged for {}",
                w.owner
            );
            for (g, x) in got.iter().zip(w.iter()) {
                assert_eq!(g.file, x.file, "{shards} shard(s): successor diverged");
                assert!((g.degree - x.degree).abs() < 1e-12);
            }
        });
    }
}

/// Unbounded replay keeps the subsystem healthy: many laps, tight budget,
/// stable state and fresh snapshots that reflect every routed event.
#[test]
fn long_replay_under_tight_budget_stays_bounded_and_consistent() {
    let trace = WorkloadSpec::ins().scaled(0.02).generate();
    let cfg = StreamConfig::default().with_shards(2).with_node_cap(64);
    let total_cap = 64 * 2;
    let mut miner = ShardedMiner::spawn(cfg);
    let mut stream = trace.stream();
    let mut prev_events = 0u64;
    for _lap in 0..6 {
        for _ in 0..trace.len() {
            let e = stream.next().unwrap();
            miner.route_event(&trace, &e);
        }
        let snap = miner.snapshot();
        assert!(snap.tracked_files <= total_cap);
        assert!(snap.events > prev_events, "snapshot cut did not advance");
        prev_events = snap.events;
    }
    assert_eq!(prev_events, 6 * trace.len() as u64);
}

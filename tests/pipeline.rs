//! End-to-end pipeline tests: trace generation → mining → prefetching →
//! MDS replay, across all four trace families.

use farmer::prelude::*;

const SCALE: f64 = 0.1;

#[test]
fn every_family_mines_cleanly() {
    for family in TraceFamily::ALL {
        let trace = WorkloadSpec::for_family(family).scaled(SCALE).generate();
        assert!(trace.validate().is_ok(), "{family:?} trace invalid");
        let cfg = if family.has_paths() {
            FarmerConfig::default()
        } else {
            FarmerConfig::pathless()
        };
        let farmer = Farmer::mine_trace(&trace, cfg);
        assert_eq!(farmer.observed(), trace.len() as u64);
        assert!(farmer.graph().num_edges() > 0, "{family:?} mined no edges");
        assert!(farmer.memory_bytes() > 0);
    }
}

#[test]
fn correlator_lists_are_sorted_and_bounded() {
    let trace = WorkloadSpec::hp().scaled(SCALE).generate();
    let farmer = Farmer::mine_trace(&trace, FarmerConfig::default());
    let mut non_empty = 0;
    for fid in 0..trace.num_files() {
        let list = farmer.correlators(FileId::new(fid as u32));
        if !list.is_empty() {
            non_empty += 1;
        }
        for w in list.entries().windows(2) {
            assert!(w[0].degree >= w[1].degree, "list must be sorted descending");
        }
        for c in list.entries() {
            assert!(
                (0.0..=1.0).contains(&c.degree),
                "degree out of range: {}",
                c.degree
            );
            assert!(
                c.degree >= farmer.config().max_strength,
                "threshold violated"
            );
            assert!(c.file.index() < trace.num_files(), "dangling successor");
        }
    }
    assert!(
        non_empty > 100,
        "expected many files with valid correlators, got {non_empty}"
    );
}

#[test]
fn mining_is_deterministic() {
    let trace = WorkloadSpec::res().scaled(SCALE).generate();
    let a = Farmer::mine_trace(&trace, FarmerConfig::pathless());
    let b = Farmer::mine_trace(&trace, FarmerConfig::pathless());
    for fid in (0..trace.num_files()).step_by(7) {
        let f = FileId::new(fid as u32);
        assert_eq!(a.correlators(f), b.correlators(f));
    }
}

#[test]
fn prefetch_sim_and_mds_agree_on_hit_direction() {
    // The cache simulator and the MDS replay share the cache/predictor
    // logic; their hit ratios for the same configuration must agree closely.
    let trace = WorkloadSpec::hp().scaled(0.2).generate();
    let sim_cfg = SimConfig::for_family(trace.family);
    let sim = simulate(&trace, &mut FpaPredictor::for_trace(&trace), sim_cfg);

    let mut replay_cfg = ReplayConfig::for_family(trace.family);
    replay_cfg.mds.cache_capacity = sim_cfg.cache_capacity;
    let rep = replay(
        &trace,
        Box::new(FpaPredictor::for_trace(&trace)),
        replay_cfg,
    );

    let sim_hit = sim.hit_ratio();
    let rep_hit = rep.cache.hit_ratio();
    // The MDS services prefetches asynchronously (queued, droppable), so
    // its hit ratio trails the idealized cache sim — but not by much.
    assert!(
        (sim_hit - rep_hit).abs() < 0.15,
        "cache sim {sim_hit:.3} vs MDS replay {rep_hit:.3} diverged"
    );
}

#[test]
fn parser_roundtrip_preserves_mining() {
    for family in [TraceFamily::Ins, TraceFamily::Hp] {
        let original = WorkloadSpec::for_family(family).scaled(0.05).generate();
        let text = farmer::trace::parser::to_text(&original);
        let parsed = farmer::trace::parser::from_text(&text).expect("roundtrip");
        let cfg = if family.has_paths() {
            FarmerConfig::default()
        } else {
            FarmerConfig::pathless()
        };
        let a = Farmer::mine_trace(&original, cfg.clone());
        let b = Farmer::mine_trace(&parsed, cfg);
        for fid in (0..original.num_files()).step_by(11) {
            let f = FileId::new(fid as u32);
            assert_eq!(a.correlators(f), b.correlators(f), "{family:?} file {f}");
        }
    }
}

#[test]
fn farmer_correlators_persist_through_store() {
    // Mine, persist correlator lists into the embedded store (as HUSt does
    // with Berkeley DB), read them back, and verify equality.
    use farmer::store::{CorrelatorRecord, MetaStore};
    let trace = WorkloadSpec::ins().scaled(SCALE).generate();
    let farmer = Farmer::mine_trace(&trace, FarmerConfig::pathless());
    let mut store = MetaStore::new();

    let mut persisted = 0;
    for fid in 0..trace.num_files() {
        let file = FileId::new(fid as u32);
        let list = farmer.correlators(file);
        if list.is_empty() {
            continue;
        }
        let records: Vec<CorrelatorRecord> = list
            .iter()
            .map(|c| CorrelatorRecord {
                file: c.file,
                degree: c.degree,
            })
            .collect();
        store.put_correlators(file, &records);
        persisted += 1;
    }
    assert!(persisted > 50, "expected many persisted lists");

    for fid in 0..trace.num_files() {
        let file = FileId::new(fid as u32);
        let list = farmer.correlators(file);
        match store.get_correlators(file) {
            Some(records) => {
                assert_eq!(records.len(), list.len());
                for (r, c) in records.iter().zip(list.iter()) {
                    assert_eq!(r.file, c.file);
                    assert!((r.degree - c.degree).abs() < 1e-12);
                }
            }
            None => assert!(list.is_empty()),
        }
    }
}

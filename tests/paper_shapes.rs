//! The paper's qualitative results, asserted as tests.
//!
//! These pin the *shapes* the reproduction must preserve (who wins, where,
//! and in what order), at a reduced-but-meaningful trace scale. All inputs
//! are seeded, so these tests are deterministic.

use farmer::prefetch::baselines::LruOnly;
use farmer::prelude::*;

const SCALE: f64 = 0.35;

/// Figure 7 / §5.3: FPA achieves the highest hit ratio on every trace.
#[test]
fn fig7_fpa_has_highest_hit_ratio_everywhere() {
    for family in TraceFamily::ALL {
        let trace = WorkloadSpec::for_family(family).scaled(SCALE).generate();
        let cfg = SimConfig::for_family(family);
        let lru = simulate(&trace, &mut LruOnly, cfg).hit_ratio();
        let nexus = simulate(&trace, &mut NexusPredictor::paper_default(), cfg).hit_ratio();
        let fpa = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg).hit_ratio();
        assert!(
            fpa > nexus,
            "{family:?}: FPA {fpa:.3} must beat Nexus {nexus:.3}"
        );
        assert!(fpa > lru, "{family:?}: FPA {fpa:.3} must beat LRU {lru:.3}");
    }
}

/// §5.3: the FPA-over-Nexus improvement is largest on HP, because only HP
/// carries full path information.
#[test]
fn fig7_hp_improvement_is_largest() {
    let mut gaps = Vec::new();
    for family in TraceFamily::ALL {
        let trace = WorkloadSpec::for_family(family).scaled(SCALE).generate();
        let cfg = SimConfig::for_family(family);
        let nexus = simulate(&trace, &mut NexusPredictor::paper_default(), cfg).hit_ratio();
        let fpa = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg).hit_ratio();
        gaps.push((family, fpa - nexus));
    }
    let hp = gaps.iter().find(|(f, _)| *f == TraceFamily::Hp).unwrap().1;
    for (family, gap) in &gaps {
        if *family != TraceFamily::Hp && *family != TraceFamily::Llnl {
            // LLNL also carries paths; the paper's "best among all traces"
            // sentence compares HP with INS and RES.
            assert!(hp > *gap, "{family:?} gap {gap:.3} exceeds HP's {hp:.3}");
        }
    }
}

/// Table 3: FARMER's prefetching accuracy clearly exceeds Nexus's on HP.
#[test]
fn table3_fpa_accuracy_beats_nexus() {
    let trace = WorkloadSpec::hp().scaled(SCALE).generate();
    let cfg = SimConfig::for_family(TraceFamily::Hp);
    let nexus = simulate(&trace, &mut NexusPredictor::paper_default(), cfg).prefetch_accuracy();
    let fpa = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg).prefetch_accuracy();
    assert!(
        fpa > nexus * 1.2,
        "accuracy gap too small: FPA {fpa:.3} vs Nexus {nexus:.3} (paper: 64% vs 43%)"
    );
}

/// Figure 3 / §5.2.1: the mixed weight p = 0.7 beats both pure-frequency
/// (p = 0, the Nexus reduction) and pure-semantics (p = 1) on HP.
#[test]
fn fig3_mixed_weight_wins_on_hp() {
    let trace = WorkloadSpec::hp().scaled(SCALE).generate();
    let cfg = SimConfig::for_family(TraceFamily::Hp);
    let hit_for = |p: f64| {
        let fc = FarmerConfig::default().with_p(p);
        simulate(&trace, &mut FpaPredictor::new(fc), cfg).hit_ratio()
    };
    let h0 = hit_for(0.0);
    let h07 = hit_for(0.7);
    let h1 = hit_for(1.0);
    assert!(h07 > h0, "p=0.7 ({h07:.3}) must beat p=0 ({h0:.3})");
    assert!(h07 > h1, "p=0.7 ({h07:.3}) must beat p=1 ({h1:.3})");
}

/// Figure 8: FPA gives the lowest average response time on LLNL, RES, HP.
#[test]
fn fig8_fpa_lowest_response_time() {
    for family in [TraceFamily::Llnl, TraceFamily::Res, TraceFamily::Hp] {
        let trace = WorkloadSpec::for_family(family).scaled(SCALE).generate();
        let cfg = ReplayConfig::for_family(family);
        let lru = replay(&trace, Box::new(LruOnly), cfg).avg_response_ms();
        let nexus =
            replay(&trace, Box::new(NexusPredictor::paper_default()), cfg).avg_response_ms();
        let fpa = replay(&trace, Box::new(FpaPredictor::for_trace(&trace)), cfg).avg_response_ms();
        assert!(
            fpa < nexus,
            "{family:?}: FPA {fpa:.3}ms !< Nexus {nexus:.3}ms"
        );
        assert!(fpa < lru, "{family:?}: FPA {fpa:.3}ms !< LRU {lru:.3}ms");
    }
}

/// Figure 6 / §5.2.3: pushing `max_strength` toward 1 (filtering valid
/// correlations away) degrades response time relative to the 0.4 default.
#[test]
fn fig6_overfiltering_hurts() {
    let trace = WorkloadSpec::hp().scaled(SCALE).generate();
    let cfg = ReplayConfig::for_family(TraceFamily::Hp);
    let resp = |thr: f64| {
        let fc = FarmerConfig::default().with_max_strength(thr);
        replay(&trace, Box::new(FpaPredictor::new(fc)), cfg).avg_response_ms()
    };
    let at_default = resp(0.4);
    let at_one = resp(1.0);
    assert!(
        at_one > at_default * 1.1,
        "threshold 1.0 ({at_one:.3}ms) must clearly exceed 0.4 ({at_default:.3}ms)"
    );
}

/// Figure 1 / §2.2: the unfiltered stream has the lowest successor
/// predictability in every trace.
#[test]
fn fig1_no_attribute_is_least_predictable() {
    use farmer::trace::stats::{figure1_rows, StreamFilter};
    for family in TraceFamily::ALL {
        let trace = WorkloadSpec::for_family(family).scaled(SCALE).generate();
        let rows = figure1_rows(&trace);
        let none = rows
            .iter()
            .find(|r| r.filter == StreamFilter::None)
            .unwrap()
            .probability;
        let best = rows.iter().map(|r| r.probability).fold(0.0f64, f64::max);
        assert!(best > none, "{family:?}: some attribute must beat `none`");
    }
}

/// Table 4: LLNL's memory footprint dominates, INS's is the smallest —
/// the ordering the paper's space-overhead table exhibits.
#[test]
fn table4_footprint_ordering() {
    let mut sizes = std::collections::HashMap::new();
    for family in TraceFamily::ALL {
        let trace = WorkloadSpec::for_family(family).scaled(SCALE).generate();
        let cfg = if family.has_paths() {
            FarmerConfig::default()
        } else {
            FarmerConfig::pathless()
        };
        sizes.insert(family, Farmer::mine_trace(&trace, cfg).memory_bytes());
    }
    assert!(sizes[&TraceFamily::Llnl] > sizes[&TraceFamily::Ins]);
    assert!(sizes[&TraceFamily::Hp] > sizes[&TraceFamily::Ins]);
    assert!(sizes[&TraceFamily::Res] > sizes[&TraceFamily::Ins]);
}

/// §7: restricting FARMER's similarity to the process attribute alone
/// reduces it to a PBS-like predictor — it still works, but the full
/// combination is at least as good.
#[test]
fn reduction_single_attribute_is_weaker() {
    let trace = WorkloadSpec::hp().scaled(SCALE).generate();
    let cfg = SimConfig::for_family(TraceFamily::Hp);
    let process_only = AttrCombo::EMPTY.with(AttrKind::Process);
    let restricted = simulate(
        &trace,
        &mut FpaPredictor::new(FarmerConfig::default().with_combo(process_only)),
        cfg,
    )
    .hit_ratio();
    let full = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg).hit_ratio();
    assert!(
        full >= restricted - 0.01,
        "full combo {full:.3} should not lose to process-only {restricted:.3}"
    );
}

//! Storage-equivalence property test for the sparse slotted / lazy-decay
//! correlation graph.
//!
//! The oracle below is a deliberately naive dense implementation of the
//! graph's *semantics*: nodes in an id-keyed map, eager decay (every `age`
//! multiplies every accumulator immediately), full scans everywhere, and
//! cap eviction by minimum `(degree at last touch, successor id)`. Random
//! request streams — with forgets, pruning, aging and sparsely spread file
//! ids — are driven through both; edge sets, masses, similarity means,
//! degrees, totals and active-node counts must agree within 1e-9 (the only
//! divergence source is eager multiply vs. `exp(Σ ln f)` rescaling).

use std::collections::BTreeMap;

use farmer::core::{CorrelationGraph, FarmerConfig};
use farmer::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct OEdge {
    mass: f64,
    sim_sum: f64,
    sim_n: u32,
    /// Degree as of the last touch (eviction-ordering key).
    touch_degree: f64,
}

#[derive(Debug, Clone, Default)]
struct ONode {
    total: f64,
    edges: BTreeMap<u32, OEdge>,
}

/// Dense, eager, full-scan oracle for the correlation-graph semantics.
#[derive(Debug, Default)]
struct Oracle {
    nodes: BTreeMap<u32, ONode>,
    num_edges: usize,
}

fn degree(sim: f64, mass: f64, total: f64, p: f64) -> f64 {
    let f = (mass / total.max(1.0)).clamp(0.0, 1.0);
    sim * p + f * (1.0 - p)
}

impl Oracle {
    fn record_access(&mut self, file: u32) {
        self.nodes.entry(file).or_default().total += 1.0;
    }

    fn update_edge(&mut self, from: u32, to: u32, weight: f64, sim: f64, cfg: &FarmerConfig) {
        let p = cfg.p;
        let cap = cfg.max_successors.max(1);
        let node = self.nodes.entry(from).or_default();
        let total = node.total.max(1.0);
        if let Some(e) = node.edges.get_mut(&to) {
            e.mass += weight;
            e.sim_sum += sim;
            e.sim_n += 1;
            e.touch_degree = degree(e.sim_sum / e.sim_n as f64, e.mass, total, p);
            return;
        }
        let fresh = OEdge {
            mass: weight,
            sim_sum: sim,
            sim_n: 1,
            touch_degree: degree(sim, weight, total, p),
        };
        if node.edges.len() < cap {
            node.edges.insert(to, fresh);
            self.num_edges += 1;
            return;
        }
        // Weakest by (degree at last touch, successor id); ties break to
        // the smaller id. Admit only a strictly stronger newcomer.
        let (&weak_to, weak_deg) = node
            .edges
            .iter()
            .map(|(t, e)| (t, e.touch_degree))
            .min_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(b.0)))
            .expect("cap >= 1");
        if fresh.touch_degree > weak_deg {
            node.edges.remove(&weak_to);
            node.edges.insert(to, fresh);
        }
    }

    fn age(&mut self, factor: f64) {
        if factor >= 1.0 {
            return;
        }
        for node in self.nodes.values_mut() {
            node.total *= factor;
            for e in node.edges.values_mut() {
                e.mass *= factor;
                // touch_degree is a ratio of mass/total — invariant.
            }
        }
    }

    fn prune_below(&mut self, floor: f64, cfg: &FarmerConfig) {
        let p = cfg.p;
        for node in self.nodes.values_mut() {
            let total = node.total.max(1.0);
            let before = node.edges.len();
            node.edges
                .retain(|_, e| degree(e.sim_sum / e.sim_n as f64, e.mass, total, p) >= floor);
            self.num_edges -= before - node.edges.len();
        }
        self.drop_inactive();
    }

    fn forget(&mut self, file: u32) {
        if let Some(node) = self.nodes.remove(&file) {
            self.num_edges -= node.edges.len();
        }
        for node in self.nodes.values_mut() {
            if node.edges.remove(&file).is_some() {
                self.num_edges -= 1;
            }
        }
        self.drop_inactive();
    }

    fn drop_inactive(&mut self) {
        self.nodes
            .retain(|_, n| n.total > 0.0 || !n.edges.is_empty());
    }

    fn active_nodes(&self) -> usize {
        self.nodes.len()
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u32),
    Edge(u32, u32, f64, f64),
    Age(f64),
    Prune(f64),
    Forget(u32),
}

/// Decode one raw sample into an operation. The kind space is weighted
/// toward accesses and edge updates, with aging, pruning and forgets mixed
/// in (the maintenance paths under test).
fn decode(kind: u8, a: u32, b: u32, wi: u8, si: u8) -> Op {
    const WEIGHTS: [f64; 3] = [0.5, 0.8, 1.0];
    const SIMS: [f64; 4] = [0.0, 0.25, 0.5, 0.9];
    const AGES: [f64; 3] = [0.5, 0.9, 1.0];
    const FLOORS: [f64; 3] = [0.0, 0.05, 0.3];
    match kind {
        0..=4 => Op::Access(a),
        5..=13 => Op::Edge(a, b, WEIGHTS[wi as usize % 3], SIMS[si as usize % 4]),
        14 => Op::Age(AGES[wi as usize % 3]),
        15 => Op::Prune(FLOORS[si as usize % 3]),
        _ => Op::Forget(a),
    }
}

/// Spread a small dense id over a ~10^7 universe (injective for ids < 24).
fn sparse_id(id: u32) -> u32 {
    id * 416_661 + 13
}

fn check_equal(g: &CorrelationGraph, o: &Oracle, cfg: &FarmerConfig) {
    prop_assert_eq!(g.num_edges(), o.num_edges, "edge count diverged");
    prop_assert_eq!(g.active_nodes(), o.active_nodes(), "active nodes diverged");
    for (&id, onode) in &o.nodes {
        let fid = FileId::new(id);
        let total = g.total_accesses(fid);
        prop_assert!(
            (total - onode.total).abs() < 1e-9,
            "total diverged for {}: {} vs {}",
            id,
            total,
            onode.total
        );
        let got: Vec<_> = g.edges(fid, cfg).collect();
        prop_assert_eq!(got.len(), onode.edges.len(), "successor count for {}", id);
        for view in got {
            let oe = onode
                .edges
                .get(&view.to.raw())
                .unwrap_or_else(|| panic!("unexpected edge {id} -> {}", view.to));
            prop_assert!(
                (view.mass - oe.mass).abs() < 1e-9,
                "mass {}->{}",
                id,
                view.to
            );
            let oavg = oe.sim_sum / oe.sim_n as f64;
            prop_assert!(
                (view.sim_avg - oavg).abs() < 1e-9,
                "sim_avg {}->{}",
                id,
                view.to
            );
            let odeg = degree(oavg, oe.mass, onode.total, cfg.p);
            prop_assert!(
                (view.degree - odeg).abs() < 1e-9,
                "degree {}->{}: {} vs {}",
                id,
                view.to,
                view.degree,
                odeg
            );
        }
    }
}

fn run_stream(raw_ops: &[(u8, u32, u32, u8, u8)], cfg: &FarmerConfig, map_id: impl Fn(u32) -> u32) {
    let mut g = CorrelationGraph::new();
    let mut o = Oracle::default();
    for (i, &(kind, a, b, wi, si)) in raw_ops.iter().enumerate() {
        match decode(kind, a, b, wi, si) {
            Op::Access(a) => {
                g.record_access(FileId::new(map_id(a)));
                o.record_access(map_id(a));
            }
            Op::Edge(a, b, w, s) => {
                if a != b {
                    g.update_edge(FileId::new(map_id(a)), FileId::new(map_id(b)), w, s, cfg);
                    o.update_edge(map_id(a), map_id(b), w, s, cfg);
                }
            }
            Op::Age(f) => {
                g.age(f);
                o.age(f);
            }
            Op::Prune(floor) => {
                g.prune_below(floor, cfg);
                o.prune_below(floor, cfg);
            }
            Op::Forget(a) => {
                let id = map_id(a);
                g.clear_node(FileId::new(id));
                g.remove_edges_to(FileId::new(id));
                o.forget(id);
            }
        }
        if i % 16 == 0 {
            check_equal(&g, &o, cfg);
        }
    }
    check_equal(&g, &o, cfg);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Dense ids: the slotted graph matches the dense oracle op for op.
    #[test]
    fn sparse_graph_matches_dense_oracle(
        ops in proptest::collection::vec((0u8..18, 0u32..24, 0u32..24, 0u8..3, 0u8..4), 1..400),
    ) {
        let mut cfg = FarmerConfig::default();
        cfg.max_successors = 3; // small cap: eviction churn on every node
        run_stream(&ops, &cfg, |id| id);
    }

    /// Sparse ids spread over a ~10^7 universe: identical behaviour, and
    /// resident memory a dense spine could never sustain.
    #[test]
    fn sparse_ids_match_oracle_and_stay_compact(
        ops in proptest::collection::vec((0u8..18, 0u32..24, 0u32..24, 0u8..3, 0u8..4), 1..400),
    ) {
        let mut cfg = FarmerConfig::default();
        cfg.max_successors = 3;
        run_stream(&ops, &cfg, sparse_id);

        // Rebuild once more to check the memory claim directly.
        let mut g = CorrelationGraph::new();
        for &(kind, a, b, wi, si) in &ops {
            if let Op::Edge(a, b, w, s) = decode(kind, a, b, wi, si) {
                if a != b {
                    g.update_edge(FileId::new(sparse_id(a)), FileId::new(sparse_id(b)), w, s, &cfg);
                }
            }
        }
        // 24 possible nodes; a dense spine up to id ~10^7 would need tens
        // of MiB. The slotted graph stays in the kilobytes.
        prop_assert!(g.heap_bytes() < 64 << 10, "heap {} bytes", g.heap_bytes());
    }
}

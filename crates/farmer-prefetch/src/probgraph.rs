//! Probability Graph (Griffioen & Appleton, USENIX Summer 1994) — one of
//! the two classical weight-based-graph predictors the paper positions
//! FARMER against (§3.2.2, §6).
//!
//! The model counts, for each file, how often every other file is opened
//! within a *lookahead window* after it ("follow window"). Unlike Nexus's
//! linear decremented assignment, every successor in the window counts
//! equally. Prefetch candidates are the successors whose estimated chance
//! `count(A→B) / total(A)` exceeds a minimum probability.

use std::collections::VecDeque;

use farmer_trace::hash::FxHashMap;
use farmer_trace::{FileId, Trace, TraceEvent};

use crate::predictor::Predictor;

/// The Probability Graph predictor.
#[derive(Debug)]
pub struct ProbabilityGraph {
    window: usize,
    min_chance: f64,
    group_limit: usize,
    history: VecDeque<u32>,
    /// Per-predecessor: total window observations and per-successor counts.
    nodes: FxHashMap<u32, Node>,
    /// Reusable candidate-ranking scratch (no per-access allocation).
    scratch: Vec<(u32, f64)>,
}

#[derive(Debug, Default)]
struct Node {
    total: u64,
    succ: FxHashMap<u32, u64>,
}

impl ProbabilityGraph {
    /// The original paper's commonly cited configuration: window 2,
    /// minimum chance 0.1, small prefetch groups.
    pub fn classic() -> Self {
        Self::new(2, 0.1, 4)
    }

    /// Fully parameterized constructor.
    pub fn new(window: usize, min_chance: f64, group_limit: usize) -> Self {
        assert!(window >= 1, "window must be positive");
        assert!(
            (0.0..=1.0).contains(&min_chance),
            "chance must be a probability"
        );
        ProbabilityGraph {
            window,
            min_chance,
            group_limit,
            history: VecDeque::new(),
            nodes: FxHashMap::default(),
            scratch: Vec::new(),
        }
    }

    /// Estimated probability that `to` follows `from` within the window.
    pub fn chance(&self, from: FileId, to: FileId) -> f64 {
        match self.nodes.get(&from.raw()) {
            Some(n) if n.total > 0 => *n.succ.get(&to.raw()).unwrap_or(&0) as f64 / n.total as f64,
            _ => 0.0,
        }
    }

    fn update(&mut self, file: u32) {
        for &pred in self.history.iter().rev().take(self.window) {
            if pred == file {
                continue;
            }
            let node = self.nodes.entry(pred).or_default();
            node.total += 1;
            *node.succ.entry(file).or_insert(0) += 1;
        }
        self.history.push_back(file);
        while self.history.len() > self.window {
            self.history.pop_front();
        }
    }
}

impl Predictor for ProbabilityGraph {
    fn name(&self) -> &str {
        "ProbGraph"
    }

    fn on_access_into(&mut self, _trace: &Trace, event: &TraceEvent, out: &mut Vec<FileId>) {
        self.update(event.file.raw());
        out.clear();
        let Some(node) = self.nodes.get(&event.file.raw()) else {
            return;
        };
        if node.total == 0 {
            return;
        }
        self.scratch.clear();
        self.scratch.extend(
            node.succ
                .iter()
                .map(|(&f, &c)| (f, c as f64 / node.total as f64))
                .filter(|&(_, p)| p >= self.min_chance),
        );
        self.scratch
            .sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out.extend(
            self.scratch
                .iter()
                .take(self.group_limit)
                .map(|&(f, _)| FileId::new(f)),
        );
    }

    fn memory_bytes(&self) -> usize {
        self.nodes
            .values()
            .map(|n| 24 + n.succ.len() * 16)
            .sum::<usize>()
            + self.history.capacity() * 4
            + self.scratch.capacity() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::{HostId, ProcId, UserId, WorkloadSpec};

    fn ev(seq: u64, file: u32) -> TraceEvent {
        TraceEvent::synthetic(
            seq,
            FileId::new(file),
            UserId::new(0),
            ProcId::new(1),
            HostId::new(0),
        )
    }

    fn t() -> Trace {
        WorkloadSpec::ins().scaled(0.002).generate()
    }

    #[test]
    fn chance_estimates_frequency() {
        let trace = t();
        let mut p = ProbabilityGraph::new(1, 0.0, 4);
        // 0 -> 1 three times, 0 -> 2 once.
        for (i, succ) in [1u32, 1, 2, 1].iter().enumerate() {
            p.on_access(&trace, &ev(2 * i as u64, 0));
            p.on_access(&trace, &ev(2 * i as u64 + 1, *succ));
        }
        assert!((p.chance(FileId::new(0), FileId::new(1)) - 0.75).abs() < 1e-12);
        assert!((p.chance(FileId::new(0), FileId::new(2)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn min_chance_filters() {
        let trace = t();
        let mut p = ProbabilityGraph::new(1, 0.5, 4);
        for (i, succ) in [1u32, 1, 2, 1].iter().enumerate() {
            p.on_access(&trace, &ev(2 * i as u64, 0));
            p.on_access(&trace, &ev(2 * i as u64 + 1, *succ));
        }
        let c = p.on_access(&trace, &ev(100, 0));
        assert_eq!(c, vec![FileId::new(1)], "only the 75% successor passes 0.5");
    }

    #[test]
    fn candidates_ranked_by_chance() {
        let trace = t();
        let mut p = ProbabilityGraph::new(1, 0.0, 4);
        for (i, succ) in [1u32, 2, 1, 1].iter().enumerate() {
            p.on_access(&trace, &ev(2 * i as u64, 0));
            p.on_access(&trace, &ev(2 * i as u64 + 1, *succ));
        }
        let c = p.on_access(&trace, &ev(100, 0));
        assert_eq!(c[0], FileId::new(1));
        assert_eq!(c[1], FileId::new(2));
    }

    #[test]
    fn unknown_file_proposes_nothing() {
        let trace = t();
        let mut p = ProbabilityGraph::classic();
        assert!(p.on_access(&trace, &ev(0, 999)).is_empty());
    }

    #[test]
    fn helps_over_lru_on_regular_trace() {
        use crate::baselines::LruOnly;
        use crate::sim::{simulate, SimConfig};
        let trace = WorkloadSpec::ins().scaled(0.2).generate();
        let cfg = SimConfig::for_family(trace.family);
        let lru = simulate(&trace, &mut LruOnly, cfg);
        let pg = simulate(&trace, &mut ProbabilityGraph::classic(), cfg);
        assert!(
            pg.hit_ratio() > lru.hit_ratio(),
            "ProbGraph {:.3} should beat LRU {:.3}",
            pg.hit_ratio(),
            lru.hit_ratio()
        );
    }

    #[test]
    #[should_panic(expected = "window must be positive")]
    fn rejects_zero_window() {
        let _ = ProbabilityGraph::new(0, 0.1, 4);
    }
}

//! An intrusive, slab-backed doubly-linked LRU list with O(1) operations.
//!
//! The metadata cache performs one `move_to_front` per demand hit and one
//! `push_front`/`pop_back` pair per miss, at trace scale (10⁵–10⁷ events per
//! experiment), so constant-time list surgery matters. Nodes live in a
//! `Vec` slab and link by index; freed slots are recycled through a free
//! list, so the structure never reallocates once warm.

/// Index type for slab slots. `NIL` marks list ends / free slots.
type Idx = u32;
const NIL: Idx = u32::MAX;

#[derive(Debug, Clone)]
struct Node<T> {
    prev: Idx,
    next: Idx,
    value: Option<T>,
}

/// A doubly-linked list over a slab; front = most recent.
#[derive(Debug, Clone)]
pub struct LruList<T> {
    nodes: Vec<Node<T>>,
    free: Vec<Idx>,
    head: Idx,
    tail: Idx,
    len: usize,
}

impl<T> Default for LruList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> LruList<T> {
    /// An empty list.
    pub fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// An empty list with room for `cap` nodes before any allocation.
    pub fn with_capacity(cap: usize) -> Self {
        LruList {
            nodes: Vec::with_capacity(cap),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a value at the front (most-recent). Returns its slot handle.
    pub fn push_front(&mut self, value: T) -> u32 {
        let idx = match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = Node {
                    prev: NIL,
                    next: self.head,
                    value: Some(value),
                };
                i
            }
            None => {
                self.nodes.push(Node {
                    prev: NIL,
                    next: self.head,
                    value: Some(value),
                });
                (self.nodes.len() - 1) as Idx
            }
        };
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
        self.len += 1;
        idx
    }

    /// Move a live slot to the front.
    pub fn move_to_front(&mut self, idx: u32) {
        debug_assert!(self.nodes[idx as usize].value.is_some(), "moving dead slot");
        if self.head == idx {
            return;
        }
        self.unlink(idx);
        let node = &mut self.nodes[idx as usize];
        node.prev = NIL;
        node.next = self.head;
        if self.head != NIL {
            self.nodes[self.head as usize].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Remove and return the least-recent entry.
    pub fn pop_back(&mut self) -> Option<T> {
        if self.tail == NIL {
            return None;
        }
        let idx = self.tail;
        self.remove(idx)
    }

    /// Remove a specific live slot, returning its value.
    pub fn remove(&mut self, idx: u32) -> Option<T> {
        let value = self.nodes[idx as usize].value.take()?;
        self.unlink(idx);
        self.free.push(idx);
        self.len -= 1;
        Some(value)
    }

    /// Peek at the least-recent entry.
    pub fn back(&self) -> Option<&T> {
        if self.tail == NIL {
            None
        } else {
            self.nodes[self.tail as usize].value.as_ref()
        }
    }

    /// Peek at the most-recent entry.
    pub fn front(&self) -> Option<&T> {
        if self.head == NIL {
            None
        } else {
            self.nodes[self.head as usize].value.as_ref()
        }
    }

    /// Read a live slot's value.
    pub fn get(&self, idx: u32) -> Option<&T> {
        self.nodes.get(idx as usize).and_then(|n| n.value.as_ref())
    }

    /// Mutable access to a live slot's value.
    pub fn get_mut(&mut self, idx: u32) -> Option<&mut T> {
        self.nodes
            .get_mut(idx as usize)
            .and_then(|n| n.value.as_mut())
    }

    /// Iterate front (most-recent) to back (least-recent).
    pub fn iter(&self) -> LruIter<'_, T> {
        LruIter {
            list: self,
            cur: self.head,
        }
    }

    /// Detach `idx` from its neighbours (does not free the slot).
    fn unlink(&mut self, idx: Idx) {
        let (prev, next) = {
            let n = &self.nodes[idx as usize];
            (n.prev, n.next)
        };
        if prev != NIL {
            self.nodes[prev as usize].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next as usize].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
    }
}

/// Front-to-back iterator over an [`LruList`].
pub struct LruIter<'a, T> {
    list: &'a LruList<T>,
    cur: Idx,
}

impl<'a, T> Iterator for LruIter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.cur == NIL {
            return None;
        }
        let node = &self.list.nodes[self.cur as usize];
        self.cur = node.next;
        node.value.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::VecDeque;

    #[test]
    fn push_and_pop_order() {
        let mut l = LruList::new();
        l.push_front(1);
        l.push_front(2);
        l.push_front(3);
        assert_eq!(l.len(), 3);
        assert_eq!(l.pop_back(), Some(1));
        assert_eq!(l.pop_back(), Some(2));
        assert_eq!(l.pop_back(), Some(3));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn move_to_front_changes_eviction_order() {
        let mut l = LruList::new();
        let a = l.push_front('a');
        let _b = l.push_front('b');
        let _c = l.push_front('c');
        l.move_to_front(a);
        assert_eq!(l.pop_back(), Some('b'));
        assert_eq!(l.pop_back(), Some('c'));
        assert_eq!(l.pop_back(), Some('a'));
    }

    #[test]
    fn move_front_is_noop() {
        let mut l = LruList::new();
        l.push_front(1);
        let b = l.push_front(2);
        l.move_to_front(b);
        assert_eq!(l.front(), Some(&2));
        assert_eq!(l.back(), Some(&1));
    }

    #[test]
    fn remove_middle() {
        let mut l = LruList::new();
        let _a = l.push_front(1);
        let b = l.push_front(2);
        let _c = l.push_front(3);
        assert_eq!(l.remove(b), Some(2));
        assert_eq!(l.len(), 2);
        let items: Vec<i32> = l.iter().copied().collect();
        assert_eq!(items, vec![3, 1]);
    }

    #[test]
    fn slots_are_recycled() {
        let mut l = LruList::new();
        let a = l.push_front(1);
        l.remove(a);
        let cap_before = l.nodes.len();
        l.push_front(2);
        assert_eq!(l.nodes.len(), cap_before, "slot should be reused");
    }

    #[test]
    fn get_and_get_mut() {
        let mut l = LruList::new();
        let a = l.push_front(10);
        assert_eq!(l.get(a), Some(&10));
        *l.get_mut(a).unwrap() = 20;
        assert_eq!(l.get(a), Some(&20));
        l.remove(a);
        assert_eq!(l.get(a), None);
    }

    #[test]
    fn singleton_list_pops_clean() {
        let mut l = LruList::new();
        l.push_front(7);
        assert_eq!(l.front(), l.back());
        assert_eq!(l.pop_back(), Some(7));
        assert!(l.front().is_none());
        assert!(l.back().is_none());
    }

    proptest! {
        /// Model test: a random op sequence matches a VecDeque reference
        /// implementation (front = most recent).
        #[test]
        fn matches_vecdeque_model(ops in proptest::collection::vec(0u8..4, 1..200)) {
            let mut sys: LruList<u32> = LruList::new();
            let mut model: VecDeque<u32> = VecDeque::new();
            let mut handles: Vec<(u32, u32)> = Vec::new(); // (handle, value)
            let mut next_val = 0u32;

            for op in ops {
                match op {
                    0 => {
                        // push_front
                        let h = sys.push_front(next_val);
                        model.push_front(next_val);
                        handles.push((h, next_val));
                        next_val += 1;
                    }
                    1 => {
                        // pop_back
                        let got = sys.pop_back();
                        let want = model.pop_back();
                        prop_assert_eq!(got, want);
                        if let Some(v) = want {
                            handles.retain(|&(_, val)| val != v);
                        }
                    }
                    2 => {
                        // move_to_front of a random live handle
                        if !handles.is_empty() {
                            let (h, v) = handles[(next_val as usize) % handles.len()];
                            sys.move_to_front(h);
                            let pos = model.iter().position(|&x| x == v).unwrap();
                            model.remove(pos);
                            model.push_front(v);
                        }
                    }
                    _ => {
                        // remove a random live handle
                        if !handles.is_empty() {
                            let i = (next_val as usize) % handles.len();
                            let (h, v) = handles.remove(i);
                            let got = sys.remove(h);
                            prop_assert_eq!(got, Some(v));
                            let pos = model.iter().position(|&x| x == v).unwrap();
                            model.remove(pos);
                        }
                    }
                }
                prop_assert_eq!(sys.len(), model.len());
                let sys_items: Vec<u32> = sys.iter().copied().collect();
                let model_items: Vec<u32> = model.iter().copied().collect();
                prop_assert_eq!(sys_items, model_items);
            }
        }
    }
}

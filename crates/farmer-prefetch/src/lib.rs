//! # farmer-prefetch — prefetching algorithms and cache simulation
//!
//! The paper's headline application (§4.1, §5): a metadata cache fronted by
//! a prefetcher. This crate provides:
//!
//! * an O(1) [LRU list](lru) and a [metadata cache](cache) that tags
//!   entries by origin (demand vs prefetch) so prefetching accuracy and
//!   cache pollution can be measured exactly,
//! * the [`Predictor`] trait and its implementations:
//!   [FPA](fpa::FpaPredictor) (the FARMER-enabled prefetching algorithm),
//!   [Nexus](nexus::NexusPredictor) (the CCGRID'06 weighted-graph
//!   comparator, reimplemented from its published description),
//!   [Probability Graph](probgraph::ProbabilityGraph) and the SEER-style
//!   [SD graph](sdgraph::SdGraph), plus the classical
//!   [baselines] — plain LRU, Last Successor, First Successor,
//!   Recent Popularity, PBS and PULS,
//! * a [trace-driven cache simulator](sim) producing the hit-ratio and
//!   prefetch-accuracy numbers behind the paper's Figures 3/7 and Tables
//!   3/5.

// This crate is unsafe-free by policy (lint rule R2 guards the rest).
#![forbid(unsafe_code)]

pub mod baselines;
pub mod cache;
pub mod fpa;
pub mod lru;
pub mod metrics;
pub mod nexus;
pub mod predictor;
pub mod probgraph;
pub mod sdgraph;
pub mod sim;

pub use cache::{CacheMetrics, CacheStats, MetadataCache, Origin};
pub use fpa::{FpaMetrics, FpaPredictor};
pub use metrics::SimReport;
pub use nexus::NexusPredictor;
pub use predictor::Predictor;
pub use probgraph::ProbabilityGraph;
pub use sdgraph::SdGraph;
pub use sim::{
    simulate, simulate_instrumented, simulate_online, simulate_online_instrumented, OnlineConfig,
    OnlineDriver, OnlineRunStats, OnlineSimReport, SimConfig,
};

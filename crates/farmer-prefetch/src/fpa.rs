//! FPA — the FARMER-enabled prefetching algorithm (paper §4.1).
//!
//! On every metadata access the model observes the request, then the
//! accessed file's Correlator List is consulted: every successor whose
//! correlation degree reaches `max_strength` is proposed for prefetch, in
//! decreasing degree order, up to a per-access group limit. The threshold
//! is the mechanism the paper credits for FPA's accuracy: "FARMER filters
//! out unrelated or weakly correlated files from Correlator List by
//! comparing the correlation degree with a valid correlation degree
//! threshold max_strength".
//!
//! Both serving modes query through [`CorrelationSource`] — the top-k
//! lands in a reusable buffer, so the per-access path is allocation-free
//! in steady state regardless of which back-end is installed.

use farmer_core::{CorrelationSource, Correlator, Farmer, FarmerConfig};
use farmer_obs::{Counter, Histogram, Registry};
use farmer_trace::{FileId, Trace, TraceEvent};

use crate::predictor::Predictor;

/// Live observability handles for the predictor (the `fpa.*` scope of the
/// workspace registry map). No-op by default.
#[derive(Debug, Clone, Default)]
pub struct FpaMetrics {
    /// External correlation sources installed (`fpa.refreshes`).
    pub refreshes: Counter,
    /// Wall-clock nanoseconds per top-k correlator query (`fpa.topk_ns`) —
    /// the serving-path latency, excluding self-mining observation cost.
    pub topk_ns: Histogram,
}

impl FpaMetrics {
    /// Register the predictor metrics under `reg` (pass an `fpa`-scoped
    /// registry; [`FpaPredictor::instrument`] does this).
    pub fn new(reg: &Registry) -> FpaMetrics {
        FpaMetrics {
            refreshes: reg.counter("refreshes"),
            topk_ns: reg.histogram("topk_ns"),
        }
    }
}

/// The FARMER-enabled prefetcher.
///
/// Two operating modes:
///
/// * **Self-mining** (the default): every access is observed by the
///   embedded [`Farmer`] and predictions come from its live correlator
///   state — the paper's single-node deployment.
/// * **Externally mined**: [`FpaPredictor::refresh`] installs *any*
///   [`CorrelationSource`] produced elsewhere — a `CorrelatorTable`, a
///   `farmer-stream` snapshot (directly, no table copy), or a
///   `farmer-store` view reloaded after a restart. Predictions are then
///   served from it, local mining is skipped (the mining cost lives on
///   the mining tier), and each later `refresh` swaps in a newer view —
///   the predictor follows the evolving workload *mid-simulation* without
///   re-mining or restart.
pub struct FpaPredictor {
    farmer: Farmer,
    /// Upper bound on candidates proposed per access (prefetch group size).
    pub group_limit: usize,
    /// Externally mined correlator state; `Some` switches serving to it.
    external: Option<Box<dyn CorrelationSource + Send>>,
    /// Stream position (events) of the installed source, for diagnostics.
    external_events: u64,
    /// Reusable top-k buffer (zero steady-state allocation).
    topk: Vec<Correlator>,
    obs: FpaMetrics,
}

impl std::fmt::Debug for FpaPredictor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FpaPredictor")
            .field("farmer", &self.farmer)
            .field("group_limit", &self.group_limit)
            .field("external", &self.external.as_ref().map(|s| s.version()))
            .field("external_events", &self.external_events)
            .finish()
    }
}

impl FpaPredictor {
    /// Default group size; matches the Nexus comparator so the two differ
    /// only in *which* files they pick, not how many they may pick.
    pub const DEFAULT_GROUP_LIMIT: usize = 4;

    /// Build from a FARMER configuration.
    pub fn new(cfg: FarmerConfig) -> Self {
        FpaPredictor {
            farmer: Farmer::new(cfg),
            group_limit: Self::DEFAULT_GROUP_LIMIT,
            external: None,
            external_events: 0,
            topk: Vec::new(),
            obs: FpaMetrics::default(),
        }
    }

    /// Paper-default configuration (p = 0.7, max_strength = 0.4, IPA),
    /// with the attribute base chosen per trace family.
    pub fn for_trace(trace: &Trace) -> Self {
        let cfg = if trace.family.has_paths() {
            FarmerConfig::default()
        } else {
            FarmerConfig::pathless()
        };
        Self::new(cfg)
    }

    /// Override the prefetch group size.
    #[must_use]
    pub fn with_group_limit(mut self, limit: usize) -> Self {
        self.group_limit = limit;
        self
    }

    /// Access the underlying FARMER model (diagnostics, Table 4).
    pub fn farmer(&self) -> &Farmer {
        &self.farmer
    }

    /// Register this predictor's metrics under the `fpa` scope of `reg`
    /// (pass the run's *root* registry). Serving stays allocation-free;
    /// with a disabled registry the handles are no-ops.
    pub fn instrument(&mut self, reg: &Registry) {
        self.obs = FpaMetrics::new(&reg.scope("fpa"));
    }

    /// Install (or replace) an externally mined correlation source; see
    /// the type-level docs for the serving-mode switch this implies.
    /// `as_of_events` records which stream prefix the source reflects.
    pub fn refresh(&mut self, source: impl CorrelationSource + Send + 'static, as_of_events: u64) {
        self.refresh_boxed(Box::new(source), as_of_events);
    }

    /// [`FpaPredictor::refresh`] for an already-boxed source (what the
    /// [`Predictor::refresh_source`] hook hands over).
    pub fn refresh_boxed(&mut self, source: Box<dyn CorrelationSource + Send>, as_of_events: u64) {
        self.external = Some(source);
        self.external_events = as_of_events;
        self.obs.refreshes.inc();
    }

    /// Follow an epoch-swapped publication cell: if `reader` picked up a
    /// newer published snapshot (or the predictor has no external source
    /// yet), install the reader's cached snapshot and serve from it.
    /// Returns whether a source was installed.
    ///
    /// This is the serving-tier counterpart of [`FpaPredictor::refresh`]:
    /// the miner publishes into a `SnapshotCell` at its own cadence
    /// (`farmer_stream::ShardedMiner::publish_into`), and the predictor
    /// polls this at whatever cadence it likes. The steady-state no-new-
    /// epoch call is one atomic load; installation is an `Arc` clone of
    /// the shared snapshot — no table copy, no re-mining.
    pub fn refresh_from_cell(&mut self, reader: &mut farmer_stream::CellReader) -> bool {
        let advanced = reader.refresh();
        if !advanced && self.external.is_some() {
            return false;
        }
        let snap = reader.cached();
        let events = snap.events;
        self.refresh_boxed(Box::new(snap), events);
        true
    }

    /// Drop the external source and return to self-mining.
    pub fn clear_external(&mut self) {
        self.external = None;
        self.external_events = 0;
    }

    /// The installed external source, if any.
    pub fn external(&self) -> Option<&dyn CorrelationSource> {
        self.external
            .as_deref()
            .map(|s| s as &dyn CorrelationSource)
    }

    /// Stream position of the installed source (0 when self-mining).
    pub fn external_events(&self) -> u64 {
        self.external_events
    }
}

impl Predictor for FpaPredictor {
    fn name(&self) -> &str {
        "FARMER"
    }

    fn on_access_into(&mut self, trace: &Trace, event: &TraceEvent, out: &mut Vec<FileId>) {
        out.clear();
        // FPA's validity threshold applies in both modes: exported sources
        // are typically pre-thresholded (making this a no-op), but a source
        // that retains weaker correlations — e.g. a live model installed
        // via `refresh` — must not leak them into prefetch proposals.
        let threshold = self.farmer.config().max_strength;
        if let Some(source) = &self.external {
            let _span = self.obs.topk_ns.span();
            source.top_k_into(event.file, self.group_limit, threshold, &mut self.topk);
        } else {
            self.farmer.observe_event(trace, event);
            let _span = self.obs.topk_ns.span();
            self.farmer
                .top_k_into(event.file, self.group_limit, threshold, &mut self.topk);
        }
        out.extend(self.topk.iter().map(|c| c.file));
    }

    fn memory_bytes(&self) -> usize {
        self.farmer.memory_bytes()
            + self.external.as_ref().map_or(0, |s| s.heap_bytes())
            + self.topk.capacity() * std::mem::size_of::<Correlator>()
    }

    fn refresh_source(
        &mut self,
        source: Box<dyn CorrelationSource + Send>,
        as_of_events: u64,
    ) -> bool {
        self.refresh_boxed(source, as_of_events);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::WorkloadSpec;

    #[test]
    fn proposes_thresholded_candidates_only() {
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let mut fpa = FpaPredictor::for_trace(&trace);
        let mut proposed_any = false;
        for e in &trace.events {
            let cands = fpa.on_access(&trace, e);
            assert!(cands.len() <= fpa.group_limit);
            proposed_any |= !cands.is_empty();
            // Every candidate clears the configured threshold.
            for c in &cands {
                let list = fpa.farmer().correlators(e.file);
                assert!(list.iter().any(|x| x.file == *c));
            }
            if e.seq > 2000 {
                break;
            }
        }
        assert!(proposed_any, "FPA should eventually propose prefetches");
    }

    #[test]
    fn pathless_trace_gets_pathless_combo() {
        let trace = WorkloadSpec::ins().scaled(0.01).generate();
        let fpa = FpaPredictor::for_trace(&trace);
        assert!(!fpa
            .farmer()
            .config()
            .combo
            .contains(farmer_core::AttrKind::Path));
    }

    #[test]
    fn memory_grows_with_observation() {
        let trace = WorkloadSpec::res().scaled(0.02).generate();
        let mut fpa = FpaPredictor::for_trace(&trace);
        for e in trace.events.iter().take(5000) {
            fpa.on_access(&trace, e);
        }
        assert!(fpa.memory_bytes() > 0);
    }

    #[test]
    fn refresh_switches_serving_to_the_table() {
        use farmer_core::{Correlator, CorrelatorList, CorrelatorTable};
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let mut fpa = FpaPredictor::for_trace(&trace);
        // An external table that maps every access of file 0 to file 42.
        let table: CorrelatorTable = vec![CorrelatorList::build(
            FileId::new(0),
            vec![Correlator {
                file: FileId::new(42),
                degree: 0.9,
            }],
            0.0,
        )]
        .into_iter()
        .collect();
        fpa.refresh(table, 1234);
        assert_eq!(fpa.external_events(), 1234);
        assert!(fpa.external().is_some());
        let e0 = trace
            .events
            .iter()
            .find(|e| e.file == FileId::new(0))
            .copied()
            .unwrap_or_else(|| trace.events[0]);
        let preds = fpa.on_access(&trace, &e0);
        if e0.file == FileId::new(0) {
            assert_eq!(preds, vec![FileId::new(42)]);
        } else {
            assert!(preds.is_empty(), "unknown file must predict nothing");
        }
        // Serving from the table does not mine locally.
        assert_eq!(fpa.farmer().observed(), 0);
        // Dropping the table returns to self-mining.
        fpa.clear_external();
        fpa.on_access(&trace, &trace.events[0]);
        assert_eq!(fpa.farmer().observed(), 1);
    }

    #[test]
    fn successive_refreshes_follow_the_miner() {
        use farmer_core::{Correlator, CorrelatorList, CorrelatorTable};
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let mut fpa = FpaPredictor::for_trace(&trace);
        let make = |to: u32| -> CorrelatorTable {
            vec![CorrelatorList::build(
                FileId::new(0),
                vec![Correlator {
                    file: FileId::new(to),
                    degree: 0.8,
                }],
                0.0,
            )]
            .into_iter()
            .collect()
        };
        let mut e0 = trace.events[0];
        e0.file = FileId::new(0);
        fpa.refresh(make(7), 100);
        assert_eq!(fpa.on_access(&trace, &e0), vec![FileId::new(7)]);
        fpa.refresh(make(8), 200);
        assert_eq!(fpa.on_access(&trace, &e0), vec![FileId::new(8)]);
        assert_eq!(fpa.external_events(), 200);
        assert!(fpa.memory_bytes() > 0);
    }

    #[test]
    fn serving_path_reuses_buffers() {
        use farmer_core::{Correlator, CorrelatorList, CorrelatorTable};
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let mut fpa = FpaPredictor::for_trace(&trace);
        let table: CorrelatorTable = vec![CorrelatorList::build(
            FileId::new(0),
            (1..=4)
                .map(|i| Correlator {
                    file: FileId::new(i),
                    degree: 1.0 - 0.1 * i as f64,
                })
                .collect::<Vec<_>>(),
            0.0,
        )]
        .into_iter()
        .collect();
        fpa.refresh(table, 1);
        let mut e0 = trace.events[0];
        e0.file = FileId::new(0);
        let mut out = Vec::new();
        fpa.on_access_into(&trace, &e0, &mut out);
        let (ptr, cap) = (out.as_ptr(), out.capacity());
        for _ in 0..64 {
            fpa.on_access_into(&trace, &e0, &mut out);
        }
        assert_eq!(out.len(), 4);
        assert_eq!(out.as_ptr(), ptr, "candidate buffer must be reused");
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn group_limit_respected() {
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let mut fpa = FpaPredictor::for_trace(&trace).with_group_limit(1);
        for e in trace.events.iter().take(3000) {
            assert!(fpa.on_access(&trace, e).len() <= 1);
        }
    }

    #[test]
    fn refresh_from_cell_follows_publications() {
        use farmer_stream::{ShardedMiner, SnapshotCell, StreamConfig};
        use std::sync::Arc;

        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let mut miner = ShardedMiner::spawn(StreamConfig::default().with_shards(2));
        let cell = Arc::new(SnapshotCell::new());
        let mut reader = cell.reader();
        let mut fpa = FpaPredictor::for_trace(&trace);

        // First call installs even with no publication yet (the empty
        // epoch-0 snapshot): the predictor switches to external serving.
        assert!(fpa.refresh_from_cell(&mut reader));
        assert!(fpa.external().is_some());
        assert_eq!(fpa.external_events(), 0);
        // Steady state: no new epoch, no install.
        assert!(!fpa.refresh_from_cell(&mut reader));

        let half = trace.len() / 2;
        for e in trace.events.iter().take(half) {
            miner.route_event(&trace, e);
        }
        miner.publish_into(&cell);
        assert!(
            fpa.refresh_from_cell(&mut reader),
            "new epoch not picked up"
        );
        assert_eq!(fpa.external_events(), half as u64);
        assert!(!fpa.refresh_from_cell(&mut reader));

        for e in trace.events.iter().skip(half) {
            miner.route_event(&trace, e);
        }
        miner.publish_into(&cell);
        assert!(fpa.refresh_from_cell(&mut reader));
        assert_eq!(fpa.external_events(), trace.len() as u64);
        // Predictions now come from the published snapshot.
        let mut served = 0usize;
        for e in trace.events.iter().take(2000) {
            served += fpa.on_access(&trace, e).len();
        }
        assert!(served > 0, "cell-refreshed predictor proposes nothing");
    }
}

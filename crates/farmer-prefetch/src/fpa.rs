//! FPA — the FARMER-enabled prefetching algorithm (paper §4.1).
//!
//! On every metadata access the model observes the request, then the
//! accessed file's Correlator List is consulted: every successor whose
//! correlation degree reaches `max_strength` is proposed for prefetch, in
//! decreasing degree order, up to a per-access group limit. The threshold
//! is the mechanism the paper credits for FPA's accuracy: "FARMER filters
//! out unrelated or weakly correlated files from Correlator List by
//! comparing the correlation degree with a valid correlation degree
//! threshold max_strength".

use farmer_core::{Farmer, FarmerConfig};
use farmer_trace::{FileId, Trace, TraceEvent};

use crate::predictor::Predictor;

/// The FARMER-enabled prefetcher.
#[derive(Debug)]
pub struct FpaPredictor {
    farmer: Farmer,
    /// Upper bound on candidates proposed per access (prefetch group size).
    pub group_limit: usize,
}

impl FpaPredictor {
    /// Default group size; matches the Nexus comparator so the two differ
    /// only in *which* files they pick, not how many they may pick.
    pub const DEFAULT_GROUP_LIMIT: usize = 4;

    /// Build from a FARMER configuration.
    pub fn new(cfg: FarmerConfig) -> Self {
        FpaPredictor {
            farmer: Farmer::new(cfg),
            group_limit: Self::DEFAULT_GROUP_LIMIT,
        }
    }

    /// Paper-default configuration (p = 0.7, max_strength = 0.4, IPA),
    /// with the attribute base chosen per trace family.
    pub fn for_trace(trace: &Trace) -> Self {
        let cfg = if trace.family.has_paths() {
            FarmerConfig::default()
        } else {
            FarmerConfig::pathless()
        };
        Self::new(cfg)
    }

    /// Override the prefetch group size.
    #[must_use]
    pub fn with_group_limit(mut self, limit: usize) -> Self {
        self.group_limit = limit;
        self
    }

    /// Access the underlying FARMER model (diagnostics, Table 4).
    pub fn farmer(&self) -> &Farmer {
        &self.farmer
    }
}

impl Predictor for FpaPredictor {
    fn name(&self) -> &str {
        "FARMER"
    }

    fn on_access(&mut self, trace: &Trace, event: &TraceEvent) -> Vec<FileId> {
        self.farmer.observe_event(trace, event);
        self.farmer
            .correlators(event.file)
            .top(self.group_limit)
            .iter()
            .map(|c| c.file)
            .collect()
    }

    fn memory_bytes(&self) -> usize {
        self.farmer.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::WorkloadSpec;

    #[test]
    fn proposes_thresholded_candidates_only() {
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let mut fpa = FpaPredictor::for_trace(&trace);
        let mut proposed_any = false;
        for e in &trace.events {
            let cands = fpa.on_access(&trace, e);
            assert!(cands.len() <= fpa.group_limit);
            proposed_any |= !cands.is_empty();
            // Every candidate clears the configured threshold.
            for c in &cands {
                let list = fpa.farmer().correlators(e.file);
                assert!(list.iter().any(|x| x.file == *c));
            }
            if e.seq > 2000 {
                break;
            }
        }
        assert!(proposed_any, "FPA should eventually propose prefetches");
    }

    #[test]
    fn pathless_trace_gets_pathless_combo() {
        let trace = WorkloadSpec::ins().scaled(0.01).generate();
        let fpa = FpaPredictor::for_trace(&trace);
        assert!(!fpa
            .farmer()
            .config()
            .combo
            .contains(farmer_core::AttrKind::Path));
    }

    #[test]
    fn memory_grows_with_observation() {
        let trace = WorkloadSpec::res().scaled(0.02).generate();
        let mut fpa = FpaPredictor::for_trace(&trace);
        for e in trace.events.iter().take(5000) {
            fpa.on_access(&trace, e);
        }
        assert!(fpa.memory_bytes() > 0);
    }

    #[test]
    fn group_limit_respected() {
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let mut fpa = FpaPredictor::for_trace(&trace).with_group_limit(1);
        for e in trace.events.iter().take(3000) {
            assert!(fpa.on_access(&trace, e).len() <= 1);
        }
    }
}

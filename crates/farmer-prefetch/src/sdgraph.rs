//! SD graph — the SEER-style Semantic Distance predictor (Kuenning, 1994),
//! cited by the paper as the access-sequence-only use of "semantic
//! distance" that FARMER generalizes (§3.2.1: "effectiveness of Semantic
//! Distance in SD graph is limited to only exploiting access sequence").
//!
//! SEER defines the semantic distance between two files as the number of
//! intervening file references between their accesses, and keeps a running
//! *average* distance per pair; small average distance ⇒ strong relation.
//! Prefetching pulls in the files with the smallest average distance.

use std::collections::VecDeque;

use farmer_trace::hash::FxHashMap;
use farmer_trace::{FileId, Trace, TraceEvent};

use crate::predictor::Predictor;

/// One tracked relation: accumulated distance and observation count.
#[derive(Debug, Clone, Copy, Default)]
struct Relation {
    sum_distance: u64,
    observations: u32,
}

/// The SD-graph predictor.
#[derive(Debug)]
pub struct SdGraph {
    window: usize,
    group_limit: usize,
    max_relations: usize,
    history: VecDeque<u32>,
    relations: FxHashMap<u32, FxHashMap<u32, Relation>>,
    /// Reusable candidate-ranking scratch (no per-access allocation).
    scratch: Vec<(u32, f64, u32)>,
}

impl SdGraph {
    /// SEER-style defaults: observation window 8, groups of 4.
    pub fn classic() -> Self {
        Self::new(8, 4, 16)
    }

    /// Fully parameterized constructor.
    pub fn new(window: usize, group_limit: usize, max_relations: usize) -> Self {
        assert!(window >= 1, "window must be positive");
        SdGraph {
            window,
            group_limit,
            max_relations: max_relations.max(1),
            history: VecDeque::new(),
            relations: FxHashMap::default(),
            scratch: Vec::new(),
        }
    }

    /// Average semantic distance of `to` after `from` (∞ if never seen).
    pub fn avg_distance(&self, from: FileId, to: FileId) -> f64 {
        self.relations
            .get(&from.raw())
            .and_then(|m| m.get(&to.raw()))
            .filter(|r| r.observations > 0)
            .map(|r| r.sum_distance as f64 / r.observations as f64)
            .unwrap_or(f64::INFINITY)
    }

    fn update(&mut self, file: u32) {
        for (d, &pred) in self.history.iter().rev().enumerate() {
            if pred == file {
                continue;
            }
            let rels = self.relations.entry(pred).or_default();
            if rels.len() >= self.max_relations && !rels.contains_key(&file) {
                continue; // bounded state, SEER-style LRU-ish cap
            }
            let r = rels.entry(file).or_default();
            r.sum_distance += (d + 1) as u64;
            r.observations += 1;
        }
        self.history.push_back(file);
        while self.history.len() > self.window {
            self.history.pop_front();
        }
    }
}

impl Predictor for SdGraph {
    fn name(&self) -> &str {
        "SDGraph"
    }

    fn on_access_into(&mut self, _trace: &Trace, event: &TraceEvent, out: &mut Vec<FileId>) {
        self.update(event.file.raw());
        out.clear();
        let Some(rels) = self.relations.get(&event.file.raw()) else {
            return;
        };
        self.scratch.clear();
        self.scratch.extend(rels.iter().map(|(&f, r)| {
            (
                f,
                r.sum_distance as f64 / r.observations.max(1) as f64,
                r.observations,
            )
        }));
        // Closest average distance first; more observations break ties.
        self.scratch
            .sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.2.cmp(&a.2)));
        out.extend(
            self.scratch
                .iter()
                .take(self.group_limit)
                .map(|&(f, _, _)| FileId::new(f)),
        );
    }

    fn memory_bytes(&self) -> usize {
        self.relations
            .values()
            .map(|m| 16 + m.len() * 24)
            .sum::<usize>()
            + self.history.capacity() * 4
            + self.scratch.capacity() * 24
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::{HostId, ProcId, UserId, WorkloadSpec};

    fn ev(seq: u64, file: u32) -> TraceEvent {
        TraceEvent::synthetic(
            seq,
            FileId::new(file),
            UserId::new(0),
            ProcId::new(1),
            HostId::new(0),
        )
    }

    fn t() -> Trace {
        WorkloadSpec::ins().scaled(0.002).generate()
    }

    #[test]
    fn distance_averages_gaps() {
        let trace = t();
        let mut g = SdGraph::new(4, 4, 16);
        // Sequence 0 1 and 0 2 1: distances of 1 after 0 are 1 and 2.
        for f in [0u32, 1] {
            g.on_access(&trace, &ev(0, f));
        }
        g.history.clear();
        for f in [0u32, 2, 1] {
            g.on_access(&trace, &ev(1, f));
        }
        assert!((g.avg_distance(FileId::new(0), FileId::new(1)) - 1.5).abs() < 1e-12);
        assert!((g.avg_distance(FileId::new(0), FileId::new(2)) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn closer_files_rank_first() {
        // Window 2 keeps each round's distances clean of wraparound from
        // the previous cycle.
        let trace = t();
        let mut g = SdGraph::new(2, 4, 16);
        for _ in 0..3 {
            for f in [0u32, 5, 9] {
                g.on_access(&trace, &ev(0, f));
            }
        }
        let c = g.on_access(&trace, &ev(1, 0));
        assert_eq!(c[0], FileId::new(5), "distance-1 successor first");
        assert!((g.avg_distance(FileId::new(0), FileId::new(5)) - 1.0).abs() < 1e-12);
        assert!((g.avg_distance(FileId::new(0), FileId::new(9)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_distance_is_infinite() {
        let g = SdGraph::classic();
        assert!(g.avg_distance(FileId::new(0), FileId::new(1)).is_infinite());
    }

    #[test]
    fn relation_cap_bounds_state() {
        let trace = t();
        let mut g = SdGraph::new(2, 4, 3);
        for i in 0..50u32 {
            g.on_access(&trace, &ev((2 * i) as u64, 0));
            g.on_access(&trace, &ev((2 * i + 1) as u64, 100 + i));
        }
        assert!(g.relations.get(&0).unwrap().len() <= 3);
    }

    #[test]
    fn loses_to_fpa_on_interleaved_trace() {
        // The FARMER paper's position (§3.2.1): SD-graph-style sequence-only
        // mining degrades under multi-process interleaving — its prefetches
        // are active but inaccurate, while FPA's semantic filter keeps the
        // hit ratio up. SD graph may even fall below plain LRU here, which
        // is the pollution effect the paper describes.
        use crate::fpa::FpaPredictor;
        use crate::sim::{simulate, SimConfig};
        let trace = WorkloadSpec::ins().scaled(0.2).generate();
        let cfg = SimConfig::for_family(trace.family);
        let sd = simulate(&trace, &mut SdGraph::classic(), cfg);
        let fpa = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg);
        assert!(
            sd.stats.prefetches_issued > 0,
            "SD graph must actually prefetch"
        );
        assert!(
            fpa.hit_ratio() > sd.hit_ratio(),
            "FPA {:.3} must beat sequence-only SD graph {:.3}",
            fpa.hit_ratio(),
            sd.hit_ratio()
        );
        assert!(
            fpa.prefetch_accuracy() > sd.prefetch_accuracy(),
            "FPA accuracy {:.3} must beat SD graph accuracy {:.3}",
            fpa.prefetch_accuracy(),
            sd.prefetch_accuracy()
        );
    }
}

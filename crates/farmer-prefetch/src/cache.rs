//! The metadata cache: LRU replacement with origin-tagged entries.
//!
//! Entries are tagged with their [`Origin`] so the simulator can account
//! for what the paper measures:
//!
//! * **hit ratio** — demand accesses served from cache,
//! * **prefetching accuracy** — the fraction of prefetched entries that are
//!   demanded before being evicted ("about 65% of all predictions provided
//!   by FPA are correct", §5.3),
//! * **cache pollution** — prefetched entries evicted unused, having
//!   displaced demand-resident metadata.

use farmer_obs::{Counter, Registry};
use farmer_trace::hash::FxHashMap;
use farmer_trace::FileId;

use crate::lru::LruList;

/// How an entry got into the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Origin {
    /// Inserted on a demand miss.
    Demand,
    /// Inserted by the prefetcher; `used` flips when first demanded.
    Prefetch,
}

#[derive(Debug, Clone)]
struct Entry {
    file: FileId,
    origin: Origin,
    used: bool,
}

/// Running counters. All ratios are derived lazily so the struct stays
/// plain-old-data.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Demand lookups.
    pub demand_accesses: u64,
    /// Demand lookups served from cache.
    pub hits: u64,
    /// Demand hits that landed on a not-yet-used prefetched entry.
    pub prefetch_hits: u64,
    /// Prefetch insertions (already-resident candidates are not counted).
    pub prefetches_issued: u64,
    /// Prefetched entries demanded at least once before eviction.
    pub useful_prefetches: u64,
    /// Prefetched entries evicted without ever being demanded.
    pub wasted_prefetches: u64,
    /// Total evictions of any origin.
    pub evictions: u64,
}

impl CacheStats {
    /// Demand hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        if self.demand_accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.demand_accesses as f64
        }
    }

    /// Prefetching accuracy: useful / issued. Entries still resident and
    /// unused at measurement time count against accuracy, matching the
    /// paper's "predictions ... correct" phrasing.
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.useful_prefetches as f64 / self.prefetches_issued as f64
        }
    }

    /// Prefetch waste: the fraction of issued prefetches evicted without
    /// ever being demanded — the cache-pollution cost a too-eager
    /// predictor pays.
    pub fn prefetch_waste(&self) -> f64 {
        if self.prefetches_issued == 0 {
            0.0
        } else {
            self.wasted_prefetches as f64 / self.prefetches_issued as f64
        }
    }

    /// Counter-wise difference `self - earlier`. All fields are monotone
    /// running counters, so the delta of two snapshots of the same cache is
    /// the activity between them — the basis of per-phase reporting.
    ///
    /// The subtraction saturates at zero: a mis-ordered snapshot pair
    /// (possible when callers interleave snapshots with online refreshes)
    /// reports an empty delta instead of silently underflowing into
    /// astronomically large per-phase counters.
    pub fn delta(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            demand_accesses: self.demand_accesses.saturating_sub(earlier.demand_accesses),
            hits: self.hits.saturating_sub(earlier.hits),
            prefetch_hits: self.prefetch_hits.saturating_sub(earlier.prefetch_hits),
            prefetches_issued: self
                .prefetches_issued
                .saturating_sub(earlier.prefetches_issued),
            useful_prefetches: self
                .useful_prefetches
                .saturating_sub(earlier.useful_prefetches),
            wasted_prefetches: self
                .wasted_prefetches
                .saturating_sub(earlier.wasted_prefetches),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }
}

/// Live observability handles mirroring [`CacheStats`], bumped inline as
/// the cache runs — hit/miss traffic streams into the registry instead of
/// waiting for an end-of-run report. No-op by default.
#[derive(Debug, Clone, Default)]
pub struct CacheMetrics {
    /// Demand lookups (`cache.demand_accesses`).
    pub demand_accesses: Counter,
    /// Demand hits (`cache.hits`).
    pub hits: Counter,
    /// First demand hits on prefetched entries (`cache.prefetch_hits`).
    pub prefetch_hits: Counter,
    /// Prefetch insertions (`cache.prefetches_issued`).
    pub prefetches_issued: Counter,
    /// Prefetches demanded before eviction (`cache.useful_prefetches`).
    pub useful_prefetches: Counter,
    /// Prefetches evicted unused (`cache.wasted_prefetches`).
    pub wasted_prefetches: Counter,
    /// Evictions of any origin (`cache.evictions`).
    pub evictions: Counter,
}

impl CacheMetrics {
    /// Register the cache's counters under `reg` (pass a `cache`-scoped
    /// registry; see the workspace naming scheme in `farmer-obs`).
    pub fn new(reg: &Registry) -> CacheMetrics {
        CacheMetrics {
            demand_accesses: reg.counter("demand_accesses"),
            hits: reg.counter("hits"),
            prefetch_hits: reg.counter("prefetch_hits"),
            prefetches_issued: reg.counter("prefetches_issued"),
            useful_prefetches: reg.counter("useful_prefetches"),
            wasted_prefetches: reg.counter("wasted_prefetches"),
            evictions: reg.counter("evictions"),
        }
    }
}

/// Fixed-capacity metadata cache with LRU replacement.
#[derive(Debug)]
pub struct MetadataCache {
    capacity: usize,
    lru: LruList<Entry>,
    index: FxHashMap<u32, u32>, // file -> slot handle
    stats: CacheStats,
    obs: CacheMetrics,
}

impl MetadataCache {
    /// A cache holding at most `capacity` entries.
    ///
    /// # Panics
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be positive");
        MetadataCache {
            capacity,
            lru: LruList::with_capacity(capacity + 1),
            index: FxHashMap::default(),
            stats: CacheStats::default(),
            obs: CacheMetrics::default(),
        }
    }

    /// Attach live observability counters (a no-op set is installed by
    /// default); every [`CacheStats`] field is mirrored into the registry
    /// as the cache runs.
    pub fn instrument(&mut self, obs: CacheMetrics) {
        self.obs = obs;
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident entries.
    pub fn len(&self) -> usize {
        self.lru.len()
    }

    /// True when nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.lru.is_empty()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Residency check without touching recency or stats.
    pub fn contains(&self, file: FileId) -> bool {
        self.index.contains_key(&file.raw())
    }

    /// A demand access: returns `true` on hit (entry refreshed to MRU),
    /// `false` on miss (caller decides whether to insert).
    pub fn access(&mut self, file: FileId) -> bool {
        self.stats.demand_accesses += 1;
        self.obs.demand_accesses.inc();
        if let Some(&slot) = self.index.get(&file.raw()) {
            self.stats.hits += 1;
            self.obs.hits.inc();
            // lint: allow(panic) the index maps file -> live slot; entries
            // are removed from both structures together
            let e = self.lru.get_mut(slot).expect("indexed slot is live");
            if e.origin == Origin::Prefetch && !e.used {
                e.used = true;
                self.stats.prefetch_hits += 1;
                self.stats.useful_prefetches += 1;
                self.obs.prefetch_hits.inc();
                self.obs.useful_prefetches.inc();
            }
            self.lru.move_to_front(slot);
            true
        } else {
            false
        }
    }

    /// Insert after a demand miss. No-op if already resident.
    pub fn insert_demand(&mut self, file: FileId) {
        self.insert(file, Origin::Demand);
    }

    /// Insert a prefetched entry. No-op if already resident; otherwise
    /// counts toward `prefetches_issued`.
    pub fn insert_prefetch(&mut self, file: FileId) {
        if self.contains(file) {
            return;
        }
        self.stats.prefetches_issued += 1;
        self.obs.prefetches_issued.inc();
        self.insert(file, Origin::Prefetch);
    }

    fn insert(&mut self, file: FileId, origin: Origin) {
        if let Some(&slot) = self.index.get(&file.raw()) {
            self.lru.move_to_front(slot);
            return;
        }
        if self.lru.len() >= self.capacity {
            self.evict_one();
        }
        let slot = self.lru.push_front(Entry {
            file,
            origin,
            used: false,
        });
        self.index.insert(file.raw(), slot);
    }

    /// Drop a specific entry (metadata invalidation on unlink).
    /// Drop every resident entry (a cold restart), keeping the running
    /// [`CacheStats`] and live observability handles.
    ///
    /// Unlike eviction, clearing charges nothing: entries lost to a
    /// crash were not *displaced*, so resident-but-unused prefetches do
    /// not count as waste (the predictor didn't mispredict — the process
    /// died). The post-restart hit-ratio dip the eval matrix bands comes
    /// purely from re-missing on the emptied cache.
    pub fn clear(&mut self) {
        while self.lru.pop_back().is_some() {}
        self.index.clear();
    }

    pub fn invalidate(&mut self, file: FileId) {
        if let Some(slot) = self.index.remove(&file.raw()) {
            if let Some(e) = self.lru.remove(slot) {
                self.account_eviction(&e);
            }
        }
    }

    fn evict_one(&mut self) {
        if let Some(e) = self.lru.pop_back() {
            self.index.remove(&e.file.raw());
            self.account_eviction(&e);
        }
    }

    fn account_eviction(&mut self, e: &Entry) {
        self.stats.evictions += 1;
        self.obs.evictions.inc();
        if e.origin == Origin::Prefetch && !e.used {
            self.stats.wasted_prefetches += 1;
            self.obs.wasted_prefetches.inc();
        }
    }

    /// Approximate heap bytes (for overhead reporting).
    pub fn heap_bytes(&self) -> usize {
        self.capacity * (std::mem::size_of::<Entry>() + 16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileId {
        FileId::new(i)
    }

    #[test]
    fn miss_then_hit() {
        let mut c = MetadataCache::new(4);
        assert!(!c.access(f(1)));
        c.insert_demand(f(1));
        assert!(c.access(f(1)));
        let s = c.stats();
        assert_eq!(s.demand_accesses, 2);
        assert_eq!(s.hits, 1);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = MetadataCache::new(2);
        c.insert_demand(f(1));
        c.insert_demand(f(2));
        c.insert_demand(f(3)); // evicts 1
        assert!(!c.contains(f(1)));
        assert!(c.contains(f(2)));
        assert!(c.contains(f(3)));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn access_refreshes_recency() {
        let mut c = MetadataCache::new(2);
        c.insert_demand(f(1));
        c.insert_demand(f(2));
        assert!(c.access(f(1))); // 1 becomes MRU
        c.insert_demand(f(3)); // evicts 2, not 1
        assert!(c.contains(f(1)));
        assert!(!c.contains(f(2)));
    }

    #[test]
    fn prefetch_used_counts_useful() {
        let mut c = MetadataCache::new(4);
        c.insert_prefetch(f(1));
        assert!(c.access(f(1)));
        let s = c.stats();
        assert_eq!(s.prefetches_issued, 1);
        assert_eq!(s.useful_prefetches, 1);
        assert_eq!(s.prefetch_hits, 1);
        assert_eq!(s.wasted_prefetches, 0);
        assert!((s.prefetch_accuracy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prefetch_evicted_unused_counts_wasted() {
        let mut c = MetadataCache::new(1);
        c.insert_prefetch(f(1));
        c.insert_demand(f(2)); // evicts the unused prefetch
        let s = c.stats();
        assert_eq!(s.wasted_prefetches, 1);
        assert_eq!(s.useful_prefetches, 0);
        assert_eq!(s.prefetch_accuracy(), 0.0);
    }

    #[test]
    fn prefetch_used_once_not_double_counted() {
        let mut c = MetadataCache::new(4);
        c.insert_prefetch(f(1));
        c.access(f(1));
        c.access(f(1));
        let s = c.stats();
        assert_eq!(s.useful_prefetches, 1);
        assert_eq!(s.prefetch_hits, 1);
        assert_eq!(s.hits, 2);
    }

    #[test]
    fn duplicate_prefetch_not_reissued() {
        let mut c = MetadataCache::new(4);
        c.insert_prefetch(f(1));
        c.insert_prefetch(f(1));
        assert_eq!(c.stats().prefetches_issued, 1);
    }

    #[test]
    fn prefetch_of_resident_demand_entry_ignored() {
        let mut c = MetadataCache::new(4);
        c.insert_demand(f(1));
        c.insert_prefetch(f(1));
        assert_eq!(c.stats().prefetches_issued, 0);
    }

    #[test]
    fn invalidate_removes_and_accounts() {
        let mut c = MetadataCache::new(4);
        c.insert_prefetch(f(1));
        c.invalidate(f(1));
        assert!(!c.contains(f(1)));
        let s = c.stats();
        assert_eq!(s.evictions, 1);
        assert_eq!(s.wasted_prefetches, 1);
    }

    #[test]
    fn capacity_is_respected() {
        let mut c = MetadataCache::new(3);
        for i in 0..100 {
            c.insert_demand(f(i));
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 97);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let _ = MetadataCache::new(0);
    }

    #[test]
    fn delta_subtracts_and_saturates() {
        let mut c = MetadataCache::new(4);
        c.insert_demand(f(1));
        c.access(f(1));
        let early = c.stats();
        c.access(f(1));
        c.access(f(2)); // miss
        let late = c.stats();
        let d = late.delta(&early);
        assert_eq!(d.demand_accesses, 2);
        assert_eq!(d.hits, 1);
        // Mis-ordered pair: saturates to an empty delta, never underflows.
        let back = early.delta(&late);
        assert_eq!(back.demand_accesses, 0);
        assert_eq!(back.hits, 0);
        assert_eq!(back, CacheStats::default());
    }
}

//! Classical file-prediction baselines (paper §6, "Related Work").
//!
//! * [`LruOnly`] — no prefetching at all; the cache's LRU replacement is the
//!   paper's second comparator.
//! * [`LastSuccessor`] — predict the successor observed most recently for
//!   the current file (Kroeger & Long).
//! * [`FirstSuccessor`] — predict the first successor ever observed.
//! * [`RecentPopularity`] — "best j of last k": predict the successor that
//!   appears at least `j` times among the last `k` observed successors
//!   (Amer et al.).
//! * [`Pbs`] — Program-Based Successors: Last Successor conditioned on the
//!   accessing program (Yeh, Long & Brandt).
//! * [`Puls`] — Program- and User-based Last Successor: conditioned on
//!   program and user.
//!
//! The FARMER paper observes (§7) that PBS/PULS are special cases of
//! FARMER's similarity computation restricted to the process or user
//! attribute; they are implemented independently here to serve as honest
//! baselines.

use std::collections::VecDeque;

use farmer_trace::hash::FxHashMap;
use farmer_trace::{FileId, Trace, TraceEvent};

use crate::predictor::Predictor;

/// No prefetching: the LRU-replacement comparator.
#[derive(Debug, Default)]
pub struct LruOnly;

impl Predictor for LruOnly {
    fn name(&self) -> &str {
        "LRU"
    }

    fn on_access_into(&mut self, _trace: &Trace, _event: &TraceEvent, out: &mut Vec<FileId>) {
        out.clear();
    }
}

/// Last Successor: remember, per file, the successor seen most recently in
/// the raw stream.
#[derive(Debug, Default)]
pub struct LastSuccessor {
    last_file: Option<u32>,
    successor: FxHashMap<u32, u32>,
}

impl Predictor for LastSuccessor {
    fn name(&self) -> &str {
        "LS"
    }

    fn on_access_into(&mut self, _trace: &Trace, event: &TraceEvent, out: &mut Vec<FileId>) {
        out.clear();
        let file = event.file.raw();
        if let Some(prev) = self.last_file {
            if prev != file {
                self.successor.insert(prev, file);
            }
        }
        self.last_file = Some(file);
        if let Some(&s) = self.successor.get(&file) {
            out.push(FileId::new(s));
        }
    }

    fn memory_bytes(&self) -> usize {
        self.successor.len() * 16
    }
}

/// First Successor: the first successor ever observed wins forever.
#[derive(Debug, Default)]
pub struct FirstSuccessor {
    last_file: Option<u32>,
    successor: FxHashMap<u32, u32>,
}

impl Predictor for FirstSuccessor {
    fn name(&self) -> &str {
        "FS"
    }

    fn on_access_into(&mut self, _trace: &Trace, event: &TraceEvent, out: &mut Vec<FileId>) {
        out.clear();
        let file = event.file.raw();
        if let Some(prev) = self.last_file {
            if prev != file {
                self.successor.entry(prev).or_insert(file);
            }
        }
        self.last_file = Some(file);
        if let Some(&s) = self.successor.get(&file) {
            out.push(FileId::new(s));
        }
    }

    fn memory_bytes(&self) -> usize {
        self.successor.len() * 16
    }
}

/// Recent Popularity ("best j of last k", Amer et al. IPCCC'02).
#[derive(Debug)]
pub struct RecentPopularity {
    j: usize,
    k: usize,
    last_file: Option<u32>,
    recent: FxHashMap<u32, VecDeque<u32>>,
}

impl RecentPopularity {
    /// The commonly used 2-of-4 configuration.
    pub fn default_config() -> Self {
        Self::new(2, 4)
    }

    /// Predict only when a successor appears ≥ `j` times in the last `k`.
    pub fn new(j: usize, k: usize) -> Self {
        assert!(j >= 1 && k >= j, "need 1 <= j <= k");
        RecentPopularity {
            j,
            k,
            last_file: None,
            recent: FxHashMap::default(),
        }
    }
}

impl Predictor for RecentPopularity {
    fn name(&self) -> &str {
        "RecentPop"
    }

    fn on_access_into(&mut self, _trace: &Trace, event: &TraceEvent, out: &mut Vec<FileId>) {
        out.clear();
        let file = event.file.raw();
        if let Some(prev) = self.last_file {
            if prev != file {
                let q = self.recent.entry(prev).or_default();
                q.push_back(file);
                while q.len() > self.k {
                    q.pop_front();
                }
            }
        }
        self.last_file = Some(file);

        let Some(q) = self.recent.get(&file) else {
            return;
        };
        // Majority vote over the last-k successors.
        let mut best: Option<(u32, usize)> = None;
        for &cand in q {
            let count = q.iter().filter(|&&x| x == cand).count();
            match best {
                Some((_, c)) if c >= count => {}
                _ => best = Some((cand, count)),
            }
        }
        if let Some((cand, count)) = best {
            if count >= self.j {
                out.push(FileId::new(cand));
            }
        }
    }

    fn memory_bytes(&self) -> usize {
        self.recent.len() * (16 + self.k * 4)
    }
}

/// Program-Based Successors: Last Successor within each program's stream.
#[derive(Debug, Default)]
pub struct Pbs {
    last_by_app: FxHashMap<u32, u32>,
    successor: FxHashMap<(u32, u32), u32>, // (app, file) -> successor
}

impl Predictor for Pbs {
    fn name(&self) -> &str {
        "PBS"
    }

    fn on_access_into(&mut self, _trace: &Trace, event: &TraceEvent, out: &mut Vec<FileId>) {
        out.clear();
        let file = event.file.raw();
        let app = event.app;
        if let Some(&prev) = self.last_by_app.get(&app) {
            if prev != file {
                self.successor.insert((app, prev), file);
            }
        }
        self.last_by_app.insert(app, file);
        if let Some(&s) = self.successor.get(&(app, file)) {
            out.push(FileId::new(s));
        }
    }

    fn memory_bytes(&self) -> usize {
        self.successor.len() * 20 + self.last_by_app.len() * 16
    }
}

/// Program- and User-based Last Successor.
#[derive(Debug, Default)]
pub struct Puls {
    last_by_key: FxHashMap<(u32, u32), u32>,
    successor: FxHashMap<(u32, u32, u32), u32>, // (app, uid, file) -> successor
}

impl Predictor for Puls {
    fn name(&self) -> &str {
        "PULS"
    }

    fn on_access_into(&mut self, _trace: &Trace, event: &TraceEvent, out: &mut Vec<FileId>) {
        out.clear();
        let file = event.file.raw();
        let key = (event.app, event.uid.raw());
        if let Some(&prev) = self.last_by_key.get(&key) {
            if prev != file {
                self.successor.insert((key.0, key.1, prev), file);
            }
        }
        self.last_by_key.insert(key, file);
        if let Some(&s) = self.successor.get(&(key.0, key.1, file)) {
            out.push(FileId::new(s));
        }
    }

    fn memory_bytes(&self) -> usize {
        self.successor.len() * 24 + self.last_by_key.len() * 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::{HostId, ProcId, UserId, WorkloadSpec};

    fn ev(seq: u64, file: u32, app: u32, uid: u32) -> TraceEvent {
        let mut e = TraceEvent::synthetic(
            seq,
            FileId::new(file),
            UserId::new(uid),
            ProcId::new(1),
            HostId::new(0),
        );
        e.app = app;
        e
    }

    fn t() -> Trace {
        WorkloadSpec::ins().scaled(0.002).generate()
    }

    #[test]
    fn lru_only_never_prefetches() {
        let trace = t();
        let mut p = LruOnly;
        for e in trace.events.iter().take(100) {
            assert!(p.on_access(&trace, e).is_empty());
        }
    }

    #[test]
    fn last_successor_tracks_most_recent() {
        let trace = t();
        let mut p = LastSuccessor::default();
        p.on_access(&trace, &ev(0, 0, 0, 0));
        p.on_access(&trace, &ev(1, 1, 0, 0)); // 0 -> 1
        p.on_access(&trace, &ev(2, 0, 0, 0));
        p.on_access(&trace, &ev(3, 2, 0, 0)); // 0 -> 2 replaces 1
        let c = p.on_access(&trace, &ev(4, 0, 0, 0));
        assert_eq!(c, vec![FileId::new(2)]);
    }

    #[test]
    fn first_successor_never_updates() {
        let trace = t();
        let mut p = FirstSuccessor::default();
        p.on_access(&trace, &ev(0, 0, 0, 0));
        p.on_access(&trace, &ev(1, 1, 0, 0)); // 0 -> 1 sticks
        p.on_access(&trace, &ev(2, 0, 0, 0));
        p.on_access(&trace, &ev(3, 2, 0, 0)); // ignored
        let c = p.on_access(&trace, &ev(4, 0, 0, 0));
        assert_eq!(c, vec![FileId::new(1)]);
    }

    #[test]
    fn recent_popularity_requires_quorum() {
        let trace = t();
        let mut p = RecentPopularity::new(2, 4);
        // Successors of 0: 1, 2 -> no quorum yet.
        p.on_access(&trace, &ev(0, 0, 0, 0));
        p.on_access(&trace, &ev(1, 1, 0, 0));
        p.on_access(&trace, &ev(2, 0, 0, 0));
        p.on_access(&trace, &ev(3, 2, 0, 0));
        let c = p.on_access(&trace, &ev(4, 0, 0, 0));
        assert!(c.is_empty(), "no successor reached quorum");
        // Add a second "1": quorum reached.
        p.on_access(&trace, &ev(5, 1, 0, 0));
        let c = p.on_access(&trace, &ev(6, 0, 0, 0));
        assert_eq!(c, vec![FileId::new(1)]);
    }

    #[test]
    fn recent_popularity_window_slides() {
        let trace = t();
        let mut p = RecentPopularity::new(2, 2);
        // 0 -> 1, 0 -> 1 (quorum), then 0 -> 2, 0 -> 2 pushes the 1s out.
        for succ in [1u32, 1, 2, 2] {
            p.on_access(&trace, &ev(0, 0, 0, 0));
            p.on_access(&trace, &ev(0, succ, 0, 0));
        }
        let c = p.on_access(&trace, &ev(9, 0, 0, 0));
        assert_eq!(c, vec![FileId::new(2)]);
    }

    #[test]
    fn pbs_separates_programs() {
        let trace = t();
        let mut p = Pbs::default();
        // Program 1 sees 0 -> 1; program 2 sees 0 -> 2 (interleaved).
        p.on_access(&trace, &ev(0, 0, 1, 0));
        p.on_access(&trace, &ev(1, 0, 2, 0));
        p.on_access(&trace, &ev(2, 1, 1, 0));
        p.on_access(&trace, &ev(3, 2, 2, 0));
        let c1 = p.on_access(&trace, &ev(4, 0, 1, 0));
        let c2 = p.on_access(&trace, &ev(5, 0, 2, 0));
        assert_eq!(c1, vec![FileId::new(1)]);
        assert_eq!(c2, vec![FileId::new(2)]);
    }

    #[test]
    fn puls_separates_program_and_user() {
        let trace = t();
        let mut p = Puls::default();
        // Same program, different users with different habits.
        p.on_access(&trace, &ev(0, 0, 1, 10));
        p.on_access(&trace, &ev(1, 0, 1, 20));
        p.on_access(&trace, &ev(2, 1, 1, 10));
        p.on_access(&trace, &ev(3, 2, 1, 20));
        let c10 = p.on_access(&trace, &ev(4, 0, 1, 10));
        let c20 = p.on_access(&trace, &ev(5, 0, 1, 20));
        assert_eq!(c10, vec![FileId::new(1)]);
        assert_eq!(c20, vec![FileId::new(2)]);
    }

    #[test]
    #[should_panic(expected = "need 1 <= j <= k")]
    fn recent_popularity_validates_params() {
        let _ = RecentPopularity::new(3, 2);
    }
}

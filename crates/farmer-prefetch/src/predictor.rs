//! The prefetch-predictor interface.

use farmer_core::CorrelationSource;
use farmer_trace::{FileId, Trace, TraceEvent};

/// A prefetching algorithm: observes the demand stream and proposes files
/// whose metadata should be staged into the cache.
///
/// [`Predictor::on_access_into`] is called once per metadata demand
/// request, *after* the cache has been probed for it. Implementations
/// update their internal model with the access and fill the caller's
/// buffer with prefetch candidates in priority order (strongest first).
/// The buffer is owned by the driver and reused across every access, so a
/// predictor that also avoids internal allocation serves the whole demand
/// stream allocation-free in steady state. The simulator truncates the
/// list to its configured prefetch limit, so implementations need not
/// bound it precisely.
pub trait Predictor {
    /// Short display name used in reports ("FARMER", "Nexus", "LRU", …).
    fn name(&self) -> &str;

    /// Observe a demand access; clear `out` and fill it with prefetch
    /// candidates, strongest first.
    fn on_access_into(&mut self, trace: &Trace, event: &TraceEvent, out: &mut Vec<FileId>);

    /// Allocating convenience wrapper around
    /// [`Predictor::on_access_into`] (tests, one-off probes — not the
    /// serving loop).
    fn on_access(&mut self, trace: &Trace, event: &TraceEvent) -> Vec<FileId> {
        let mut out = Vec::new();
        self.on_access_into(trace, event, &mut out);
        out
    }

    /// Approximate resident heap bytes of the predictor's state (Table 4).
    fn memory_bytes(&self) -> usize {
        0
    }

    /// Install an externally mined correlation source, replacing whatever
    /// the predictor was serving from. `as_of_events` records the stream
    /// prefix the source reflects.
    ///
    /// Returns `true` if the predictor accepted the source (and will serve
    /// from it) — the hook the online evaluation drivers
    /// (`farmer-prefetch::simulate_online`, `farmer-mds::replay_online`)
    /// use to swap fresh miner snapshots in mid-run. Predictors that mine
    /// internally and cannot serve external state return `false` (the
    /// default).
    fn refresh_source(
        &mut self,
        _source: Box<dyn CorrelationSource + Send>,
        _as_of_events: u64,
    ) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A trivial predictor to pin the trait contract.
    struct Echo;
    impl Predictor for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn on_access_into(&mut self, _trace: &Trace, event: &TraceEvent, out: &mut Vec<FileId>) {
            out.clear();
            out.push(event.file);
        }
    }

    #[test]
    fn trait_object_usable() {
        let trace = farmer_trace::WorkloadSpec::ins().scaled(0.01).generate();
        let mut p: Box<dyn Predictor> = Box::new(Echo);
        assert_eq!(p.name(), "echo");
        let c = p.on_access(&trace, &trace.events[0]);
        assert_eq!(c, vec![trace.events[0].file]);
        assert_eq!(p.memory_bytes(), 0);
    }

    #[test]
    fn into_variant_clears_stale_entries() {
        let trace = farmer_trace::WorkloadSpec::ins().scaled(0.01).generate();
        let mut p = Echo;
        let mut buf = vec![FileId::new(99); 8];
        p.on_access_into(&trace, &trace.events[0], &mut buf);
        assert_eq!(buf, vec![trace.events[0].file]);
    }
}

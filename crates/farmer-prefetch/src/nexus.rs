//! Nexus — the weighted-graph metadata prefetcher (Gu et al., CCGRID 2006),
//! reimplemented from its published description as the paper's primary
//! comparator.
//!
//! Nexus builds a relationship graph from the *raw interleaved* access
//! stream: for each access, edges are inserted from every file in a
//! look-ahead history window to the new file, with linearly decremented
//! weights (the assignment FARMER borrows for its frequency term). On each
//! access it aggressively prefetches the top-`k` successors by accumulated
//! edge weight — no semantic filtering and no validity threshold, which is
//! exactly what the FARMER paper identifies as its weakness: "it attempts
//! to decrease the response time by increasing the amount of prefetching,
//! which reduces the prefetching accuracy and generates significant cache
//! pollution" (§6).

use std::collections::VecDeque;

use farmer_trace::hash::FxHashMap;
use farmer_trace::{FileId, Trace, TraceEvent};

use crate::predictor::Predictor;

/// One successor edge in the Nexus relationship graph.
#[derive(Debug, Clone, Copy)]
struct Edge {
    to: u32,
    weight: f64,
}

/// The Nexus predictor.
#[derive(Debug)]
pub struct NexusPredictor {
    /// Look-ahead window length.
    window: usize,
    /// Weight decrement per window distance (1.0, 0.9, 0.8, … by default).
    decrement: f64,
    /// Prefetch group size.
    group_limit: usize,
    /// Per-node successor cap, as in the published implementation.
    max_successors: usize,
    history: VecDeque<u32>,
    edges: FxHashMap<u32, Vec<Edge>>,
    /// Reusable candidate-ranking scratch (no per-access allocation).
    scratch: Vec<Edge>,
}

impl NexusPredictor {
    /// The configuration used throughout the paper's comparison: window 5,
    /// decrement 0.1, group size 4.
    pub fn paper_default() -> Self {
        Self::new(5, 0.1, 4, 16)
    }

    /// Fully parameterized constructor.
    pub fn new(window: usize, decrement: f64, group_limit: usize, max_successors: usize) -> Self {
        NexusPredictor {
            window: window.max(1),
            decrement,
            group_limit,
            max_successors: max_successors.max(1),
            history: VecDeque::new(),
            edges: FxHashMap::default(),
            scratch: Vec::new(),
        }
    }

    /// Accumulated weight of edge `from → to` (tests/diagnostics).
    pub fn edge_weight(&self, from: FileId, to: FileId) -> f64 {
        self.edges
            .get(&from.raw())
            .and_then(|v| v.iter().find(|e| e.to == to.raw()))
            .map_or(0.0, |e| e.weight)
    }

    /// Successors of `from` ordered by decreasing weight.
    pub fn successors(&self, from: FileId) -> Vec<(FileId, f64)> {
        let mut ranked = Vec::new();
        rank_successors(&self.edges, from.raw(), &mut ranked);
        ranked
            .into_iter()
            .map(|e| (FileId::new(e.to), e.weight))
            .collect()
    }

    fn update(&mut self, file: u32) {
        for (i, &pred) in self.history.iter().rev().enumerate() {
            if pred == file {
                continue;
            }
            let w = (1.0 - self.decrement * i as f64).max(0.0);
            if w <= 0.0 {
                break;
            }
            let list = self.edges.entry(pred).or_default();
            if let Some(e) = list.iter_mut().find(|e| e.to == file) {
                e.weight += w;
            } else if list.len() < self.max_successors {
                list.push(Edge {
                    to: file,
                    weight: w,
                });
            } else {
                // Replace the weakest successor if the newcomer beats it.
                let (idx, min_w) = list
                    .iter()
                    .enumerate()
                    .map(|(i, e)| (i, e.weight))
                    .min_by(|a, b| a.1.total_cmp(&b.1))
                    // lint: allow(panic) reached only when the successor
                    // list is at cap, and cap is validated >= 1
                    .expect("cap >= 1");
                if w > min_w {
                    list[idx] = Edge {
                        to: file,
                        weight: w,
                    };
                }
            }
        }
        self.history.push_back(file);
        while self.history.len() > self.window {
            self.history.pop_front();
        }
    }
}

/// The one Nexus ranking rule — decreasing accumulated weight, ties by
/// ascending file id — shared by the prediction path and the
/// [`NexusPredictor::successors`] probe so the two can never diverge.
/// Clears and fills `out` with `from`'s edges in rank order.
fn rank_successors(edges: &FxHashMap<u32, Vec<Edge>>, from: u32, out: &mut Vec<Edge>) {
    out.clear();
    if let Some(es) = edges.get(&from) {
        out.extend_from_slice(es);
        out.sort_by(|a, b| b.weight.total_cmp(&a.weight).then_with(|| a.to.cmp(&b.to)));
    }
}

impl Predictor for NexusPredictor {
    fn name(&self) -> &str {
        "Nexus"
    }

    fn on_access_into(&mut self, _trace: &Trace, event: &TraceEvent, out: &mut Vec<FileId>) {
        self.update(event.file.raw());
        out.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        rank_successors(&self.edges, event.file.raw(), &mut scratch);
        out.extend(
            scratch
                .iter()
                .take(self.group_limit)
                .map(|e| FileId::new(e.to)),
        );
        self.scratch = scratch;
    }

    fn memory_bytes(&self) -> usize {
        self.edges
            .values()
            .map(|v| v.capacity() * std::mem::size_of::<Edge>() + 16)
            .sum::<usize>()
            + self.history.capacity() * 4
            + self.scratch.capacity() * std::mem::size_of::<Edge>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::WorkloadSpec;

    fn ev(seq: u64, file: u32) -> TraceEvent {
        TraceEvent::synthetic(
            seq,
            FileId::new(file),
            farmer_trace::UserId::new(0),
            farmer_trace::ProcId::new(1),
            farmer_trace::HostId::new(0),
        )
    }

    fn toy_trace() -> Trace {
        // Only used to satisfy the Predictor signature; Nexus ignores it.
        WorkloadSpec::ins().scaled(0.002).generate()
    }

    #[test]
    fn abcd_weights_are_linearly_decremented() {
        let t = toy_trace();
        let mut n = NexusPredictor::paper_default();
        for (i, f) in [0u32, 1, 2, 3].iter().enumerate() {
            n.on_access(&t, &ev(i as u64, *f));
        }
        assert!((n.edge_weight(FileId::new(0), FileId::new(1)) - 1.0).abs() < 1e-12);
        assert!((n.edge_weight(FileId::new(0), FileId::new(2)) - 0.9).abs() < 1e-12);
        assert!((n.edge_weight(FileId::new(0), FileId::new(3)) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn prefetches_top_k_by_weight() {
        let t = toy_trace();
        let mut n = NexusPredictor::new(3, 0.1, 2, 16);
        // Train: 0 -> 1 often, 0 -> 2 sometimes, 0 -> 3 once.
        for _ in 0..5 {
            n.on_access(&t, &ev(0, 0));
            n.on_access(&t, &ev(1, 1));
        }
        for _ in 0..2 {
            n.on_access(&t, &ev(2, 0));
            n.on_access(&t, &ev(3, 2));
        }
        n.on_access(&t, &ev(4, 0));
        n.on_access(&t, &ev(5, 3));
        let cands = n.on_access(&t, &ev(6, 0));
        assert_eq!(cands.len(), 2);
        assert_eq!(cands[0], FileId::new(1));
        assert_eq!(cands[1], FileId::new(2));
    }

    #[test]
    fn no_threshold_prefetches_even_weak_edges() {
        let t = toy_trace();
        let mut n = NexusPredictor::paper_default();
        n.on_access(&t, &ev(0, 0));
        n.on_access(&t, &ev(1, 1)); // single weak observation
        let cands = n.on_access(&t, &ev(2, 0));
        assert_eq!(
            cands,
            vec![FileId::new(1)],
            "Nexus prefetches without filtering"
        );
    }

    #[test]
    fn successor_cap_respected() {
        let t = toy_trace();
        let mut n = NexusPredictor::new(2, 0.1, 10, 3);
        for i in 0..10u32 {
            n.on_access(&t, &ev((2 * i) as u64, 0));
            n.on_access(&t, &ev((2 * i + 1) as u64, 100 + i));
        }
        assert!(n.successors(FileId::new(0)).len() <= 3);
    }

    #[test]
    fn self_edges_ignored() {
        let t = toy_trace();
        let mut n = NexusPredictor::paper_default();
        n.on_access(&t, &ev(0, 7));
        n.on_access(&t, &ev(1, 7));
        assert!(n.successors(FileId::new(7)).is_empty());
    }

    #[test]
    fn memory_reported() {
        let t = WorkloadSpec::res().scaled(0.02).generate();
        let mut n = NexusPredictor::paper_default();
        for e in t.events.iter().take(3000) {
            n.on_access(&t, e);
        }
        assert!(n.memory_bytes() > 0);
    }
}

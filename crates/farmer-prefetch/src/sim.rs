//! Trace-driven cache simulation.
//!
//! Replays a trace's metadata demand stream through a [`MetadataCache`]
//! fronted by a [`Predictor`]:
//!
//! 1. each metadata-demand event probes the cache (hit/miss accounting),
//! 2. on a miss the metadata is brought in as a demand entry,
//! 3. the predictor observes the access and proposes candidates,
//! 4. candidates are staged as prefetch entries, up to the per-access
//!    prefetch limit.
//!
//! This reproduces the measurement loop behind the paper's Figure 3
//! (hit ratio vs `max_strength` × weight), Figure 7 (hit-ratio comparison),
//! Table 3 (accuracy) and Table 5 (attribute combinations). Response-time
//! measurement needs queueing and service times and lives in `farmer-mds`.

use farmer_core::CorrelatorTable;
use farmer_obs::{Counter, Histogram, Registry};
use farmer_stream::{ShardedMiner, StreamConfig};
use farmer_trace::phases::{phase_count, phase_end};
use farmer_trace::{Op, Trace, TraceFamily};

use crate::cache::{CacheMetrics, MetadataCache};
use crate::metrics::SimReport;
use crate::predictor::Predictor;

/// Parameters of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Metadata cache capacity in entries.
    pub cache_capacity: usize,
    /// Maximum prefetch insertions per access (group size ceiling applied
    /// after the predictor's own limit).
    pub prefetch_limit: usize,
    /// Number of equal event-index segments the run is additionally
    /// reported over ([`SimReport::phases`]). `1` (the default) disables
    /// segmentation; phase-shifting scenarios use ≥ 2 so adaptation and
    /// post-shift recovery are visible instead of averaged away.
    ///
    /// With `num_phases > 1` the run reports exactly
    /// [`phase_count(len, num_phases)`](farmer_trace::phases::phase_count)
    /// segments — `min(num_phases, max(len, 1))`, balanced — so a trace
    /// shorter than the requested phase count degrades to one phase per
    /// event instead of a wrong segment count. With `num_phases == 1`
    /// [`SimReport::phases`] stays empty.
    pub num_phases: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cache_capacity: 512,
            prefetch_limit: 4,
            num_phases: 1,
        }
    }
}

impl SimConfig {
    /// Per-family cache sizing used throughout the experiments: the cache
    /// is a small fraction of each trace's namespace, scaled so the paper's
    /// relative hit-ratio bands are reachable (INS high, RES low).
    pub fn for_family(family: TraceFamily) -> Self {
        let cache_capacity = match family {
            TraceFamily::Llnl => 768,
            TraceFamily::Ins => 128,
            TraceFamily::Res => 128,
            TraceFamily::Hp => 256,
        };
        SimConfig {
            cache_capacity,
            ..Default::default()
        }
    }

    /// Builder-style phase-count override.
    #[must_use]
    pub fn with_phases(mut self, phases: usize) -> Self {
        assert!(phases >= 1, "num_phases must be >= 1");
        self.num_phases = phases;
        self
    }
}

/// Run one simulation: `predictor` over `trace` with `cfg`.
///
/// With `cfg.num_phases > 1` the report additionally carries per-phase
/// counter deltas: the trace's event-index range is cut into `num_phases`
/// equal segments and the cache counters are snapshotted at each boundary.
pub fn simulate(trace: &Trace, predictor: &mut dyn Predictor, cfg: SimConfig) -> SimReport {
    run_sim(trace, predictor, cfg, None, &Registry::disabled()).0
}

/// [`simulate`] with live observability: the cache's hit/miss counters
/// stream into the `cache.*` scope of `reg` as the run progresses (same
/// end-of-run numbers as [`SimReport::stats`]). With a disabled registry
/// this is exactly [`simulate`].
pub fn simulate_instrumented(
    trace: &Trace,
    predictor: &mut dyn Predictor,
    cfg: SimConfig,
    reg: &Registry,
) -> SimReport {
    run_sim(trace, predictor, cfg, None, reg).0
}

/// Parameters of the online serving mode shared by
/// [`simulate_online`] and `farmer-mds::replay_online`: a live
/// [`ShardedMiner`] is co-driven with the simulation and the predictor is
/// periodically refreshed from its snapshots.
#[derive(Debug, Clone)]
pub struct OnlineConfig {
    /// Configuration of the co-driven miner (shards, `node_cap`, …).
    pub stream: StreamConfig,
    /// Events between snapshot refreshes: at every multiple of this event
    /// index a consistent [`farmer_stream::StreamSnapshot`] is taken and
    /// swapped into the predictor via
    /// [`Predictor::refresh_source`]. Must be positive.
    pub refresh_interval: usize,
    /// Stop refreshing after this event index: the predictor keeps serving
    /// the last snapshot taken at or before it — frozen-snapshot serving,
    /// the baseline online adaptation is measured against. `None` never
    /// freezes.
    pub freeze_after: Option<usize>,
}

impl OnlineConfig {
    /// Periodic refresh every `refresh_interval` events, never frozen.
    pub fn every(stream: StreamConfig, refresh_interval: usize) -> Self {
        OnlineConfig {
            stream,
            refresh_interval,
            freeze_after: None,
        }
    }

    /// One refresh at event `at`, frozen afterwards: the predictor serves
    /// the `[0, at)` snapshot for the rest of the run.
    pub fn frozen_at(stream: StreamConfig, at: usize) -> Self {
        OnlineConfig {
            stream,
            refresh_interval: at,
            freeze_after: Some(at),
        }
    }

    /// Does a refresh fire at event index `i`?
    pub fn refresh_due(&self, i: usize) -> bool {
        i > 0
            && i.is_multiple_of(self.refresh_interval.max(1))
            && self.freeze_after.is_none_or(|stop| i <= stop)
    }
}

/// Online-mode counters of one [`simulate_online`] run.
#[derive(Debug, Clone)]
pub struct OnlineSimReport {
    /// The cache-simulation report (identical accounting to
    /// [`simulate`]).
    pub sim: SimReport,
    /// Snapshot refreshes swapped into the predictor.
    pub refreshes: u64,
    /// Files tracked by the miner at end of run (≤ total node cap).
    pub tracked_files: usize,
    /// Files the miner evicted under `node_cap` pressure.
    pub miner_evictions: u64,
    /// Resident heap bytes of the miner at end of run.
    pub miner_state_bytes: usize,
}

/// Run one **online** simulation: the predictor serves from periodic
/// snapshots of a live [`ShardedMiner`] that is co-driven with the cache
/// simulation, so per-phase hit-ratio deltas directly measure adaptation
/// lag.
///
/// Per event, in order:
///
/// 1. at every `online.refresh_interval` boundary (unless frozen), a
///    consistent snapshot reflecting exactly the events routed so far is
///    swapped into the predictor ([`Predictor::refresh_source`]),
/// 2. the cache-simulation demand step runs exactly as in [`simulate`]
///    (the predictor serves from the *last installed* snapshot — state
///    strictly older than the current event),
/// 3. the event is routed to the miner under the matrix mining policy:
///    unlinks as forgets, metadata demands as observations.
///
/// The predictor starts on an installed *empty* source, so serving is
/// external for the whole run — adaptation lag is measured from a cold
/// model, not hidden by self-mining.
///
/// # Panics
/// Panics if the predictor rejects external sources
/// ([`Predictor::refresh_source`] returns `false`) or if
/// `online.refresh_interval` is zero.
pub fn simulate_online(
    trace: &Trace,
    predictor: &mut dyn Predictor,
    cfg: SimConfig,
    online: &OnlineConfig,
) -> OnlineSimReport {
    simulate_online_instrumented(trace, predictor, cfg, online, &Registry::disabled())
}

/// [`simulate_online`] with live observability: the cache streams into
/// `cache.*`, the co-driven miner into `stream.*`, and the refresh cadence
/// into `online.*` of `reg`. With a disabled registry this is exactly
/// [`simulate_online`].
pub fn simulate_online_instrumented(
    trace: &Trace,
    predictor: &mut dyn Predictor,
    cfg: SimConfig,
    online: &OnlineConfig,
    reg: &Registry,
) -> OnlineSimReport {
    let (sim, stats) = run_sim(trace, predictor, cfg, Some(online), reg);
    // lint: allow(panic) run_sim returns Some stats whenever an
    // OnlineConfig is passed, which this wrapper always does
    let stats = stats.expect("online stats present when an OnlineConfig is supplied");
    OnlineSimReport {
        sim,
        refreshes: stats.refreshes,
        tracked_files: stats.tracked_files,
        miner_evictions: stats.miner_evictions,
        miner_state_bytes: stats.miner_state_bytes,
    }
}

/// Miner-side counters of one online run (the non-simulation half of an
/// [`OnlineSimReport`]); what [`OnlineDriver::finish`] hands back so the
/// MDS replay can reuse the driver with its own report type.
#[derive(Debug, Clone, Copy)]
pub struct OnlineRunStats {
    /// Snapshot refreshes swapped into the predictor.
    pub refreshes: u64,
    /// Files tracked by the miner at end of run.
    pub tracked_files: usize,
    /// Files the miner evicted under `node_cap` pressure.
    pub miner_evictions: u64,
    /// Resident heap bytes of the miner at end of run.
    pub miner_state_bytes: usize,
}

/// Shared core of [`simulate`] and [`simulate_online`]: one event loop,
/// one phase-accounting rule, with the online refresh hook threaded
/// through when configured.
fn run_sim(
    trace: &Trace,
    predictor: &mut dyn Predictor,
    cfg: SimConfig,
    online: Option<&OnlineConfig>,
    reg: &Registry,
) -> (SimReport, Option<OnlineRunStats>) {
    let mut driver = online.map(|o| OnlineDriver::start_instrumented(predictor, o, reg));
    let mut cache = MetadataCache::new(cfg.cache_capacity);
    cache.instrument(CacheMetrics::new(&reg.scope("cache")));
    let segments = phase_count(trace.len(), cfg.num_phases);
    let mut phases = Vec::new();
    let mut segment = 0usize;
    let mut phase_mark = cache.stats();
    // One candidate buffer for the whole run: the predictor fills it in
    // place each access, so the demand loop allocates nothing per event.
    let mut candidates = Vec::new();
    for (i, event) in trace.events.iter().enumerate() {
        if cfg.num_phases > 1 && i == phase_end(trace.len(), segments, segment) {
            let now = cache.stats();
            phases.push(now.delta(&phase_mark));
            phase_mark = now;
            segment += 1;
        }
        if let Some(d) = driver.as_mut() {
            d.maybe_refresh(i, predictor);
            d.route(trace, event);
        }
        if event.op.is_metadata_demand() {
            let hit = cache.access(event.file);
            if !hit {
                cache.insert_demand(event.file);
            }
            predictor.on_access_into(trace, event, &mut candidates);
            for &file in candidates.iter().take(cfg.prefetch_limit) {
                if file != event.file {
                    cache.insert_prefetch(file);
                }
            }
        }
    }
    let stats = cache.stats();
    if cfg.num_phases > 1 {
        phases.push(stats.delta(&phase_mark));
    }
    let sim = SimReport {
        predictor: predictor.name().to_string(),
        trace: trace.label.clone(),
        cache_capacity: cfg.cache_capacity,
        stats,
        phases,
        predictor_memory: predictor.memory_bytes(),
    };
    let online_stats = driver.map(OnlineDriver::finish);
    (sim, online_stats)
}

/// The miner side of an online run: owns the co-driven [`ShardedMiner`]
/// and the refresh cadence. Shared (crate-public via the functions above)
/// logic so `farmer-mds::replay_online` behaves identically.
pub struct OnlineDriver {
    miner: ShardedMiner,
    cfg: OnlineConfig,
    refreshes: u64,
    /// Refreshes swapped into the predictor (`online.refreshes`).
    obs_refreshes: Counter,
    /// Wall-clock nanoseconds per refresh — consistent-cut snapshot plus
    /// merge, as seen by the serving loop (`online.refresh_ns`).
    obs_refresh_ns: Histogram,
    /// Snapshots published into a serving-tier cell (`online.publishes`).
    obs_publishes: Counter,
}

impl OnlineDriver {
    /// Spawn the miner and install an empty initial source, switching the
    /// predictor to external serving from event 0.
    pub fn start(predictor: &mut dyn Predictor, online: &OnlineConfig) -> OnlineDriver {
        OnlineDriver::start_instrumented(predictor, online, &Registry::disabled())
    }

    /// [`OnlineDriver::start`] with the refresh cadence and the co-driven
    /// miner registered under the `online.*` / `stream.*` scopes of `reg`.
    pub fn start_instrumented(
        predictor: &mut dyn Predictor,
        online: &OnlineConfig,
        reg: &Registry,
    ) -> OnlineDriver {
        let driver = OnlineDriver::spawn_instrumented(online, reg);
        assert!(
            predictor.refresh_source(OnlineDriver::initial_source(), 0),
            "online simulation requires a predictor that accepts external \
             correlation sources (Predictor::refresh_source)"
        );
        driver
    }

    /// Spawn the miner alone. The caller owns installing
    /// [`OnlineDriver::initial_source`] into its predictor (used by
    /// `farmer-mds::replay_online`, where the predictor lives inside the
    /// MDS server).
    pub fn spawn(online: &OnlineConfig) -> OnlineDriver {
        OnlineDriver::spawn_instrumented(online, &Registry::disabled())
    }

    /// [`OnlineDriver::spawn`] with observability: refresh metrics under
    /// `online.*`, shard-fleet metrics under `stream.*` of `reg`.
    pub fn spawn_instrumented(online: &OnlineConfig, reg: &Registry) -> OnlineDriver {
        assert!(
            online.refresh_interval > 0,
            "online refresh_interval must be positive"
        );
        let scoped = reg.scope("online");
        OnlineDriver {
            miner: ShardedMiner::spawn_instrumented(online.stream.clone(), reg),
            cfg: online.clone(),
            refreshes: 0,
            obs_refreshes: scoped.counter("refreshes"),
            obs_refresh_ns: scoped.histogram("refresh_ns"),
            obs_publishes: scoped.counter("publishes"),
        }
    }

    /// The empty source every online run starts serving from (cold model:
    /// adaptation is measured from nothing, not hidden by self-mining).
    pub fn initial_source() -> Box<dyn farmer_core::CorrelationSource + Send> {
        Box::new(CorrelatorTable::new())
    }

    /// At a refresh boundary, snapshot the miner — a consistent cut of
    /// all events routed so far — and return it (with its stream
    /// position) for the caller to install; `None` between boundaries.
    pub fn snapshot_due(
        &mut self,
        i: usize,
    ) -> Option<(Box<dyn farmer_core::CorrelationSource + Send>, u64)> {
        if !self.cfg.refresh_due(i) {
            return None;
        }
        let _span = self.obs_refresh_ns.span();
        let events = self.miner.events_routed();
        let snap = self.miner.snapshot();
        self.refreshes += 1;
        self.obs_refreshes.inc();
        Some((Box::new(snap), events))
    }

    /// [`OnlineDriver::snapshot_due`] + install: the one-liner for callers
    /// holding the predictor directly.
    pub fn maybe_refresh(&mut self, i: usize, predictor: &mut dyn Predictor) {
        if let Some((source, events)) = self.snapshot_due(i) {
            predictor.refresh_source(source, events);
        }
    }

    /// The publication flavour of [`OnlineDriver::maybe_refresh`]: at a
    /// refresh boundary, publish a consistent cut into `cell` (the
    /// serving tier's epoch-swapped publication point) instead of handing
    /// a boxed source to one predictor. Readers registered on the cell —
    /// [`crate::FpaPredictor::refresh_from_cell`] pollers included — pick
    /// it up wait-free. Returns the new epoch at boundaries.
    pub fn maybe_publish(&mut self, i: usize, cell: &farmer_stream::SnapshotCell) -> Option<u64> {
        if !self.cfg.refresh_due(i) {
            return None;
        }
        let _span = self.obs_refresh_ns.span();
        let epoch = self.miner.publish_into(cell);
        self.refreshes += 1;
        self.obs_refreshes.inc();
        self.obs_publishes.inc();
        Some(epoch)
    }

    /// Route one event to the miner under the matrix mining policy:
    /// unlinks are forgotten, metadata demands observed, `Close` ignored.
    pub fn route(&mut self, trace: &Trace, event: &farmer_trace::TraceEvent) {
        if event.op == Op::Unlink {
            self.miner.route_forget(event.file);
        } else if event.op.is_metadata_demand() {
            self.miner.route_event(trace, event);
        }
    }

    /// Take the end-of-run snapshot (for state accounting) and return the
    /// run's miner-side counters.
    pub fn finish(mut self) -> OnlineRunStats {
        let end = self.miner.snapshot();
        OnlineRunStats {
            refreshes: self.refreshes,
            tracked_files: end.tracked_files,
            miner_evictions: end.evictions,
            miner_state_bytes: end.state_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{LastSuccessor, LruOnly};
    use crate::fpa::FpaPredictor;
    use crate::nexus::NexusPredictor;
    use farmer_trace::WorkloadSpec;

    #[test]
    fn lru_only_issues_no_prefetches() {
        let trace = WorkloadSpec::ins().scaled(0.05).generate();
        let r = simulate(&trace, &mut LruOnly, SimConfig::default());
        assert_eq!(r.stats.prefetches_issued, 0);
        assert!(r.stats.demand_accesses > 0);
        assert!(r.hit_ratio() > 0.0, "INS has re-reference locality");
    }

    #[test]
    fn prefetchers_beat_plain_lru_on_regular_trace() {
        let trace = WorkloadSpec::ins().scaled(0.2).generate();
        let cfg = SimConfig::for_family(trace.family);
        let lru = simulate(&trace, &mut LruOnly, cfg);
        let ls = simulate(&trace, &mut LastSuccessor::default(), cfg);
        let nexus = simulate(&trace, &mut NexusPredictor::paper_default(), cfg);
        let fpa = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg);
        assert!(
            nexus.hit_ratio() > lru.hit_ratio(),
            "Nexus {:.3} should beat LRU {:.3}",
            nexus.hit_ratio(),
            lru.hit_ratio()
        );
        assert!(
            fpa.hit_ratio() > lru.hit_ratio(),
            "FPA {:.3} should beat LRU {:.3}",
            fpa.hit_ratio(),
            lru.hit_ratio()
        );
        // LS prefetches a single candidate; it should be roughly neutral or
        // better (small pollution deficits are possible on noisy streams).
        assert!(ls.hit_ratio() >= lru.hit_ratio() - 0.02);
    }

    #[test]
    fn fpa_more_accurate_than_nexus_on_hp() {
        // Table 3's shape: FARMER's accuracy clearly above Nexus's.
        let trace = WorkloadSpec::hp().scaled(0.3).generate();
        let cfg = SimConfig::for_family(trace.family);
        let nexus = simulate(&trace, &mut NexusPredictor::paper_default(), cfg);
        let fpa = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg);
        assert!(
            fpa.prefetch_accuracy() > nexus.prefetch_accuracy(),
            "FPA acc {:.3} must exceed Nexus acc {:.3}",
            fpa.prefetch_accuracy(),
            nexus.prefetch_accuracy()
        );
    }

    #[test]
    fn prefetch_limit_caps_insertions() {
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let mut cfg = SimConfig::for_family(trace.family);
        cfg.prefetch_limit = 0;
        let r = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg);
        assert_eq!(r.stats.prefetches_issued, 0);
    }

    #[test]
    fn phase_deltas_sum_to_totals() {
        let trace = WorkloadSpec::ins().scaled(0.1).generate();
        let cfg = SimConfig::for_family(trace.family).with_phases(4);
        let r = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg);
        assert_eq!(r.phases.len(), 4);
        let mut sum = crate::cache::CacheStats::default();
        for p in &r.phases {
            sum.demand_accesses += p.demand_accesses;
            sum.hits += p.hits;
            sum.prefetches_issued += p.prefetches_issued;
            sum.useful_prefetches += p.useful_prefetches;
            sum.wasted_prefetches += p.wasted_prefetches;
            sum.evictions += p.evictions;
        }
        assert_eq!(sum.demand_accesses, r.stats.demand_accesses);
        assert_eq!(sum.hits, r.stats.hits);
        assert_eq!(sum.prefetches_issued, r.stats.prefetches_issued);
        assert_eq!(sum.evictions, r.stats.evictions);
        // Single-phase runs carry no segmentation.
        let r1 = simulate(
            &trace,
            &mut FpaPredictor::for_trace(&trace),
            SimConfig::for_family(trace.family),
        );
        assert!(r1.phases.is_empty());
        assert_eq!(r1.stats, r.stats, "segmentation must not change the run");
    }

    #[test]
    fn phase_count_normalized_to_trace_length() {
        // num_phases > len: exactly min(num_phases, len) segments.
        let full = WorkloadSpec::ins().scaled(0.05).generate();
        let mut tiny = full.clone();
        tiny.events.truncate(2);
        let cfg = SimConfig::for_family(tiny.family).with_phases(5);
        let r = simulate(&tiny, &mut LruOnly, cfg);
        assert_eq!(r.phases.len(), 2, "2-event trace reports 2 phases");
        // Empty trace: one all-zero segment.
        let mut empty = full.clone();
        empty.events.clear();
        let r = simulate(&empty, &mut LruOnly, cfg);
        assert_eq!(r.phases.len(), 1);
        assert_eq!(r.phases[0], crate::cache::CacheStats::default());
        // len not divisible by num_phases still yields the requested
        // count (the old ceil-stride rule dropped a segment here).
        let mut five = full.clone();
        five.events.truncate(5);
        let cfg4 = SimConfig::for_family(five.family).with_phases(4);
        let r = simulate(&five, &mut LruOnly, cfg4);
        assert_eq!(r.phases.len(), 4, "5 events / 4 phases must report 4");
        let total: u64 = r.phases.iter().map(|p| p.demand_accesses).sum();
        assert_eq!(total, r.stats.demand_accesses);
    }

    #[test]
    fn online_refresh_follows_the_stream() {
        let trace = WorkloadSpec::hp().scaled(0.1).generate();
        let cfg = SimConfig::for_family(trace.family).with_phases(4);
        let stream = StreamConfig::default().with_node_cap(1 << 20);
        let online = OnlineConfig::every(stream, (trace.len() / 16).max(1));
        let mut fpa = FpaPredictor::for_trace(&trace);
        let r = simulate_online(&trace, &mut fpa, cfg, &online);
        assert_eq!(r.refreshes, 15, "one refresh per interior boundary");
        assert_eq!(r.sim.phases.len(), 4);
        assert!(r.sim.stats.prefetches_issued > 0, "online FPA prefetches");
        assert_eq!(r.miner_evictions, 0, "uncapped miner never evicts");
        assert!(r.miner_state_bytes > 0);
        // Serving is external for the whole run: nothing self-mined.
        assert_eq!(fpa.farmer().observed(), 0);
        assert!(fpa.external().is_some());
    }

    #[test]
    fn online_converges_toward_offline_snapshot_quality() {
        // On a stationary trace, frequently-refreshed online serving must
        // land within a modest gap of the mine-everything-then-serve mode
        // (which sees the future), and beat serving a frozen early
        // snapshot for the whole run.
        let trace = WorkloadSpec::hp().scaled(0.2).generate();
        let cfg = SimConfig::for_family(trace.family);
        let stream = StreamConfig::default().with_node_cap(1 << 20);

        let mut offline_fpa = FpaPredictor::for_trace(&trace);
        let offline = simulate(&trace, &mut offline_fpa, cfg);

        let online_cfg = OnlineConfig::every(stream.clone(), (trace.len() / 64).max(1));
        let mut fpa = FpaPredictor::for_trace(&trace);
        let online = simulate_online(&trace, &mut fpa, cfg, &online_cfg);

        let frozen_cfg = OnlineConfig::frozen_at(stream, (trace.len() / 8).max(1));
        let mut fpa = FpaPredictor::for_trace(&trace);
        let frozen = simulate_online(&trace, &mut fpa, cfg, &frozen_cfg);
        assert_eq!(frozen.refreshes, 1, "frozen mode refreshes exactly once");

        assert!(
            offline.hit_ratio() - online.sim.hit_ratio() < 0.10,
            "online {:.3} too far below offline {:.3}",
            online.sim.hit_ratio(),
            offline.hit_ratio()
        );
        assert!(
            online.sim.hit_ratio() > frozen.sim.hit_ratio(),
            "refreshing {:.3} must beat frozen-snapshot serving {:.3}",
            online.sim.hit_ratio(),
            frozen.sim.hit_ratio()
        );
    }

    #[test]
    fn capped_online_miner_reports_evictions() {
        let trace = WorkloadSpec::hp().scaled(0.1).generate();
        let cfg = SimConfig::for_family(trace.family);
        let stream = StreamConfig::default().with_node_cap(128);
        let online = OnlineConfig::every(stream, (trace.len() / 8).max(1));
        let mut fpa = FpaPredictor::for_trace(&trace);
        let r = simulate_online(&trace, &mut fpa, cfg, &online);
        assert!(r.miner_evictions > 0, "cap must force eviction");
        assert!(r.tracked_files <= 128);
    }

    #[test]
    #[should_panic(expected = "accepts external")]
    fn online_rejects_self_mining_predictors() {
        let trace = WorkloadSpec::ins().scaled(0.01).generate();
        let online = OnlineConfig::every(StreamConfig::default(), 100);
        let _ = simulate_online(&trace, &mut LruOnly, SimConfig::default(), &online);
    }

    #[test]
    fn instrumented_run_streams_cache_and_online_metrics() {
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let cfg = SimConfig::for_family(trace.family);
        let stream = StreamConfig::default().with_node_cap(1 << 20);
        let online = OnlineConfig::every(stream, (trace.len() / 8).max(1));
        let reg = farmer_obs::Registry::enabled();
        let mut fpa = FpaPredictor::for_trace(&trace);
        fpa.instrument(&reg);
        let r = simulate_online_instrumented(&trace, &mut fpa, cfg, &online, &reg);
        let snap = reg.snapshot();
        // Cache counters mirror the report's end-of-run stats exactly.
        assert_eq!(
            snap.counter("cache.demand_accesses"),
            Some(r.sim.stats.demand_accesses)
        );
        assert_eq!(snap.counter("cache.hits"), Some(r.sim.stats.hits));
        assert_eq!(
            snap.counter("cache.prefetches_issued"),
            Some(r.sim.stats.prefetches_issued)
        );
        assert_eq!(snap.counter("cache.evictions"), Some(r.sim.stats.evictions));
        // Online refresh cadence and the co-driven miner share the registry.
        assert_eq!(snap.counter("online.refreshes"), Some(r.refreshes));
        let refresh_ns = snap.histogram("online.refresh_ns").expect("refresh spans");
        assert_eq!(refresh_ns.count, r.refreshes);
        // The predictor counts the initial empty source too.
        assert_eq!(snap.counter("fpa.refreshes"), Some(r.refreshes + 1));
        let topk = snap.histogram("fpa.topk_ns").expect("topk spans");
        assert_eq!(topk.count, r.sim.stats.demand_accesses);
        assert_eq!(
            snap.counter("stream.events_mined"),
            Some(r.sim.stats.demand_accesses),
            "every demand event routed to the miner is mined once"
        );
        // Instrumentation must not change the simulation outcome.
        let mut plain = FpaPredictor::for_trace(&trace);
        let stream = StreamConfig::default().with_node_cap(1 << 20);
        let online = OnlineConfig::every(stream, (trace.len() / 8).max(1));
        let baseline = simulate_online(&trace, &mut plain, cfg, &online);
        assert_eq!(baseline.sim.stats, r.sim.stats);
    }

    #[test]
    fn maybe_publish_feeds_cell_readers_at_boundaries() {
        use farmer_stream::SnapshotCell;
        use std::sync::Arc;

        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let interval = (trace.len() / 4).max(1);
        let stream = StreamConfig::default().with_shards(2);
        let reg = Registry::enabled();
        let mut driver =
            OnlineDriver::spawn_instrumented(&OnlineConfig::every(stream, interval), &reg);
        let cell = Arc::new(SnapshotCell::new());
        let mut fpa = FpaPredictor::for_trace(&trace);
        let mut reader = cell.reader();
        let mut installs = 0u64;
        let mut epochs = Vec::new();
        for (i, e) in trace.events.iter().enumerate() {
            driver.route(&trace, e);
            if let Some(epoch) = driver.maybe_publish(i, &cell) {
                epochs.push(epoch);
            }
            if fpa.refresh_from_cell(&mut reader) {
                installs += 1;
            }
        }
        assert!(!epochs.is_empty(), "no boundary published");
        assert!(epochs.windows(2).all(|w| w[1] == w[0] + 1));
        assert_eq!(cell.epoch(), *epochs.last().unwrap());
        // One install for the initial epoch-0 snapshot, one per pickup.
        assert_eq!(installs, epochs.len() as u64 + 1);
        let r = driver.finish();
        assert_eq!(r.refreshes, epochs.len() as u64);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("online.publishes"), Some(epochs.len() as u64));
        assert_eq!(snap.counter("online.refreshes"), Some(epochs.len() as u64));
        assert_eq!(
            snap.histogram("online.refresh_ns").unwrap().count,
            epochs.len() as u64
        );
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let trace = WorkloadSpec::res().scaled(0.05).generate();
        let cfg = SimConfig::for_family(trace.family);
        let a = simulate(&trace, &mut NexusPredictor::paper_default(), cfg);
        let b = simulate(&trace, &mut NexusPredictor::paper_default(), cfg);
        assert_eq!(a.stats, b.stats);
    }
}

//! Trace-driven cache simulation.
//!
//! Replays a trace's metadata demand stream through a [`MetadataCache`]
//! fronted by a [`Predictor`]:
//!
//! 1. each metadata-demand event probes the cache (hit/miss accounting),
//! 2. on a miss the metadata is brought in as a demand entry,
//! 3. the predictor observes the access and proposes candidates,
//! 4. candidates are staged as prefetch entries, up to the per-access
//!    prefetch limit.
//!
//! This reproduces the measurement loop behind the paper's Figure 3
//! (hit ratio vs `max_strength` × weight), Figure 7 (hit-ratio comparison),
//! Table 3 (accuracy) and Table 5 (attribute combinations). Response-time
//! measurement needs queueing and service times and lives in `farmer-mds`.

use farmer_trace::{Trace, TraceFamily};

use crate::cache::MetadataCache;
use crate::metrics::SimReport;
use crate::predictor::Predictor;

/// Parameters of one simulation run.
#[derive(Debug, Clone, Copy)]
pub struct SimConfig {
    /// Metadata cache capacity in entries.
    pub cache_capacity: usize,
    /// Maximum prefetch insertions per access (group size ceiling applied
    /// after the predictor's own limit).
    pub prefetch_limit: usize,
    /// Number of equal event-index segments the run is additionally
    /// reported over ([`SimReport::phases`]). `1` (the default) disables
    /// segmentation; phase-shifting scenarios use ≥ 2 so adaptation and
    /// post-shift recovery are visible instead of averaged away.
    pub num_phases: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            cache_capacity: 512,
            prefetch_limit: 4,
            num_phases: 1,
        }
    }
}

impl SimConfig {
    /// Per-family cache sizing used throughout the experiments: the cache
    /// is a small fraction of each trace's namespace, scaled so the paper's
    /// relative hit-ratio bands are reachable (INS high, RES low).
    pub fn for_family(family: TraceFamily) -> Self {
        let cache_capacity = match family {
            TraceFamily::Llnl => 768,
            TraceFamily::Ins => 128,
            TraceFamily::Res => 128,
            TraceFamily::Hp => 256,
        };
        SimConfig {
            cache_capacity,
            ..Default::default()
        }
    }

    /// Builder-style phase-count override.
    #[must_use]
    pub fn with_phases(mut self, phases: usize) -> Self {
        assert!(phases >= 1, "num_phases must be >= 1");
        self.num_phases = phases;
        self
    }
}

/// Run one simulation: `predictor` over `trace` with `cfg`.
///
/// With `cfg.num_phases > 1` the report additionally carries per-phase
/// counter deltas: the trace's event-index range is cut into `num_phases`
/// equal segments and the cache counters are snapshotted at each boundary.
pub fn simulate(trace: &Trace, predictor: &mut dyn Predictor, cfg: SimConfig) -> SimReport {
    let mut cache = MetadataCache::new(cfg.cache_capacity);
    let phase_len = trace.len().div_ceil(cfg.num_phases.max(1)).max(1);
    let mut phases = Vec::new();
    let mut phase_mark = cache.stats();
    // One candidate buffer for the whole run: the predictor fills it in
    // place each access, so the demand loop allocates nothing per event.
    let mut candidates = Vec::new();
    for (i, event) in trace.events.iter().enumerate() {
        if cfg.num_phases > 1 && i > 0 && i % phase_len == 0 {
            let now = cache.stats();
            phases.push(now.delta(&phase_mark));
            phase_mark = now;
        }
        if !event.op.is_metadata_demand() {
            continue;
        }
        let hit = cache.access(event.file);
        if !hit {
            cache.insert_demand(event.file);
        }
        predictor.on_access_into(trace, event, &mut candidates);
        for &file in candidates.iter().take(cfg.prefetch_limit) {
            if file != event.file {
                cache.insert_prefetch(file);
            }
        }
    }
    let stats = cache.stats();
    if cfg.num_phases > 1 {
        phases.push(stats.delta(&phase_mark));
    }
    SimReport {
        predictor: predictor.name().to_string(),
        trace: trace.label.clone(),
        cache_capacity: cfg.cache_capacity,
        stats,
        phases,
        predictor_memory: predictor.memory_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines::{LastSuccessor, LruOnly};
    use crate::fpa::FpaPredictor;
    use crate::nexus::NexusPredictor;
    use farmer_trace::WorkloadSpec;

    #[test]
    fn lru_only_issues_no_prefetches() {
        let trace = WorkloadSpec::ins().scaled(0.05).generate();
        let r = simulate(&trace, &mut LruOnly, SimConfig::default());
        assert_eq!(r.stats.prefetches_issued, 0);
        assert!(r.stats.demand_accesses > 0);
        assert!(r.hit_ratio() > 0.0, "INS has re-reference locality");
    }

    #[test]
    fn prefetchers_beat_plain_lru_on_regular_trace() {
        let trace = WorkloadSpec::ins().scaled(0.2).generate();
        let cfg = SimConfig::for_family(trace.family);
        let lru = simulate(&trace, &mut LruOnly, cfg);
        let ls = simulate(&trace, &mut LastSuccessor::default(), cfg);
        let nexus = simulate(&trace, &mut NexusPredictor::paper_default(), cfg);
        let fpa = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg);
        assert!(
            nexus.hit_ratio() > lru.hit_ratio(),
            "Nexus {:.3} should beat LRU {:.3}",
            nexus.hit_ratio(),
            lru.hit_ratio()
        );
        assert!(
            fpa.hit_ratio() > lru.hit_ratio(),
            "FPA {:.3} should beat LRU {:.3}",
            fpa.hit_ratio(),
            lru.hit_ratio()
        );
        // LS prefetches a single candidate; it should be roughly neutral or
        // better (small pollution deficits are possible on noisy streams).
        assert!(ls.hit_ratio() >= lru.hit_ratio() - 0.02);
    }

    #[test]
    fn fpa_more_accurate_than_nexus_on_hp() {
        // Table 3's shape: FARMER's accuracy clearly above Nexus's.
        let trace = WorkloadSpec::hp().scaled(0.3).generate();
        let cfg = SimConfig::for_family(trace.family);
        let nexus = simulate(&trace, &mut NexusPredictor::paper_default(), cfg);
        let fpa = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg);
        assert!(
            fpa.prefetch_accuracy() > nexus.prefetch_accuracy(),
            "FPA acc {:.3} must exceed Nexus acc {:.3}",
            fpa.prefetch_accuracy(),
            nexus.prefetch_accuracy()
        );
    }

    #[test]
    fn prefetch_limit_caps_insertions() {
        let trace = WorkloadSpec::hp().scaled(0.05).generate();
        let mut cfg = SimConfig::for_family(trace.family);
        cfg.prefetch_limit = 0;
        let r = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg);
        assert_eq!(r.stats.prefetches_issued, 0);
    }

    #[test]
    fn phase_deltas_sum_to_totals() {
        let trace = WorkloadSpec::ins().scaled(0.1).generate();
        let cfg = SimConfig::for_family(trace.family).with_phases(4);
        let r = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg);
        assert_eq!(r.phases.len(), 4);
        let mut sum = crate::cache::CacheStats::default();
        for p in &r.phases {
            sum.demand_accesses += p.demand_accesses;
            sum.hits += p.hits;
            sum.prefetches_issued += p.prefetches_issued;
            sum.useful_prefetches += p.useful_prefetches;
            sum.wasted_prefetches += p.wasted_prefetches;
            sum.evictions += p.evictions;
        }
        assert_eq!(sum.demand_accesses, r.stats.demand_accesses);
        assert_eq!(sum.hits, r.stats.hits);
        assert_eq!(sum.prefetches_issued, r.stats.prefetches_issued);
        assert_eq!(sum.evictions, r.stats.evictions);
        // Single-phase runs carry no segmentation.
        let r1 = simulate(
            &trace,
            &mut FpaPredictor::for_trace(&trace),
            SimConfig::for_family(trace.family),
        );
        assert!(r1.phases.is_empty());
        assert_eq!(r1.stats, r.stats, "segmentation must not change the run");
    }

    #[test]
    fn deterministic_given_same_inputs() {
        let trace = WorkloadSpec::res().scaled(0.05).generate();
        let cfg = SimConfig::for_family(trace.family);
        let a = simulate(&trace, &mut NexusPredictor::paper_default(), cfg);
        let b = simulate(&trace, &mut NexusPredictor::paper_default(), cfg);
        assert_eq!(a.stats, b.stats);
    }
}

//! Simulation reports shared by the bench harness and the MDS simulator.

use crate::cache::CacheStats;

/// The outcome of one trace-driven cache simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Predictor display name ("FARMER", "Nexus", "LRU", …).
    pub predictor: String,
    /// Trace label the run used.
    pub trace: String,
    /// Cache capacity in entries.
    pub cache_capacity: usize,
    /// Raw cache counters.
    pub stats: CacheStats,
    /// Per-phase counter deltas when the run was configured with
    /// `num_phases > 1` (see [`crate::sim::SimConfig`]); empty otherwise.
    /// The deltas sum to `stats`.
    pub phases: Vec<CacheStats>,
    /// Predictor state size at the end of the run, in bytes.
    pub predictor_memory: usize,
}

impl SimReport {
    /// Demand hit ratio.
    pub fn hit_ratio(&self) -> f64 {
        self.stats.hit_ratio()
    }

    /// Prefetching accuracy.
    pub fn prefetch_accuracy(&self) -> f64 {
        self.stats.prefetch_accuracy()
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "{:<10} {:<12} hit={:>6.2}% acc={:>6.2}% prefetches={} mem={}KB",
            self.predictor,
            self.trace.split('(').next().unwrap_or(&self.trace),
            100.0 * self.hit_ratio(),
            100.0 * self.prefetch_accuracy(),
            self.stats.prefetches_issued,
            self.predictor_memory / 1024,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_contains_key_numbers() {
        let r = SimReport {
            predictor: "FARMER".into(),
            trace: "HP(synthetic)".into(),
            cache_capacity: 512,
            stats: CacheStats {
                demand_accesses: 100,
                hits: 60,
                prefetch_hits: 10,
                prefetches_issued: 20,
                useful_prefetches: 10,
                wasted_prefetches: 5,
                evictions: 40,
            },
            phases: Vec::new(),
            predictor_memory: 2048,
        };
        let s = r.summary();
        assert!(s.contains("FARMER"));
        assert!(s.contains("60.00%"));
        assert!(s.contains("50.00%"));
        assert!((r.hit_ratio() - 0.6).abs() < 1e-12);
        assert!((r.prefetch_accuracy() - 0.5).abs() < 1e-12);
    }
}

//! The evaluation reference-model matrix: every scenario × miner mode ×
//! predictor cell, end to end (trace → miner → `CorrelationSource` →
//! predictor → cache sim → MDS replay), emitted as one schema-versioned
//! JSON record and optionally verified against the baked-in reference
//! bands.
//!
//! ```text
//! cargo run --release -p farmer-bench --bin eval_matrix               # full matrix
//! cargo run --release -p farmer-bench --bin eval_matrix -- --quick    # CI smoke size
//! cargo run --release -p farmer-bench --bin eval_matrix -- --quick --check
//! cargo run --release -p farmer-bench --bin eval_matrix -- --calibrate 2>bands.rs
//! ```
//!
//! * `--check` — verify every cell against `refmodel`'s bands for the
//!   active profile and exit non-zero listing every violation. Requires
//!   the profile's calibrated scale (no positional override).
//! * `--calibrate` — after the run, emit the refreshed band tables (Rust
//!   source, with standard margins applied) on **stderr**: the cell table
//!   and the `failure`-family durability table; stdout stays the JSON
//!   record.
//! * `--obs` — additionally print the instrumented demo legs' metric
//!   registries (the same dumps embedded as the record's top-level `obs`
//!   and `obs_recovery` objects) on stderr.
//!
//! Batch-vs-sharded snapshot parity and cross-mode FPA quality equality
//! are asserted unconditionally — with or without `--check`, a run that
//! breaks a cross-mode invariant panics instead of reporting.

use farmer_bench::evalmatrix::{
    build_scenario, miner_config, run_matrix_with, Cell, MatrixReport, FPA_MODES, PHASES,
    SCENARIOS, SCHEMA_VERSION,
};
use farmer_bench::faults::FAILURE_MODES;
use farmer_bench::format::{obs_json, BenchArgs, Json};
use farmer_bench::refmodel::{self, Profile, QUICK_SCALE};
use farmer_mds::{replay_online_instrumented, ReplayConfig};
use farmer_obs::Registry;
use farmer_prefetch::{FpaPredictor, OnlineConfig};
use farmer_stream::{recover_instrumented, DurableConfig, DurableMiner, StreamConfig};
use farmer_trace::Op;

fn ms_arr(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Fixed(v, 3)).collect())
}

fn json_cell(c: &Cell, profile: Profile) -> Json {
    let mut j = Json::obj()
        .field("scenario", Json::str(c.scenario))
        .field("miner_mode", Json::str(c.mode))
        .field("predictor", Json::str(c.predictor))
        .field("hit_ratio", Json::Fixed(c.hit_ratio, 4))
        .field("prefetch_accuracy", Json::Fixed(c.prefetch_accuracy, 4))
        .field("prefetch_waste", Json::Fixed(c.prefetch_waste, 4))
        .field("avg_response_ms", Json::Fixed(c.avg_response_ms, 3))
        .field("response_p50_ms", Json::Fixed(c.response_p50_ms, 3))
        .field("response_p95_ms", Json::Fixed(c.response_p95_ms, 3))
        .field("response_p99_ms", Json::Fixed(c.response_p99_ms, 3))
        .field("events_per_sec", Json::Fixed(c.events_per_sec, 0))
        .field("memory_bytes", Json::UInt(c.memory_bytes as u64))
        .field(
            "phase_hit_ratios",
            Json::Arr(
                c.phase_hit_ratios
                    .iter()
                    .map(|&v| Json::Fixed(v, 4))
                    .collect(),
            ),
        )
        .field(
            "phase_response_ms",
            Json::Arr(
                c.phase_response_ms
                    .iter()
                    .map(|&v| Json::Fixed(v, 3))
                    .collect(),
            ),
        )
        .field("phase_p50_ms", ms_arr(&c.phase_p50_ms))
        .field("phase_p95_ms", ms_arr(&c.phase_p95_ms))
        .field("phase_p99_ms", ms_arr(&c.phase_p99_ms))
        .field("refreshes", Json::UInt(c.refreshes))
        .field("miner_evictions", Json::UInt(c.miner_evictions))
        .field("recoveries", Json::UInt(c.recoveries))
        .field("recovery_events", Json::UInt(c.recovery_events))
        .field("recovered_events", Json::UInt(c.recovered_events))
        .field("replay_fraction", Json::Fixed(c.replay_fraction, 4))
        .field("recovery_ms", Json::Fixed(c.recovery_ms, 3))
        .field("hit_ratio_dip", Json::Fixed(c.hit_ratio_dip, 4))
        .field("wal_bytes", Json::UInt(c.wal_bytes));
    if c.scenario == "failure" {
        if let Some(f) = refmodel::find_failure(profile, c.mode) {
            j = j.field(
                "failure_band",
                Json::obj()
                    .field("recoveries", Json::UInt(f.recoveries))
                    .field(
                        "recovery_events",
                        Json::Arr(vec![
                            Json::F64(f.recovery_events.lo),
                            Json::F64(f.recovery_events.hi),
                        ]),
                    )
                    .field(
                        "replay_fraction",
                        Json::Arr(vec![
                            Json::F64(f.replay_fraction.lo),
                            Json::F64(f.replay_fraction.hi),
                        ]),
                    )
                    .field(
                        "hit_ratio_dip",
                        Json::Arr(vec![
                            Json::F64(f.hit_ratio_dip.lo),
                            Json::F64(f.hit_ratio_dip.hi),
                        ]),
                    ),
            );
        }
    }
    if let Some(b) = refmodel::find(profile, c.scenario, c.mode, c.predictor) {
        j = j.field(
            "band",
            Json::obj()
                .field(
                    "hit_ratio",
                    Json::Arr(vec![Json::F64(b.hit_ratio.lo), Json::F64(b.hit_ratio.hi)]),
                )
                .field(
                    "prefetch_accuracy",
                    Json::Arr(vec![
                        Json::F64(b.prefetch_accuracy.lo),
                        Json::F64(b.prefetch_accuracy.hi),
                    ]),
                )
                .field(
                    "avg_response_ms",
                    Json::Arr(vec![
                        Json::F64(b.avg_response_ms.lo),
                        Json::F64(b.avg_response_ms.hi),
                    ]),
                )
                .field("memory_hi", Json::UInt(b.memory_hi)),
        );
    }
    j
}

/// One fully instrumented serving leg whose metric registry is embedded
/// in the record as the top-level `obs` object: the `base` scenario at a
/// small fixed scale through the online replay path, so the dump shows
/// every registry scope the pipeline exports (`stream.*`, `online.*`,
/// `fpa.*`, `cache.*`, `store.*`, `mds.*`). Quality counters in the dump
/// are deterministic; `*_ns` histograms are wall-clock and machine-
/// dependent, like `events_per_sec`.
fn obs_demo() -> farmer_obs::ObsReport {
    let trace = build_scenario("base", 0.05);
    let stream = StreamConfig::default()
        .with_farmer(miner_config(&trace))
        .with_shards(1)
        .with_node_cap(1 << 20);
    let online = OnlineConfig::every(stream, (trace.len() / 8).max(1));
    let mut rep_cfg = ReplayConfig::for_family(trace.family);
    rep_cfg.num_phases = PHASES;
    let reg = Registry::enabled();
    let _ = replay_online_instrumented(
        &trace,
        Box::new(FpaPredictor::for_trace(&trace)),
        rep_cfg,
        &online,
        &reg,
    );
    reg.snapshot()
}

/// A second instrumented demo leg covering the durability scopes the
/// serving demo cannot reach: a [`DurableMiner`] over a tiny `failure`
/// trace, checkpointing with compaction on, crashed mid-stream and
/// recovered with the registry attached, so the record's `obs_recovery`
/// dump shows the `wal.*` scope end to end — appends, syncs, checkpoints,
/// compactions (`wal.compactions`, `wal.pages_dropped`, `wal.anchor_lsn`)
/// and the checkpoint-anchored recovery counters/histogram
/// (`wal.recoveries`, `wal.recovery_replay_events`,
/// `wal.recovery_fallbacks`, `wal.recovery_ns`).
fn obs_recovery_demo() -> farmer_obs::ObsReport {
    let trace = build_scenario("failure", 0.02);
    let mut dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("target");
    dir.push("failure-cells");
    dir.push(format!("obs-demo-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create obs-demo scratch dir");
    let wal = dir.join("obs.wal");
    let stream = StreamConfig::default()
        .with_farmer(miner_config(&trace))
        .with_shards(1)
        .with_node_cap(1 << 20);
    let cfg = DurableConfig::new(stream)
        .with_checkpoint_interval((trace.len() / 4).max(1) as u64)
        .with_compaction(true);
    let reg = Registry::enabled();
    let mut miner =
        DurableMiner::create_instrumented(&wal, cfg.clone(), &reg).expect("create durable miner");
    for e in trace.events.iter().take(trace.len() * 3 / 4) {
        if e.op == Op::Unlink {
            miner.forget(e.file);
        } else if e.op.is_metadata_demand() {
            miner.ingest_event(&trace, e);
        }
    }
    miner.crash();
    let (_recovered, _report) =
        recover_instrumented(&wal, cfg, &reg).expect("recover durable miner");
    let snap = reg.snapshot();
    let _ = std::fs::remove_dir_all(&dir);
    snap
}

fn json_report(
    report: &MatrixReport,
    profile: Profile,
    scale: f64,
    obs: &farmer_obs::ObsReport,
    obs_recovery: &farmer_obs::ObsReport,
) -> Json {
    let mut j = Json::obj()
        .field("bench", Json::str("eval_matrix"))
        .field("schema_version", Json::UInt(u64::from(SCHEMA_VERSION)))
        .field("profile", Json::str(profile.name()))
        .field("scale", Json::F64(scale))
        .field("phases", Json::UInt(PHASES as u64))
        .field(
            "scenarios",
            Json::Arr(SCENARIOS.iter().map(|&s| Json::str(s)).collect()),
        )
        .field(
            "fpa_modes",
            Json::Arr(FPA_MODES.iter().map(|&m| Json::str(m)).collect()),
        )
        .field(
            "failure_modes",
            Json::Arr(FAILURE_MODES.iter().map(|&m| Json::str(m)).collect()),
        )
        .field(
            "parity",
            Json::obj()
                .field(
                    "scenarios_checked",
                    Json::UInt(report.parity_scenarios as u64),
                )
                .field("max_degree_delta", Json::F64(report.max_parity_delta)),
        );
    if let Some(a) = report.drift_adaptation {
        j = j.field(
            "adaptation",
            Json::obj()
                .field("frozen_post_shift", Json::Fixed(a.frozen_post_shift, 4))
                .field("online_post_shift", Json::Fixed(a.online_post_shift, 4)),
        );
    }
    j.field("obs", obs_json(obs))
        .field("obs_recovery", obs_json(obs_recovery))
        .field(
            "cells",
            Json::Arr(report.cells.iter().map(|c| json_cell(c, profile)).collect()),
        )
}

fn main() {
    let args = BenchArgs::parse(QUICK_SCALE);
    let profile = if args.quick {
        Profile::Quick
    } else {
        Profile::Full
    };
    if (args.check || args.calibrate) && (args.scale - profile.scale()).abs() > 1e-12 {
        eprintln!(
            "eval_matrix: --check/--calibrate require the {} profile's calibrated scale {} \
             (got {}); drop the positional scale",
            profile.name(),
            profile.scale(),
            args.scale
        );
        std::process::exit(2);
    }

    // Under --calibrate, stderr IS the deliverable (the band table the
    // module docs say to capture with `2>bands.rs`), so progress chatter
    // is suppressed to keep the captured file paste-able.
    let chatty = !args.calibrate;
    if chatty {
        eprintln!(
            "eval_matrix: {} profile, scale {}, {} scenarios x ({} FARMER miner modes + 4 self-mining predictors)",
            profile.name(),
            args.scale,
            SCENARIOS.len(),
            FPA_MODES.len()
        );
    }
    let report = run_matrix_with(args.scale, &SCENARIOS, &mut |s| {
        if chatty {
            eprintln!("eval_matrix: scenario {s}...");
        }
    });
    if chatty {
        eprintln!(
            "eval_matrix: {} cells, parity over {} scenarios (max degree delta {:e})",
            report.cells.len(),
            report.parity_scenarios,
            report.max_parity_delta
        );
    }

    let obs = obs_demo();
    let obs_recovery = obs_recovery_demo();
    if args.obs && chatty {
        eprintln!("eval_matrix: instrumented demo-leg registry:");
        eprintln!("{}", obs.render());
        eprintln!("eval_matrix: instrumented crash/recover demo registry:");
        eprintln!("{}", obs_recovery.render());
    }
    println!(
        "{}",
        json_report(&report, profile, args.scale, &obs, &obs_recovery).render()
    );

    if args.calibrate {
        eprintln!(
            "// {} profile band table (paste over the matching table in refmodel.rs):",
            profile.name()
        );
        eprintln!("{}", refmodel::calibrate(&report.cells));
        eprintln!(
            "// {} profile durability band table (paste over the matching table in refmodel.rs):",
            profile.name()
        );
        eprintln!("{}", refmodel::calibrate_failure(&report.cells));
    }
    if args.check {
        match refmodel::check(&report.cells, profile) {
            Ok(n) => eprintln!("eval_matrix: all {n} cells within reference bands"),
            Err(violations) => {
                eprintln!(
                    "eval_matrix: {} reference-model violation(s):",
                    violations.len()
                );
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
        }
    }
}

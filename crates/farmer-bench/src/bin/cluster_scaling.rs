//! Multi-MDS scaling (§4.1): response time and load balance as servers
//! are added, comparing hash and volume partitioning, with and without
//! FARMER prefetching.
//!
//! The paper names two attacks on the metadata bottleneck — multiple
//! servers for load balancing and prefetching for cache hit ratio; this
//! experiment shows they compose.

use farmer_bench::format::{ms, pct, TextTable};
use farmer_bench::scale_from_args;
use farmer_mds::{replay_cluster, ClusterConfig, Partition, ReplayConfig};
use farmer_prefetch::baselines::LruOnly;
use farmer_prefetch::FpaPredictor;
use farmer_trace::{TraceFamily, WorkloadSpec};

fn main() {
    let scale = scale_from_args();
    let trace = WorkloadSpec::hp().scaled(scale).generate();
    println!("multi-MDS scaling on {} (scale {scale})\n", trace.label);

    let mut replay = ReplayConfig::for_family(TraceFamily::Hp);
    replay.time_scale *= 0.8; // heavier (but stable) load makes scaling visible

    let mut t = TextTable::new(&[
        "servers",
        "partition",
        "predictor",
        "avg resp",
        "hit",
        "imbalance",
    ]);
    for &servers in &[1usize, 2, 4, 8] {
        for partition in [Partition::Hash, Partition::Dev] {
            let cfg = ClusterConfig {
                num_servers: servers,
                replay,
                partition,
            };
            let lru = replay_cluster(&trace, || Box::new(LruOnly), cfg);
            let fpa = replay_cluster(&trace, || Box::new(FpaPredictor::for_trace(&trace)), cfg);
            for (name, r) in [("LRU", &lru), ("FARMER", &fpa)] {
                t.row(vec![
                    servers.to_string(),
                    format!("{partition:?}"),
                    name.to_string(),
                    ms(r.avg_response_ms()),
                    pct(r.hit_ratio()),
                    format!("{:.2}", r.imbalance()),
                ]);
            }
        }
    }
    println!("{}", t.render());
    println!(
        "expected shape: response falls as servers are added. Note the\n\
         partitioning interaction: hash sharding fragments access sequences,\n\
         so FARMER's edge shrinks with shard count, while Dev (volume)\n\
         partitioning keeps correlated files on one server and preserves the\n\
         full prefetching win at the cost of load imbalance."
    );
}

//! Attribute regression (§7 future work): "multiple regression can be used
//! to learn more about association between file correlations and
//! attributes."
//!
//! Fits OLS of successor strength on attribute-match indicators for every
//! trace family and reports the per-attribute coefficients — a statistical
//! complement to the Table 5 combination sweep.

use farmer_apps::regression::{fit_trace, FEATURE_LABELS};
use farmer_bench::experiments::{farmer_config_for, trace_for};
use farmer_bench::format::TextTable;
use farmer_bench::scale_from_args;
use farmer_core::Farmer;
use farmer_trace::TraceFamily;

fn main() {
    let scale = scale_from_args();
    println!("attribute regression per trace family (scale {scale})\n");

    let mut header: Vec<String> = vec!["trace".into()];
    header.extend(FEATURE_LABELS.iter().map(|s| s.to_string()));
    header.push("R^2".into());
    header.push("samples".into());
    let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut t = TextTable::new(&hdr);

    for family in TraceFamily::ALL {
        let trace = trace_for(family, scale);
        let farmer = Farmer::mine_trace(&trace, farmer_config_for(&trace));
        let fit = fit_trace(&trace, &farmer);
        let mut row = vec![family.name().to_string()];
        row.extend(fit.coefficients.iter().map(|c| format!("{c:+.3}")));
        row.push(format!("{:.3}", fit.r_squared));
        row.push(fit.samples.to_string());
        t.row(row);
        println!(
            "  {:<5} strongest attribute: {}",
            family.name(),
            fit.strongest_attribute()
        );
    }
    println!("\n{}", t.render());
    println!(
        "reading: positive coefficients mean the attribute's match predicts\n\
         genuine co-access — the regression-based version of Table 5's finding\n\
         that attribute choice materially changes mining quality."
    );
}

//! Table 5 — cache hit ratios per attribute combination.
//!
//! Reproduces §5.2.2: different attribute combinations contribute
//! differently to correlation evaluation; the spread across combinations
//! is substantial ("range from 0.1% to about 13%").

use farmer_bench::experiments::table5;
use farmer_bench::format::{pct, TextTable};
use farmer_bench::scale_from_args;
use farmer_trace::TraceFamily;

fn main() {
    let scale = scale_from_args();
    println!("Table 5: hit ratio per attribute combination (scale {scale})\n");
    for family in [TraceFamily::Hp, TraceFamily::Ins, TraceFamily::Res] {
        let rows = table5(family, scale);
        let mut t = TextTable::new(&["combination", "hit ratio"]);
        let mut lo = f64::MAX;
        let mut hi: f64 = 0.0;
        for r in &rows {
            lo = lo.min(r.hit_ratio);
            hi = hi.max(r.hit_ratio);
            t.row(vec![r.combo.clone(), pct(r.hit_ratio)]);
        }
        println!("{} trace:", family.name());
        println!("{}", t.render());
        println!(
            "spread: {:.1} points (paper: 0.1–13 points)\n",
            100.0 * (hi - lo)
        );
    }
}

//! Table 2 — the DPA vs IPA worked example (paths of Table 1).
//!
//! This is an exact-recomputation experiment: the measured values must
//! match the paper's fractions to machine precision.

use farmer_bench::experiments::table2;
use farmer_bench::format::TextTable;
use farmer_bench::paper::TABLE2;

fn main() {
    println!("Table 2: Divided vs Integrated Path Algorithm (worked example)\n");
    let mut t = TextTable::new(&["pair", "DPA", "DPA paper", "IPA", "IPA paper"]);
    for (row, (_, dpa_ref, ipa_ref)) in table2().iter().zip(TABLE2) {
        t.row(vec![
            row.pair.to_string(),
            format!("{:.4}", row.dpa),
            format!("{dpa_ref:.4}"),
            format!("{:.4}", row.ipa),
            format!("{ipa_ref:.4}"),
        ]);
    }
    println!("{}", t.render());
    println!("expected: measured columns equal paper columns exactly.");
}

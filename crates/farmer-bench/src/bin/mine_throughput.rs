//! Mining hot-path throughput: events/sec and resident bytes for the
//! single-miner observe loop, on an IPA-path workload, under two file-id
//! regimes:
//!
//! * **dense** — the trace's native dense ids (`0..num_files`), the best
//!   case for any id-indexed storage;
//! * **sparse** — the same events with file ids spread injectively over a
//!   ~10^7 universe, the open-ended-namespace case that used to blow up
//!   the dense node spine (ROADMAP open item).
//!
//! Output is a single JSON object on stdout (the perf-trajectory record
//! checked in as `BENCH_mine.json`); the run fails on NaN or non-finite
//! throughput, which is what the CI smoke step relies on.
//!
//! ```text
//! cargo run --release -p farmer-bench --bin mine_throughput          # full
//! cargo run --release -p farmer-bench --bin mine_throughput 0.2     # scaled
//! cargo run --release -p farmer-bench --bin mine_throughput -- --quick
//! ```

use std::time::Instant;

use farmer_bench::format::{BenchArgs, Json};
use farmer_core::{Farmer, FarmerConfig, Request};
use farmer_trace::{FileId, WorkloadSpec};

/// Sparse-id universe: ids are spread injectively over `[0, ID_UNIVERSE)`.
const ID_UNIVERSE: u32 = 10_000_000;

/// Events mined per regime at scale 1.0 (cyclic replay of the HP trace).
const EVENTS_AT_FULL_SCALE: f64 = 2_000_000.0;

struct RegimeReport {
    elapsed_sec: f64,
    events_per_sec: f64,
    graph_heap_bytes: usize,
    model_bytes: usize,
    num_edges: usize,
    active_nodes: usize,
    max_file_id: u32,
}

fn mine(trace: &farmer_trace::Trace, events: usize, spread: Option<u32>) -> RegimeReport {
    // Decay + periodic pruning on, so the run exercises the aging path the
    // streaming deployment uses, not just raw edge updates.
    let cfg = FarmerConfig::default().with_decay(0.95);
    let mut farmer = Farmer::new(cfg);
    let mut max_file_id = 0u32;
    let start = Instant::now();
    for e in trace.stream().take(events) {
        let mut req = Request::from_event(&e);
        if let Some(stride) = spread {
            req.file = FileId::new(e.file.raw() * stride);
        }
        max_file_id = max_file_id.max(req.file.raw());
        farmer.observe(req, trace.path_of(e.file));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let events_per_sec = events as f64 / elapsed.max(1e-9);
    assert!(
        events_per_sec.is_finite() && events_per_sec > 0.0,
        "throughput is not a positive finite number: {events_per_sec}"
    );
    // Sanity: the mined state must be non-degenerate and NaN-free.
    assert!(farmer.graph().num_edges() > 0, "mined no edges");
    let probe = trace.events[0].file;
    let probe = spread.map_or(probe, |s| FileId::new(probe.raw() * s));
    for c in farmer.correlators_with_threshold(probe, 0.0).iter() {
        assert!(c.degree.is_finite(), "NaN/inf degree for {}", c.file);
    }
    RegimeReport {
        elapsed_sec: elapsed,
        events_per_sec,
        graph_heap_bytes: farmer.graph().heap_bytes(),
        model_bytes: farmer.memory_bytes(),
        num_edges: farmer.graph().num_edges(),
        active_nodes: farmer.graph().active_nodes(),
        max_file_id,
    }
}

fn json_regime(r: &RegimeReport) -> Json {
    Json::obj()
        .field("events_per_sec", Json::Fixed(r.events_per_sec, 0))
        .field("graph_heap_bytes", Json::UInt(r.graph_heap_bytes as u64))
        .field("model_bytes", Json::UInt(r.model_bytes as u64))
        .field("num_edges", Json::UInt(r.num_edges as u64))
        .field("active_nodes", Json::UInt(r.active_nodes as u64))
        .field("max_file_id", Json::UInt(u64::from(r.max_file_id)))
}

fn main() {
    let args = BenchArgs::parse(0.05);
    let events = ((EVENTS_AT_FULL_SCALE * args.scale) as usize).max(10_000);

    let trace = WorkloadSpec::hp().scaled(0.5).generate();
    // Injective spread: every dense id maps to its own slot of a ~10^7
    // universe, so the sparse run mines the *same* correlations as the
    // dense one — only the id magnitudes change.
    let stride = (ID_UNIVERSE / trace.num_files().max(1) as u32).max(1);
    eprintln!(
        "mine_throughput: {events} events ({}, {} files, sparse stride {stride})",
        trace.label,
        trace.num_files()
    );

    let dense = mine(&trace, events, None);
    let sparse = mine(&trace, events, Some(stride));

    // The sparse run mines identical structure; resident memory must not
    // scale with the id universe once node storage is id-sparse.
    let mem_ratio = sparse.graph_heap_bytes as f64 / dense.graph_heap_bytes.max(1) as f64;
    assert!(mem_ratio.is_finite(), "memory ratio is not finite");
    // Headline: throughput over the whole workload (both id regimes) —
    // the number that collapses when either regime degrades.
    let overall = (2 * events) as f64 / (dense.elapsed_sec + sparse.elapsed_sec);
    assert!(overall.is_finite() && overall > 0.0, "overall not finite");

    let record = Json::obj()
        .field("bench", Json::str("mine_throughput"))
        .field("workload", Json::str(&trace.label))
        .field("events", Json::UInt(events as u64))
        .field("sparse_id_universe", Json::UInt(u64::from(ID_UNIVERSE)))
        .field("overall_events_per_sec", Json::Fixed(overall, 0))
        .field("dense", json_regime(&dense))
        .field("sparse", json_regime(&sparse))
        .field("sparse_over_dense_heap", Json::Fixed(mem_ratio, 3));
    println!("{}", record.render());
}

//! Mining hot-path throughput: events/sec and resident bytes for the
//! single-miner observe loop, on an IPA-path workload, under two file-id
//! regimes:
//!
//! * **dense** — the trace's native dense ids (`0..num_files`), the best
//!   case for any id-indexed storage;
//! * **sparse** — the same events with file ids spread injectively over a
//!   ~10^7 universe, the open-ended-namespace case that used to blow up
//!   the dense node spine (ROADMAP open item).
//!
//! Output is a single JSON object on stdout (the perf-trajectory record
//! checked in as `BENCH_mine.json`); the run fails on NaN or non-finite
//! throughput, which is what the CI smoke step relies on.
//!
//! The record also carries the **observability-overhead leg**: the dense
//! regime re-run twice through the same loop instrumented with a
//! `farmer-obs` per-event counter and a per-chunk latency span — once
//! against a disabled registry (no-op handles) and once against an
//! enabled one. Both overheads are *measured* against the uninstrumented
//! baseline, and the run asserts the enabled-registry leg stays within
//! [`MAX_OBS_OVERHEAD`] of it — the CI-gated "zero-overhead" number.
//!
//! ```text
//! cargo run --release -p farmer-bench --bin mine_throughput          # full
//! cargo run --release -p farmer-bench --bin mine_throughput 0.2     # scaled
//! cargo run --release -p farmer-bench --bin mine_throughput -- --quick
//! cargo run --release -p farmer-bench --bin mine_throughput -- --obs
//! ```

use std::time::Instant;

use farmer_bench::format::{BenchArgs, Json};
use farmer_core::{Farmer, FarmerConfig, Request};
use farmer_obs::Registry;
use farmer_trace::{FileId, WorkloadSpec};

/// Version of the `BENCH_mine.json` record layout. Bump on any field
/// addition, removal or rename; CI greps it against the checked-in
/// record so a stale regeneration fails fast.
///
/// v1: first versioned layout — the dense/sparse regime pair, the
/// observability-overhead leg, and this `schema_version` field.
const MINE_SCHEMA_VERSION: u32 = 1;

/// Sparse-id universe: ids are spread injectively over `[0, ID_UNIVERSE)`.
const ID_UNIVERSE: u32 = 10_000_000;

/// Events mined per regime at scale 1.0 (cyclic replay of the HP trace).
const EVENTS_AT_FULL_SCALE: f64 = 2_000_000.0;

/// Largest tolerated relative slowdown of the enabled-registry mining leg
/// against the uninstrumented baseline (5 %). Relaxed-atomic counters and
/// one span per [`OBS_CHUNK`] events cost well under 1 % in practice; the
/// margin absorbs shared-runner timing noise without letting a hot-path
/// regression (e.g. a per-event syscall) through.
const MAX_OBS_OVERHEAD: f64 = 0.05;

/// Events per latency span of the instrumented leg — the same
/// batch-granularity the streaming pipeline instruments at.
const OBS_CHUNK: usize = 4096;

struct RegimeReport {
    elapsed_sec: f64,
    events_per_sec: f64,
    graph_heap_bytes: usize,
    model_bytes: usize,
    num_edges: usize,
    active_nodes: usize,
    max_file_id: u32,
}

fn mine(trace: &farmer_trace::Trace, events: usize, spread: Option<u32>) -> RegimeReport {
    // Decay + periodic pruning on, so the run exercises the aging path the
    // streaming deployment uses, not just raw edge updates.
    let cfg = FarmerConfig::default().with_decay(0.95);
    let mut farmer = Farmer::new(cfg);
    let mut max_file_id = 0u32;
    let start = Instant::now();
    for e in trace.stream().take(events) {
        let mut req = Request::from_event(&e);
        if let Some(stride) = spread {
            req.file = FileId::new(e.file.raw() * stride);
        }
        max_file_id = max_file_id.max(req.file.raw());
        farmer.observe(req, trace.path_of(e.file));
    }
    let elapsed = start.elapsed().as_secs_f64();
    let events_per_sec = events as f64 / elapsed.max(1e-9);
    assert!(
        events_per_sec.is_finite() && events_per_sec > 0.0,
        "throughput is not a positive finite number: {events_per_sec}"
    );
    // Sanity: the mined state must be non-degenerate and NaN-free.
    assert!(farmer.graph().num_edges() > 0, "mined no edges");
    let probe = trace.events[0].file;
    let probe = spread.map_or(probe, |s| FileId::new(probe.raw() * s));
    for c in farmer.correlators_with_threshold(probe, 0.0).iter() {
        assert!(c.degree.is_finite(), "NaN/inf degree for {}", c.file);
    }
    RegimeReport {
        elapsed_sec: elapsed,
        events_per_sec,
        graph_heap_bytes: farmer.graph().heap_bytes(),
        model_bytes: farmer.memory_bytes(),
        num_edges: farmer.graph().num_edges(),
        active_nodes: farmer.graph().active_nodes(),
        max_file_id,
    }
}

/// The dense mining loop with `farmer-obs` instrumentation: a per-event
/// counter and a latency span per [`OBS_CHUNK`] events. Returns events/s.
/// Run against [`Registry::disabled`] this measures the no-op-handle
/// cost; against [`Registry::enabled`], the live-registry cost.
fn mine_obs(trace: &farmer_trace::Trace, events: usize, reg: &Registry) -> f64 {
    let scoped = reg.scope("mine");
    let events_mined = scoped.counter("events");
    let chunk_ns = scoped.histogram("chunk_ns");
    let cfg = FarmerConfig::default().with_decay(0.95);
    let mut farmer = Farmer::new(cfg);
    let start = Instant::now();
    let mut span = chunk_ns.span();
    let mut in_chunk = 0usize;
    for e in trace.stream().take(events) {
        let req = Request::from_event(&e);
        farmer.observe(req, trace.path_of(e.file));
        events_mined.inc();
        in_chunk += 1;
        if in_chunk == OBS_CHUNK {
            span.finish();
            span = chunk_ns.span();
            in_chunk = 0;
        }
    }
    drop(span);
    let rate = events as f64 / start.elapsed().as_secs_f64().max(1e-9);
    assert!(farmer.graph().num_edges() > 0, "obs leg mined no edges");
    rate
}

fn json_regime(r: &RegimeReport) -> Json {
    Json::obj()
        .field("events_per_sec", Json::Fixed(r.events_per_sec, 0))
        .field("graph_heap_bytes", Json::UInt(r.graph_heap_bytes as u64))
        .field("model_bytes", Json::UInt(r.model_bytes as u64))
        .field("num_edges", Json::UInt(r.num_edges as u64))
        .field("active_nodes", Json::UInt(r.active_nodes as u64))
        .field("max_file_id", Json::UInt(u64::from(r.max_file_id)))
}

fn main() {
    let args = BenchArgs::parse(0.05);
    let events = ((EVENTS_AT_FULL_SCALE * args.scale) as usize).max(10_000);

    let trace = WorkloadSpec::hp().scaled(0.5).generate();
    // Injective spread: every dense id maps to its own slot of a ~10^7
    // universe, so the sparse run mines the *same* correlations as the
    // dense one — only the id magnitudes change.
    let stride = (ID_UNIVERSE / trace.num_files().max(1) as u32).max(1);
    eprintln!(
        "mine_throughput: {events} events ({}, {} files, sparse stride {stride})",
        trace.label,
        trace.num_files()
    );

    let dense = mine(&trace, events, None);
    let sparse = mine(&trace, events, Some(stride));

    // Observability-overhead leg: the dense loop with no-op handles, then
    // with a live registry. The baseline is the uninstrumented dense run
    // above — the same work on the same trace.
    let noop_rate = mine_obs(&trace, events, &Registry::disabled());
    let live_reg = Registry::enabled();
    let live_rate = mine_obs(&trace, events, &live_reg);
    let live_snap = live_reg.snapshot();
    assert_eq!(
        live_snap.counter("mine.events"),
        Some(events as u64),
        "live registry missed events"
    );
    let overhead = |rate: f64| (dense.events_per_sec / rate - 1.0).max(0.0);
    let (noop_overhead, live_overhead) = (overhead(noop_rate), overhead(live_rate));
    assert!(
        live_overhead <= MAX_OBS_OVERHEAD,
        "instrumented mining leg is {:.1}% slower than baseline (gate {:.0}%): \
         {live_rate:.0} vs {:.0} events/s",
        100.0 * live_overhead,
        100.0 * MAX_OBS_OVERHEAD,
        dense.events_per_sec
    );
    eprintln!(
        "mine_throughput: obs overhead noop {:.2}% live {:.2}% (gate {:.0}%)",
        100.0 * noop_overhead,
        100.0 * live_overhead,
        100.0 * MAX_OBS_OVERHEAD
    );

    // The sparse run mines identical structure; resident memory must not
    // scale with the id universe once node storage is id-sparse.
    let mem_ratio = sparse.graph_heap_bytes as f64 / dense.graph_heap_bytes.max(1) as f64;
    assert!(mem_ratio.is_finite(), "memory ratio is not finite");
    // Headline: throughput over the whole workload (both id regimes) —
    // the number that collapses when either regime degrades.
    let overall = (2 * events) as f64 / (dense.elapsed_sec + sparse.elapsed_sec);
    assert!(overall.is_finite() && overall > 0.0, "overall not finite");

    let record = Json::obj()
        .field("bench", Json::str("mine_throughput"))
        .field("schema_version", Json::UInt(u64::from(MINE_SCHEMA_VERSION)))
        .field("workload", Json::str(&trace.label))
        .field("events", Json::UInt(events as u64))
        .field("sparse_id_universe", Json::UInt(u64::from(ID_UNIVERSE)))
        .field("overall_events_per_sec", Json::Fixed(overall, 0))
        .field("dense", json_regime(&dense))
        .field("sparse", json_regime(&sparse))
        .field("sparse_over_dense_heap", Json::Fixed(mem_ratio, 3))
        .field(
            "obs_overhead",
            Json::obj()
                .field(
                    "baseline_events_per_sec",
                    Json::Fixed(dense.events_per_sec, 0),
                )
                .field("noop_events_per_sec", Json::Fixed(noop_rate, 0))
                .field("instrumented_events_per_sec", Json::Fixed(live_rate, 0))
                .field("noop_overhead_pct", Json::Fixed(100.0 * noop_overhead, 2))
                .field(
                    "instrumented_overhead_pct",
                    Json::Fixed(100.0 * live_overhead, 2),
                )
                .field("gate_pct", Json::Fixed(100.0 * MAX_OBS_OVERHEAD, 0)),
        );
    if args.obs {
        eprintln!("mine_throughput: instrumented-leg registry:");
        eprintln!("{}", live_snap.render());
    }
    println!("{}", record.render());
}

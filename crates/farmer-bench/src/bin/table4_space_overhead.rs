//! Table 4 — FARMER's space overhead per trace (max_strength = 0.4).
//!
//! The paper reports absolute MB for its full-size traces (LLNL 98.4,
//! INS 1.4, RES 2.5, HP 9.8); the synthetic traces are scaled down, so the
//! comparison is about *ordering* (LLNL largest, INS smallest) and the
//! bounded-by-filtering property.

use farmer_bench::experiments::table4;
use farmer_bench::format::{mb, TextTable};
use farmer_bench::paper::TABLE4_SPACE_MB;
use farmer_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!("Table 4: FARMER space overhead after mining (scale {scale})\n");
    let rows = table4(scale);
    let mut t = TextTable::new(&["trace", "measured", "paper (full-size trace)"]);
    for (family, bytes) in &rows {
        let paper = TABLE4_SPACE_MB
            .iter()
            .find(|(n, _)| *n == family.name())
            .map(|(_, v)| format!("{v:.1}MB"))
            .unwrap_or_default();
        t.row(vec![family.name().to_string(), mb(*bytes), paper]);
    }
    println!("{}", t.render());
    println!("paper shape: LLNL's footprint dominates; INS's is the smallest.");
}

//! Figure 6 — average response time vs `max_strength` (HP trace).
//!
//! Reproduces §5.2.3: response time is stable while the threshold stays
//! below ≈ 0.4 and degrades as valid correlations start being filtered
//! out ("prefetching files with file correlation degree lower than 0.4 is
//! unlikely to benefit overall system performance").

use farmer_bench::experiments::fig6;
use farmer_bench::format::{ms, TextTable};
use farmer_bench::paper::FIG6_KNEE;
use farmer_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!("Figure 6: avg response time vs max_strength, HP trace (scale {scale})\n");
    let rows = fig6(scale);
    let mut t = TextTable::new(&["max_strength", "avg response"]);
    for &(thr, resp) in &rows {
        t.row(vec![format!("{thr:.1}"), ms(resp)]);
    }
    println!("{}", t.render());
    let below: f64 = rows
        .iter()
        .filter(|&&(t, _)| t <= FIG6_KNEE)
        .map(|&(_, r)| r)
        .fold(0.0, f64::max);
    let at_one = rows.last().expect("rows non-empty").1;
    println!(
        "response at threshold 1.0 is {:.2}x the worst sub-{FIG6_KNEE} response \
         (paper shape: flat below the knee, rising above)",
        at_one / below
    );
}

//! Streaming-miner throughput: events/sec and resident state across shard
//! counts, under a hard per-shard memory budget.
//!
//! This is the `farmer-stream` scaling experiment: an unbounded replay of a
//! synthetic HP-style trace is routed through the sharded online miner —
//! ≥ 1M events by default — and each shard count reports ingest throughput,
//! bounded state size, eviction counts and the number of live correlator
//! lists at the end. The node cap holds *per shard*, so total tracked state
//! grows with the shard count while each shard's memory stays capped.
//!
//! ```text
//! cargo run --release -p farmer-bench --bin stream_throughput        # 1M events
//! cargo run --release -p farmer-bench --bin stream_throughput 0.1   # quick 100k
//! ```

use std::time::Instant;

use farmer_bench::format::TextTable;
use farmer_bench::scale_from_args;
use farmer_stream::{ShardedMiner, StreamConfig};
use farmer_trace::WorkloadSpec;

/// Total node budget, split evenly across shards so every configuration
/// faces the *same* memory ceiling and the same eviction pressure — the
/// shard axis then measures sharding itself, not budget differences.
const TOTAL_NODE_BUDGET: usize = 8192;

fn main() {
    let scale = scale_from_args();
    let events_target = ((1_000_000.0 * scale) as usize).max(10_000);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // A mid-size trace replayed cyclically: repeating laps keep the
    // correlation structure mineable while the stream length is unbounded.
    let trace = WorkloadSpec::hp().scaled(0.5).generate();
    println!(
        "streaming miner: {events_target} events (cyclic replay of {}, {} events/lap)\n\
         total node budget {TOTAL_NODE_BUDGET}, {cores} core(s) available\n",
        trace.label,
        trace.len()
    );

    let mut t = TextTable::new(&[
        "shards",
        "cap/shard",
        "events/s",
        "speedup",
        "tracked",
        "evictions",
        "lists",
        "state MiB",
    ]);
    let mut base_rate = 0.0f64;
    for &shards in &[1usize, 2, 4, 8] {
        let cfg = StreamConfig::default()
            .with_shards(shards)
            .with_node_cap((TOTAL_NODE_BUDGET / shards).max(1));
        let cap_per_shard = cfg.node_cap;
        let mut miner = ShardedMiner::spawn(cfg);
        let start = Instant::now();
        for e in trace.stream().take(events_target) {
            miner.route_event(&trace, &e);
        }
        miner.flush();
        let elapsed = start.elapsed();
        let snap = miner.snapshot();
        let rate = events_target as f64 / elapsed.as_secs_f64();
        if shards == 1 {
            base_rate = rate;
        }
        let mib = snap.state_bytes as f64 / (1024.0 * 1024.0);
        t.row(vec![
            shards.to_string(),
            cap_per_shard.to_string(),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / base_rate.max(1.0)),
            snap.tracked_files.to_string(),
            snap.evictions.to_string(),
            snap.num_lists().to_string(),
            format!("{mib:.1}"),
        ]);
        assert_eq!(snap.events, events_target as u64, "snapshot missed events");
        assert!(
            snap.tracked_files <= TOTAL_NODE_BUDGET,
            "node budget violated: {} > {TOTAL_NODE_BUDGET}",
            snap.tracked_files
        );
    }
    println!("{}", t.render());
    println!(
        "expected shape: tracked files never exceed the total budget and\n\
         resident state stays bounded for every shard count — the hard\n\
         memory contract. events/s grows with shards on multi-core hosts\n\
         (edge mining splits per shard; the broadcast window upkeep is the\n\
         serial floor); on a single core the sharded runs instead show the\n\
         threading overhead the design pays for that scaling."
    );
}

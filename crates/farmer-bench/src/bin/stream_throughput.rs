//! Streaming-miner throughput: events/sec and resident state across shard
//! counts, under a hard per-shard memory budget.
//!
//! This is the `farmer-stream` scaling experiment: an unbounded replay of a
//! synthetic HP-style trace is routed through the sharded online miner —
//! ≥ 1M events by default — and each shard count reports ingest throughput,
//! bounded state size, eviction counts and the number of live correlator
//! lists at the end. The node cap holds *per shard*, so total tracked state
//! grows with the shard count while each shard's memory stays capped.
//!
//! Output is one schema-stable JSON record on stdout (the CI smoke step
//! captures it as `BENCH_stream.quick.json`); the human-readable table
//! goes to stderr. `--obs` additionally runs every shard configuration
//! against a live `farmer-obs` registry and embeds each run's `stream.*`
//! metric dump in its shard object.
//!
//! ```text
//! cargo run --release -p farmer-bench --bin stream_throughput          # 1M events
//! cargo run --release -p farmer-bench --bin stream_throughput -- --quick
//! cargo run --release -p farmer-bench --bin stream_throughput 0.1     # explicit scale
//! cargo run --release -p farmer-bench --bin stream_throughput -- --obs
//! ```

use std::time::Instant;

use farmer_bench::format::{obs_json, BenchArgs, Json, TextTable};
use farmer_obs::Registry;
use farmer_stream::{ShardedMiner, StreamConfig};
use farmer_trace::WorkloadSpec;

/// Total node budget, split evenly across shards so every configuration
/// faces the *same* memory ceiling and the same eviction pressure — the
/// shard axis then measures sharding itself, not budget differences.
const TOTAL_NODE_BUDGET: usize = 8192;

/// The `--quick` scale: 100k events, the CI smoke size.
const QUICK_SCALE: f64 = 0.1;

fn main() {
    let args = BenchArgs::parse(QUICK_SCALE);
    let events_target = ((1_000_000.0 * args.scale) as usize).max(10_000);
    let cores = std::thread::available_parallelism().map_or(1, usize::from);

    // A mid-size trace replayed cyclically: repeating laps keep the
    // correlation structure mineable while the stream length is unbounded.
    let trace = WorkloadSpec::hp().scaled(0.5).generate();
    eprintln!(
        "streaming miner: {events_target} events (cyclic replay of {}, {} events/lap)\n\
         total node budget {TOTAL_NODE_BUDGET}, {cores} core(s) available\n",
        trace.label,
        trace.len()
    );

    let mut t = TextTable::new(&[
        "shards",
        "cap/shard",
        "events/s",
        "speedup",
        "tracked",
        "evictions",
        "lists",
        "state MiB",
    ]);
    let mut base_rate = 0.0f64;
    let mut shard_records = Vec::new();
    for &shards in &[1usize, 2, 4, 8] {
        let cfg = StreamConfig::default()
            .with_shards(shards)
            .with_node_cap((TOTAL_NODE_BUDGET / shards).max(1));
        let cap_per_shard = cfg.node_cap;
        // Under --obs the miner streams its metrics into a live registry
        // (whose dump lands in the record); otherwise the handles are
        // no-ops and the loop is the uninstrumented hot path.
        let reg = if args.obs {
            Registry::enabled()
        } else {
            Registry::disabled()
        };
        let mut miner = ShardedMiner::spawn_instrumented(cfg, &reg);
        let start = Instant::now();
        for e in trace.stream().take(events_target) {
            miner.route_event(&trace, &e);
        }
        miner.flush();
        let elapsed = start.elapsed();
        let snap = miner.snapshot();
        let rate = events_target as f64 / elapsed.as_secs_f64();
        if shards == 1 {
            base_rate = rate;
        }
        let mib = snap.state_bytes as f64 / (1024.0 * 1024.0);
        t.row(vec![
            shards.to_string(),
            cap_per_shard.to_string(),
            format!("{rate:.0}"),
            format!("{:.2}x", rate / base_rate.max(1.0)),
            snap.tracked_files.to_string(),
            snap.evictions.to_string(),
            snap.num_lists().to_string(),
            format!("{mib:.1}"),
        ]);
        assert_eq!(snap.events, events_target as u64, "snapshot missed events");
        assert!(
            snap.tracked_files <= TOTAL_NODE_BUDGET,
            "node budget violated: {} > {TOTAL_NODE_BUDGET}",
            snap.tracked_files
        );
        let mut rec = Json::obj()
            .field("shards", Json::UInt(shards as u64))
            .field("cap_per_shard", Json::UInt(cap_per_shard as u64))
            .field("events_per_sec", Json::Fixed(rate, 0))
            .field("speedup", Json::Fixed(rate / base_rate.max(1.0), 2))
            .field("tracked_files", Json::UInt(snap.tracked_files as u64))
            .field("evictions", Json::UInt(snap.evictions))
            .field("lists", Json::UInt(snap.num_lists() as u64))
            .field("state_bytes", Json::UInt(snap.state_bytes as u64));
        if args.obs {
            rec = rec.field("obs", obs_json(&reg.snapshot()));
        }
        shard_records.push(rec);
    }
    eprintln!("{}", t.render());
    eprintln!(
        "expected shape: tracked files never exceed the total budget and\n\
         resident state stays bounded for every shard count — the hard\n\
         memory contract. events/s grows with shards on multi-core hosts\n\
         (edge mining splits per shard; the broadcast window upkeep is the\n\
         serial floor); on a single core the sharded runs instead show the\n\
         threading overhead the design pays for that scaling."
    );

    let record = Json::obj()
        .field("bench", Json::str("stream_throughput"))
        .field("workload", Json::str(&trace.label))
        .field("events", Json::UInt(events_target as u64))
        .field("total_node_budget", Json::UInt(TOTAL_NODE_BUDGET as u64))
        .field("shards", Json::Arr(shard_records));
    println!("{}", record.render());
}

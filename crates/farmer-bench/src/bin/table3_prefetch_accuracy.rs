//! Table 3 — prefetching accuracy on the HP trace (FARMER vs Nexus).
//!
//! Paper: FARMER 64.04 % vs Nexus 43.04 % — "about 65% of all predictions
//! provided by FPA are correct. In contrast, Nexus' predictions are only
//! about 43% correct."

use farmer_bench::experiments::table3;
use farmer_bench::format::{pct, TextTable};
use farmer_bench::paper::{TABLE3_FARMER_ACCURACY, TABLE3_NEXUS_ACCURACY};
use farmer_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!("Table 3: prefetching accuracy, HP trace (scale {scale})\n");
    let (fpa, nexus) = table3(scale);
    let mut t = TextTable::new(&["predictor", "measured", "paper"]);
    t.row(vec!["FARMER".into(), pct(fpa), pct(TABLE3_FARMER_ACCURACY)]);
    t.row(vec!["Nexus".into(), pct(nexus), pct(TABLE3_NEXUS_ACCURACY)]);
    println!("{}", t.render());
    println!(
        "measured ratio {:.2}x (paper {:.2}x); shape: FARMER clearly above Nexus.",
        fpa / nexus,
        TABLE3_FARMER_ACCURACY / TABLE3_NEXUS_ACCURACY
    );
}

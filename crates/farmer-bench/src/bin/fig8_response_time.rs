//! Figure 8 — average metadata response time (LLNL, RES, HP traces).
//!
//! Paper: "FPA can improve the average response time in metadata server
//! over Nexus by up to 24% and over LRU by up to 35%."

use farmer_bench::experiments::fig8;
use farmer_bench::format::{ms, TextTable};
use farmer_bench::paper::{FIG8_VS_LRU_MAX, FIG8_VS_NEXUS_MAX};
use farmer_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!("Figure 8: average response time comparison (scale {scale})\n");
    let rows = fig8(scale);
    let mut t = TextTable::new(&["trace", "LRU", "Nexus", "FPA", "vs Nexus", "vs LRU"]);
    let mut best_nexus: f64 = 0.0;
    let mut best_lru: f64 = 0.0;
    for r in &rows {
        let vs_nexus = 1.0 - r.fpa_ms / r.nexus_ms;
        let vs_lru = 1.0 - r.fpa_ms / r.lru_ms;
        best_nexus = best_nexus.max(vs_nexus);
        best_lru = best_lru.max(vs_lru);
        t.row(vec![
            r.family.name().to_string(),
            ms(r.lru_ms),
            ms(r.nexus_ms),
            ms(r.fpa_ms),
            format!("{:+.1}%", -100.0 * vs_nexus),
            format!("{:+.1}%", -100.0 * vs_lru),
        ]);
    }
    println!("{}", t.render());
    println!(
        "max improvement: {:.0}% over Nexus (paper: up to {:.0}%), {:.0}% over LRU (paper: up to {:.0}%)",
        100.0 * best_nexus,
        100.0 * FIG8_VS_NEXUS_MAX,
        100.0 * best_lru,
        100.0 * FIG8_VS_LRU_MAX
    );
}

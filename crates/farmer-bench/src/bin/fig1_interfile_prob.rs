//! Figure 1 — inter-file access probability per semantic-attribute filter.
//!
//! Reproduces §2.2's statistical evidence: partitioning the access stream
//! by any semantic attribute raises successor predictability above the raw
//! interleaved stream ("when none of the attributes is considered, the
//! access probability is the lowest in all the traces").

use farmer_bench::experiments::fig1;
use farmer_bench::format::{pct, TextTable};
use farmer_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!("Figure 1: inter-file access probability by attribute filter (scale {scale})\n");
    for (family, rows) in fig1(scale) {
        let mut t = TextTable::new(&["filter", "probability", "transitions"]);
        for r in &rows {
            t.row(vec![
                r.filter.label().to_string(),
                pct(r.probability),
                r.transitions.to_string(),
            ]);
        }
        println!("{} trace:", family.name());
        println!("{}", t.render());
    }
    println!("paper shape: the `none` filter is the lowest bar in every trace.");
}

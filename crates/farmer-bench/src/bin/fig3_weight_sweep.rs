//! Figure 3 — cache hit ratio vs `max_strength` for p ∈ {0, 0.3, 0.7, 1}.
//!
//! Reproduces §5.2.1: the weight p = 0.7 achieves the best hit ratio,
//! i.e. combining semantics (70 %) with access frequency (30 %) beats
//! either signal alone.

use farmer_bench::experiments::{fig3, fig3_best_p, FIG3_THRESHOLDS};
use farmer_bench::format::{pct, TextTable};
use farmer_bench::scale_from_args;
use farmer_trace::TraceFamily;

fn main() {
    let scale = scale_from_args();
    println!("Figure 3: hit ratio vs max_strength for four weights (scale {scale})\n");
    let series = fig3(scale);
    for family in TraceFamily::ALL {
        let mut header: Vec<String> = vec!["p \\ max_strength".into()];
        header.extend(FIG3_THRESHOLDS.iter().map(|t| format!("{t:.1}")));
        let hdr: Vec<&str> = header.iter().map(String::as_str).collect();
        let mut t = TextTable::new(&hdr);
        for s in series.iter().filter(|s| s.family == family) {
            let mut row = vec![format!("p={}", s.p)];
            row.extend(s.points.iter().map(|&(_, h)| pct(h)));
            t.row(row);
        }
        println!("{} trace:", family.name());
        println!("{}", t.render());
        println!(
            "best weight for {}: p={} (paper: p=0.7)\n",
            family.name(),
            fig3_best_p(&series, family)
        );
    }
}

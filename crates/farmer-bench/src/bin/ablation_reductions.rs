//! Ablations around the paper's §7 reduction claims and design choices:
//!
//! * p = 0 reduces FPA to Nexus-like pure sequence mining — measured as
//!   top-successor agreement between the two implementations,
//! * DPA vs IPA hit-ratio impact (the paper's §3.2.1 argument for IPA),
//! * look-ahead window sensitivity,
//! * the §4.2 grouped-layout seek savings.

use farmer_bench::experiments::{
    ablation_dpa_vs_ipa, ablation_window, layout_experiment, reduction_p0_matches_nexus,
};
use farmer_bench::format::{pct, TextTable};
use farmer_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!("Ablations (scale {scale})\n");

    let agreement = reduction_p0_matches_nexus(scale);
    println!(
        "reduction: FPA(p=0, no threshold) top-successor agreement with Nexus: {}\n\
         (paper §7: \"If the weight value is 0, FARMER is reduced to Nexus\")\n",
        pct(agreement)
    );

    let (dpa, ipa) = ablation_dpa_vs_ipa(scale);
    println!(
        "path algorithm: DPA hit {} vs IPA hit {} on HP \
         (paper selects IPA; §3.2.1)\n",
        pct(dpa),
        pct(ipa)
    );

    let mut t = TextTable::new(&["window", "hit ratio"]);
    for (w, h) in ablation_window(scale, &[1, 2, 3, 5, 8, 12]) {
        t.row(vec![w.to_string(), pct(h)]);
    }
    println!("look-ahead window sensitivity (HP):\n{}", t.render());

    let (scattered, grouped) = layout_experiment(scale);
    println!(
        "layout (§4.2): scattered {} seeks / {:.1}s busy  ->  grouped {} seeks / {:.1}s busy \
         ({:.0}% seeks saved)",
        scattered.seeks,
        scattered.busy_us as f64 / 1e6,
        grouped.seeks,
        grouped.busy_us as f64 / 1e6,
        100.0 * (1.0 - grouped.seeks as f64 / scattered.seeks as f64)
    );
}

//! Figure 7 — cache-hit-ratio comparison: FPA vs Nexus vs LRU, all traces.
//!
//! Reproduces §5.3: FPA has the highest hit ratio on every trace, with the
//! largest improvement over Nexus on HP (full path information).

use farmer_bench::experiments::fig7;
use farmer_bench::format::{pct, TextTable};
use farmer_bench::paper::FIG7_IMPROVEMENT_PTS;
use farmer_bench::scale_from_args;

fn main() {
    let scale = scale_from_args();
    println!("Figure 7: cache hit ratio comparison (scale {scale})\n");
    let rows = fig7(scale);
    let mut t = TextTable::new(&[
        "trace",
        "LRU",
        "Nexus",
        "FPA",
        "FPA-Nexus (pts)",
        "paper (pts)",
    ]);
    for r in &rows {
        let delta = 100.0 * (r.fpa - r.nexus);
        let paper = FIG7_IMPROVEMENT_PTS
            .iter()
            .find(|(n, _)| *n == r.family.name())
            .map(|(_, v)| format!("{v:.1}"))
            .unwrap_or_else(|| "-".into());
        t.row(vec![
            r.family.name().to_string(),
            pct(r.lru),
            pct(r.nexus),
            pct(r.fpa),
            format!("{delta:+.1}"),
            paper,
        ]);
    }
    println!("{}", t.render());
    println!("paper shape: FPA highest everywhere; HP improvement the largest.");
}

//! Serving-tier throughput: read scaling, ingest under load, and the
//! zero-allocation query hot path — the `farmer-serve` acceptance record.
//!
//! Pre-loads a [`FarmerServe`] tier with one HP-style workload, then
//! measures:
//!
//! * **read scaling** — aggregate queries/sec of 1, 4 and 16 concurrent
//!   readers, each serving flat-out from the published snapshot. Under
//!   `--check`, aggregate(N)/aggregate(1) must reach the core-adaptive
//!   floor ([`read_scaling_floor`]): half of linear scaling up to the
//!   host's core count, and at least the no-collapse floor (0.5×)
//!   everywhere — a single-core host cannot physically show 2×, so the
//!   record carries the measured core count instead of pretending.
//! * **ingest** — events/sec through the lock-free ring into the sharded
//!   miner (including periodic epoch-swapped publications), unloaded and
//!   then with 16 duty-cycled readers querying concurrently. Under
//!   `--check`, the loaded rate must keep at least
//!   [`INGEST_UNDER_LOAD_FLOOR`] of the unloaded rate: wait-free readers
//!   must not stall the miner.
//! * **zero-alloc hot path** — a counting global allocator proves the
//!   steady-state reader query path performs **zero allocations**
//!   (asserted unconditionally, not just under `--check`).
//!
//! Output is a single JSON object on stdout (`BENCH_serve.json` when run
//! at full scale); progress goes to stderr.
//!
//! ```text
//! cargo run --release -p farmer-bench --bin serve_throughput            # full
//! cargo run --release -p farmer-bench --bin serve_throughput -- --quick --check
//! ```

// The counting allocator is the bin's only unsafe; each op carries a
// SAFETY: proof and must mark its internal unsafe operations explicitly.
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use farmer_bench::format::{BenchArgs, Json};
use farmer_bench::serve::{read_scaling_floor, INGEST_UNDER_LOAD_FLOOR, SERVE_SCHEMA_VERSION};
use farmer_core::Correlator;
use farmer_serve::{FarmerServe, ServeConfig};
use farmer_trace::{FileId, Trace, WorkloadSpec};

/// Prefetch-group-sized k every query leg uses.
const K: usize = 8;
/// Ingest volume at full scale (events per ingest leg).
const EVENTS_AT_FULL_SCALE: f64 = 1_500_000.0;
/// Wall-clock length of each read-scaling leg at full scale.
const READ_LEG_MS_FULL: u64 = 400;
/// Reader fan-outs measured by the read-scaling legs.
const READER_COUNTS: [usize; 3] = [1, 4, 16];

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator plus a Relaxed
// counter bump; every GlobalAlloc contract obligation is System's own.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded unchanged.
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc(l) }
    }
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded unchanged.
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        // SAFETY: (p, l) came from this allocator, i.e. from System.
        unsafe { System.dealloc(p, l) }
    }
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded unchanged.
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: (p, l) came from this allocator; n validated by caller.
        unsafe { System.realloc(p, l, n) }
    }
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded unchanged.
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc_zeroed(l) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Aggregate queries/sec of `n` readers serving flat-out for `dur`.
/// Readers warm up before the start flag flips, so the measured segment
/// is the steady state.
fn read_leg(serve: &FarmerServe, hot: &[FileId], n: usize, dur: Duration) -> f64 {
    let start = AtomicBool::new(false);
    let stop = AtomicBool::new(false);
    let mut elapsed = 0.0f64;
    let mut total = 0u64;
    std::thread::scope(|s| {
        let mut threads = Vec::with_capacity(n);
        for _ in 0..n {
            let mut r = serve.reader();
            let (start, stop) = (&start, &stop);
            threads.push(s.spawn(move || {
                let mut out: Vec<Correlator> = Vec::with_capacity(K);
                for &f in hot.iter().take(2048) {
                    r.top_k_into(f, K, 0.0, &mut out);
                }
                while !start.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                let mut queries = 0u64;
                let mut i = 0usize;
                let mut checksum = 0usize;
                while !stop.load(Ordering::Relaxed) {
                    r.top_k_into(hot[i], K, 0.0, &mut out);
                    checksum = checksum.wrapping_add(out.len());
                    queries += 1;
                    i += 1;
                    if i == hot.len() {
                        i = 0;
                    }
                }
                black_box(checksum);
                queries
            }));
        }
        let t0 = Instant::now();
        start.store(true, Ordering::Release);
        std::thread::sleep(dur);
        stop.store(true, Ordering::Release);
        total = threads.into_iter().map(|t| t.join().unwrap()).sum();
        elapsed = t0.elapsed().as_secs_f64();
    });
    let qps = total as f64 / elapsed.max(1e-9);
    assert!(
        qps.is_finite() && qps > 0.0,
        "read throughput is not a positive finite number: {qps}"
    );
    qps
}

/// Ingest `events` trace events through a fresh tier and flush (mine +
/// publish everything), returning events/sec. When `readers > 0`, that
/// many duty-cycled readers (query bursts between 1 ms sleeps — the
/// metadata-server pattern of query traffic) run concurrently.
fn ingest_leg(trace: &Trace, events: usize, readers: usize) -> f64 {
    let cfg = ServeConfig::default();
    let serve = FarmerServe::spawn(cfg);
    let stop = AtomicBool::new(false);
    let mut rate = 0.0f64;
    std::thread::scope(|s| {
        for _ in 0..readers {
            let mut r = serve.reader();
            let stop = &stop;
            s.spawn(move || {
                let mut out: Vec<Correlator> = Vec::with_capacity(K);
                let mut f = 0u32;
                let files = 1u32.max(u32::try_from(r.snapshot().tracked_files.max(1)).unwrap_or(1));
                while !stop.load(Ordering::Relaxed) {
                    for _ in 0..32 {
                        r.top_k_into(FileId::new(f % files), K, 0.0, &mut out);
                        f = f.wrapping_add(1);
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            });
        }
        let mut tx = serve.handle();
        let t0 = Instant::now();
        for e in trace.stream().take(events) {
            assert!(tx.ingest_event(trace, &e), "tier refused mid-run ingest");
        }
        serve.flush();
        rate = events as f64 / t0.elapsed().as_secs_f64().max(1e-9);
        stop.store(true, Ordering::Release);
    });
    let stats = serve.shutdown();
    assert_eq!(stats.events, events as u64, "tier lost ingested events");
    assert!(
        rate.is_finite() && rate > 0.0,
        "ingest throughput is not a positive finite number: {rate}"
    );
    rate
}

fn main() {
    let args = BenchArgs::parse(0.02);
    let events = ((EVENTS_AT_FULL_SCALE * args.scale) as usize).max(30_000);
    let leg_ms = if args.quick { 120 } else { READ_LEG_MS_FULL };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // --- Pre-load: one mined, published workload shared by the read legs.
    let trace = WorkloadSpec::hp().scaled(0.3).generate();
    let serve = FarmerServe::spawn(ServeConfig::default());
    let mut tx = serve.handle();
    for e in &trace.events {
        assert!(tx.ingest_event(&trace, e));
    }
    serve.flush();

    // Hot set: the files the published snapshot actually serves.
    let (_, snap) = serve.cell().load();
    let mut hot: Vec<FileId> = Vec::new();
    {
        use farmer_core::CorrelationSource;
        snap.for_each_list(&mut |owner, _| hot.push(owner));
    }
    hot.sort_unstable_by_key(|f| f.raw());
    assert!(hot.len() > 100, "workload published too few served files");
    drop(snap);

    eprintln!(
        "serve_throughput: {} hot files, read legs {leg_ms} ms x {READER_COUNTS:?} readers, \
         ingest legs {events} events, {cores} core(s) ({})",
        hot.len(),
        trace.label
    );

    // --- Read-scaling legs.
    let mut read_qps = [0.0f64; READER_COUNTS.len()];
    for (slot, &n) in read_qps.iter_mut().zip(READER_COUNTS.iter()) {
        *slot = read_leg(&serve, &hot, n, Duration::from_millis(leg_ms));
        eprintln!("  read x{n:<2}: {slot:>12.0} queries/s aggregate");
    }
    let scaling: Vec<f64> = read_qps
        .iter()
        .map(|&q| q / read_qps[0].max(1e-9))
        .collect();

    // --- Zero-allocation hot path, measured on the quiesced main thread:
    // shut the tier down (readers outlive it by design) so nothing else
    // can touch the allocator during the measured segment.
    let mut r = serve.reader();
    let stats = serve.shutdown();
    assert_eq!(stats.events, trace.len() as u64);
    let mut out: Vec<Correlator> = Vec::with_capacity(K);
    for &f in &hot {
        r.top_k_into(f, K, 0.0, &mut out);
    }
    let before = allocs();
    let mut checksum = 0usize;
    for lap in 0..3 {
        for &f in &hot {
            r.top_k_into(f, K, 0.0, &mut out);
            checksum = checksum.wrapping_add(out.len() + lap);
        }
    }
    let hot_path_allocs = allocs() - before;
    black_box(checksum);
    assert_eq!(
        hot_path_allocs, 0,
        "reader query hot path allocated {hot_path_allocs} times in steady state"
    );

    // --- Ingest legs: unloaded, then under 16 duty-cycled readers.
    let unloaded = ingest_leg(&trace, events, 0);
    eprintln!("  ingest unloaded : {unloaded:>12.0} events/s");
    let loaded = ingest_leg(&trace, events, 16);
    eprintln!("  ingest w/readers: {loaded:>12.0} events/s");
    let ingest_ratio = loaded / unloaded.max(1e-9);

    // --- Acceptance bands (core-adaptive; see farmer_bench::serve).
    if args.check {
        for (i, &n) in READER_COUNTS.iter().enumerate() {
            let floor = read_scaling_floor(n, cores);
            assert!(
                scaling[i] >= floor,
                "read scaling x{n} = {:.2} below the {floor:.2} floor ({cores} cores)",
                scaling[i]
            );
        }
        assert!(
            ingest_ratio >= INGEST_UNDER_LOAD_FLOOR,
            "ingest under load kept only {:.0}% of the unloaded rate (floor {:.0}%)",
            ingest_ratio * 100.0,
            INGEST_UNDER_LOAD_FLOOR * 100.0
        );
    }

    let mut legs = Json::obj();
    for (i, &n) in READER_COUNTS.iter().enumerate() {
        legs = legs.field(
            &format!("readers_{n}"),
            Json::obj()
                .field("aggregate_queries_per_sec", Json::Fixed(read_qps[i], 0))
                .field("scaling_vs_1_reader", Json::Fixed(scaling[i], 3))
                .field("check_floor", Json::Fixed(read_scaling_floor(n, cores), 2)),
        );
    }
    let record = Json::obj()
        .field("bench", Json::str("serve_throughput"))
        .field(
            "schema_version",
            Json::UInt(u64::from(SERVE_SCHEMA_VERSION)),
        )
        .field("workload", Json::str(&trace.label))
        .field("cores", Json::UInt(cores as u64))
        .field("k", Json::UInt(K as u64))
        .field("hot_files", Json::UInt(hot.len() as u64))
        .field("read_leg_ms", Json::UInt(leg_ms))
        .field("read_scaling", legs)
        .field("hot_path_steady_state_allocs", Json::UInt(hot_path_allocs))
        .field("ingest_events", Json::UInt(events as u64))
        .field("ingest_unloaded_events_per_sec", Json::Fixed(unloaded, 0))
        .field("ingest_loaded_events_per_sec", Json::Fixed(loaded, 0))
        .field("ingest_under_load_ratio", Json::Fixed(ingest_ratio, 3))
        .field(
            "ingest_check_floor",
            Json::Fixed(INGEST_UNDER_LOAD_FLOOR, 2),
        );
    println!("{}", record.render());
}

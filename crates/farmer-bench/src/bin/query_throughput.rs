//! Correlation-query throughput: the serving hot path behind the
//! `CorrelationSource` redesign.
//!
//! Mines one HP-style workload, then measures queries/sec of:
//!
//! * **full_list** — the pre-redesign bespoke path: materialize a whole
//!   `CorrelatorList` from the graph (filter + full sort + fresh
//!   allocation) and take the top k;
//! * **farmer_topk** — `CorrelationSource::top_k_into` on the live model
//!   (sorted-view cache + partial select, caller-owned buffer);
//! * **table_topk** — the same query against an exported
//!   `CorrelatorTable`;
//! * **farmer_strongest** — the head-of-list query (`strongest`), one
//!   O(deg) scan.
//!
//! A counting global allocator verifies the redesign's core claim: the
//! trait paths perform **zero allocations in steady state** (the full-list
//! path allocates per query, by construction). The run fails on any
//! steady-state allocation, on non-finite throughput, or if top-k (k ≤ 8)
//! is not at least 2× the full-list path — which is what the CI smoke step
//! relies on. Output is a single JSON object on stdout, checked in as
//! `BENCH_query.json`.
//!
//! ```text
//! cargo run --release -p farmer-bench --bin query_throughput          # full
//! cargo run --release -p farmer-bench --bin query_throughput -- --quick
//! ```

// The counting allocator is the bin's only unsafe; each op carries a
// SAFETY: proof and must mark its internal unsafe operations explicitly.
#![deny(unsafe_op_in_unsafe_fn)]

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use farmer_bench::format::{BenchArgs, Json};
use farmer_core::{
    CorrelationSource, Correlator, CorrelatorList, CorrelatorTable, Farmer, FarmerConfig,
};
use farmer_trace::{FileId, WorkloadSpec};

/// Version of the `BENCH_query.json` record layout. Bump on any field
/// addition, removal or rename; CI greps it against the checked-in
/// record so a stale regeneration fails fast.
///
/// v1: first versioned layout — the four query paths, the allocation
/// gate, and this `schema_version` field.
const QUERY_SCHEMA_VERSION: u32 = 1;

/// Queries per measured path at full scale.
const QUERIES_AT_FULL_SCALE: f64 = 4_000_000.0;
/// The prefetch-group-sized k the acceptance bar is stated for.
const K: usize = 8;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to the System allocator plus a Relaxed
// counter bump; every GlobalAlloc contract obligation is System's own.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded unchanged.
    unsafe fn alloc(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc(l) }
    }
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded unchanged.
    unsafe fn dealloc(&self, p: *mut u8, l: Layout) {
        // SAFETY: (p, l) came from this allocator, i.e. from System.
        unsafe { System.dealloc(p, l) }
    }
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded unchanged.
    unsafe fn realloc(&self, p: *mut u8, l: Layout, n: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: (p, l) came from this allocator; n validated by caller.
        unsafe { System.realloc(p, l, n) }
    }
    // SAFETY: caller upholds GlobalAlloc's contract; forwarded unchanged.
    unsafe fn alloc_zeroed(&self, l: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        // SAFETY: same layout the caller vouched for.
        unsafe { System.alloc_zeroed(l) }
    }
}

#[global_allocator]
static COUNTER: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

struct PathReport {
    queries_per_sec: f64,
    steady_allocs: u64,
}

/// Time `queries` invocations of `op` over a cycling hot set, counting
/// allocations over the measured (post-warm-up) segment only.
fn measure(hot: &[FileId], queries: usize, mut op: impl FnMut(FileId) -> usize) -> PathReport {
    let mut checksum = 0usize;
    // Warm-up lap: populate caches and grow every reusable buffer.
    for &f in hot {
        checksum = checksum.wrapping_add(op(f));
    }
    let before = allocs();
    let start = Instant::now();
    let mut i = 0;
    for _ in 0..queries {
        checksum = checksum.wrapping_add(op(hot[i]));
        i += 1;
        if i == hot.len() {
            i = 0;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let steady_allocs = allocs() - before;
    black_box(checksum);
    let queries_per_sec = queries as f64 / elapsed.max(1e-9);
    assert!(
        queries_per_sec.is_finite() && queries_per_sec > 0.0,
        "throughput is not a positive finite number: {queries_per_sec}"
    );
    PathReport {
        queries_per_sec,
        steady_allocs,
    }
}

/// The pre-redesign query: build the whole sorted list, take the head k.
fn full_list_top(farmer: &Farmer, file: FileId, k: usize) -> usize {
    let cfg = farmer.config();
    let list = CorrelatorList::build(
        file,
        farmer.graph().edges(file, cfg).map(|e| Correlator {
            file: e.to,
            degree: e.degree,
        }),
        cfg.max_strength,
    );
    list.top(k).len()
}

fn json_path(r: &PathReport) -> Json {
    Json::obj()
        .field("queries_per_sec", Json::Fixed(r.queries_per_sec, 0))
        .field("steady_state_allocs", Json::UInt(r.steady_allocs))
}

fn main() {
    let args = BenchArgs::parse(0.02);
    let queries = ((QUERIES_AT_FULL_SCALE * args.scale) as usize).max(50_000);

    let trace = WorkloadSpec::hp().scaled(0.3).generate();
    let farmer = Farmer::mine_trace(&trace, FarmerConfig::default());

    // Hot set: every file with at least one valid correlator (the files a
    // serving tier actually gets asked about).
    let hot: Vec<FileId> = (0..trace.num_files() as u32)
        .map(FileId::new)
        .filter(|&f| farmer.strongest(f, farmer.config().max_strength).is_some())
        .collect();
    assert!(hot.len() > 100, "workload mined too few served files");

    // Exported-table backend over the identical mined state.
    let mut table = CorrelatorTable::new();
    farmer.for_each_list(&mut |owner, entries| {
        table.insert(CorrelatorList::from_sorted(owner, entries.to_vec()));
    });

    eprintln!(
        "query_throughput: {queries} queries x 4 paths over {} hot files ({})",
        hot.len(),
        trace.label
    );

    let full = measure(&hot, queries, |f| full_list_top(&farmer, f, K));
    let mut buf: Vec<Correlator> = Vec::new();
    let thr = farmer.config().max_strength;
    let farmer_topk = measure(&hot, queries, |f| {
        farmer.top_k_into(f, K, thr, &mut buf);
        buf.len()
    });
    let table_topk = measure(&hot, queries, |f| {
        table.top_k_into(f, K, 0.0, &mut buf);
        buf.len()
    });
    let strongest = measure(&hot, queries, |f| {
        farmer
            .strongest(f, thr)
            .map_or(0, |c| c.file.raw() as usize)
    });

    // The acceptance bar: unified top-k ≥ 2× the full-list path, with zero
    // steady-state allocations on every trait path.
    let speedup = farmer_topk.queries_per_sec / full.queries_per_sec.max(1e-9);
    assert!(
        speedup >= 2.0,
        "top-k (k={K}) must be ≥2x the full-list path, got {speedup:.2}x"
    );
    for (name, r) in [
        ("farmer_topk", &farmer_topk),
        ("table_topk", &table_topk),
        ("farmer_strongest", &strongest),
    ] {
        assert_eq!(
            r.steady_allocs, 0,
            "{name} allocated {} times in steady state",
            r.steady_allocs
        );
    }

    let record = Json::obj()
        .field("bench", Json::str("query_throughput"))
        .field(
            "schema_version",
            Json::UInt(u64::from(QUERY_SCHEMA_VERSION)),
        )
        .field("workload", Json::str(&trace.label))
        .field("k", Json::UInt(K as u64))
        .field("queries_per_path", Json::UInt(queries as u64))
        .field("hot_files", Json::UInt(hot.len() as u64))
        .field("full_list", json_path(&full))
        .field("farmer_topk", json_path(&farmer_topk))
        .field("table_topk", json_path(&table_topk))
        .field("farmer_strongest", json_path(&strongest))
        .field("topk_over_full_list", Json::Fixed(speedup, 3));
    println!("{}", record.render());
}

//! Run every experiment in sequence — the one-command reproduction.
//!
//! ```text
//! cargo run --release -p farmer-bench --bin repro            # full scale
//! cargo run --release -p farmer-bench --bin repro -- 0.2     # smoke run
//! ```
//!
//! Output mirrors EXPERIMENTS.md: for each paper table/figure, the
//! measured values with the paper's reference numbers where applicable.

use std::time::Instant;

use farmer_bench::experiments as ex;
use farmer_bench::format::{mb, ms, pct, TextTable};
use farmer_bench::paper;
use farmer_bench::scale_from_args;
use farmer_trace::TraceFamily;

fn section(title: &str) {
    println!(
        "\n=== {title} {}",
        "=".repeat(66usize.saturating_sub(title.len()))
    );
}

fn main() {
    let scale = scale_from_args();
    let t0 = Instant::now();
    println!("FARMER reproduction suite (scale {scale})");

    section("Figure 1: inter-file access probability by attribute filter");
    for (family, rows) in ex::fig1(scale) {
        let cells: Vec<String> = rows
            .iter()
            .map(|r| format!("{}={}", r.filter.label(), pct(r.probability)))
            .collect();
        println!("  {:<5} {}", family.name(), cells.join("  "));
    }
    println!("  paper shape: `none` lowest in every trace");

    section("Table 2: DPA vs IPA worked example (exact)");
    for (row, (_, dpa_ref, ipa_ref)) in ex::table2().iter().zip(paper::TABLE2) {
        println!(
            "  {:<9} DPA {:.4} (paper {:.4})   IPA {:.4} (paper {:.4})",
            row.pair, row.dpa, dpa_ref, row.ipa, ipa_ref
        );
    }

    section("Figure 3: hit ratio vs max_strength for p in {0, 0.3, 0.7, 1}");
    let series = ex::fig3(scale);
    for family in TraceFamily::ALL {
        let best = ex::fig3_best_p(&series, family);
        for s in series.iter().filter(|s| s.family == family) {
            let pts: Vec<String> = s.points.iter().map(|&(_, h)| pct(h)).collect();
            println!("  {:<5} p={:<3} {}", family.name(), s.p, pts.join(" "));
        }
        println!(
            "  {:<5} best p = {best} (paper: {})",
            family.name(),
            paper::FIG3_BEST_P
        );
    }

    section("Table 5: hit ratio per attribute combination");
    for family in [TraceFamily::Hp, TraceFamily::Ins, TraceFamily::Res] {
        let rows = ex::table5(family, scale);
        let mut t = TextTable::new(&["combination", "hit ratio"]);
        for r in &rows {
            t.row(vec![r.combo.clone(), pct(r.hit_ratio)]);
        }
        println!("{} trace:\n{}", family.name(), t.render());
    }

    section("Figure 6: avg response vs max_strength (HP)");
    for (thr, resp) in ex::fig6(scale) {
        println!("  max_strength {thr:.1}  ->  {}", ms(resp));
    }
    println!(
        "  paper shape: flat below {}, rising above",
        paper::FIG6_KNEE
    );

    section("Figure 7: cache hit ratio comparison");
    for r in ex::fig7(scale) {
        println!(
            "  {:<5} LRU {}  Nexus {}  FPA {}  (FPA-Nexus {:+.1} pts; accuracies N {} / F {})",
            r.family.name(),
            pct(r.lru),
            pct(r.nexus),
            pct(r.fpa),
            100.0 * (r.fpa - r.nexus),
            pct(r.nexus_accuracy),
            pct(r.fpa_accuracy),
        );
    }

    section("Table 3: prefetching accuracy (HP)");
    let (fpa_acc, nexus_acc) = ex::table3(scale);
    println!(
        "  FARMER {} (paper {})   Nexus {} (paper {})",
        pct(fpa_acc),
        pct(paper::TABLE3_FARMER_ACCURACY),
        pct(nexus_acc),
        pct(paper::TABLE3_NEXUS_ACCURACY)
    );

    section("Figure 8: average response time (LLNL, RES, HP)");
    for r in ex::fig8(scale) {
        println!(
            "  {:<5} LRU {}  Nexus {}  FPA {}  (vs Nexus {:.0}%, vs LRU {:.0}%)",
            r.family.name(),
            ms(r.lru_ms),
            ms(r.nexus_ms),
            ms(r.fpa_ms),
            100.0 * (1.0 - r.fpa_ms / r.nexus_ms),
            100.0 * (1.0 - r.fpa_ms / r.lru_ms),
        );
    }
    println!(
        "  paper: up to {:.0}% over Nexus, {:.0}% over LRU",
        100.0 * paper::FIG8_VS_NEXUS_MAX,
        100.0 * paper::FIG8_VS_LRU_MAX
    );

    section("Table 4: space overhead");
    for (family, bytes) in ex::table4(scale) {
        let p = paper::TABLE4_SPACE_MB
            .iter()
            .find(|(n, _)| *n == family.name())
            .map(|(_, v)| *v)
            .unwrap_or(0.0);
        println!(
            "  {:<5} measured {} (paper, full-size trace: {p:.1}MB)",
            family.name(),
            mb(bytes)
        );
    }

    section("Ablations");
    println!(
        "  FPA(p=0) vs Nexus top-successor agreement: {}",
        pct(ex::reduction_p0_matches_nexus(scale))
    );
    let (dpa, ipa) = ex::ablation_dpa_vs_ipa(scale);
    println!(
        "  DPA hit {} vs IPA hit {} (paper selects IPA)",
        pct(dpa),
        pct(ipa)
    );
    let (scattered, grouped) = ex::layout_experiment(scale);
    println!(
        "  layout: {} -> {} seeks ({:.0}% saved)",
        scattered.seeks,
        grouped.seeks,
        100.0 * (1.0 - grouped.seeks as f64 / scattered.seeks as f64)
    );

    println!("\ncompleted in {:.1}s", t0.elapsed().as_secs_f64());
}

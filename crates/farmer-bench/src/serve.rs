//! Acceptance bands for the `serve_throughput` benchmark (the serving
//! tier's read-scaling and ingest-under-load record, `BENCH_serve.json`).
//!
//! The hard claims the tier makes — wait-free readers, allocation-free
//! query hot path, lock-free ingest — are asserted unconditionally by the
//! bin. The *scaling* claims depend on physics: N readers can only
//! aggregate ~N× a single reader when N cores exist to run them. Rather
//! than bake in a band that silently fails on small hosts (or, worse,
//! passes vacuously because nobody runs it there), the bands here adapt
//! to the measured core count and the emitted record carries the core
//! count so any reading of the numbers starts from the host's actual
//! parallelism.

/// Schema version of `BENCH_serve.json`. Bump on any field change and
/// regenerate the checked-in record; CI greps the two for equality.
pub const SERVE_SCHEMA_VERSION: u32 = 1;

/// Minimum acceptable aggregate read throughput of `readers` concurrent
/// readers, as a multiple of the single-reader aggregate.
///
/// With enough cores the tier must scale: `min(readers, cores) / 2` keeps
/// half of ideal linear scaling as the floor (readers share the snapshot
/// `Arc` wait-free, but caches, the allocator-free hot loop and SMT all
/// eat into linearity). With one core the same formula degrades to the
/// honest single-core claim: concurrency must not *collapse* throughput —
/// N time-sliced readers keep at least half the single-reader aggregate.
pub fn read_scaling_floor(readers: usize, cores: usize) -> f64 {
    (readers.min(cores) as f64 / 2.0).max(0.5)
}

/// Minimum acceptable ingest rate under concurrent duty-cycled readers,
/// as a fraction of the unloaded ingest rate. Readers in the mixed leg
/// are rate-limited (query bursts between sleeps, the metadata-server
/// pattern of query traffic) precisely so this band is about *isolation*
/// — readers must not stall the miner — and not about raw core count.
pub const INGEST_UNDER_LOAD_FLOOR: f64 = 0.5;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_floor_tracks_cores() {
        // Plenty of cores: half of linear.
        assert_eq!(read_scaling_floor(4, 32), 2.0);
        assert_eq!(read_scaling_floor(16, 32), 8.0);
        // Fewer cores than readers: cores bound the expectation.
        assert_eq!(read_scaling_floor(16, 4), 2.0);
        // Single core: no-collapse floor, never below 0.5.
        assert_eq!(read_scaling_floor(1, 1), 0.5);
        assert_eq!(read_scaling_floor(4, 1), 0.5);
        assert_eq!(read_scaling_floor(16, 1), 0.5);
    }

    #[test]
    fn floors_are_sane_bands() {
        for readers in [1usize, 2, 4, 8, 16] {
            for cores in [1usize, 2, 4, 8, 64] {
                let f = read_scaling_floor(readers, cores);
                // The ingest floor doubles as the no-collapse floor, so it
                // bounds every scaling band from below too.
                assert!(f >= INGEST_UNDER_LOAD_FLOOR, "floor below no-collapse");
                assert!(f <= readers as f64, "floor above ideal linear scaling");
            }
        }
    }
}

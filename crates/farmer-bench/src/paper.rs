//! Reference values transcribed from the paper, printed alongside measured
//! results so every run is a paper-vs-measured comparison.

/// Table 3 — prefetching accuracy on the HP trace.
pub const TABLE3_FARMER_ACCURACY: f64 = 0.6404;
/// Table 3 — Nexus accuracy on the HP trace.
pub const TABLE3_NEXUS_ACCURACY: f64 = 0.4304;

/// Table 4 — space overhead in MB at `max_strength = 0.4`
/// (LLNL, INS, RES, HP). The paper's traces are orders of magnitude larger
/// than the synthetic ones, so only the *ordering* is expected to hold.
pub const TABLE4_SPACE_MB: [(&str, f64); 4] =
    [("LLNL", 98.4), ("INS", 1.4), ("RES", 2.5), ("HP", 9.8)];

/// §5.3 — FPA's cache-hit-ratio improvement over Nexus, percentage points,
/// per trace (HP is "the best among all traces").
pub const FIG7_IMPROVEMENT_PTS: [(&str, f64); 3] = [("HP", 13.0), ("INS", 7.8), ("RES", 3.1)];

/// §5.3/§7 — response-time improvements: FPA over Nexus up to 24 %, over
/// LRU up to 35 %.
pub const FIG8_VS_NEXUS_MAX: f64 = 0.24;
/// See [`FIG8_VS_NEXUS_MAX`].
pub const FIG8_VS_LRU_MAX: f64 = 0.35;

/// §5.2.1 — the weight sweep's winner: p = 0.7.
pub const FIG3_BEST_P: f64 = 0.7;

/// §5.2.3 — response time is stable below `max_strength ≈ 0.4` and
/// degrades above it.
pub const FIG6_KNEE: f64 = 0.4;

/// Table 2 — the DPA/IPA worked example (paths from Table 1).
/// `(pair, dpa, ipa)` where pair indexes (A,B), (A,C), (B,C).
pub const TABLE2: [(&str, f64, f64); 3] = [
    ("sim(A,B)", 5.0 / 7.0, 2.75 / 4.0),
    ("sim(A,C)", 1.0 / 7.0, 0.25 / 4.0),
    ("sim(B,C)", 1.0 / 7.0, 0.25 / 4.0),
];

/// Table 5 (excerpt) — cache hit ratios for the full attribute combination,
/// per trace, as reported in the paper.
pub const TABLE5_FULL_COMBO: [(&str, f64); 3] =
    [("HP", 0.493087), ("INS", 0.938839), ("RES", 0.438533)];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // sanity-checks transcribed paper values
    fn constants_sane() {
        assert!(TABLE3_FARMER_ACCURACY > TABLE3_NEXUS_ACCURACY);
        assert!(FIG8_VS_LRU_MAX > FIG8_VS_NEXUS_MAX);
        assert_eq!(TABLE4_SPACE_MB.len(), 4);
        for (_, dpa, ipa) in TABLE2 {
            assert!((0.0..=1.0).contains(&dpa));
            assert!((0.0..=1.0).contains(&ipa));
        }
    }

    #[test]
    fn hp_improvement_is_largest() {
        let hp = FIG7_IMPROVEMENT_PTS[0].1;
        for (_, v) in &FIG7_IMPROVEMENT_PTS[1..] {
            assert!(hp > *v);
        }
    }
}

//! Experiment implementations, one function per paper table/figure.
//!
//! Each function takes a `scale` factor applied to the preset trace sizes
//! (1.0 = the defaults DESIGN.md documents) and returns plain data; the
//! `src/bin/*` wrappers render tables. Keeping the logic here lets the
//! integration tests assert the paper's qualitative shapes directly.

use farmer_core::{AttrCombo, CorrelationSource, Farmer, FarmerConfig, PathMode};
use farmer_mds::{replay, ReplayConfig};
use farmer_prefetch::baselines::LruOnly;
use farmer_prefetch::{simulate, FpaPredictor, NexusPredictor, SimConfig};
use farmer_trace::stats::{figure1_rows, SuccessorStats};
use farmer_trace::{Trace, TraceFamily, WorkloadSpec};

/// Generate the preset trace for a family at the given scale.
pub fn trace_for(family: TraceFamily, scale: f64) -> Trace {
    WorkloadSpec::for_family(family).scaled(scale).generate()
}

/// The paper-default FARMER config for a trace (attribute base follows
/// path availability).
pub fn farmer_config_for(trace: &Trace) -> FarmerConfig {
    if trace.family.has_paths() {
        FarmerConfig::default()
    } else {
        FarmerConfig::pathless()
    }
}

// ---------------------------------------------------------------- Figure 1

/// Figure 1: inter-file successor probability per attribute filter.
pub fn fig1(scale: f64) -> Vec<(TraceFamily, Vec<SuccessorStats>)> {
    TraceFamily::ALL
        .into_iter()
        .map(|fam| {
            let trace = trace_for(fam, scale);
            (fam, figure1_rows(&trace))
        })
        .collect()
}

// ----------------------------------------------------------------- Table 2

/// One Table 2 row: measured DPA and IPA similarity for a labelled pair.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Row {
    /// Pair label ("sim(A,B)", …).
    pub pair: &'static str,
    /// Divided Path Algorithm similarity.
    pub dpa: f64,
    /// Integrated Path Algorithm similarity.
    pub ipa: f64,
}

/// Table 2: recompute the paper's worked DPA/IPA example.
pub fn table2() -> Vec<Table2Row> {
    use farmer_core::{similarity, Request};
    use farmer_trace::{DevId, FileId, HostId, PathInterner, ProcId, UserId};

    let mut interner = PathInterner::new();
    let paths = [
        interner.parse("/home/user1/paper/a"),
        interner.parse("/home/user1/paper/b"),
        interner.parse("/home/user2/c"),
    ];
    let req = |file: u32, uid: u32, pid: u32, host: u32| Request {
        file: FileId::new(file),
        uid: UserId::new(uid),
        pid: ProcId::new(pid),
        host: HostId::new(host),
        dev: DevId::new(0),
    };
    let reqs = [req(0, 1, 1, 1), req(1, 1, 2, 1), req(2, 2, 3, 2)];
    let combo = AttrCombo::hp_default();
    let pairs = [("sim(A,B)", 0, 1), ("sim(A,C)", 0, 2), ("sim(B,C)", 1, 2)];
    pairs
        .into_iter()
        .map(|(label, x, y)| Table2Row {
            pair: label,
            dpa: similarity(
                &reqs[x],
                Some(&paths[x]),
                &reqs[y],
                Some(&paths[y]),
                combo,
                PathMode::Dpa,
            ),
            ipa: similarity(
                &reqs[x],
                Some(&paths[x]),
                &reqs[y],
                Some(&paths[y]),
                combo,
                PathMode::Ipa,
            ),
        })
        .collect()
}

// ----------------------------------------------------------------- Figure 3

/// One Figure 3 series: hit ratio vs `max_strength` for a fixed weight p.
#[derive(Debug, Clone)]
pub struct Fig3Series {
    /// Trace family.
    pub family: TraceFamily,
    /// Weight p of this series.
    pub p: f64,
    /// `(max_strength, hit_ratio)` points.
    pub points: Vec<(f64, f64)>,
}

/// The p values Figure 3 plots.
pub const FIG3_P_VALUES: [f64; 4] = [0.0, 0.3, 0.7, 1.0];
/// The `max_strength` sweep Figure 3 plots.
pub const FIG3_THRESHOLDS: [f64; 7] = [0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8];

/// Figure 3: hit ratio as a function of `max_strength` for four weights,
/// per trace family.
pub fn fig3(scale: f64) -> Vec<Fig3Series> {
    let mut out = Vec::new();
    for fam in TraceFamily::ALL {
        let trace = trace_for(fam, scale);
        let sim_cfg = SimConfig::for_family(fam);
        for p in FIG3_P_VALUES {
            let mut points = Vec::with_capacity(FIG3_THRESHOLDS.len());
            for thr in FIG3_THRESHOLDS {
                let cfg = farmer_config_for(&trace).with_p(p).with_max_strength(thr);
                let mut fpa = FpaPredictor::new(cfg);
                let report = simulate(&trace, &mut fpa, sim_cfg);
                points.push((thr, report.hit_ratio()));
            }
            out.push(Fig3Series {
                family: fam,
                p,
                points,
            });
        }
    }
    out
}

/// The winning weight at the paper's operating threshold (max_strength =
/// 0.4, the validity default the rest of the evaluation uses). The paper's
/// §5.2.1 reads Figure 3 the same way: p = 0.7 peaks at the threshold the
/// system actually runs with.
pub fn fig3_best_p(series: &[Fig3Series], family: TraceFamily) -> f64 {
    series
        .iter()
        .filter(|s| s.family == family)
        .max_by(|a, b| {
            let at_default = |s: &Fig3Series| {
                s.points
                    .iter()
                    .find(|(t, _)| (*t - 0.4).abs() < 1e-9)
                    .map(|&(_, h)| h)
                    .unwrap_or(0.0)
            };
            at_default(a).total_cmp(&at_default(b))
        })
        .map(|s| s.p)
        .expect("family present")
}

// ----------------------------------------------------------------- Table 5

/// One Table 5 row: an attribute combination and its hit ratio.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Combination label (paper row format).
    pub combo: String,
    /// Measured cache hit ratio.
    pub hit_ratio: f64,
}

/// Table 5: hit ratio per attribute combination for one trace family.
/// HP sweeps {User, Process, Host, File path}; INS/RES sweep
/// {User, Process, Host, File ID}.
pub fn table5(family: TraceFamily, scale: f64) -> Vec<Table5Row> {
    let trace = trace_for(family, scale);
    let sim_cfg = SimConfig::for_family(family);
    let base = if family.has_paths() {
        AttrCombo::HP_BASE
    } else {
        AttrCombo::INS_BASE
    };
    AttrCombo::sweep(&base)
        .into_iter()
        .map(|combo| {
            let cfg = farmer_config_for(&trace).with_combo(combo);
            let mut fpa = FpaPredictor::new(cfg);
            let report = simulate(&trace, &mut fpa, sim_cfg);
            Table5Row {
                combo: combo.to_string(),
                hit_ratio: report.hit_ratio(),
            }
        })
        .collect()
}

// ----------------------------------------------------------------- Figure 6

/// Figure 6: average response time (ms) vs `max_strength` on the HP trace.
pub fn fig6(scale: f64) -> Vec<(f64, f64)> {
    let trace = trace_for(TraceFamily::Hp, scale);
    let replay_cfg = ReplayConfig::for_family(TraceFamily::Hp);
    (0..=10)
        .map(|i| {
            let thr = i as f64 / 10.0;
            let cfg = farmer_config_for(&trace).with_max_strength(thr);
            let report = replay(&trace, Box::new(FpaPredictor::new(cfg)), replay_cfg);
            (thr, report.avg_response_ms())
        })
        .collect()
}

// ----------------------------------------------------------------- Figure 7

/// One Figure 7 row: hit ratios of the three contenders on one trace.
#[derive(Debug, Clone, Copy)]
pub struct Fig7Row {
    /// Trace family.
    pub family: TraceFamily,
    /// Plain LRU (no prefetch).
    pub lru: f64,
    /// Nexus.
    pub nexus: f64,
    /// FPA.
    pub fpa: f64,
    /// Nexus prefetch accuracy.
    pub nexus_accuracy: f64,
    /// FPA prefetch accuracy.
    pub fpa_accuracy: f64,
}

/// Figure 7: cache-hit-ratio comparison (FPA vs Nexus vs LRU), all traces.
pub fn fig7(scale: f64) -> Vec<Fig7Row> {
    TraceFamily::ALL
        .into_iter()
        .map(|fam| {
            let trace = trace_for(fam, scale);
            let cfg = SimConfig::for_family(fam);
            let lru = simulate(&trace, &mut LruOnly, cfg);
            let nexus = simulate(&trace, &mut NexusPredictor::paper_default(), cfg);
            let mut fpa_pred = FpaPredictor::for_trace(&trace);
            let fpa = simulate(&trace, &mut fpa_pred, cfg);
            Fig7Row {
                family: fam,
                lru: lru.hit_ratio(),
                nexus: nexus.hit_ratio(),
                fpa: fpa.hit_ratio(),
                nexus_accuracy: nexus.prefetch_accuracy(),
                fpa_accuracy: fpa.prefetch_accuracy(),
            }
        })
        .collect()
}

// ----------------------------------------------------------------- Table 3

/// Table 3: prefetching accuracy on the HP trace (FARMER vs Nexus).
pub fn table3(scale: f64) -> (f64, f64) {
    let trace = trace_for(TraceFamily::Hp, scale);
    let cfg = SimConfig::for_family(TraceFamily::Hp);
    let nexus = simulate(&trace, &mut NexusPredictor::paper_default(), cfg);
    let fpa = simulate(&trace, &mut FpaPredictor::for_trace(&trace), cfg);
    (fpa.prefetch_accuracy(), nexus.prefetch_accuracy())
}

// ----------------------------------------------------------------- Figure 8

/// One Figure 8 row: average response times (ms) on one trace.
#[derive(Debug, Clone, Copy)]
pub struct Fig8Row {
    /// Trace family.
    pub family: TraceFamily,
    /// Plain LRU response.
    pub lru_ms: f64,
    /// Nexus response.
    pub nexus_ms: f64,
    /// FPA response.
    pub fpa_ms: f64,
}

/// The traces Figure 8 reports (LLNL, RES, HP).
pub const FIG8_FAMILIES: [TraceFamily; 3] = [TraceFamily::Llnl, TraceFamily::Res, TraceFamily::Hp];

/// Figure 8: average metadata response time, FPA vs Nexus vs LRU.
pub fn fig8(scale: f64) -> Vec<Fig8Row> {
    FIG8_FAMILIES
        .into_iter()
        .map(|fam| {
            let trace = trace_for(fam, scale);
            let cfg = ReplayConfig::for_family(fam);
            let lru = replay(&trace, Box::new(LruOnly), cfg);
            let nexus = replay(&trace, Box::new(NexusPredictor::paper_default()), cfg);
            let fpa = replay(&trace, Box::new(FpaPredictor::for_trace(&trace)), cfg);
            Fig8Row {
                family: fam,
                lru_ms: lru.avg_response_ms(),
                nexus_ms: nexus.avg_response_ms(),
                fpa_ms: fpa.avg_response_ms(),
            }
        })
        .collect()
}

// ----------------------------------------------------------------- Table 4

/// Table 4: FARMER model memory after mining each trace (bytes).
pub fn table4(scale: f64) -> Vec<(TraceFamily, usize)> {
    TraceFamily::ALL
        .into_iter()
        .map(|fam| {
            let trace = trace_for(fam, scale);
            let cfg = farmer_config_for(&trace); // max_strength = 0.4 default
            let farmer = Farmer::mine_trace(&trace, cfg);
            (fam, farmer.memory_bytes())
        })
        .collect()
}

// ----------------------------------------------------------------- Ablations

/// §7 reduction check: with p = 0 and no threshold, FPA's successor
/// *ordering* matches Nexus's for a sampled set of files. Returns the
/// fraction of sampled files whose top successor agrees.
pub fn reduction_p0_matches_nexus(scale: f64) -> f64 {
    let trace = trace_for(TraceFamily::Hp, scale);
    // Mine both models over the identical stream.
    let mut cfg = farmer_config_for(&trace);
    cfg.p = 0.0;
    cfg.max_strength = 0.0;
    cfg.combo = AttrCombo::EMPTY;
    cfg.prune_interval = 0;
    cfg.max_successors = 16;
    let farmer = Farmer::mine_trace(&trace, cfg);
    let mut nexus = NexusPredictor::paper_default();
    for e in &trace.events {
        let _ = farmer_prefetch::Predictor::on_access(&mut nexus, &trace, e);
    }

    let mut agree = 0usize;
    let mut total = 0usize;
    for fid in 0..trace.num_files().min(4000) {
        let file = farmer_trace::FileId::new(fid as u32);
        // `strongest` is the head-of-list query: one O(deg) scan instead of
        // building and sorting a whole CorrelatorList per probed file.
        let f_top = farmer.strongest(file, 0.0).map(|c| c.file);
        let n_top = nexus.successors(file).first().map(|&(f, _)| f);
        if let (Some(a), Some(b)) = (f_top, n_top) {
            total += 1;
            if a == b {
                agree += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        agree as f64 / total as f64
    }
}

/// DPA-vs-IPA ablation: hit ratios of the two path algorithms on HP.
pub fn ablation_dpa_vs_ipa(scale: f64) -> (f64, f64) {
    let trace = trace_for(TraceFamily::Hp, scale);
    let cfg = SimConfig::for_family(TraceFamily::Hp);
    let dpa = simulate(
        &trace,
        &mut FpaPredictor::new(farmer_config_for(&trace).with_path_mode(PathMode::Dpa)),
        cfg,
    );
    let ipa = simulate(
        &trace,
        &mut FpaPredictor::new(farmer_config_for(&trace).with_path_mode(PathMode::Ipa)),
        cfg,
    );
    (dpa.hit_ratio(), ipa.hit_ratio())
}

/// Window-size ablation on HP: `(window, hit_ratio)` rows.
pub fn ablation_window(scale: f64, windows: &[usize]) -> Vec<(usize, f64)> {
    let trace = trace_for(TraceFamily::Hp, scale);
    let sim_cfg = SimConfig::for_family(TraceFamily::Hp);
    windows
        .iter()
        .map(|&w| {
            let mut cfg = farmer_config_for(&trace);
            cfg.window = w;
            let report = simulate(&trace, &mut FpaPredictor::new(cfg), sim_cfg);
            (w, report.hit_ratio())
        })
        .collect()
}

/// §4.2 layout experiment: seeks and total I/O time for scattered vs
/// FARMER-grouped layouts on HP. Returns (scattered, grouped) stats.
pub fn layout_experiment(scale: f64) -> (farmer_mds::osd::OsdStats, farmer_mds::osd::OsdStats) {
    use farmer_mds::layout::{plan_layout, replay_reads, LayoutConfig};
    use farmer_mds::osd::OsdConfig;
    let trace = trace_for(TraceFamily::Hp, scale);
    let farmer = Farmer::mine_trace(&trace, farmer_config_for(&trace));
    let layout = plan_layout(&farmer, &trace, LayoutConfig::default());
    let scattered = replay_reads(&trace, None, OsdConfig::default());
    let grouped = replay_reads(&trace, Some(&layout), OsdConfig::default());
    (scattered, grouped)
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: f64 = 0.1; // fast test scale

    #[test]
    fn table2_matches_paper_exactly() {
        let rows = table2();
        for (row, (label, dpa, ipa)) in rows.iter().zip(crate::paper::TABLE2) {
            assert_eq!(row.pair, label);
            assert!((row.dpa - dpa).abs() < 1e-12, "{label} dpa {}", row.dpa);
            assert!((row.ipa - ipa).abs() < 1e-12, "{label} ipa {}", row.ipa);
        }
    }

    #[test]
    fn fig1_none_filter_lowest_everywhere() {
        for (fam, rows) in fig1(S) {
            let none = rows
                .iter()
                .find(|r| r.filter == farmer_trace::stats::StreamFilter::None)
                .unwrap()
                .probability;
            let best = rows.iter().map(|r| r.probability).fold(0.0, f64::max);
            assert!(best >= none, "{fam:?}: none must be lowest");
        }
    }

    #[test]
    fn fig7_fpa_wins_everywhere() {
        for row in fig7(0.2) {
            assert!(row.fpa > row.nexus, "{:?}", row.family);
            assert!(row.nexus > row.lru - 0.02, "{:?}", row.family);
        }
    }

    #[test]
    fn table3_direction() {
        let (fpa, nexus) = table3(0.2);
        assert!(fpa > nexus, "FPA {fpa} vs Nexus {nexus}");
    }

    #[test]
    fn table4_ordering_follows_trace_scale() {
        let rows = table4(S);
        let get = |f: TraceFamily| rows.iter().find(|(x, _)| *x == f).unwrap().1;
        assert!(get(TraceFamily::Llnl) > get(TraceFamily::Ins));
        assert!(get(TraceFamily::Hp) > get(TraceFamily::Ins));
    }

    #[test]
    fn reduction_p0_mostly_agrees_with_nexus() {
        let agreement = reduction_p0_matches_nexus(S);
        assert!(agreement > 0.8, "agreement {agreement}");
    }

    #[test]
    fn layout_groups_save_seeks() {
        let (scattered, grouped) = layout_experiment(S);
        assert!(grouped.seeks < scattered.seeks);
    }
}

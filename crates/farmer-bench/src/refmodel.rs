//! The baked-in reference model: expected bands per evaluation-matrix
//! cell.
//!
//! Every cell of [`crate::evalmatrix`] has a checked-in expected band for
//! its deterministic quality metrics (hit ratio, prefetch accuracy, mean
//! response time) and a resident-memory ceiling. The whole pipeline —
//! synthetic generators, miner, query layer, cache and MDS simulators —
//! is deterministic for a fixed scale, so the bands are deliberately
//! tight: they exist to catch *regressions in model quality or simulator
//! behaviour*, not to absorb noise. Drive throughput (`events_per_sec`)
//! is machine-dependent and never banded.
//!
//! Two profiles are maintained: [`Profile::Quick`] is what the CI smoke
//! job checks (`eval_matrix --quick --check`); [`Profile::Full`] matches
//! the checked-in `BENCH_eval.json`.
//!
//! **Recalibrating** (after an intentional change to generators, miner or
//! predictors): run `eval_matrix --calibrate` (and `--quick --calibrate`)
//! and replace the matching table below with the emitted rows — the
//! margins (±25 % relative, floor ±0.05 absolute on ratios; −40 %/+60 %
//! on response; 2× on memory) are applied by the calibration emitter, so
//! the tables stay mechanical. The `failure` family additionally has a
//! durability table per profile ([`FailureBand`]; exact recovery counts,
//! banded replay volume and hit-ratio dip), emitted by the same
//! `--calibrate` runs via [`calibrate_failure`].

use crate::evalmatrix::Cell;

/// Version of the `BENCH_eval.json` record layout. Bump on any field
/// addition, removal or rename so downstream tooling can dispatch. Lives
/// next to the band tables (and is grepped against the checked-in
/// `BENCH_eval.json` by CI) so a record regenerated from stale code fails
/// fast.
///
/// v2: online/frozen/capped miner modes; per-cell `refreshes` and
/// `miner_evictions`; top-level `fpa_modes` and `adaptation`.
///
/// v3: per-cell service-time quantiles (`response_p{50,95,99}_ms` and the
/// matching per-phase vectors) from the replay's log2-bucketed histogram;
/// top-level `obs` dump of the instrumented demo run's metric registry.
///
/// v4: the correlated-`failure` scenario family — per-cell `recoveries`,
/// `recovery_events`, `recovery_ms`, `hit_ratio_dip` and `wal_bytes`;
/// top-level `failure_modes` axis and `obs_recovery` dump of an
/// instrumented crash/recover demo (`wal.*` scope).
///
/// v5: checkpoint-anchored recovery — the `ckpt` failure mode (checkpoint
/// images + log compaction, suffix-only replay) and per-failure-cell
/// `recovered_events` / `replay_fraction`: `recovery_events` now counts
/// only the replayed WAL suffix, `recovered_events` the full recovered
/// total, and their ratio is the banded O(log) → O(suffix) comparison.
pub const SCHEMA_VERSION: u32 = 5;

/// Which band table a run is checked against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// The CI smoke profile (`--quick`).
    Quick,
    /// The full checked-in matrix.
    Full,
}

impl Profile {
    /// Stable name used in the JSON record.
    pub fn name(self) -> &'static str {
        match self {
            Profile::Quick => "quick",
            Profile::Full => "full",
        }
    }

    /// The scale factor this profile's bands were calibrated at.
    pub fn scale(self) -> f64 {
        match self {
            Profile::Quick => QUICK_SCALE,
            Profile::Full => 1.0,
        }
    }
}

/// The `--quick` scale factor (shared by the binary and the band tables).
pub const QUICK_SCALE: f64 = 0.25;

/// An inclusive expected range.
#[derive(Debug, Clone, Copy)]
pub struct Band {
    /// Lower bound (inclusive).
    pub lo: f64,
    /// Upper bound (inclusive).
    pub hi: f64,
}

impl Band {
    /// Does `v` fall inside the band?
    pub fn contains(self, v: f64) -> bool {
        v >= self.lo && v <= self.hi
    }
}

/// The reference bands of one matrix cell.
#[derive(Debug, Clone, Copy)]
pub struct CellBand {
    /// Scenario name.
    pub scenario: &'static str,
    /// Miner mode.
    pub mode: &'static str,
    /// Predictor name.
    pub predictor: &'static str,
    /// Expected demand hit ratio.
    pub hit_ratio: Band,
    /// Expected prefetch accuracy.
    pub prefetch_accuracy: Band,
    /// Expected mean response time (ms).
    pub avg_response_ms: Band,
    /// Resident-memory ceiling (bytes).
    pub memory_hi: u64,
}

/// The durability bands of one `failure`-family cell, on top of its
/// regular [`CellBand`]: kill counts are part of the plan (exact), the
/// replayed-event volume and the post-recovery hit-ratio dip are banded.
/// Wall-clock recovery time is machine-dependent and never banded.
#[derive(Debug, Clone, Copy)]
pub struct FailureBand {
    /// Failure mode (one of [`crate::faults::FAILURE_MODES`]).
    pub mode: &'static str,
    /// Exact expected crash/recover cycles (the kill plan is
    /// deterministic; anything else is a harness bug, not drift).
    pub recoveries: u64,
    /// Expected logged events *replayed* (WAL suffix) across all
    /// recoveries of one leg.
    pub recovery_events: Band,
    /// Expected replayed share of the recovered state
    /// (`recovery_events / recovered_events`): pinned near 1.0 for
    /// genesis-replay modes, well below it for checkpoint-anchored
    /// recovery — the band that asserts the O(log) → O(suffix) collapse.
    pub replay_fraction: Band,
    /// Expected worst per-kill demand hit-ratio dip.
    pub hit_ratio_dip: Band,
}

/// The band table for `profile`.
pub fn bands(profile: Profile) -> &'static [CellBand] {
    match profile {
        Profile::Quick => QUICK_BANDS,
        Profile::Full => FULL_BANDS,
    }
}

/// The failure-family durability band table for `profile`.
pub fn failure_bands(profile: Profile) -> &'static [FailureBand] {
    match profile {
        Profile::Quick => FAILURE_QUICK,
        Profile::Full => FAILURE_FULL,
    }
}

/// Look up the durability band of one failure mode.
pub fn find_failure(profile: Profile, mode: &str) -> Option<&'static FailureBand> {
    failure_bands(profile).iter().find(|b| b.mode == mode)
}

/// Look up the band of one cell.
pub fn find(
    profile: Profile,
    scenario: &str,
    mode: &str,
    predictor: &str,
) -> Option<&'static CellBand> {
    bands(profile)
        .iter()
        .find(|b| b.scenario == scenario && b.mode == mode && b.predictor == predictor)
}

/// Check every cell against the profile's bands.
///
/// Returns the number of in-band cells, or the full list of violations:
/// out-of-band metrics, cells with no reference band, and stale bands
/// with no matching cell (so the table cannot silently rot as the matrix
/// evolves).
pub fn check(cells: &[Cell], profile: Profile) -> Result<usize, Vec<String>> {
    let mut violations = Vec::new();
    for c in cells {
        // Failure-family durability bands apply regardless of whether the
        // cell's regular quality band exists yet.
        if c.scenario == "failure" {
            if let Some(f) = find_failure(profile, c.mode) {
                if c.recoveries != f.recoveries {
                    violations.push(format!(
                        "failure/{}: recoveries = {} but the kill plan expects exactly {}",
                        c.mode, c.recoveries, f.recoveries
                    ));
                }
                for (metric, v, band) in [
                    (
                        "recovery_events",
                        c.recovery_events as f64,
                        f.recovery_events,
                    ),
                    ("replay_fraction", c.replay_fraction, f.replay_fraction),
                    ("hit_ratio_dip", c.hit_ratio_dip, f.hit_ratio_dip),
                ] {
                    if !band.contains(v) {
                        violations.push(format!(
                            "failure/{}: {metric} = {v:.4} outside [{:.4}, {:.4}]",
                            c.mode, band.lo, band.hi
                        ));
                    }
                }
            } else {
                violations.push(format!(
                    "failure/{}: no durability band (run --calibrate and check in the table)",
                    c.mode
                ));
            }
        }
        let Some(b) = find(profile, c.scenario, c.mode, c.predictor) else {
            violations.push(format!(
                "{}/{}/{}: no reference band (run --calibrate and check in the new table)",
                c.scenario, c.mode, c.predictor
            ));
            continue;
        };
        let mut bad = |metric: &str, v: f64, band: Band| {
            if !band.contains(v) {
                violations.push(format!(
                    "{}/{}/{}: {metric} = {v:.4} outside [{:.4}, {:.4}]",
                    c.scenario, c.mode, c.predictor, band.lo, band.hi
                ));
            }
        };
        bad("hit_ratio", c.hit_ratio, b.hit_ratio);
        bad(
            "prefetch_accuracy",
            c.prefetch_accuracy,
            b.prefetch_accuracy,
        );
        bad("avg_response_ms", c.avg_response_ms, b.avg_response_ms);
        if c.memory_bytes as u64 > b.memory_hi {
            violations.push(format!(
                "{}/{}/{}: memory_bytes = {} exceeds ceiling {}",
                c.scenario, c.mode, c.predictor, c.memory_bytes, b.memory_hi
            ));
        }
    }
    for b in bands(profile) {
        if !cells
            .iter()
            .any(|c| c.scenario == b.scenario && c.mode == b.mode && c.predictor == b.predictor)
        {
            violations.push(format!(
                "{}/{}/{}: stale reference band (no such cell was measured)",
                b.scenario, b.mode, b.predictor
            ));
        }
    }
    // Only cross-check durability-band staleness when the run included
    // the failure family at all — a scenario-subset run must not trip it.
    if cells.iter().any(|c| c.scenario == "failure") {
        for f in failure_bands(profile) {
            if !cells
                .iter()
                .any(|c| c.scenario == "failure" && c.mode == f.mode)
            {
                violations.push(format!(
                    "failure/{}: stale durability band (no such cell was measured)",
                    f.mode
                ));
            }
        }
    }
    if violations.is_empty() {
        Ok(cells.len())
    } else {
        Err(violations)
    }
}

/// Emit a refreshed band table (Rust source) from measured cells, with
/// the standard margins applied. Paste the output over the matching
/// `QUICK_BANDS`/`FULL_BANDS` table after an intentional behaviour
/// change.
pub fn calibrate(cells: &[Cell]) -> String {
    // Always emit a valid f64 literal (a bare "0" would type-error).
    fn lit(v: f64) -> String {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    }
    let ratio_band = |v: f64| {
        let m = (0.25 * v).max(0.05);
        (
            ((v - m).max(0.0) * 1000.0).floor() / 1000.0,
            ((v + m).min(1.0) * 1000.0).ceil() / 1000.0,
        )
    };
    let mut out = String::from("[\n");
    for c in cells {
        let (hlo, hhi) = ratio_band(c.hit_ratio);
        let (alo, ahi) = ratio_band(c.prefetch_accuracy);
        let rlo = (c.avg_response_ms * 0.6 * 1000.0).floor() / 1000.0;
        let rhi = (c.avg_response_ms * 1.6 * 1000.0).ceil() / 1000.0;
        out.push_str(&format!(
            "    cell(\"{}\", \"{}\", \"{}\", ({}, {}), ({}, {}), ({}, {}), {}),\n",
            c.scenario,
            c.mode,
            c.predictor,
            lit(hlo),
            lit(hhi),
            lit(alo),
            lit(ahi),
            lit(rlo),
            lit(rhi),
            2 * c.memory_bytes as u64
        ));
    }
    out.push_str("];\n");
    out
}

/// Emit a refreshed durability band table (Rust source) from the measured
/// `failure`-family cells. Recoveries are exact (the kill plan is
/// deterministic); replayed events get the standard ±25 % margin; the
/// replay fraction gets ±max(10 % relative, 0.02 absolute) clamped to
/// [0, 1] (it is a ratio of two deterministic counts, so the band only
/// guards against code drift); the hit-ratio dip gets ±max(25 % relative,
/// 0.05 absolute), clamped to [−1, 1] — a dip can legitimately be
/// negative when the post-kill window lands on an easier stretch.
pub fn calibrate_failure(cells: &[Cell]) -> String {
    fn lit(v: f64) -> String {
        let s = format!("{v}");
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    }
    let mut out = String::from("[\n");
    for c in cells.iter().filter(|c| c.scenario == "failure") {
        let ev = c.recovery_events as f64;
        let (elo, ehi) = ((ev * 0.75).floor(), (ev * 1.25).ceil());
        let fm = (0.10 * c.replay_fraction).max(0.02);
        let flo = ((c.replay_fraction - fm).max(0.0) * 1000.0).floor() / 1000.0;
        let fhi = ((c.replay_fraction + fm).min(1.0) * 1000.0).ceil() / 1000.0;
        let m = (0.25 * c.hit_ratio_dip.abs()).max(0.05);
        let dlo = ((c.hit_ratio_dip - m).max(-1.0) * 1000.0).floor() / 1000.0;
        let dhi = ((c.hit_ratio_dip + m).min(1.0) * 1000.0).ceil() / 1000.0;
        out.push_str(&format!(
            "    fcell(\"{}\", {}, ({}, {}), ({}, {}), ({}, {})),\n",
            c.mode,
            c.recoveries,
            lit(elo),
            lit(ehi),
            lit(flo),
            lit(fhi),
            lit(dlo),
            lit(dhi),
        ));
    }
    out.push_str("];\n");
    out
}

/// Shorthand constructor keeping the tables one row per cell.
const fn cell(
    scenario: &'static str,
    mode: &'static str,
    predictor: &'static str,
    hit: (f64, f64),
    acc: (f64, f64),
    resp: (f64, f64),
    memory_hi: u64,
) -> CellBand {
    CellBand {
        scenario,
        mode,
        predictor,
        hit_ratio: Band {
            lo: hit.0,
            hi: hit.1,
        },
        prefetch_accuracy: Band {
            lo: acc.0,
            hi: acc.1,
        },
        avg_response_ms: Band {
            lo: resp.0,
            hi: resp.1,
        },
        memory_hi,
    }
}

/// Shorthand constructor for the durability band tables.
const fn fcell(
    mode: &'static str,
    recoveries: u64,
    events: (f64, f64),
    frac: (f64, f64),
    dip: (f64, f64),
) -> FailureBand {
    FailureBand {
        mode,
        recoveries,
        recovery_events: Band {
            lo: events.0,
            hi: events.1,
        },
        replay_fraction: Band {
            lo: frac.0,
            hi: frac.1,
        },
        hit_ratio_dip: Band {
            lo: dip.0,
            hi: dip.1,
        },
    }
}

/// Durability bands for the CI smoke profile. Generated by
/// `eval_matrix --quick --calibrate`.
static FAILURE_QUICK: &[FailureBand] = &[
    fcell("kill50", 1, (6006.0, 10010.0), (0.9, 1.0), (0.002, 0.103)),
    fcell(
        "kill50torn",
        1,
        (6005.0, 10009.0),
        (0.9, 1.0),
        (0.002, 0.103),
    ),
    fcell("kill25x3", 3, (18009.0, 30015.0), (0.9, 1.0), (0.09, 0.191)),
    fcell("ckpt", 1, (1463.0, 2439.0), (0.219, 0.268), (0.002, 0.103)),
];

/// Durability bands for the full profile. Generated by
/// `eval_matrix --calibrate`.
static FAILURE_FULL: &[FailureBand] = &[
    fcell("kill50", 1, (22878.0, 38130.0), (0.9, 1.0), (-0.05, 0.05)),
    fcell(
        "kill50torn",
        1,
        (22877.0, 38129.0),
        (0.9, 1.0),
        (-0.05, 0.05),
    ),
    fcell(
        "kill25x3",
        3,
        (68628.0, 114380.0),
        (0.9, 1.0),
        (-0.027, 0.074),
    ),
    fcell("ckpt", 1, (5679.0, 9465.0), (0.223, 0.274), (-0.05, 0.05)),
];

/// Bands for the CI smoke profile (`--quick`, scale [`QUICK_SCALE`]).
/// Generated by `eval_matrix --quick --calibrate`.
#[allow(clippy::approx_constant)] // mechanical --calibrate output; any band may land near a constant
static QUICK_BANDS: &[CellBand] = &[
    cell(
        "base",
        "batch",
        "FARMER",
        (0.582, 0.971),
        (0.381, 0.636),
        (0.339, 0.905),
        6540960,
    ),
    cell(
        "base",
        "sharded1",
        "FARMER",
        (0.582, 0.971),
        (0.381, 0.636),
        (0.339, 0.905),
        8377912,
    ),
    cell(
        "base",
        "sharded4",
        "FARMER",
        (0.582, 0.971),
        (0.381, 0.636),
        (0.339, 0.905),
        8380840,
    ),
    cell(
        "base",
        "frozen",
        "FARMER",
        (0.445, 0.744),
        (0.373, 0.623),
        (0.577, 1.54),
        8448376,
    ),
    cell(
        "base",
        "online8",
        "FARMER",
        (0.477, 0.797),
        (0.346, 0.578),
        (0.515, 1.375),
        8581944,
    ),
    cell(
        "base",
        "online64",
        "FARMER",
        (0.486, 0.811),
        (0.345, 0.576),
        (0.496, 1.325),
        8625592,
    ),
    cell(
        "base",
        "capped1",
        "FARMER",
        (0.442, 0.737),
        (0.459, 0.767),
        (0.585, 1.563),
        1120168,
    ),
    cell(
        "base",
        "capped4",
        "FARMER",
        (0.556, 0.928),
        (0.367, 0.614),
        (0.373, 0.997),
        4878952,
    ),
    cell(
        "base",
        "online64capped",
        "FARMER",
        (0.429, 0.716),
        (0.452, 0.755),
        (0.613, 1.637),
        2473272,
    ),
    cell(
        "base",
        "self",
        "Nexus",
        (0.398, 0.664),
        (0.158, 0.265),
        (0.746, 1.991),
        1664416,
    ),
    cell(
        "base",
        "self",
        "ProbGraph",
        (0.384, 0.642),
        (0.141, 0.242),
        (0.716, 1.912),
        1359216,
    ),
    cell(
        "base",
        "self",
        "SdGraph",
        (0.284, 0.475),
        (0.046, 0.147),
        (0.984, 2.625),
        2424656,
    ),
    cell(
        "base",
        "self",
        "LRU",
        (0.382, 0.638),
        (0.0, 0.05),
        (0.716, 1.911),
        0,
    ),
    cell(
        "drift",
        "batch",
        "FARMER",
        (0.556, 0.928),
        (0.466, 0.778),
        (0.436, 1.165),
        10220064,
    ),
    cell(
        "drift",
        "sharded1",
        "FARMER",
        (0.556, 0.928),
        (0.466, 0.778),
        (0.436, 1.165),
        12963160,
    ),
    cell(
        "drift",
        "sharded4",
        "FARMER",
        (0.556, 0.928),
        (0.466, 0.778),
        (0.436, 1.165),
        12966088,
    ),
    cell(
        "drift",
        "frozen",
        "FARMER",
        (0.376, 0.628),
        (0.209, 0.35),
        (0.765, 2.042),
        13017592,
    ),
    cell(
        "drift",
        "online8",
        "FARMER",
        (0.406, 0.678),
        (0.332, 0.554),
        (0.699, 1.865),
        13181848,
    ),
    cell(
        "drift",
        "online64",
        "FARMER",
        (0.425, 0.71),
        (0.341, 0.569),
        (0.654, 1.747),
        13322168,
    ),
    cell(
        "drift",
        "capped1",
        "FARMER",
        (0.394, 0.659),
        (0.494, 0.825),
        (0.716, 1.912),
        1112248,
    ),
    cell(
        "drift",
        "capped4",
        "FARMER",
        (0.48, 0.802),
        (0.42, 0.701),
        (0.55, 1.469),
        4882688,
    ),
    cell(
        "drift",
        "online64capped",
        "FARMER",
        (0.402, 0.67),
        (0.413, 0.689),
        (0.706, 1.885),
        3366440,
    ),
    cell(
        "drift",
        "self",
        "Nexus",
        (0.338, 0.565),
        (0.088, 0.189),
        (0.937, 2.5),
        2524576,
    ),
    cell(
        "drift",
        "self",
        "ProbGraph",
        (0.346, 0.578),
        (0.082, 0.183),
        (0.863, 2.303),
        1509040,
    ),
    cell(
        "drift",
        "self",
        "SdGraph",
        (0.289, 0.483),
        (0.043, 0.144),
        (1.019, 2.72),
        3673920,
    ),
    cell(
        "drift",
        "self",
        "LRU",
        (0.374, 0.625),
        (0.0, 0.05),
        (0.771, 2.057),
        0,
    ),
    cell(
        "tenants",
        "batch",
        "FARMER",
        (0.268, 0.448),
        (0.452, 0.755),
        (0.721, 1.925),
        9622800,
    ),
    cell(
        "tenants",
        "sharded1",
        "FARMER",
        (0.268, 0.448),
        (0.452, 0.755),
        (0.721, 1.925),
        12374840,
    ),
    cell(
        "tenants",
        "sharded4",
        "FARMER",
        (0.268, 0.448),
        (0.452, 0.755),
        (0.721, 1.925),
        12377768,
    ),
    cell(
        "tenants",
        "frozen",
        "FARMER",
        (0.163, 0.273),
        (0.438, 0.732),
        (0.893, 2.384),
        12458264,
    ),
    cell(
        "tenants",
        "online8",
        "FARMER",
        (0.19, 0.318),
        (0.427, 0.713),
        (0.847, 2.261),
        12643192,
    ),
    cell(
        "tenants",
        "online64",
        "FARMER",
        (0.197, 0.33),
        (0.429, 0.717),
        (0.834, 2.226),
        12652952,
    ),
    cell(
        "tenants",
        "capped1",
        "FARMER",
        (0.176, 0.294),
        (0.574, 0.957),
        (0.867, 2.313),
        982712,
    ),
    cell(
        "tenants",
        "capped4",
        "FARMER",
        (0.239, 0.4),
        (0.438, 0.731),
        (0.762, 2.033),
        4059512,
    ),
    cell(
        "tenants",
        "online64capped",
        "FARMER",
        (0.168, 0.281),
        (0.563, 0.939),
        (0.882, 2.354),
        2938456,
    ),
    cell(
        "tenants",
        "self",
        "Nexus",
        (0.148, 0.249),
        (0.018, 0.119),
        (0.938, 2.502),
        2570592,
    ),
    cell(
        "tenants",
        "self",
        "ProbGraph",
        (0.112, 0.213),
        (0.019, 0.12),
        (0.975, 2.603),
        1676336,
    ),
    cell(
        "tenants",
        "self",
        "SdGraph",
        (0.1, 0.201),
        (0.0, 0.088),
        (0.999, 2.667),
        3740672,
    ),
    cell(
        "tenants",
        "self",
        "LRU",
        (0.123, 0.224),
        (0.0, 0.05),
        (0.954, 2.546),
        0,
    ),
    cell(
        "storm",
        "batch",
        "FARMER",
        (0.627, 1.0),
        (0.405, 0.676),
        (0.479, 1.28),
        10089712,
    ),
    cell(
        "storm",
        "sharded1",
        "FARMER",
        (0.627, 1.0),
        (0.405, 0.676),
        (0.479, 1.28),
        12836272,
    ),
    cell(
        "storm",
        "sharded4",
        "FARMER",
        (0.627, 1.0),
        (0.405, 0.676),
        (0.479, 1.28),
        12839200,
    ),
    cell(
        "storm",
        "frozen",
        "FARMER",
        (0.39, 0.651),
        (0.305, 0.51),
        (0.71, 1.896),
        12922864,
    ),
    cell(
        "storm",
        "online8",
        "FARMER",
        (0.414, 0.691),
        (0.295, 0.493),
        (0.695, 1.854),
        13049072,
    ),
    cell(
        "storm",
        "online64",
        "FARMER",
        (0.425, 0.709),
        (0.297, 0.496),
        (0.671, 1.791),
        13075184,
    ),
    cell(
        "storm",
        "capped1",
        "FARMER",
        (0.37, 0.619),
        (0.491, 0.819),
        (0.714, 1.905),
        1083760,
    ),
    cell(
        "storm",
        "capped4",
        "FARMER",
        (0.491, 0.82),
        (0.381, 0.637),
        (0.605, 1.614),
        4262752,
    ),
    cell(
        "storm",
        "online64capped",
        "FARMER",
        (0.362, 0.604),
        (0.453, 0.756),
        (0.72, 1.921),
        3037856,
    ),
    cell(
        "storm",
        "self",
        "Nexus",
        (0.386, 0.645),
        (0.165, 0.277),
        (0.786, 2.099),
        2480832,
    ),
    cell(
        "storm",
        "self",
        "ProbGraph",
        (0.37, 0.618),
        (0.182, 0.305),
        (0.763, 2.036),
        1501088,
    ),
    cell(
        "storm",
        "self",
        "SdGraph",
        (0.32, 0.535),
        (0.072, 0.173),
        (0.929, 2.48),
        3607360,
    ),
    cell(
        "storm",
        "self",
        "LRU",
        (0.327, 0.547),
        (0.0, 0.05),
        (0.837, 2.235),
        0,
    ),
    cell(
        "churn",
        "batch",
        "FARMER",
        (0.582, 0.971),
        (0.405, 0.677),
        (0.548, 1.462),
        5499552,
    ),
    cell(
        "churn",
        "sharded1",
        "FARMER",
        (0.582, 0.971),
        (0.405, 0.677),
        (0.548, 1.462),
        7012304,
    ),
    cell(
        "churn",
        "sharded4",
        "FARMER",
        (0.582, 0.971),
        (0.405, 0.677),
        (0.548, 1.462),
        7015360,
    ),
    cell(
        "churn",
        "frozen",
        "FARMER",
        (0.451, 0.753),
        (0.405, 0.676),
        (0.812, 2.167),
        7074304,
    ),
    cell(
        "churn",
        "online8",
        "FARMER",
        (0.479, 0.799),
        (0.361, 0.603),
        (0.743, 1.984),
        7167952,
    ),
    cell(
        "churn",
        "online64",
        "FARMER",
        (0.487, 0.812),
        (0.36, 0.601),
        (0.724, 1.933),
        7268336,
    ),
    cell(
        "churn",
        "capped1",
        "FARMER",
        (0.46, 0.767),
        (0.495, 0.826),
        (0.786, 2.097),
        1125680,
    ),
    cell(
        "churn",
        "capped4",
        "FARMER",
        (0.565, 0.943),
        (0.399, 0.666),
        (0.569, 1.52),
        4713536,
    ),
    cell(
        "churn",
        "online64capped",
        "FARMER",
        (0.443, 0.74),
        (0.458, 0.764),
        (0.831, 2.217),
        2299504,
    ),
    cell(
        "churn",
        "self",
        "Nexus",
        (0.399, 0.666),
        (0.16, 0.268),
        (1.192, 3.18),
        1441152,
    ),
    cell(
        "churn",
        "self",
        "ProbGraph",
        (0.395, 0.659),
        (0.135, 0.236),
        (0.984, 2.625),
        1071488,
    ),
    cell(
        "churn",
        "self",
        "SdGraph",
        (0.308, 0.515),
        (0.072, 0.173),
        (1.539, 4.107),
        2117664,
    ),
    cell(
        "churn",
        "self",
        "LRU",
        (0.399, 0.666),
        (0.0, 0.05),
        (0.954, 2.545),
        0,
    ),
    cell(
        "failure",
        "kill50",
        "FARMER",
        (0.485, 0.81),
        (0.36, 0.602),
        (0.728, 1.942),
        7185840,
    ),
    cell(
        "failure",
        "kill50torn",
        "FARMER",
        (0.485, 0.81),
        (0.361, 0.602),
        (0.728, 1.942),
        7185552,
    ),
    cell(
        "failure",
        "kill25x3",
        "FARMER",
        (0.483, 0.806),
        (0.362, 0.604),
        (0.755, 2.015),
        7157712,
    ),
    cell(
        "failure",
        "ckpt",
        "FARMER",
        (0.485, 0.81),
        (0.36, 0.602),
        (0.728, 1.942),
        6952680,
    ),
];

/// Bands for the full checked-in matrix (scale 1.0).
/// Generated by `eval_matrix --calibrate`.
#[allow(clippy::approx_constant)] // mechanical --calibrate output; any band may land near a constant
static FULL_BANDS: &[CellBand] = &[
    cell(
        "base",
        "batch",
        "FARMER",
        (0.595, 0.992),
        (0.329, 0.55),
        (0.312, 0.834),
        13362704,
    ),
    cell(
        "base",
        "sharded1",
        "FARMER",
        (0.595, 0.992),
        (0.329, 0.55),
        (0.312, 0.834),
        17275960,
    ),
    cell(
        "base",
        "sharded4",
        "FARMER",
        (0.595, 0.992),
        (0.329, 0.55),
        (0.312, 0.834),
        17278888,
    ),
    cell(
        "base",
        "frozen",
        "FARMER",
        (0.479, 0.8),
        (0.319, 0.533),
        (0.518, 1.383),
        17589720,
    ),
    cell(
        "base",
        "online8",
        "FARMER",
        (0.514, 0.858),
        (0.316, 0.527),
        (0.45, 1.203),
        17962456,
    ),
    cell(
        "base",
        "online64",
        "FARMER",
        (0.528, 0.882),
        (0.317, 0.53),
        (0.42, 1.122),
        18014520,
    ),
    cell(
        "base",
        "capped1",
        "FARMER",
        (0.439, 0.733),
        (0.464, 0.775),
        (0.588, 1.57),
        1187376,
    ),
    cell(
        "base",
        "capped4",
        "FARMER",
        (0.514, 0.859),
        (0.288, 0.481),
        (0.455, 1.216),
        4914280,
    ),
    cell(
        "base",
        "online64capped",
        "FARMER",
        (0.426, 0.712),
        (0.433, 0.724),
        (0.62, 1.655),
        3532520,
    ),
    cell(
        "base",
        "self",
        "Nexus",
        (0.441, 0.736),
        (0.195, 0.326),
        (0.701, 1.872),
        3412704,
    ),
    cell(
        "base",
        "self",
        "ProbGraph",
        (0.378, 0.632),
        (0.15, 0.252),
        (0.748, 1.997),
        4699280,
    ),
    cell(
        "base",
        "self",
        "SdGraph",
        (0.247, 0.413),
        (0.026, 0.127),
        (1.068, 2.851),
        4991360,
    ),
    cell(
        "base",
        "self",
        "LRU",
        (0.371, 0.62),
        (0.0, 0.05),
        (0.751, 2.005),
        0,
    ),
    cell(
        "drift",
        "batch",
        "FARMER",
        (0.575, 0.959),
        (0.329, 0.55),
        (0.368, 0.983),
        21641304,
    ),
    cell(
        "drift",
        "sharded1",
        "FARMER",
        (0.575, 0.959),
        (0.329, 0.55),
        (0.368, 0.983),
        23732568,
    ),
    cell(
        "drift",
        "sharded4",
        "FARMER",
        (0.575, 0.959),
        (0.329, 0.55),
        (0.368, 0.983),
        27810760,
    ),
    cell(
        "drift",
        "frozen",
        "FARMER",
        (0.378, 0.632),
        (0.266, 0.445),
        (0.747, 1.995),
        24501312,
    ),
    cell(
        "drift",
        "online8",
        "FARMER",
        (0.441, 0.736),
        (0.299, 0.5),
        (0.614, 1.64),
        22536656,
    ),
    cell(
        "drift",
        "online64",
        "FARMER",
        (0.478, 0.798),
        (0.305, 0.51),
        (0.534, 1.426),
        24602504,
    ),
    cell(
        "drift",
        "capped1",
        "FARMER",
        (0.387, 0.647),
        (0.436, 0.727),
        (0.724, 1.933),
        1194800,
    ),
    cell(
        "drift",
        "capped4",
        "FARMER",
        (0.443, 0.74),
        (0.255, 0.427),
        (0.609, 1.625),
        5009624,
    ),
    cell(
        "drift",
        "online64capped",
        "FARMER",
        (0.412, 0.688),
        (0.414, 0.691),
        (0.663, 1.771),
        1981816,
    ),
    cell(
        "drift",
        "self",
        "Nexus",
        (0.348, 0.582),
        (0.096, 0.197),
        (0.996, 2.658),
        5416384,
    ),
    cell(
        "drift",
        "self",
        "ProbGraph",
        (0.341, 0.569),
        (0.082, 0.183),
        (0.891, 2.377),
        5295264,
    ),
    cell(
        "drift",
        "self",
        "SdGraph",
        (0.228, 0.381),
        (0.014, 0.115),
        (1.131, 3.017),
        7920352,
    ),
    cell(
        "drift",
        "self",
        "LRU",
        (0.37, 0.617),
        (0.0, 0.05),
        (0.768, 2.051),
        0,
    ),
    cell(
        "tenants",
        "batch",
        "FARMER",
        (0.309, 0.517),
        (0.324, 0.541),
        (0.656, 1.751),
        22067600,
    ),
    cell(
        "tenants",
        "sharded1",
        "FARMER",
        (0.309, 0.517),
        (0.324, 0.541),
        (0.656, 1.751),
        24824680,
    ),
    cell(
        "tenants",
        "sharded4",
        "FARMER",
        (0.309, 0.517),
        (0.324, 0.541),
        (0.656, 1.751),
        28226648,
    ),
    cell(
        "tenants",
        "frozen",
        "FARMER",
        (0.198, 0.332),
        (0.388, 0.648),
        (0.833, 2.224),
        23375704,
    ),
    cell(
        "tenants",
        "online8",
        "FARMER",
        (0.234, 0.391),
        (0.347, 0.58),
        (0.773, 2.064),
        24832264,
    ),
    cell(
        "tenants",
        "online64",
        "FARMER",
        (0.244, 0.408),
        (0.345, 0.576),
        (0.756, 2.018),
        24576696,
    ),
    cell(
        "tenants",
        "capped1",
        "FARMER",
        (0.168, 0.282),
        (0.528, 0.881),
        (0.881, 2.351),
        1015192,
    ),
    cell(
        "tenants",
        "capped4",
        "FARMER",
        (0.257, 0.43),
        (0.32, 0.535),
        (0.734, 1.96),
        4163864,
    ),
    cell(
        "tenants",
        "online64capped",
        "FARMER",
        (0.166, 0.278),
        (0.563, 0.939),
        (0.886, 2.364),
        1998008,
    ),
    cell(
        "tenants",
        "self",
        "Nexus",
        (0.154, 0.258),
        (0.019, 0.12),
        (0.926, 2.471),
        6024864,
    ),
    cell(
        "tenants",
        "self",
        "ProbGraph",
        (0.107, 0.208),
        (0.02, 0.121),
        (0.983, 2.622),
        5783568,
    ),
    cell(
        "tenants",
        "self",
        "SdGraph",
        (0.087, 0.188),
        (0.0, 0.081),
        (1.023, 2.73),
        8798512,
    ),
    cell(
        "tenants",
        "self",
        "LRU",
        (0.115, 0.216),
        (0.0, 0.05),
        (0.969, 2.585),
        0,
    ),
    cell(
        "storm",
        "batch",
        "FARMER",
        (0.59, 0.985),
        (0.308, 0.515),
        (0.457, 1.222),
        16546528,
    ),
    cell(
        "storm",
        "sharded1",
        "FARMER",
        (0.59, 0.985),
        (0.308, 0.515),
        (0.457, 1.222),
        17216088,
    ),
    cell(
        "storm",
        "sharded4",
        "FARMER",
        (0.59, 0.985),
        (0.308, 0.515),
        (0.457, 1.222),
        20884168,
    ),
    cell(
        "storm",
        "frozen",
        "FARMER",
        (0.452, 0.754),
        (0.295, 0.494),
        (0.618, 1.651),
        17405880,
    ),
    cell(
        "storm",
        "online8",
        "FARMER",
        (0.484, 0.807),
        (0.288, 0.481),
        (0.571, 1.525),
        17329392,
    ),
    cell(
        "storm",
        "online64",
        "FARMER",
        (0.497, 0.829),
        (0.289, 0.482),
        (0.55, 1.469),
        17665416,
    ),
    cell(
        "storm",
        "capped1",
        "FARMER",
        (0.407, 0.68),
        (0.453, 0.757),
        (0.686, 1.831),
        1204136,
    ),
    cell(
        "storm",
        "capped4",
        "FARMER",
        (0.492, 0.821),
        (0.295, 0.494),
        (0.551, 1.47),
        4769096,
    ),
    cell(
        "storm",
        "online64capped",
        "FARMER",
        (0.402, 0.672),
        (0.43, 0.718),
        (0.692, 1.847),
        3730512,
    ),
    cell(
        "storm",
        "self",
        "Nexus",
        (0.44, 0.734),
        (0.192, 0.321),
        (0.749, 2.0),
        3861408,
    ),
    cell(
        "storm",
        "self",
        "ProbGraph",
        (0.378, 0.632),
        (0.164, 0.274),
        (0.784, 2.092),
        4035216,
    ),
    cell(
        "storm",
        "self",
        "SdGraph",
        (0.267, 0.447),
        (0.033, 0.134),
        (1.067, 2.846),
        5641280,
    ),
    cell(
        "storm",
        "self",
        "LRU",
        (0.354, 0.591),
        (0.0, 0.05),
        (0.814, 2.173),
        0,
    ),
    cell(
        "churn",
        "batch",
        "FARMER",
        (0.579, 0.967),
        (0.339, 0.566),
        (0.576, 1.537),
        11865792,
    ),
    cell(
        "churn",
        "sharded1",
        "FARMER",
        (0.579, 0.967),
        (0.339, 0.566),
        (0.576, 1.537),
        15307192,
    ),
    cell(
        "churn",
        "sharded4",
        "FARMER",
        (0.579, 0.967),
        (0.339, 0.566),
        (0.576, 1.537),
        15310088,
    ),
    cell(
        "churn",
        "frozen",
        "FARMER",
        (0.459, 0.767),
        (0.322, 0.537),
        (0.825, 2.202),
        15505976,
    ),
    cell(
        "churn",
        "online8",
        "FARMER",
        (0.495, 0.827),
        (0.322, 0.538),
        (0.745, 1.988),
        15843864,
    ),
    cell(
        "churn",
        "online64",
        "FARMER",
        (0.516, 0.861),
        (0.329, 0.55),
        (0.706, 1.884),
        16033432,
    ),
    cell(
        "churn",
        "capped1",
        "FARMER",
        (0.421, 0.703),
        (0.451, 0.753),
        (0.906, 2.418),
        1188832,
    ),
    cell(
        "churn",
        "capped4",
        "FARMER",
        (0.509, 0.85),
        (0.3, 0.501),
        (0.715, 1.909),
        4850888,
    ),
    cell(
        "churn",
        "online64capped",
        "FARMER",
        (0.424, 0.708),
        (0.454, 0.758),
        (0.915, 2.441),
        3523432,
    ),
    cell(
        "churn",
        "self",
        "Nexus",
        (0.428, 0.715),
        (0.19, 0.319),
        (1.11, 2.962),
        3084832,
    ),
    cell(
        "churn",
        "self",
        "ProbGraph",
        (0.377, 0.63),
        (0.166, 0.279),
        (1.109, 2.96),
        3679856,
    ),
    cell(
        "churn",
        "self",
        "SdGraph",
        (0.257, 0.43),
        (0.034, 0.135),
        (1.472, 3.927),
        4527936,
    ),
    cell(
        "churn",
        "self",
        "LRU",
        (0.363, 0.606),
        (0.0, 0.05),
        (1.078, 2.876),
        0,
    ),
    cell(
        "failure",
        "kill50",
        "FARMER",
        (0.516, 0.861),
        (0.329, 0.55),
        (0.715, 1.909),
        15921400,
    ),
    cell(
        "failure",
        "kill50torn",
        "FARMER",
        (0.516, 0.861),
        (0.329, 0.55),
        (0.715, 1.909),
        15922232,
    ),
    cell(
        "failure",
        "kill25x3",
        "FARMER",
        (0.515, 0.86),
        (0.329, 0.55),
        (0.723, 1.93),
        15814328,
    ),
    cell(
        "failure",
        "ckpt",
        "FARMER",
        (0.516, 0.861),
        (0.329, 0.55),
        (0.715, 1.909),
        16616400,
    ),
];

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_cell() -> Cell {
        Cell {
            scenario: "base",
            mode: "batch",
            predictor: "FARMER",
            hit_ratio: 0.6,
            prefetch_accuracy: 0.5,
            prefetch_waste: 0.3,
            avg_response_ms: 1.2,
            response_p50_ms: 1.0,
            response_p95_ms: 2.0,
            response_p99_ms: 4.1,
            events_per_sec: 1e6,
            memory_bytes: 1024,
            phase_hit_ratios: vec![0.6; 4],
            phase_response_ms: vec![1.2; 4],
            phase_p50_ms: vec![1.0; 4],
            phase_p95_ms: vec![2.0; 4],
            phase_p99_ms: vec![4.1; 4],
            refreshes: 0,
            miner_evictions: 0,
            recoveries: 0,
            recovery_events: 0,
            recovered_events: 0,
            replay_fraction: 0.0,
            recovery_ms: 0.0,
            hit_ratio_dip: 0.0,
            wal_bytes: 0,
        }
    }

    #[test]
    fn band_containment_is_inclusive() {
        let b = Band { lo: 0.5, hi: 0.7 };
        assert!(b.contains(0.5) && b.contains(0.7) && b.contains(0.6));
        assert!(!b.contains(0.49) && !b.contains(0.71));
    }

    #[test]
    fn calibrate_emits_one_row_per_cell_with_margins() {
        let src = calibrate(&[sample_cell()]);
        assert!(src.contains("cell(\"base\", \"batch\", \"FARMER\""));
        // Ratio margins: 0.6 ± 0.15 → ~(0.45, 0.75) after outward
        // millesimal rounding; response 1.2 → (0.72, 1.92).
        assert!(
            src.contains("(0.449, 0.75)") || src.contains("(0.45, 0.75)"),
            "{src}"
        );
        assert!(src.contains("(0.72, 1.92)"), "{src}");
        assert!(src.contains("2048)"), "memory ceiling is 2x: {src}");
    }

    #[test]
    fn calibrate_failure_emits_exact_recoveries_and_banded_metrics() {
        let mut c = sample_cell();
        c.scenario = "failure";
        c.mode = "kill50";
        c.recoveries = 1;
        c.recovery_events = 1000;
        c.recovered_events = 1000;
        c.replay_fraction = 1.0;
        c.hit_ratio_dip = 0.2;
        let src = calibrate_failure(&[c, sample_cell()]);
        // Only the failure-family cell is emitted; events ±25 %, fraction
        // ±max(10 % rel, 0.02 abs) clamped to [0, 1], dip ±max(25 % rel,
        // 0.05 abs).
        assert_eq!(src.matches("fcell(").count(), 1, "{src}");
        assert!(
            src.contains("fcell(\"kill50\", 1, (750.0, 1250.0), (0.9, 1.0), (0.15, 0.25)"),
            "{src}"
        );

        // A checkpoint-anchored cell keeps the fraction band well away
        // from 1.0.
        let mut k = sample_cell();
        k.scenario = "failure";
        k.mode = "ckpt";
        k.recoveries = 1;
        k.recovery_events = 250;
        k.recovered_events = 1000;
        k.replay_fraction = 0.25;
        let src = calibrate_failure(&[k]);
        assert!(
            src.contains("fcell(\"ckpt\", 1, (187.0, 313.0), (0.225, 0.275)"),
            "{src}"
        );
    }

    #[test]
    fn check_enforces_durability_bands_on_failure_cells() {
        let mut c = sample_cell();
        c.scenario = "failure";
        c.mode = "kill50";
        c.recoveries = 2; // plan says 1
        c.recovery_events = 0;
        let err = check(&[c], Profile::Quick).unwrap_err();
        assert!(
            err.iter()
                .any(|m| m.contains("kill plan expects exactly 1")),
            "{err:?}"
        );
        assert!(
            err.iter().any(|m| m.contains("stale durability band")),
            "the unmeasured modes must be flagged: {err:?}"
        );
    }

    #[test]
    fn check_flags_missing_band_and_out_of_band() {
        // No band tables are populated for a fake profile-free cell set —
        // use whichever table is non-empty, or rely on the missing-band
        // path when it is empty.
        let cells = vec![sample_cell()];
        match check(&cells, Profile::Quick) {
            Ok(n) => assert_eq!(n, 1),
            Err(v) => assert!(v.iter().any(|m| m.contains("no reference band")
                || m.contains("outside")
                || m.contains("stale"))),
        }
    }
}

//! Fault injection for the durable mining tier: correlated miner + MDS
//! crash/restart cells of the evaluation matrix.
//!
//! Each **failure mode** ([`FAILURE_MODES`]) is a deterministic kill plan
//! — event indices at which the co-driven [`DurableMiner`] is crashed
//! ([`DurableMiner::crash`]: the unsynced WAL tail is dropped, as a power
//! cut would drop it), optionally followed by a torn-write injection on
//! the log file, then recovered ([`farmer_stream::recover`]) and the
//! serving tier cold-restarted (cache cleared, predictor refreshed from
//! the recovered snapshot; on the response-time leg,
//! `MdsServer::restart_cold`).
//!
//! The cell runs the same two co-driven legs as the matrix's online
//! modes — the cache simulation and the MDS replay — each with its *own*
//! WAL, and at every kill point asserts the recovered mining state is
//! **bitwise identical** to an uninterrupted oracle fed exactly the
//! recovered operation prefix (the same invariant the `farmer-stream`
//! crash-point matrix test pins, here exercised through the full serving
//! pipeline). A failure cell that recovers to an almost-right state
//! panics instead of reporting.
//!
//! What the cell measures on top of the usual quality metrics:
//!
//! * `recoveries` / `recovery_events` — how many restarts happened and
//!   how many logged events the replays *re-processed* (suffix past the
//!   checkpoint anchor when the mode checkpoints, the whole log
//!   otherwise; deterministic, banded);
//! * `recovered_events` / `replay_fraction` — total logged events the
//!   recovered states represent (anchor image + replayed suffix) and
//!   the replayed share of them: 1.0 for genesis replay, ≪ 1 when a
//!   checkpoint image absorbs the prefix (deterministic, banded);
//! * `hit_ratio_dip` — demand hit ratio in the window before the kill
//!   minus the window after it (window = `len / 16` events): the
//!   serving-quality cost of a cold restart (deterministic, banded);
//! * `recovery_ms` — wall-clock time the recoveries took, summed over
//!   both legs (machine-dependent, reported but never banded);
//! * `wal_bytes` — final log size of the simulation leg.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use farmer_core::{CorrelationSource, CorrelatorTable, FarmerConfig};
use farmer_mds::{LatencyStats, MdsServer, ReplayConfig, ReplayReport};
use farmer_prefetch::{FpaPredictor, MetadataCache, Predictor, SimConfig, SimReport};
use farmer_stream::{
    recover, snapshots_bitwise_equal, DurableConfig, DurableMiner, ShardedMiner, StreamConfig,
    StreamSnapshot,
};
use farmer_trace::phases::{phase_count, phase_end};
use farmer_trace::{FileId, Op, Trace};

/// The failure-mode axis of the `failure` scenario family, in emission
/// order: one mid-stream kill, the same kill with a torn WAL tail,
/// three evenly spaced kills, and the same mid-stream kill recovered
/// from a checkpoint image (suffix-only replay plus log compaction —
/// the O(log) → O(suffix) comparison cell).
pub const FAILURE_MODES: [&str; 4] = ["kill50", "kill50torn", "kill25x3", "ckpt"];

/// Hit-ratio dip window divisor: the dip compares the `len /
/// DIP_WINDOW_DIV` events before each kill against the same span after
/// it.
pub const DIP_WINDOW_DIV: usize = 16;

/// A torn-write injection applied to the WAL file between crash and
/// recovery (the tail-scan corruption modes the WAL must tolerate).
#[derive(Debug, Clone, Copy)]
pub enum TornTail {
    /// Truncate the last `n` bytes (a chopped final write).
    Chop(usize),
    /// Append `n` garbage bytes (a half-written block after the tail).
    Garbage(usize),
    /// Flip one bit `n` bytes before the end (silent media corruption).
    FlipBit(usize),
}

/// One failure mode's deterministic plan: kill at these event indices,
/// optionally tearing the log tail at each kill.
#[derive(Debug, Clone)]
pub struct KillPlan {
    /// Event indices at which the miner is crashed (before the event is
    /// routed: a kill at `k` means exactly the events `[0, k)` reached
    /// the miner).
    pub kills: Vec<usize>,
    /// Applied to the WAL file after every crash, before recovery.
    pub torn: Option<TornTail>,
}

/// Build the kill plan of one failure mode over a `len`-event trace.
///
/// Panics on an unknown mode — failure-mode names are part of the
/// reference model's identity, exactly like scenario names.
pub fn kill_plan(mode: &str, len: usize) -> KillPlan {
    let at = |num: usize, den: usize| (len * num / den).max(1);
    match mode {
        "kill50" => KillPlan {
            kills: vec![at(1, 2)],
            torn: None,
        },
        "kill50torn" => KillPlan {
            kills: vec![at(1, 2)],
            torn: Some(TornTail::Chop(11)),
        },
        "kill25x3" => KillPlan {
            kills: vec![at(1, 4), at(1, 2), at(3, 4)],
            torn: None,
        },
        // Same kill point as kill50; what changes is the recovery path
        // (checkpoint image + suffix replay instead of genesis replay).
        "ckpt" => KillPlan {
            kills: vec![at(1, 2)],
            torn: None,
        },
        other => panic!("unknown failure mode {other:?}"),
    }
}

/// Apply one torn-write injection to a WAL file. Skips (rather than
/// corrupting the header page) when the file is too small to tear —
/// which the calibrated scales never are.
pub fn inject_torn_tail(path: &Path, torn: TornTail) -> std::io::Result<()> {
    let mut data = fs::read(path)?;
    let len = data.len();
    match torn {
        TornTail::Chop(n) => {
            if len > 4096 + n {
                data.truncate(len - n);
            }
        }
        TornTail::Garbage(n) => data.extend(std::iter::repeat_n(0xA5, n)),
        TornTail::FlipBit(n) => {
            if len > 4096 + n {
                data[len - n] ^= 0x10;
            }
        }
    }
    fs::write(path, &data)
}

/// What one failure cell measured, spanning both co-driven legs.
#[derive(Debug)]
pub struct FailureCellReport {
    /// The cache-simulation leg's report (cumulative across restarts).
    pub sim: SimReport,
    /// The MDS-replay leg's report (cumulative across restarts).
    pub replay: ReplayReport,
    /// Periodic snapshot refreshes per leg (legs asserted equal).
    pub refreshes: u64,
    /// Crash/recover cycles per leg (legs asserted equal).
    pub recoveries: u64,
    /// Logged events re-processed (WAL suffix replay) across all
    /// recoveries of one leg.
    pub recovery_events: u64,
    /// Logged events the recovered states represent, summed across all
    /// recoveries of one leg: checkpoint-anchored prefix plus replayed
    /// suffix. Equals `recovery_events` when nothing checkpoints.
    pub recovered_events: u64,
    /// `recovery_events / recovered_events` — the share of recovered
    /// state that had to be replayed rather than loaded from a
    /// checkpoint image. 1.0 for genesis replay; 0 when no recovery
    /// happened.
    pub replay_fraction: f64,
    /// Wall-clock milliseconds all recoveries took, summed over both
    /// legs. Machine-dependent — never banded.
    pub recovery_ms: f64,
    /// Worst per-kill demand hit-ratio dip of the simulation leg.
    pub hit_ratio_dip: f64,
    /// Final WAL size of the simulation leg, in bytes.
    pub wal_bytes: u64,
    /// Resident miner bytes at end of the simulation leg.
    pub miner_state_bytes: usize,
    /// Events driven per second across both legs, including recoveries.
    pub events_per_sec: f64,
}

/// One mirrored logical operation, for oracle reconstruction.
#[derive(Clone, Copy)]
enum MirrorOp {
    Ev(usize),
    Forget(FileId),
}

/// One leg's durable miner plus everything needed to kill, tear,
/// recover, and prove the recovery exact: the mirrored op stream is the
/// uninterrupted oracle's script, truncated to the recovered prefix at
/// every crash.
struct DurableLeg {
    leg: &'static str,
    wal: PathBuf,
    cfg: DurableConfig,
    miner: Option<DurableMiner>,
    ops: Vec<MirrorOp>,
    kills: Vec<usize>,
    next_kill: usize,
    torn: Option<TornTail>,
    recoveries: u64,
    recovery_events: u64,
    recovered_events: u64,
    recovery_ns: u64,
}

/// Totals one leg hands back, plus its final state for cross-leg parity.
struct LegStats {
    snap: StreamSnapshot,
    recoveries: u64,
    recovery_events: u64,
    recovered_events: u64,
    recovery_ns: u64,
    wal_bytes: u64,
    miner_state_bytes: usize,
}

impl DurableLeg {
    fn new(leg: &'static str, wal: PathBuf, cfg: DurableConfig, plan: &KillPlan) -> DurableLeg {
        let miner = DurableMiner::create(&wal, cfg.clone())
            .unwrap_or_else(|e| panic!("{leg}: create durable miner: {e:?}"));
        DurableLeg {
            leg,
            wal,
            cfg,
            miner: Some(miner),
            ops: Vec::new(),
            kills: plan.kills.clone(),
            next_kill: 0,
            torn: plan.torn,
            recoveries: 0,
            recovery_events: 0,
            recovered_events: 0,
            recovery_ns: 0,
        }
    }

    /// Route one event under the matrix mining policy, mirroring it for
    /// the oracle.
    fn route(&mut self, trace: &Trace, i: usize) {
        let e = &trace.events[i];
        let m = self.miner.as_mut().expect("miner alive");
        if e.op == Op::Unlink {
            m.forget(e.file);
            self.ops.push(MirrorOp::Forget(e.file));
        } else if e.op.is_metadata_demand() {
            m.ingest_event(trace, e);
            self.ops.push(MirrorOp::Ev(i));
        }
    }

    /// A consistent snapshot of the live miner, for a periodic predictor
    /// refresh.
    fn snapshot_source(&mut self) -> (Box<dyn CorrelationSource + Send>, u64) {
        let m = self.miner.as_mut().expect("miner alive");
        let events = m.events_logged();
        (Box::new(m.snapshot()), events)
    }

    /// Feed the mirrored op prefix to an uninterrupted plain miner and
    /// return its snapshot — the state recovery must land on bit for bit.
    fn oracle_snapshot(&self, trace: &Trace) -> StreamSnapshot {
        let mut oracle = ShardedMiner::spawn(self.cfg.stream.clone());
        for op in &self.ops {
            match *op {
                MirrorOp::Ev(i) => oracle.route_event(trace, &trace.events[i]),
                MirrorOp::Forget(f) => oracle.route_forget(f),
            }
        }
        oracle.snapshot()
    }

    /// If event `i` is a kill point: crash the miner (dropping the
    /// unsynced tail), tear the log if the plan says so, recover, prove
    /// the recovered state bitwise-equal to the oracle over the recovered
    /// prefix, and hand back the recovered snapshot for the serving
    /// tier's restart.
    fn maybe_kill(
        &mut self,
        trace: &Trace,
        i: usize,
    ) -> Option<(Box<dyn CorrelationSource + Send>, u64)> {
        if self.next_kill >= self.kills.len() || i != self.kills[self.next_kill] {
            return None;
        }
        self.next_kill += 1;
        self.miner.take().expect("miner alive").crash();
        if let Some(torn) = self.torn {
            inject_torn_tail(&self.wal, torn)
                .unwrap_or_else(|e| panic!("{}: torn-tail injection: {e}", self.leg));
        }
        let (mut recovered, report) = recover(&self.wal, self.cfg.clone())
            .unwrap_or_else(|e| panic!("{}: recovery at kill {i}: {e:?}", self.leg));
        // The recovered state represents `ops_recovered` logical ops —
        // the checkpoint-anchored prefix plus the replayed suffix — so
        // that is where the oracle's script must be cut. `ops_replayed`
        // alone would under-cut it whenever a checkpoint image anchored
        // the recovery.
        let recovered_ops = report.ops_recovered as usize;
        assert!(
            recovered_ops <= self.ops.len(),
            "{}: recovery reconstructed ops that were never routed",
            self.leg
        );
        self.ops.truncate(recovered_ops);
        if let Some(v) = report.checkpoint_verified {
            assert!(
                v,
                "{}: checkpoint self-verification failed at kill {i}",
                self.leg
            );
        }
        assert!(
            snapshots_bitwise_equal(&recovered.snapshot(), &self.oracle_snapshot(trace)),
            "{}: recovered mining state diverged from the uninterrupted \
             oracle at kill {i} (recovered {recovered_ops} ops, replayed {})",
            self.leg,
            report.ops_replayed,
        );
        self.recoveries += 1;
        self.recovery_events += report.events_replayed;
        self.recovered_events += report.events_recovered;
        self.recovery_ns += report.replay_ns;
        let events = recovered.events_logged();
        let snap = recovered.snapshot();
        self.miner = Some(recovered);
        Some((Box::new(snap), events))
    }

    /// End of stream: one final oracle-parity proof over the whole
    /// surviving op sequence, then the leg's totals.
    fn finish(mut self, trace: &Trace) -> LegStats {
        let m = self.miner.as_mut().expect("miner alive");
        let wal_bytes = m.wal_len_bytes();
        let snap = m.snapshot();
        assert!(
            snapshots_bitwise_equal(&snap, &self.oracle_snapshot(trace)),
            "{}: end-of-stream mining state diverged from the oracle",
            self.leg
        );
        LegStats {
            miner_state_bytes: snap.state_bytes,
            snap,
            recoveries: self.recoveries,
            recovery_events: self.recovery_events,
            recovered_events: self.recovered_events,
            recovery_ns: self.recovery_ns,
            wal_bytes,
        }
    }
}

/// Fresh per-cell scratch directory under the workspace `target/` (WAL +
/// checkpoint sidecars live here; removed when the cell finishes).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    dir.pop();
    dir.pop();
    dir.push("target");
    dir.push("failure-cells");
    dir.push(format!(
        "{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    fs::create_dir_all(&dir).expect("create failure-cell scratch dir");
    dir
}

/// The durable-tier configuration of one failure cell: one uncapped
/// shard (so the oracle comparison measures recovery, not eviction
/// policy). The legacy kill modes disable checkpointing — recovery is a
/// genesis replay of the whole log, the O(log) baseline — while the
/// `ckpt` mode checkpoints eight times over the run with log compaction
/// on, so its recoveries load the newest image and replay only the WAL
/// suffix past its anchor.
fn failure_config(farmer: FarmerConfig, len: usize, mode: &str) -> DurableConfig {
    let stream = StreamConfig::default()
        .with_farmer(farmer)
        .with_shards(1)
        .with_node_cap(1 << 20);
    let cfg = DurableConfig::new(stream);
    if mode == "ckpt" {
        cfg.with_checkpoint_interval((len / 8).max(1) as u64)
            .with_compaction(true)
    } else {
        cfg.with_checkpoint_interval(0)
    }
}

/// Does a periodic refresh fire at event `i`? Matches
/// `OnlineConfig::every` semantics (one refresh per interior interval
/// boundary).
fn refresh_due(i: usize, interval: usize) -> bool {
    i > 0 && i.is_multiple_of(interval.max(1))
}

/// Demand hit ratio over `hits[range]` (−1 = not a demand, 0 = miss,
/// 1 = hit); 0 when the window holds no demands.
fn hit_ratio_in(hits: &[i8], range: std::ops::Range<usize>) -> f64 {
    let mut demands = 0u64;
    let mut hit = 0u64;
    for &v in &hits[range] {
        if v >= 0 {
            demands += 1;
            hit += u64::from(v == 1);
        }
    }
    if demands == 0 {
        0.0
    } else {
        hit as f64 / demands as f64
    }
}

/// The empty source both legs start serving from (cold model, exactly
/// like the matrix's online modes).
fn empty_source() -> Box<dyn CorrelationSource + Send> {
    Box::new(CorrelatorTable::new())
}

/// Run one failure cell: the cache-simulation and MDS-replay legs, each
/// co-driving its own durable miner through `mode`'s kill plan, with
/// `refreshes` periodic snapshot refreshes and `phases` reporting
/// segments. Every recovery is proven bitwise-exact against an
/// uninterrupted oracle; the two legs' final mining states are asserted
/// identical.
pub fn run_failure_cell(
    trace: &Trace,
    farmer: FarmerConfig,
    mode: &'static str,
    refreshes: usize,
    phases: usize,
) -> FailureCellReport {
    let len = trace.len();
    let plan = kill_plan(mode, len);
    let interval = (len / refreshes.max(1)).max(1);
    let dir = scratch_dir(mode);
    let start = Instant::now();

    // ---- Leg 1: cache simulation (hit ratio, accuracy, dip). ----
    let sim_cfg = SimConfig::for_family(trace.family).with_phases(phases);
    let mut leg = DurableLeg::new(
        "sim",
        dir.join("sim.wal"),
        failure_config(farmer.clone(), len, mode),
        &plan,
    );
    let mut fpa = FpaPredictor::for_trace(trace);
    assert!(
        fpa.refresh_source(empty_source(), 0),
        "FPA serves externally"
    );
    let mut cache = MetadataCache::new(sim_cfg.cache_capacity);
    let mut sim_refreshes = 0u64;
    // Per-event hit log for the dip windows: −1 not a demand, 0 miss,
    // 1 hit.
    let mut hits = vec![-1i8; len];
    let segments = phase_count(len, sim_cfg.num_phases);
    let mut phase_stats = Vec::new();
    let mut segment = 0usize;
    let mut phase_mark = cache.stats();
    let mut candidates = Vec::new();
    for (i, event) in trace.events.iter().enumerate() {
        if sim_cfg.num_phases > 1 && i == phase_end(len, segments, segment) {
            let now = cache.stats();
            phase_stats.push(now.delta(&phase_mark));
            phase_mark = now;
            segment += 1;
        }
        if let Some((source, events)) = leg.maybe_kill(trace, i) {
            // Correlated restart: the serving tier dies with the miner.
            cache.clear();
            fpa.refresh_source(source, events);
        }
        if refresh_due(i, interval) {
            let (source, events) = leg.snapshot_source();
            fpa.refresh_source(source, events);
            sim_refreshes += 1;
        }
        leg.route(trace, i);
        if event.op.is_metadata_demand() {
            let hit = cache.access(event.file);
            hits[i] = i8::from(hit);
            if !hit {
                cache.insert_demand(event.file);
            }
            fpa.on_access_into(trace, event, &mut candidates);
            for &file in candidates.iter().take(sim_cfg.prefetch_limit) {
                if file != event.file {
                    cache.insert_prefetch(file);
                }
            }
        }
    }
    let stats = cache.stats();
    if sim_cfg.num_phases > 1 {
        phase_stats.push(stats.delta(&phase_mark));
    }
    let sim = SimReport {
        predictor: "FARMER".to_string(),
        trace: trace.label.clone(),
        cache_capacity: sim_cfg.cache_capacity,
        stats,
        phases: phase_stats,
        predictor_memory: fpa.memory_bytes(),
    };
    let sim_leg = leg.finish(trace);

    // Worst per-kill dip: hit ratio just before the kill minus just
    // after it.
    let w = (len / DIP_WINDOW_DIV).max(1);
    let mut hit_ratio_dip = 0.0f64;
    for &k in &plan.kills {
        let before = hit_ratio_in(&hits, k.saturating_sub(w)..k);
        let after = hit_ratio_in(&hits, k..(k + w).min(len));
        hit_ratio_dip = hit_ratio_dip.max(before - after);
    }

    // ---- Leg 2: MDS replay (response times), same plan. ----
    let mut rep_cfg = ReplayConfig::for_family(trace.family);
    rep_cfg.num_phases = phases;
    let mut leg = DurableLeg::new(
        "replay",
        dir.join("replay.wal"),
        failure_config(farmer, len, mode),
        &plan,
    );
    let mut mds = MdsServer::new(trace, Box::new(FpaPredictor::for_trace(trace)), rep_cfg.mds);
    assert!(
        mds.refresh_predictor(empty_source(), 0),
        "FPA serves externally"
    );
    let mut rep_refreshes = 0u64;
    let mut horizon = 0u64;
    let segments = phase_count(len, rep_cfg.num_phases);
    let mut segment = 0usize;
    let mut phase_mean_ms = Vec::new();
    let mut phase_p50_ms = Vec::new();
    let mut phase_p95_ms = Vec::new();
    let mut phase_p99_ms = Vec::new();
    let mut mark = LatencyStats::new();
    for (i, event) in trace.events.iter().enumerate() {
        if rep_cfg.num_phases > 1 && i == phase_end(len, segments, segment) {
            let now = mds.stats().clone();
            let delta = now.delta(&mark);
            mark = now;
            phase_mean_ms.push(delta.mean_ms());
            phase_p50_ms.push(delta.percentile_us(0.50) as f64 / 1000.0);
            phase_p95_ms.push(delta.percentile_us(0.95) as f64 / 1000.0);
            phase_p99_ms.push(delta.percentile_us(0.99) as f64 / 1000.0);
            segment += 1;
        }
        if let Some((source, events)) = leg.maybe_kill(trace, i) {
            mds.restart_cold();
            mds.refresh_predictor(source, events);
        }
        if refresh_due(i, interval) {
            let (source, events) = leg.snapshot_source();
            mds.refresh_predictor(source, events);
            rep_refreshes += 1;
        }
        leg.route(trace, i);
        if !event.op.is_metadata_demand() {
            continue;
        }
        let mut e = *event;
        e.timestamp_us = (event.timestamp_us as f64 * rep_cfg.time_scale) as u64;
        horizon = e.timestamp_us;
        mds.demand(trace, &e);
    }
    if rep_cfg.num_phases > 1 {
        let delta = mds.stats().delta(&mark);
        phase_mean_ms.push(delta.mean_ms());
        phase_p50_ms.push(delta.percentile_us(0.50) as f64 / 1000.0);
        phase_p95_ms.push(delta.percentile_us(0.95) as f64 / 1000.0);
        phase_p99_ms.push(delta.percentile_us(0.99) as f64 / 1000.0);
    }
    let replay = ReplayReport {
        predictor: mds.predictor_name(),
        trace: trace.label.clone(),
        latency: mds.stats().clone(),
        counters: mds.counters(),
        cache: mds.cache_stats(),
        horizon_us: horizon,
        predictor_memory: mds.predictor_memory(),
        client_hits: 0,
        phase_mean_ms,
        phase_p50_ms,
        phase_p95_ms,
        phase_p99_ms,
    };
    let rep_leg = leg.finish(trace);
    let elapsed = start.elapsed().as_secs_f64().max(1e-9);
    let _ = fs::remove_dir_all(&dir);

    // The legs route the identical op stream through the identical plan:
    // everything deterministic must agree, down to the mined bits.
    assert_eq!(
        (
            sim_refreshes,
            sim_leg.recoveries,
            sim_leg.recovery_events,
            sim_leg.recovered_events,
        ),
        (
            rep_refreshes,
            rep_leg.recoveries,
            rep_leg.recovery_events,
            rep_leg.recovered_events,
        ),
        "{mode}: sim and replay legs diverged"
    );
    assert!(
        snapshots_bitwise_equal(&sim_leg.snap, &rep_leg.snap),
        "{mode}: the two legs' final mining states diverged"
    );
    assert_eq!(
        sim_leg.recoveries as usize,
        plan.kills.len(),
        "{mode}: every planned kill must recover"
    );

    let replay_fraction = if sim_leg.recovered_events == 0 {
        0.0
    } else {
        sim_leg.recovery_events as f64 / sim_leg.recovered_events as f64
    };

    FailureCellReport {
        sim,
        replay,
        refreshes: sim_refreshes,
        recoveries: sim_leg.recoveries,
        recovery_events: sim_leg.recovery_events,
        recovered_events: sim_leg.recovered_events,
        replay_fraction,
        recovery_ms: (sim_leg.recovery_ns + rep_leg.recovery_ns) as f64 / 1e6,
        hit_ratio_dip,
        wal_bytes: sim_leg.wal_bytes,
        miner_state_bytes: sim_leg.miner_state_bytes,
        events_per_sec: (2 * len) as f64 / elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::workload::ChurnSpec;
    use farmer_trace::WorkloadSpec;

    #[test]
    fn kill_plans_are_deterministic_and_in_range() {
        for mode in FAILURE_MODES {
            let p = kill_plan(mode, 10_000);
            assert!(!p.kills.is_empty(), "{mode}: empty kill plan");
            assert!(p.kills.iter().all(|&k| k > 0 && k < 10_000));
            assert!(p.kills.windows(2).all(|w| w[0] < w[1]), "{mode}: sorted");
            let q = kill_plan(mode, 10_000);
            assert_eq!(p.kills, q.kills);
        }
        assert!(kill_plan("kill50torn", 10_000).torn.is_some());
        assert!(kill_plan("kill50", 10_000).torn.is_none());
    }

    #[test]
    #[should_panic(expected = "unknown failure mode")]
    fn unknown_mode_rejected() {
        let _ = kill_plan("nope", 100);
    }

    #[test]
    fn dip_window_ratio_counts_only_demands() {
        let hits = [-1, 1, 0, 1, -1, 0];
        assert_eq!(hit_ratio_in(&hits, 0..6), 2.0 / 4.0);
        assert_eq!(hit_ratio_in(&hits, 0..1), 0.0, "no demands in window");
        assert_eq!(hit_ratio_in(&hits, 1..2), 1.0);
    }

    #[test]
    fn failure_cell_recovers_exactly_and_reports_dip_fields() {
        // A small end-to-end run of the single-kill mode: the oracle
        // parity asserts inside run_failure_cell are the meat; this test
        // pins the reported totals.
        let trace = ChurnSpec::new(WorkloadSpec::hp().scaled(0.015)).generate();
        let r = run_failure_cell(&trace, FarmerConfig::default(), "kill50", 16, 4);
        assert_eq!(r.recoveries, 1);
        assert!(r.recovery_events > 0, "the kill point is mid-stream");
        assert_eq!(
            r.recovered_events, r.recovery_events,
            "legacy modes recover by genesis replay: everything recovered \
             was replayed"
        );
        assert_eq!(r.replay_fraction, 1.0);
        assert!(r.recovery_ms > 0.0);
        assert!(r.wal_bytes > 4096, "more than a header page was logged");
        assert!(r.refreshes > 0);
        assert_eq!(r.sim.phases.len(), 4);
        assert_eq!(r.replay.phase_mean_ms.len(), 4);
        assert!(r.sim.hit_ratio() > 0.0 && r.sim.hit_ratio() <= 1.0);
        assert!(r.replay.avg_response_ms() > 0.0);
        assert!(r.hit_ratio_dip.abs() <= 1.0);
        assert!(r.miner_state_bytes > 0);
    }

    #[test]
    fn torn_mode_still_recovers_bitwise() {
        // The torn variant chops the synced tail: recovery must drop the
        // damage and still land on the oracle prefix (asserted inside).
        let trace = ChurnSpec::new(WorkloadSpec::hp().scaled(0.015)).generate();
        let r = run_failure_cell(&trace, FarmerConfig::default(), "kill50torn", 16, 4);
        assert_eq!(r.recoveries, 1);
        assert!(r.recovery_events > 0);
    }

    #[test]
    fn triple_kill_mode_recovers_every_time() {
        let trace = ChurnSpec::new(WorkloadSpec::hp().scaled(0.015)).generate();
        let r = run_failure_cell(&trace, FarmerConfig::default(), "kill25x3", 16, 4);
        assert_eq!(r.recoveries, 3);
        assert!(r.recovery_events > 0);
        assert_eq!(r.recovered_events, r.recovery_events);
    }

    #[test]
    fn ckpt_mode_replays_only_the_suffix() {
        // Same trace and kill point as kill50, but with checkpoint
        // images + compaction: the recovered total stays O(log) while
        // the replayed share collapses to the post-anchor suffix.
        let trace = ChurnSpec::new(WorkloadSpec::hp().scaled(0.015)).generate();
        let r = run_failure_cell(&trace, FarmerConfig::default(), "ckpt", 16, 4);
        assert_eq!(r.recoveries, 1);
        assert!(r.recovery_events > 0);
        assert!(
            r.recovery_events < r.recovered_events,
            "a checkpoint image must absorb part of the recovery \
             (replayed {} of {})",
            r.recovery_events,
            r.recovered_events
        );
        // Checkpoints fire every len/8 events; the kill is at len/2, so
        // the suffix past the newest anchor is well under half of what
        // was recovered.
        assert!(
            r.replay_fraction < 0.5,
            "replay fraction {} not collapsed by checkpointing",
            r.replay_fraction
        );
        assert!(r.replay_fraction > 0.0);
    }
}

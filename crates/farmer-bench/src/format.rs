//! Aligned text tables for harness output.

/// A simple column-aligned table builder.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Render with two-space gutters, left-aligned first column and
    /// right-aligned numeric columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    out.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Format a ratio as a percentage with two decimals ("64.04%").
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Format milliseconds with three decimals.
pub fn ms(x: f64) -> String {
    format!("{x:.3}ms")
}

/// Format bytes as MB with one decimal.
pub fn mb(bytes: usize) -> String {
    format!("{:.1}MB", bytes as f64 / 1_048_576.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[3].starts_with("longer-name"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.6404), "64.04%");
        assert_eq!(ms(1.2345), "1.234ms"); // f64 formatting truncates via rounding
        assert_eq!(mb(10 * 1_048_576), "10.0MB");
    }

    #[test]
    fn empty_table_renders() {
        let t = TextTable::new(&["only"]);
        let s = t.render();
        assert!(s.contains("only"));
    }
}

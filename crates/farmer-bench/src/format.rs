//! Aligned text tables, the shared JSON emitter and the unified CLI
//! parsing for harness output.
//!
//! Every bench binary that emits a machine-readable record (`BENCH_*.json`)
//! builds a [`Json`] value and prints [`Json::render`] — one writer, one
//! escaping rule, one stable field order — and parses its command line
//! through [`BenchArgs`], so `--quick` (and the optional positional scale
//! override) behaves identically across bins.

/// An ordered JSON value. Objects preserve insertion order, so emitted
/// records are stable and diffable across runs.
#[derive(Debug, Clone)]
pub enum Json {
    /// `true`/`false`.
    Bool(bool),
    /// Unsigned integer (counters, byte totals).
    UInt(u64),
    /// Float rendered with Rust's shortest-roundtrip formatting. Must be
    /// finite ([`Json::render`] panics otherwise — benchmark records with
    /// NaN/inf in them are bugs, not data).
    F64(f64),
    /// Float rendered with a fixed number of decimals (stable diffs for
    /// metrics where sub-precision digits are noise).
    Fixed(f64, usize),
    /// String (escaped on render).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object with insertion-ordered fields; build with [`Json::obj`] and
    /// [`Json::field`].
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, for builder-style construction.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a field to an object (panics on non-objects).
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_string(), value)),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Render as pretty-printed JSON (two-space indent, trailing newline
    /// omitted). Panics on non-finite floats.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => out.push_str(&u.to_string()),
            Json::F64(v) => {
                assert!(v.is_finite(), "non-finite value in benchmark record: {v}");
                out.push_str(&format!("{v}"));
            }
            Json::Fixed(v, d) => {
                assert!(v.is_finite(), "non-finite value in benchmark record: {v}");
                out.push_str(&format!("{:.*}", *d, v));
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    write_escaped(k, out);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }
}

/// Emit `s` as a quoted, escaped JSON string (used for both values and
/// object keys).
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Unified bench-bin command line: `[scale] [--quick] [--check]
/// [--calibrate] [--obs]`.
///
/// `--quick` selects the bin's declared quick scale (the CI smoke size);
/// an explicit positional scale always wins. Unknown arguments are
/// ignored (the test harness passes its own flags through).
#[derive(Debug, Clone, Copy)]
pub struct BenchArgs {
    /// Effective trace/query scale factor.
    pub scale: f64,
    /// `--quick` was passed (CI smoke profile).
    pub quick: bool,
    /// `--check` was passed (verify against the reference model and fail
    /// out-of-band; only meaningful to bins with a reference model).
    pub check: bool,
    /// `--calibrate` was passed (emit refreshed reference bands).
    pub calibrate: bool,
    /// `--obs` was passed: run with an enabled `farmer-obs` registry and
    /// print its report (bins that support it also embed the dump in
    /// their JSON record).
    pub obs: bool,
}

impl BenchArgs {
    /// Parse `std::env::args()`, resolving the scale to `quick_scale`
    /// under `--quick` and `1.0` otherwise unless a positional scale is
    /// given.
    pub fn parse(quick_scale: f64) -> BenchArgs {
        Self::from_iter(std::env::args().skip(1), quick_scale)
    }

    /// Testable core of [`BenchArgs::parse`].
    pub fn from_iter(args: impl IntoIterator<Item = String>, quick_scale: f64) -> BenchArgs {
        let mut out = BenchArgs {
            scale: 0.0,
            quick: false,
            check: false,
            calibrate: false,
            obs: false,
        };
        let mut explicit_scale = None;
        for a in args {
            match a.as_str() {
                "--quick" => out.quick = true,
                "--check" => out.check = true,
                "--calibrate" => out.calibrate = true,
                "--obs" => out.obs = true,
                other => {
                    if let Ok(s) = other.parse::<f64>() {
                        if s > 0.0 {
                            explicit_scale = Some(s);
                        }
                    }
                }
            }
        }
        out.scale = explicit_scale.unwrap_or(if out.quick { quick_scale } else { 1.0 });
        out
    }
}

/// Render an observability report as an ordered JSON object: one key per
/// metric, in the registry's sorted order. Counters render as unsigned
/// integers, gauges as (possibly negative) integers, histograms as
/// `{count, mean, p50, p90, p99, max}` summaries.
pub fn obs_json(report: &farmer_obs::ObsReport) -> Json {
    let mut obj = Json::obj();
    for entry in &report.entries {
        let value = match &entry.value {
            farmer_obs::ObsValue::Counter(v) => Json::UInt(*v),
            farmer_obs::ObsValue::Gauge(v) => {
                if *v >= 0 {
                    Json::UInt(*v as u64)
                } else {
                    Json::F64(*v as f64)
                }
            }
            farmer_obs::ObsValue::Histogram(h) => Json::obj()
                .field("count", Json::UInt(h.count))
                .field("mean", Json::Fixed(h.mean(), 1))
                .field("p50", Json::UInt(h.quantile(0.50)))
                .field("p90", Json::UInt(h.quantile(0.90)))
                .field("p99", Json::UInt(h.quantile(0.99)))
                .field("max", Json::UInt(h.max)),
        };
        obj = obj.field(&entry.name, value);
    }
    obj
}

/// A simple column-aligned table builder.
#[derive(Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Render with two-space gutters, left-aligned first column and
    /// right-aligned numeric columns.
    pub fn render(&self) -> String {
        let cols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain([self.header.len()])
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; cols];
        for row in std::iter::once(&self.header).chain(&self.rows) {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], out: &mut String| {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    out.push_str(&format!("{:<width$}", cell, width = widths[i]));
                } else {
                    out.push_str(&format!("{:>width$}", cell, width = widths[i]));
                }
            }
            out.push('\n');
        };
        fmt_row(&self.header, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &mut out);
        }
        out
    }
}

/// Format a ratio as a percentage with two decimals ("64.04%").
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Format milliseconds with three decimals.
pub fn ms(x: f64) -> String {
    format!("{x:.3}ms")
}

/// Format bytes as MB with one decimal.
pub fn mb(bytes: usize) -> String {
    format!("{:.1}MB", bytes as f64 / 1_048_576.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_columns() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer-name".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All rows same width.
        assert_eq!(lines[0].len(), lines[2].len().max(lines[0].len()));
        assert!(lines[3].starts_with("longer-name"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn formatters() {
        assert_eq!(pct(0.6404), "64.04%");
        assert_eq!(ms(1.2345), "1.234ms"); // f64 formatting truncates via rounding
        assert_eq!(mb(10 * 1_048_576), "10.0MB");
    }

    #[test]
    fn empty_table_renders() {
        let t = TextTable::new(&["only"]);
        let s = t.render();
        assert!(s.contains("only"));
    }

    #[test]
    fn json_renders_ordered_and_escaped() {
        let j = Json::obj()
            .field("bench", Json::str("x\"y"))
            .field("events", Json::UInt(42))
            .field("rate", Json::Fixed(1234.567, 0))
            .field("ratio", Json::F64(0.5))
            .field(
                "cells",
                Json::Arr(vec![Json::obj().field("ok", Json::Bool(true))]),
            );
        let s = j.render();
        // Field order is insertion order.
        let pos = |needle: &str| s.find(needle).unwrap_or_else(|| panic!("missing {needle}"));
        assert!(pos("bench") < pos("events"));
        assert!(pos("events") < pos("rate"));
        assert!(s.contains("\"x\\\"y\""));
        assert!(s.contains("\"rate\": 1235"), "fixed(0) rounds: {s}");
        assert!(s.contains("\"ratio\": 0.5"));
        assert!(s.contains("\"ok\": true"));
        assert!(s.starts_with('{') && s.ends_with('}'));
        // Keys go through the same escaping as values.
        let k = Json::obj().field("size \"hint\"", Json::UInt(1)).render();
        assert!(k.contains("\"size \\\"hint\\\"\": 1"), "{k}");
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn json_rejects_nan() {
        let _ = Json::F64(f64::NAN).render();
    }

    #[test]
    fn bench_args_quick_and_override() {
        let q = BenchArgs::from_iter(vec!["--quick".to_string()], 0.05);
        assert!(q.quick && !q.check);
        assert_eq!(q.scale, 0.05);
        let full = BenchArgs::from_iter(Vec::new(), 0.05);
        assert!(!full.quick);
        assert_eq!(full.scale, 1.0);
        let over = BenchArgs::from_iter(
            vec![
                "--quick".to_string(),
                "0.5".to_string(),
                "--check".to_string(),
            ],
            0.05,
        );
        assert_eq!(over.scale, 0.5, "explicit scale beats --quick");
        assert!(over.check);
        // Junk (e.g. libtest flags) is ignored.
        let junk = BenchArgs::from_iter(vec!["--nocapture".to_string()], 0.1);
        assert_eq!(junk.scale, 1.0);
        assert!(!junk.obs);
        let obs = BenchArgs::from_iter(vec!["--obs".to_string()], 0.1);
        assert!(obs.obs && !obs.quick);
    }

    #[test]
    fn obs_json_orders_and_summarizes() {
        let reg = farmer_obs::Registry::enabled();
        reg.counter("stream.events").add(7);
        reg.gauge("mds.queue_depth").set(-2);
        let h = reg.histogram("cache.lookup_us");
        h.record(100);
        h.record(200);
        let j = obs_json(&reg.snapshot()).render();
        // Registry order is sorted by name.
        let pos = |n: &str| j.find(n).unwrap_or_else(|| panic!("missing {n}"));
        assert!(pos("cache.lookup_us") < pos("mds.queue_depth"));
        assert!(pos("mds.queue_depth") < pos("stream.events"));
        assert!(j.contains("\"stream.events\": 7"));
        assert!(j.contains("\"mds.queue_depth\": -2"));
        assert!(j.contains("\"count\": 2"));
        assert!(j.contains("\"max\": 200"));
    }
}

//! The evaluation reference-model matrix: every scenario × miner mode ×
//! predictor, end to end.
//!
//! FARMER's "ER" is an *evaluation reference model*: a fixed grid of
//! workloads and serving configurations that any change to the miner, the
//! query layer or the predictors is measured against. This module drives
//! each cell through the full pipeline
//!
//! ```text
//! trace → miner → CorrelationSource → predictor → cache sim → MDS replay
//! ```
//!
//! and reports hit ratio, prefetch accuracy/waste, mean response time,
//! drive throughput and resident memory per cell, plus per-phase curves
//! (the drift scenario's whole point is what happens *around* a phase
//! boundary, which a single average hides).
//!
//! **Scenario axis** (one control + the four adversarial generators from
//! [`farmer_trace::workload::adversarial`], plus the correlated-failure
//! family): `base`, `drift`, `tenants`, `storm`, `churn`, `failure`.
//!
//! The `failure` scenario is special: instead of the miner-mode ×
//! predictor grid it runs one cell per **failure mode**
//! ([`crate::faults::FAILURE_MODES`]) — a durable ([`farmer_stream::DurableMiner`])
//! online-serving pipeline that is killed mid-stream at deterministic
//! event indices, optionally has its write-ahead log torn, and is then
//! recovered and cold-restarted (cache cleared, MDS restarted). Every
//! recovery is asserted **bitwise identical** to an uninterrupted oracle
//! fed the recovered operation prefix, and the cells additionally report
//! recovery counts, replayed events, wall-clock recovery time, the
//! post-recovery hit-ratio dip, and the final WAL size (see
//! [`crate::faults`]). Batch-vs-sharded parity does not apply to this
//! family, so it does not count toward `parity_scenarios`.
//!
//! **Miner-mode axis** (FARMER's FPA only — the other predictors mine
//! internally and run as mode `self`):
//!
//! * `batch` (one [`Farmer`] over the whole trace), `sharded1` and
//!   `sharded4` (the `farmer-stream` sharded online miner with 1 and 4
//!   shards, uncapped so no eviction noise enters the comparison). The
//!   three modes must produce the *same* mined model — [`run_matrix`]
//!   asserts exact batch-vs-sharded snapshot parity per scenario and
//!   bitwise-equal quality metrics across the three FPA cells, so any
//!   divergence in the sharding or snapshot path fails the run before any
//!   band is consulted. These modes mine the **whole** trace and then
//!   serve from the frozen final snapshot — an oracle that has seen the
//!   future.
//! * **Online serving modes** (`online8`, `online64`,
//!   [`farmer_prefetch::simulate_online`] / `farmer_mds::replay_online`):
//!   a live [`ShardedMiner`] is co-driven with the simulation and a fresh
//!   [`StreamSnapshot`] is swapped into the predictor every
//!   `len/8` (resp. `len/64`) events, so per-phase hit-ratio deltas
//!   directly measure adaptation lag. `frozen` takes exactly one snapshot
//!   at the end of the first reporting segment and serves it for the rest
//!   of the run — the no-adaptation baseline the online modes are
//!   measured against ([`run_matrix`] asserts online beats frozen on the
//!   drift scenario's post-shift segments, and stays within
//!   [`ONLINE_CONVERGENCE_GAP`] of the batch oracle on the stationary
//!   `base` scenario).
//! * **Capped miner cells** (`capped1`, `capped4`, `online64capped`):
//!   the same pipeline with `node_cap` [`CAPPED_NODE_CAP`] per shard —
//!   small enough that `tenants` and `churn` force Space-Saving eviction
//!   — measuring the serving-quality cost of bounded miner memory.
//!   Eviction makes the mined model depend on the shard partition, so no
//!   cross-shard parity is asserted here; each capped cell has its own
//!   band.
//!
//! Unlink events are routed as forgets ([`Farmer::forget_file`] /
//! [`ShardedMiner::route_forget`]) in every mode, which is what the churn
//! scenario exercises.
//!
//! The baked-in expected bands per cell live in [`crate::refmodel`]; the
//! `eval_matrix` binary's `--check` mode fails on out-of-band results.

use std::time::Instant;

use farmer_core::{CorrelationSource, CorrelatorList, CorrelatorTable, Farmer, FarmerConfig};
use farmer_mds::{replay, replay_online, ReplayConfig};
use farmer_prefetch::baselines::LruOnly;
use farmer_prefetch::{
    simulate, simulate_online, FpaPredictor, NexusPredictor, OnlineConfig, Predictor,
    ProbabilityGraph, SdGraph, SimConfig, SimReport,
};
use farmer_stream::{ShardedMiner, StreamConfig, StreamSnapshot};
use farmer_trace::workload::{ChurnSpec, DriftSpec, MultiTenantSpec, ScanStormSpec};
use farmer_trace::{Op, Trace, WorkloadSpec};

pub use crate::refmodel::SCHEMA_VERSION;

/// Event-index segments each cell is additionally reported over.
pub const PHASES: usize = 4;

/// The scenario axis, in emission order. `failure` is the
/// correlated-failure family: one cell per [`crate::faults::FAILURE_MODES`]
/// entry instead of the miner-mode × predictor grid.
pub const SCENARIOS: [&str; 6] = ["base", "drift", "tenants", "storm", "churn", "failure"];

/// The miner-mode axis for the FARMER predictor: the three exact-parity
/// whole-trace modes, the adaptation-lag serving modes (`frozen`,
/// `online{refreshes}` — the number is refresh points per run, i.e. a
/// refresh every `len/8` or `len/64` events), and the capped-eviction
/// modes.
pub const FPA_MODES: [&str; 9] = [
    "batch",
    "sharded1",
    "sharded4",
    "frozen",
    "online8",
    "online64",
    "capped1",
    "capped4",
    "online64capped",
];

/// The self-mining predictor axis.
pub const SELF_PREDICTORS: [&str; 4] = ["Nexus", "ProbGraph", "SdGraph", "LRU"];

/// Refresh points per run of the sparse online mode (`online8`).
pub const ONLINE_SPARSE_REFRESHES: usize = 8;

/// Refresh points per run of the dense online mode (`online64`, also the
/// cadence of `online64capped`).
pub const ONLINE_DENSE_REFRESHES: usize = 64;

/// Per-shard `node_cap` of the capped miner cells: well below the
/// scenarios' per-shard distinct-file counts at both calibrated profiles
/// (the tightest case, `churn --quick` at 4 shards, touches ~820 distinct
/// files per shard), so `tenants` and `churn` — and in practice every
/// scenario — force Space-Saving eviction in every capped cell.
pub const CAPPED_NODE_CAP: usize = 512;

/// Largest tolerated demand-hit-ratio deficit of densely-refreshed online
/// serving (`online64`) below the whole-trace batch oracle on the
/// stationary `base` scenario, measured on the **last** reporting segment
/// (after the online model has warmed up; the first segment is
/// structurally cold — the miner starts empty). A small steady-state
/// deficit is structural (the oracle has seen the future); a large one
/// means snapshot cadence or refresh plumbing regressed.
pub const ONLINE_CONVERGENCE_GAP: f64 = 0.10;

/// Build one scenario's trace at `scale` (1.0 = the full checked-in
/// matrix, the quick CI profile uses less).
///
/// Panics on an unknown name — scenario names are part of the reference
/// model's identity.
pub fn build_scenario(name: &str, scale: f64) -> Trace {
    match name {
        // Control: the stationary HP preset every figure bin also uses.
        "base" => WorkloadSpec::hp().scaled(0.4 * scale).generate(),
        // Phase-shifting correlation drift, four phases (aligned with the
        // PHASES reporting segments so each segment is one regime).
        "drift" => DriftSpec::new(WorkloadSpec::hp().scaled(0.4 * scale))
            .with_phases(PHASES)
            .generate(),
        // Three unrelated clusters consolidated behind one service; the
        // RES/INS tenants make the merged namespace pathless (labelled
        // RES, the first pathless family), so this cell also exercises
        // the pathless attribute combo.
        "tenants" => MultiTenantSpec {
            tenants: vec![
                WorkloadSpec::hp().scaled(0.15 * scale),
                WorkloadSpec::res().scaled(0.33 * scale),
                WorkloadSpec::ins().scaled(0.5 * scale),
            ],
        }
        .generate(),
        // Sequential sweeps + hot-set flash crowds over the HP base.
        "storm" => ScanStormSpec::new(WorkloadSpec::hp().scaled(0.3 * scale)).generate(),
        // Create/co-access/unlink generations over the HP base.
        "churn" => ChurnSpec::new(WorkloadSpec::hp().scaled(0.3 * scale)).generate(),
        // The correlated-failure family reuses the churn generator: the
        // unlink stream exercises both WAL record kinds (ingest + forget)
        // at every kill point, and generational turnover makes a stale
        // recovered model actually hurt.
        "failure" => ChurnSpec::new(WorkloadSpec::hp().scaled(0.3 * scale)).generate(),
        other => panic!("unknown scenario {other:?}"),
    }
}

/// The miner configuration every mode uses for a given trace: the paper
/// defaults, pathless when the trace records no paths — identical to what
/// [`FpaPredictor::for_trace`] serves with, so mined degrees and serving
/// thresholds agree.
pub fn miner_config(trace: &Trace) -> FarmerConfig {
    if trace.family.has_paths() {
        FarmerConfig::default()
    } else {
        FarmerConfig::pathless()
    }
}

/// One measured cell of the matrix.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Scenario name (one of [`SCENARIOS`]).
    pub scenario: &'static str,
    /// Miner mode: `batch`/`sharded1`/`sharded4` for FARMER, `self` for
    /// internally mining predictors.
    pub mode: &'static str,
    /// Predictor display name.
    pub predictor: &'static str,
    /// Demand hit ratio of the cache simulation.
    pub hit_ratio: f64,
    /// Prefetch accuracy (useful / issued).
    pub prefetch_accuracy: f64,
    /// Prefetch waste (evicted-unused / issued).
    pub prefetch_waste: f64,
    /// Mean response time of the MDS replay, in milliseconds.
    pub avg_response_ms: f64,
    /// Median response time of the MDS replay (ms). Quantiles come from
    /// the replay's log2-bucketed service-time histogram, so they are
    /// bucket upper bounds — deterministic, but coarser than the mean.
    pub response_p50_ms: f64,
    /// 95th-percentile response time of the MDS replay (ms).
    pub response_p95_ms: f64,
    /// 99th-percentile response time of the MDS replay (ms).
    pub response_p99_ms: f64,
    /// Events per second of the cell's drive loop: the mining pass for
    /// FARMER modes, the simulation demand loop for self predictors.
    /// Machine-dependent — excluded from reference bands.
    pub events_per_sec: f64,
    /// Peak resident bytes across miner and predictor state (state grows
    /// monotonically in every mode here, so end-of-run is the peak).
    pub memory_bytes: usize,
    /// Hit ratio per event-index segment ([`PHASES`] entries).
    pub phase_hit_ratios: Vec<f64>,
    /// Mean response (ms) per event-index segment ([`PHASES`] entries).
    pub phase_response_ms: Vec<f64>,
    /// Median response (ms) per event-index segment.
    pub phase_p50_ms: Vec<f64>,
    /// 95th-percentile response (ms) per event-index segment.
    pub phase_p95_ms: Vec<f64>,
    /// 99th-percentile response (ms) per event-index segment.
    pub phase_p99_ms: Vec<f64>,
    /// Snapshot refreshes swapped into the predictor (online modes; 0 for
    /// whole-trace serving).
    pub refreshes: u64,
    /// Files the miner evicted under `node_cap` pressure (capped modes; 0
    /// when uncapped).
    pub miner_evictions: u64,
    /// Crash/recover cycles survived (failure cells; 0 elsewhere).
    pub recoveries: u64,
    /// Logged events re-processed (WAL suffix replay) across all
    /// recoveries (failure cells).
    pub recovery_events: u64,
    /// Logged events the recovered states represent — checkpoint-anchored
    /// prefix plus replayed suffix (failure cells). Equals
    /// `recovery_events` for genesis-replay modes.
    pub recovered_events: u64,
    /// `recovery_events / recovered_events`: the replayed share of the
    /// recovered state. 1.0 without checkpoints, ≪ 1 when a checkpoint
    /// image anchors the recovery; 0 when no recovery happened.
    pub replay_fraction: f64,
    /// Wall-clock milliseconds the recoveries took, summed over both
    /// co-driven legs (failure cells). Machine-dependent — reported but
    /// excluded from reference bands.
    pub recovery_ms: f64,
    /// Worst per-kill demand hit-ratio dip: the ratio over the window
    /// before a kill minus the window after it (failure cells).
    pub hit_ratio_dip: f64,
    /// Final write-ahead-log size in bytes (failure cells; 0 elsewhere).
    pub wal_bytes: u64,
}

impl Cell {
    /// Mean demand hit ratio over the post-shift reporting segments
    /// (everything after the first) — the drift scenario's adaptation
    /// metric: the first segment is the pre-shift regime, every later
    /// segment starts with rotated co-access sets.
    pub fn post_shift_hit_ratio(&self) -> f64 {
        let tail = self.phase_hit_ratios.get(1..).unwrap_or(&[]);
        if tail.is_empty() {
            return self.hit_ratio;
        }
        tail.iter().sum::<f64>() / tail.len() as f64
    }
}

/// Post-shift hit ratios of the drift scenario's adaptation comparison.
#[derive(Debug, Clone, Copy)]
pub struct AdaptationSummary {
    /// Frozen-snapshot serving (one snapshot at the first segment
    /// boundary, never refreshed).
    pub frozen_post_shift: f64,
    /// Densely refreshed online serving (`online64`).
    pub online_post_shift: f64,
}

/// The full matrix run plus the cross-mode invariants it verified.
#[derive(Debug, Clone)]
pub struct MatrixReport {
    /// Every cell, scenario-major in [`SCENARIOS`] × mode × predictor
    /// order.
    pub cells: Vec<Cell>,
    /// Scenarios whose batch-vs-sharded snapshot parity was asserted.
    pub parity_scenarios: usize,
    /// Largest absolute correlation-degree difference observed across all
    /// parity comparisons (0.0 means bit-identical lists).
    pub max_parity_delta: f64,
    /// The drift scenario's frozen-vs-online post-shift comparison
    /// (asserted `online ≥ frozen` by the run); `None` when drift was not
    /// among the scenarios.
    pub drift_adaptation: Option<AdaptationSummary>,
}

/// Drive the miner over a trace with the matrix's mining policy: metadata
/// demands are observed, unlinks are forgotten, `Close` is ignored.
fn mine_batch(trace: &Trace, cfg: &FarmerConfig) -> (Farmer, f64) {
    let mut farmer = Farmer::new(cfg.clone());
    let start = Instant::now();
    for e in &trace.events {
        if e.op == Op::Unlink {
            farmer.forget_file(e.file);
        } else if e.op.is_metadata_demand() {
            farmer.observe_event(trace, e);
        }
    }
    let rate = trace.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
    (farmer, rate)
}

/// The streaming configuration of the uncapped (exact-parity and online)
/// miner modes: a cap no scenario can reach.
fn uncapped_stream_cfg(cfg: &FarmerConfig, shards: usize) -> StreamConfig {
    StreamConfig::default()
        .with_farmer(cfg.clone())
        .with_shards(shards)
        // Uncapped: mode parity must compare mining, not eviction policy.
        .with_node_cap(1 << 20)
}

/// The streaming configuration of the capped miner modes:
/// [`CAPPED_NODE_CAP`] files per shard, forcing Space-Saving eviction on
/// the churning/consolidated scenarios.
fn capped_stream_cfg(cfg: &FarmerConfig, shards: usize) -> StreamConfig {
    StreamConfig::default()
        .with_farmer(cfg.clone())
        .with_shards(shards)
        .with_node_cap(CAPPED_NODE_CAP)
}

/// Same policy through the sharded online miner; returns the consistent
/// snapshot and the drive rate (including the snapshot barrier). Resident
/// state bytes and evictions ride on the snapshot.
fn mine_sharded(trace: &Trace, scfg: StreamConfig) -> (StreamSnapshot, f64) {
    let mut miner = ShardedMiner::spawn(scfg);
    let start = Instant::now();
    for e in &trace.events {
        if e.op == Op::Unlink {
            miner.route_forget(e.file);
        } else if e.op.is_metadata_demand() {
            miner.route_event(trace, e);
        }
    }
    let snap = miner.snapshot();
    let rate = trace.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
    (snap, rate)
}

/// Assert exact batch-vs-sharded parity for one scenario; returns the
/// largest absolute degree delta (≤ 1e-12 by construction).
fn assert_parity(scenario: &str, shards: usize, batch: &Farmer, snap: &StreamSnapshot) -> f64 {
    let mut max_delta = 0.0f64;
    // The sharded snapshot only holds tracked owners, so walk the batch
    // side for completeness in both directions.
    let mut batch_lists = 0usize;
    batch.for_each_list(&mut |owner, entries| {
        if entries.is_empty() {
            return;
        }
        batch_lists += 1;
        let got = snap
            .correlators(owner)
            .unwrap_or_else(|| panic!("{scenario}/sharded{shards}: missing list for {owner}"));
        assert_eq!(
            got.len(),
            entries.len(),
            "{scenario}/sharded{shards}: list length diverged for {owner}"
        );
        for (g, w) in got.iter().zip(entries.iter()) {
            assert_eq!(
                g.file, w.file,
                "{scenario}/sharded{shards}: successor diverged for {owner}"
            );
            let delta = (g.degree - w.degree).abs();
            assert!(
                delta < 1e-12,
                "{scenario}/sharded{shards}: degree diverged for {owner}: {delta}"
            );
            max_delta = max_delta.max(delta);
        }
    });
    assert_eq!(
        batch_lists,
        snap.num_lists(),
        "{scenario}/sharded{shards}: snapshot holds extra lists"
    );
    max_delta
}

/// Export the batch model's correlator lists as a standalone table (the
/// same entries `for_each_list` serves every backend).
fn export_table(farmer: &Farmer) -> CorrelatorTable {
    let mut table = CorrelatorTable::new();
    farmer.for_each_list(&mut |owner, entries| {
        if !entries.is_empty() {
            table.insert(CorrelatorList::from_sorted(owner, entries.to_vec()));
        }
    });
    table
}

/// Per-trace simulation/replay configs (family-sized caches, segmented
/// reporting).
fn cell_configs(trace: &Trace) -> (SimConfig, ReplayConfig) {
    let sim = SimConfig::for_family(trace.family).with_phases(PHASES);
    let mut rep = ReplayConfig::for_family(trace.family);
    rep.num_phases = PHASES;
    (sim, rep)
}

/// Run FPA fronted by an externally mined source through sim + replay.
fn fpa_cell<S>(
    scenario: &'static str,
    mode: &'static str,
    trace: &Trace,
    source: S,
    mine_rate: f64,
    miner_bytes: usize,
) -> Cell
where
    S: CorrelationSource + Clone + Send + 'static,
{
    let (sim_cfg, rep_cfg) = cell_configs(trace);
    let events = trace.len() as u64;
    let mut fpa = FpaPredictor::for_trace(trace);
    fpa.refresh(source.clone(), events);
    let sim = simulate(trace, &mut fpa, sim_cfg);
    let mut fpa2 = FpaPredictor::for_trace(trace);
    fpa2.refresh(source, events);
    let rep = replay(trace, Box::new(fpa2), rep_cfg);
    finish_cell(scenario, mode, "FARMER", sim, rep, mine_rate, miner_bytes)
}

/// Refresh interval (events) giving `refreshes` evenly spaced refresh
/// points over `trace`.
fn refresh_interval(trace: &Trace, refreshes: usize) -> usize {
    (trace.len() / refreshes.max(1)).max(1)
}

/// Run FPA under an online serving mode: sim and replay each co-drive
/// their own live miner with the identical routing policy, so the two
/// legs see the same snapshots at the same boundaries — asserted via
/// their miner-side counters.
fn online_cell(
    scenario: &'static str,
    mode: &'static str,
    trace: &Trace,
    online: &OnlineConfig,
) -> Cell {
    let (sim_cfg, rep_cfg) = cell_configs(trace);
    let mut fpa = FpaPredictor::for_trace(trace);
    let start = Instant::now();
    let osim = simulate_online(trace, &mut fpa, sim_cfg, online);
    // The drive loop of an online cell is mining + serving combined.
    let rate = trace.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
    let orep = replay_online(
        trace,
        Box::new(FpaPredictor::for_trace(trace)),
        rep_cfg,
        online,
    );
    assert_eq!(
        (osim.refreshes, osim.miner_evictions),
        (orep.online.refreshes, orep.online.miner_evictions),
        "{scenario}/{mode}: sim and replay co-driven miners diverged"
    );
    let mut cell = finish_cell(
        scenario,
        mode,
        "FARMER",
        osim.sim,
        orep.replay,
        rate,
        osim.miner_state_bytes,
    );
    cell.refreshes = osim.refreshes;
    cell.miner_evictions = osim.miner_evictions;
    cell
}

/// Run a self-mining predictor through sim + replay. `make` constructs a
/// fresh instance per leg so the replay does not serve a pre-trained
/// model.
fn self_cell(
    scenario: &'static str,
    predictor: &'static str,
    trace: &Trace,
    make: &dyn Fn() -> Box<dyn Predictor>,
) -> Cell {
    let (sim_cfg, rep_cfg) = cell_configs(trace);
    let mut p = make();
    let start = Instant::now();
    let sim = simulate(trace, p.as_mut(), sim_cfg);
    let rate = trace.len() as f64 / start.elapsed().as_secs_f64().max(1e-9);
    let rep = replay(trace, make(), rep_cfg);
    finish_cell(scenario, "self", predictor, sim, rep, rate, 0)
}

fn finish_cell(
    scenario: &'static str,
    mode: &'static str,
    predictor: &'static str,
    sim: SimReport,
    rep: farmer_mds::ReplayReport,
    events_per_sec: f64,
    miner_bytes: usize,
) -> Cell {
    let cell = Cell {
        scenario,
        mode,
        predictor,
        hit_ratio: sim.hit_ratio(),
        prefetch_accuracy: sim.prefetch_accuracy(),
        prefetch_waste: sim.stats.prefetch_waste(),
        avg_response_ms: rep.avg_response_ms(),
        response_p50_ms: rep.latency.percentile_us(0.50) as f64 / 1000.0,
        response_p95_ms: rep.latency.percentile_us(0.95) as f64 / 1000.0,
        response_p99_ms: rep.latency.percentile_us(0.99) as f64 / 1000.0,
        events_per_sec,
        memory_bytes: miner_bytes
            .max(sim.predictor_memory)
            .max(rep.predictor_memory),
        phase_hit_ratios: sim.phases.iter().map(|p| p.hit_ratio()).collect(),
        phase_response_ms: rep.phase_mean_ms.clone(),
        phase_p50_ms: rep.phase_p50_ms.clone(),
        phase_p95_ms: rep.phase_p95_ms.clone(),
        phase_p99_ms: rep.phase_p99_ms.clone(),
        refreshes: 0,
        miner_evictions: 0,
        recoveries: 0,
        recovery_events: 0,
        recovered_events: 0,
        replay_fraction: 0.0,
        recovery_ms: 0.0,
        hit_ratio_dip: 0.0,
        wal_bytes: 0,
    };
    for (name, v) in [
        ("hit_ratio", cell.hit_ratio),
        ("prefetch_accuracy", cell.prefetch_accuracy),
        ("prefetch_waste", cell.prefetch_waste),
    ] {
        assert!(
            (0.0..=1.0).contains(&v),
            "{scenario}/{mode}/{predictor}: {name} out of [0,1]: {v}"
        );
    }
    assert!(
        cell.avg_response_ms.is_finite() && cell.avg_response_ms > 0.0,
        "{scenario}/{mode}/{predictor}: bad response time"
    );
    assert!(
        cell.response_p50_ms > 0.0
            && cell.response_p50_ms <= cell.response_p95_ms
            && cell.response_p95_ms <= cell.response_p99_ms,
        "{scenario}/{mode}/{predictor}: response quantiles out of order: \
         p50 {} p95 {} p99 {}",
        cell.response_p50_ms,
        cell.response_p95_ms,
        cell.response_p99_ms
    );
    assert!(cell.events_per_sec.is_finite() && cell.events_per_sec > 0.0);
    cell
}

/// Run the whole matrix at `scale`. Asserts the cross-mode invariants
/// (snapshot parity, identical FPA quality across miner modes) along the
/// way — a matrix that fails an invariant never produces a report.
pub fn run_matrix(scale: f64) -> MatrixReport {
    run_matrix_with(scale, &SCENARIOS, &mut |_| {})
}

/// [`run_matrix`] over a scenario subset with a per-scenario progress
/// callback (the binary logs to stderr; tests pass a no-op).
pub fn run_matrix_with(
    scale: f64,
    scenarios: &[&'static str],
    progress: &mut dyn FnMut(&str),
) -> MatrixReport {
    assert!(scale > 0.0, "scale must be positive");
    let mut cells = Vec::new();
    let mut parity_scenarios = 0;
    let mut max_parity_delta = 0.0f64;
    let mut drift_adaptation = None;

    for &scenario in scenarios {
        progress(scenario);
        let trace = build_scenario(scenario, scale);
        let cfg = miner_config(&trace);

        if scenario == "failure" {
            // The correlated-failure family: one durable online-serving
            // cell per kill plan, each proven bitwise-recoverable inside
            // run_failure_cell. No batch/sharded parity applies (the
            // whole point is crashing the only miner), so this scenario
            // does not count toward parity_scenarios.
            for mode in crate::faults::FAILURE_MODES {
                let r = crate::faults::run_failure_cell(
                    &trace,
                    cfg.clone(),
                    mode,
                    ONLINE_DENSE_REFRESHES,
                    PHASES,
                );
                let mut cell = finish_cell(
                    scenario,
                    mode,
                    "FARMER",
                    r.sim,
                    r.replay,
                    r.events_per_sec,
                    r.miner_state_bytes,
                );
                cell.refreshes = r.refreshes;
                cell.recoveries = r.recoveries;
                cell.recovery_events = r.recovery_events;
                cell.recovered_events = r.recovered_events;
                cell.replay_fraction = r.replay_fraction;
                cell.recovery_ms = r.recovery_ms;
                cell.hit_ratio_dip = r.hit_ratio_dip;
                cell.wal_bytes = r.wal_bytes;
                assert!(
                    cell.recoveries > 0 && cell.recovery_events > 0,
                    "{scenario}/{mode}: failure cell never recovered"
                );
                cells.push(cell);
            }
            continue;
        }

        // FARMER's three exact-parity miner modes over the identical
        // mining policy.
        let (batch, batch_rate) = mine_batch(&trace, &cfg);
        let batch_bytes = batch.memory_bytes();
        let table = export_table(&batch);
        let mut fpa_cells = vec![fpa_cell(
            scenario,
            "batch",
            &trace,
            table,
            batch_rate,
            batch_bytes,
        )];
        for (mode, shards) in [("sharded1", 1usize), ("sharded4", 4usize)] {
            let (snap, rate) = mine_sharded(&trace, uncapped_stream_cfg(&cfg, shards));
            max_parity_delta = max_parity_delta.max(assert_parity(scenario, shards, &batch, &snap));
            let bytes = snap.state_bytes;
            fpa_cells.push(fpa_cell(scenario, mode, &trace, snap, rate, bytes));
        }
        parity_scenarios += 1;

        // The mined model is identical across modes, so serving quality
        // must be too — bitwise, not approximately.
        for c in &fpa_cells[1..] {
            let b = &fpa_cells[0];
            for (name, x, y) in [
                ("hit_ratio", b.hit_ratio, c.hit_ratio),
                (
                    "prefetch_accuracy",
                    b.prefetch_accuracy,
                    c.prefetch_accuracy,
                ),
                ("prefetch_waste", b.prefetch_waste, c.prefetch_waste),
                ("avg_response_ms", b.avg_response_ms, c.avg_response_ms),
            ] {
                assert!(
                    (x - y).abs() < 1e-12,
                    "{scenario}: FPA {name} diverged between batch and {}: {x} vs {y}",
                    c.mode
                );
            }
        }

        // Adaptation-lag serving modes: frozen (one snapshot at the first
        // segment boundary) vs periodic online refresh, uncapped.
        let stream = uncapped_stream_cfg(&cfg, 1);
        let frozen = online_cell(
            scenario,
            "frozen",
            &trace,
            &OnlineConfig::frozen_at(stream.clone(), trace.len() / PHASES),
        );
        assert_eq!(
            frozen.refreshes, 1,
            "{scenario}: frozen mode must refresh exactly once"
        );
        let online_sparse = online_cell(
            scenario,
            "online8",
            &trace,
            &OnlineConfig::every(
                stream.clone(),
                refresh_interval(&trace, ONLINE_SPARSE_REFRESHES),
            ),
        );
        let online_dense = online_cell(
            scenario,
            "online64",
            &trace,
            &OnlineConfig::every(stream, refresh_interval(&trace, ONLINE_DENSE_REFRESHES)),
        );
        if scenario == "drift" {
            // The paper's core online claim: correlation-directed
            // prefetching keeps paying off while the workload shifts
            // underneath it — refreshed serving must beat the frozen
            // pre-shift snapshot once the co-access sets rotate.
            for online in [&online_sparse, &online_dense] {
                assert!(
                    online.post_shift_hit_ratio() >= frozen.post_shift_hit_ratio(),
                    "drift: {} post-shift hit ratio {:.4} fell below frozen-snapshot \
                     serving {:.4} — online adaptation regressed",
                    online.mode,
                    online.post_shift_hit_ratio(),
                    frozen.post_shift_hit_ratio()
                );
            }
            drift_adaptation = Some(AdaptationSummary {
                frozen_post_shift: frozen.post_shift_hit_ratio(),
                online_post_shift: online_dense.post_shift_hit_ratio(),
            });
        }
        if scenario == "base" {
            // Stationary workload: once warmed up, densely refreshed
            // online serving must converge to within a fixed gap of the
            // whole-trace oracle (compared on the final segment; the
            // first is structurally cold).
            let last = PHASES - 1;
            let gap = fpa_cells[0].phase_hit_ratios[last] - online_dense.phase_hit_ratios[last];
            assert!(
                gap <= ONLINE_CONVERGENCE_GAP,
                "base: online64 last-segment hit ratio trails the batch oracle \
                 by {gap:.4} (> {ONLINE_CONVERGENCE_GAP}) — snapshot cadence or \
                 refresh plumbing regressed"
            );
        }
        fpa_cells.extend([frozen, online_sparse, online_dense]);

        // Capped miner modes: whole-trace mining under node_cap pressure,
        // plus the capped online combination.
        for (mode, shards) in [("capped1", 1usize), ("capped4", 4usize)] {
            let (snap, rate) = mine_sharded(&trace, capped_stream_cfg(&cfg, shards));
            assert!(
                snap.tracked_files <= CAPPED_NODE_CAP * shards,
                "{scenario}/{mode}: node cap violated"
            );
            let (bytes, evictions) = (snap.state_bytes, snap.evictions);
            let mut cell = fpa_cell(scenario, mode, &trace, snap, rate, bytes);
            cell.miner_evictions = evictions;
            fpa_cells.push(cell);
        }
        fpa_cells.push(online_cell(
            scenario,
            "online64capped",
            &trace,
            &OnlineConfig::every(
                capped_stream_cfg(&cfg, 1),
                refresh_interval(&trace, ONLINE_DENSE_REFRESHES),
            ),
        ));
        if scale >= crate::refmodel::QUICK_SCALE && matches!(scenario, "tenants" | "churn") {
            // At the calibrated profiles these scenarios touch far more
            // distinct files than the cap tracks: the capped cells must
            // actually exercise eviction, or they measure nothing.
            for c in fpa_cells.iter().filter(|c| c.mode.contains("capped")) {
                assert!(
                    c.miner_evictions > 0,
                    "{scenario}/{}: capped cell never evicted (cap {CAPPED_NODE_CAP})",
                    c.mode
                );
            }
        }
        cells.extend(fpa_cells);

        // Self-mining predictors.
        for predictor in SELF_PREDICTORS {
            let make: Box<dyn Fn() -> Box<dyn Predictor>> = match predictor {
                "Nexus" => Box::new(|| Box::new(NexusPredictor::paper_default())),
                "ProbGraph" => Box::new(|| Box::new(ProbabilityGraph::classic())),
                "SdGraph" => Box::new(|| Box::new(SdGraph::classic())),
                "LRU" => Box::new(|| Box::new(LruOnly)),
                other => unreachable!("unknown predictor {other}"),
            };
            cells.push(self_cell(scenario, predictor, &trace, make.as_ref()));
        }
    }

    MatrixReport {
        cells,
        parity_scenarios,
        max_parity_delta,
        drift_adaptation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_builds_and_validates() {
        for name in SCENARIOS {
            let trace = build_scenario(name, 0.05);
            assert!(trace.validate().is_ok(), "{name} invalid");
            assert!(trace.len() > 500, "{name} too small at 0.05 scale");
        }
    }

    #[test]
    #[should_panic(expected = "unknown scenario")]
    fn unknown_scenario_rejected() {
        let _ = build_scenario("nope", 1.0);
    }

    #[test]
    fn tenants_scenario_is_pathless_base_is_not() {
        assert!(build_scenario("base", 0.02).family.has_paths());
        assert!(!build_scenario("tenants", 0.02).family.has_paths());
    }

    #[test]
    fn single_scenario_matrix_has_full_predictor_axis() {
        // One scenario end-to-end at tiny scale: 9 FPA modes + 4 self
        // predictors, parity asserted, metrics sane (the per-cell asserts
        // run inside run_matrix_with).
        let report = run_matrix_with(0.05, &["churn"], &mut |_| {});
        assert_eq!(report.cells.len(), FPA_MODES.len() + SELF_PREDICTORS.len());
        assert_eq!(report.parity_scenarios, 1);
        assert!(report.max_parity_delta < 1e-12);
        assert!(report.drift_adaptation.is_none(), "drift was not run");
        for c in &report.cells {
            assert_eq!(c.phase_hit_ratios.len(), PHASES);
            assert_eq!(c.phase_response_ms.len(), PHASES);
            assert_eq!(c.phase_p50_ms.len(), PHASES);
            assert_eq!(c.phase_p95_ms.len(), PHASES);
            assert_eq!(c.phase_p99_ms.len(), PHASES);
            assert!(c.response_p50_ms <= c.response_p95_ms);
            assert!(c.response_p95_ms <= c.response_p99_ms);
        }
        let lru = report
            .cells
            .iter()
            .find(|c| c.predictor == "LRU")
            .expect("LRU cell");
        assert_eq!(lru.prefetch_accuracy, 0.0, "LRU never prefetches");
        // The online axis really refreshed at its configured cadence, and
        // the frozen cell froze.
        let by_mode = |m: &str| {
            report
                .cells
                .iter()
                .find(|c| c.mode == m)
                .unwrap_or_else(|| panic!("missing {m} cell"))
        };
        assert_eq!(by_mode("frozen").refreshes, 1);
        // One refresh per interior interval boundary: (len-1)/interval.
        let len = build_scenario("churn", 0.05).len();
        let expected = |n: usize| ((len - 1) / (len / n).max(1)) as u64;
        assert_eq!(
            by_mode("online8").refreshes,
            expected(ONLINE_SPARSE_REFRESHES)
        );
        assert_eq!(
            by_mode("online64").refreshes,
            expected(ONLINE_DENSE_REFRESHES)
        );
        for m in ["batch", "sharded1", "sharded4", "capped1", "capped4"] {
            assert_eq!(by_mode(m).refreshes, 0, "{m} never refreshes");
        }
        // Churn at 0.05 scale already touches > CAPPED_NODE_CAP distinct
        // files, so the single-shard capped cells must evict.
        assert!(by_mode("capped1").miner_evictions > 0);
        assert!(by_mode("online64capped").miner_evictions > 0);
        for m in [
            "batch", "sharded1", "sharded4", "frozen", "online8", "online64",
        ] {
            assert_eq!(by_mode(m).miner_evictions, 0, "{m} is uncapped");
        }
    }

    #[test]
    fn failure_family_runs_one_cell_per_mode() {
        use crate::faults::FAILURE_MODES;
        let report = run_matrix_with(0.05, &["failure"], &mut |_| {});
        assert_eq!(report.cells.len(), FAILURE_MODES.len());
        // Crashing the only miner leaves nothing to compare against:
        // parity does not apply to this family.
        assert_eq!(report.parity_scenarios, 0);
        for (c, mode) in report.cells.iter().zip(FAILURE_MODES) {
            assert_eq!(c.scenario, "failure");
            assert_eq!(c.mode, mode);
            assert_eq!(c.predictor, "FARMER");
            assert!(c.refreshes > 0, "{mode}: online refreshes ran");
            assert!(c.recovery_events > 0, "{mode}: recovery replayed events");
            assert!(c.recovery_ms > 0.0);
            assert!(c.wal_bytes > 4096, "{mode}: more than a WAL header logged");
            assert!(c.hit_ratio_dip.abs() <= 1.0);
            assert_eq!(c.phase_hit_ratios.len(), PHASES);
            assert_eq!(c.phase_response_ms.len(), PHASES);
        }
        let by_mode = |m: &str| report.cells.iter().find(|c| c.mode == m).unwrap();
        assert_eq!(by_mode("kill50").recoveries, 1);
        assert_eq!(by_mode("kill50torn").recoveries, 1);
        assert_eq!(by_mode("kill25x3").recoveries, 3);
        assert_eq!(by_mode("ckpt").recoveries, 1);
        // Genesis-replay modes replay everything they recover; the
        // checkpointed mode replays only the suffix past its anchor.
        for m in ["kill50", "kill50torn", "kill25x3"] {
            assert_eq!(by_mode(m).recovered_events, by_mode(m).recovery_events);
            assert_eq!(by_mode(m).replay_fraction, 1.0, "{m} is genesis replay");
        }
        let ckpt = by_mode("ckpt");
        assert!(ckpt.recovery_events < ckpt.recovered_events);
        assert!(ckpt.replay_fraction > 0.0 && ckpt.replay_fraction < 0.5);
        // Same kill point as kill50: the checkpoint changes how much is
        // replayed, not (materially) how much is recovered — a checkpoint
        // sync can push the durable prefix forward by at most one
        // route batch relative to the uncheckpointed leg.
        let diff = ckpt
            .recovered_events
            .abs_diff(by_mode("kill50").recovered_events);
        assert!(
            diff <= 256,
            "ckpt recovered {} vs kill50 {}",
            ckpt.recovered_events,
            by_mode("kill50").recovered_events
        );
    }

    #[test]
    fn drift_scenario_online_beats_frozen_post_shift() {
        // The acceptance property at reduced scale: after the co-access
        // rotation, refreshed online serving must not fall below the
        // frozen pre-shift snapshot (run_matrix_with asserts it; this
        // test pins the recorded summary).
        let report = run_matrix_with(0.1, &["drift"], &mut |_| {});
        let a = report.drift_adaptation.expect("drift adaptation recorded");
        assert!(
            a.online_post_shift >= a.frozen_post_shift,
            "online {:.4} < frozen {:.4}",
            a.online_post_shift,
            a.frozen_post_shift
        );
    }
}

//! # farmer-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see `src/bin/`), all built on
//! the experiment functions in [`experiments`]. Every binary accepts an
//! optional positional argument: a **scale factor** applied to the trace
//! event counts (default 1.0; e.g. `0.2` for a fast smoke run), and prints
//! an aligned text table with the paper's reference values alongside where
//! the paper reports them ([`paper`]).
//!
//! ```text
//! cargo run --release -p farmer-bench --bin fig7_hit_ratio
//! cargo run --release -p farmer-bench --bin repro            # everything
//! ```
//!
//! Criterion micro-benchmarks for the kernels (similarity, miner update,
//! cache ops, B+-tree ops, trace generation) live in `benches/`.

// This crate is unsafe-free by policy (lint rule R2 guards the rest).
#![forbid(unsafe_code)]

pub mod evalmatrix;
pub mod experiments;
pub mod faults;
pub mod format;
pub mod paper;
pub mod refmodel;
pub mod serve;

/// Parse the scale factor from `argv[1]` (default 1.0).
pub fn scale_from_args() -> f64 {
    std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<f64>().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(1.0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scale_default_is_one() {
        // argv[1] in the test harness is not a number.
        assert_eq!(super::scale_from_args(), 1.0);
    }
}

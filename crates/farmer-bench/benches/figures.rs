//! End-to-end experiment benchmarks: each paper table/figure measured as a
//! criterion benchmark at a reduced trace scale, so `cargo bench` exercises
//! every experiment code path and reports how long each takes.
//!
//! For the paper-vs-measured numbers themselves, run the dedicated
//! binaries (`cargo run --release -p farmer-bench --bin repro`).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use farmer_bench::experiments as ex;

const SCALE: f64 = 0.05;

fn bench_figures(c: &mut Criterion) {
    let mut g = c.benchmark_group("experiments");
    g.sample_size(10);
    g.bench_function("fig1_successor_probability", |b| {
        b.iter(|| black_box(ex::fig1(SCALE).len()))
    });
    g.bench_function("table2_dpa_ipa", |b| {
        b.iter(|| black_box(ex::table2().len()))
    });
    g.bench_function("fig7_hit_ratio_comparison", |b| {
        b.iter(|| black_box(ex::fig7(SCALE).len()))
    });
    g.bench_function("table3_prefetch_accuracy", |b| {
        b.iter(|| black_box(ex::table3(SCALE)))
    });
    g.bench_function("fig8_response_time", |b| {
        b.iter(|| black_box(ex::fig8(SCALE).len()))
    });
    g.bench_function("table4_space_overhead", |b| {
        b.iter(|| black_box(ex::table4(SCALE).len()))
    });
    g.bench_function("layout_experiment", |b| {
        b.iter(|| black_box(ex::layout_experiment(SCALE)))
    });
    g.finish();
}

criterion_group!(figure_benches, bench_figures);
criterion_main!(figure_benches);

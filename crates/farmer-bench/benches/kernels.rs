//! Criterion micro-benchmarks for the hot kernels.
//!
//! These complement the figure binaries (which regenerate the paper's
//! tables): they measure the per-operation costs that determine whether
//! FARMER's online mining is deployable on a metadata server's fast path —
//! the paper's efficiency argument (§3.3).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

use farmer_core::{similarity, AttrCombo, Farmer, FarmerConfig, PathMode, Request};
use farmer_prefetch::{FpaPredictor, MetadataCache, NexusPredictor, Predictor};
use farmer_store::BTree;
use farmer_trace::{DevId, FileId, HostId, PathInterner, ProcId, UserId, WorkloadSpec};

fn req(file: u32, uid: u32, pid: u32, host: u32) -> Request {
    Request {
        file: FileId::new(file),
        uid: UserId::new(uid),
        pid: ProcId::new(pid),
        host: HostId::new(host),
        dev: DevId::new(0),
    }
}

fn bench_similarity(c: &mut Criterion) {
    let mut interner = PathInterner::new();
    let pa = interner.parse("/home/user1/project/src/deep/main.c");
    let pb = interner.parse("/home/user1/project/src/deep/util.c");
    let a = req(0, 1, 2, 3);
    let b = req(1, 1, 4, 3);
    let combo = AttrCombo::hp_default();

    let mut g = c.benchmark_group("similarity");
    g.bench_function("ipa", |bench| {
        bench.iter(|| {
            black_box(similarity(
                black_box(&a),
                Some(&pa),
                black_box(&b),
                Some(&pb),
                combo,
                PathMode::Ipa,
            ))
        })
    });
    g.bench_function("dpa", |bench| {
        bench.iter(|| {
            black_box(similarity(
                black_box(&a),
                Some(&pa),
                black_box(&b),
                Some(&pb),
                combo,
                PathMode::Dpa,
            ))
        })
    });
    g.finish();
}

fn bench_miner_observe(c: &mut Criterion) {
    let trace = WorkloadSpec::hp().scaled(0.2).generate();
    let mut g = c.benchmark_group("miner");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    g.bench_function("observe_trace_hp", |bench| {
        bench.iter(|| {
            let mut farmer = Farmer::new(FarmerConfig::default());
            for e in &trace.events {
                farmer.observe_event(&trace, e);
            }
            black_box(farmer.graph().num_edges())
        })
    });
    g.finish();
}

fn bench_correlator_query(c: &mut Criterion) {
    use farmer_core::CorrelationSource;
    let trace = WorkloadSpec::hp().scaled(0.2).generate();
    let farmer = Farmer::mine_trace(&trace, FarmerConfig::default());
    let hot = trace.events[trace.len() / 2].file;
    let mut g = c.benchmark_group("query");
    g.bench_function("correlators_full_list", |bench| {
        bench.iter(|| black_box(farmer.correlators(black_box(hot)).len()))
    });
    g.bench_function("top_k_into_k4", |bench| {
        let mut buf = Vec::new();
        bench.iter(|| {
            farmer.top_k_into(black_box(hot), 4, 0.4, &mut buf);
            black_box(buf.len())
        })
    });
    g.bench_function("strongest", |bench| {
        bench.iter(|| black_box(farmer.strongest(black_box(hot), 0.4).is_some()))
    });
    g.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let trace = WorkloadSpec::hp().scaled(0.1).generate();
    let mut g = c.benchmark_group("predictor_per_event");
    g.throughput(Throughput::Elements(trace.len() as u64));
    g.sample_size(10);
    g.bench_function("fpa", |bench| {
        bench.iter(|| {
            let mut p = FpaPredictor::for_trace(&trace);
            let mut n = 0usize;
            for e in &trace.events {
                n += p.on_access(&trace, e).len();
            }
            black_box(n)
        })
    });
    g.bench_function("nexus", |bench| {
        bench.iter(|| {
            let mut p = NexusPredictor::paper_default();
            let mut n = 0usize;
            for e in &trace.events {
                n += p.on_access(&trace, e).len();
            }
            black_box(n)
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    g.bench_function("access_hit", |bench| {
        let mut cache = MetadataCache::new(1024);
        for i in 0..1024 {
            cache.insert_demand(FileId::new(i));
        }
        let mut i = 0u32;
        bench.iter(|| {
            i = (i + 7) % 1024;
            black_box(cache.access(FileId::new(i)))
        })
    });
    g.bench_function("insert_evict", |bench| {
        let mut cache = MetadataCache::new(256);
        let mut i = 0u32;
        bench.iter(|| {
            i = i.wrapping_add(1);
            cache.insert_demand(FileId::new(i));
        })
    });
    g.finish();
}

fn bench_btree(c: &mut Criterion) {
    let mut g = c.benchmark_group("btree");
    g.bench_function("get_100k", |bench| {
        let mut t = BTree::new();
        for k in 0..100_000u64 {
            t.insert(k, &k.to_le_bytes());
        }
        let mut k = 0u64;
        bench.iter(|| {
            k = (k + 7919) % 100_000;
            black_box(t.get(k).is_some())
        })
    });
    g.bench_function("insert_churn", |bench| {
        let mut t = BTree::new();
        let mut k = 0u64;
        bench.iter(|| {
            k = k.wrapping_add(0x9e3779b97f4a7c15);
            t.insert(k % 1_000_000, b"record-bytes-here");
        })
    });
    g.finish();
}

fn bench_trace_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_gen");
    g.sample_size(10);
    let spec = WorkloadSpec::hp().scaled(0.1);
    g.throughput(Throughput::Elements(spec.num_events as u64));
    g.bench_function("hp_15k_events", |bench| {
        bench.iter(|| black_box(spec.generate().len()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_similarity,
    bench_miner_observe,
    bench_correlator_query,
    bench_predictors,
    bench_cache,
    bench_btree,
    bench_trace_generation
);
criterion_main!(benches);

//! Append-only, page-structured write-ahead log for the durable mining
//! tier.
//!
//! A live `ShardedMiner` that dies loses everything since its last
//! snapshot export; the WAL closes that gap. The mining tier logs its
//! logical operation stream (ingests and forgets) here *before* the
//! events mutate the correlation graph, so a crashed miner replays the
//! log and lands on its exact pre-crash state (the graph is a
//! deterministic function of the operation sequence).
//!
//! ## On-disk format
//!
//! The file is a sequence of fixed-size pages (default 4 KiB). Page 0 is
//! the header page: the 8-byte magic `FWAL0001`, the page size as a
//! little-endian `u32`, zero padding to the page boundary. Every later
//! page holds whole records — records never span pages. A record is
//!
//! ```text
//! [crc: u32][len: u32][lsn: u64][kind: u8][payload: len bytes]
//! ```
//!
//! with `crc` a CRC-32 (IEEE) over everything after itself (`len`, `lsn`,
//! `kind`, payload). When the remainder of a page cannot fit the next
//! record it is zero-filled and the record starts on the next page; an
//! all-zero record header therefore unambiguously means "padding, skip to
//! the next page" (empty payloads are rejected at append time to keep
//! zero distinguishable from data). LSNs are assigned by the log,
//! starting at 1 and incrementing by exactly 1 per record; any gap found
//! while scanning marks the tail torn.
//!
//! ## Durability contract
//!
//! [`Wal::append`] buffers in user space; [`Wal::sync`] writes the buffer
//! and `fsync`s. Callers sync on their batch boundary (the mining tier's
//! two-phase dispatch), so the loss window after a crash is exactly the
//! events appended since the last completed sync. [`Wal::abandon`]
//! simulates that crash for tests and fault injection: it drops the
//! unsynced buffer on the floor, leaving the file as a real power cut
//! would (modulo torn writes, which the fault harness injects directly).
//!
//! ## Tail scan
//!
//! [`Wal::open`] and [`Wal::scan`] walk the pages from the front,
//! verifying checksum and LSN continuity, and stop at the first record
//! that is truncated, corrupt, or out of sequence. Everything before the
//! stop point is returned; [`Wal::open`] additionally truncates the file
//! back to the last valid record so subsequent appends continue cleanly.
//! The scan never panics on arbitrary bytes past the header page and
//! never returns a record whose checksum does not match.
//!
//! Checkpoint records ([`record_kind::CHECKPOINT`]) carry a reference —
//! sequence number, operation counts, length and checksum — to a
//! snapshot persisted in a sidecar file next to the log (see
//! `farmer-stream::durable`); the snapshot gives a recovered miner its
//! serving state instantly while the log replay rebuilds mining state.

use std::fs::{File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};

use farmer_obs::{Counter, Gauge, Histogram, Registry, Span};

/// Magic bytes opening every WAL file (format version 1).
pub const WAL_MAGIC: [u8; 8] = *b"FWAL0001";

/// Default page size: 4 KiB, the common filesystem block size.
pub const DEFAULT_PAGE_SIZE: usize = 4096;

/// Bytes of record framing before the payload: crc(4) + len(4) + lsn(8)
/// + kind(1).
pub const RECORD_HEADER: usize = 17;

/// Log sequence number: 1-based, dense, assigned by the log.
pub type Lsn = u64;

/// Record kinds understood by the mining tier.
pub mod record_kind {
    /// One logical mining operation (ingest or forget).
    pub const OP: u8 = 1;
    /// A checkpoint: references a persisted snapshot sidecar.
    pub const CHECKPOINT: u8 = 2;
}

/// Errors from WAL append/open paths. Scan-side corruption is *not* an
/// error — it is reported as a [`TailReport`] because a torn tail is the
/// expected crash outcome, not an exceptional one.
#[derive(Debug)]
pub enum WalError {
    /// Underlying file I/O failed.
    Io(io::Error),
    /// The header page is missing, short, or not a WAL we understand.
    BadHeader(&'static str),
    /// A record (header + payload) must fit inside one page.
    PayloadTooLarge {
        /// Payload length requested.
        len: usize,
        /// Largest payload a page can hold.
        max: usize,
    },
    /// Empty payloads are forbidden (they would be ambiguous with page
    /// padding).
    EmptyPayload,
}

impl std::fmt::Display for WalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal i/o: {e}"),
            WalError::BadHeader(why) => write!(f, "wal header: {why}"),
            WalError::PayloadTooLarge { len, max } => {
                write!(f, "wal payload {len} bytes exceeds page capacity {max}")
            }
            WalError::EmptyPayload => write!(f, "wal payloads must be non-empty"),
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One decoded, checksum-verified record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalEntry {
    /// The record's log sequence number.
    pub lsn: Lsn,
    /// Record kind (see [`record_kind`]).
    pub kind: u8,
    /// The payload bytes.
    pub payload: Vec<u8>,
    /// Byte offset of the record header within the log file. Compaction
    /// uses this to find the page boundary a retained record lives on.
    pub offset: u64,
}

/// What [`Wal::compact_before`] reclaimed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WalCompaction {
    /// Whole pages dropped from the front of the log (excluding the
    /// header page, which always survives).
    pub pages_dropped: u64,
    /// Bytes those pages occupied.
    pub bytes_dropped: u64,
    /// The LSN the compaction was anchored at (the oldest record the
    /// caller still needs). Zero when the call was a no-op.
    pub anchor_lsn: Lsn,
}

/// What the tail scan found: how much of the log was intact and whether
/// (and how) it ended early.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TailReport {
    /// Checksum-verified records recovered.
    pub records: u64,
    /// File offset one past the last valid record.
    pub valid_bytes: u64,
    /// Bytes past the last valid record that were discarded.
    pub dropped_bytes: u64,
    /// True when the discarded bytes were non-zero data (a torn or
    /// corrupt record) rather than clean page padding.
    pub torn: bool,
}

/// Live observability for the log, under the `wal.*` scope.
#[derive(Debug, Default, Clone)]
pub struct WalMetrics {
    /// Records appended (`wal.append_records`).
    pub append_records: Counter,
    /// Payload + framing bytes appended, including page padding
    /// (`wal.append_bytes`).
    pub append_bytes: Counter,
    /// Completed write+fsync cycles (`wal.syncs`).
    pub syncs: Counter,
    /// Wall-clock nanoseconds per write+fsync cycle (`wal.fsync_ns`).
    pub fsync_ns: Histogram,
    /// Checkpoint records appended (`wal.checkpoints`).
    pub checkpoints: Counter,
    /// Completed (non-no-op) compactions (`wal.compactions`).
    pub compactions: Counter,
    /// Whole pages reclaimed by compaction (`wal.pages_dropped`).
    pub pages_dropped: Counter,
    /// The LSN the most recent compaction was anchored at
    /// (`wal.anchor_lsn`).
    pub anchor_lsn: Gauge,
}

impl WalMetrics {
    /// Register the log's metrics under `reg` (use a `wal`-scoped
    /// registry; see the workspace naming scheme in `farmer-obs`).
    pub fn new(reg: &Registry) -> WalMetrics {
        WalMetrics {
            append_records: reg.counter("append_records"),
            append_bytes: reg.counter("append_bytes"),
            syncs: reg.counter("syncs"),
            fsync_ns: reg.histogram("fsync_ns"),
            checkpoints: reg.counter("checkpoints"),
            compactions: reg.counter("compactions"),
            pages_dropped: reg.counter("pages_dropped"),
            anchor_lsn: reg.gauge("anchor_lsn"),
        }
    }
}

/// The append-only log. See the module docs for format and contract.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    page_size: usize,
    next_lsn: Lsn,
    /// Logical end of the log: where the next record lands once the
    /// buffer is flushed (file bytes + buffered bytes).
    write_pos: u64,
    /// Appended but not yet written+synced.
    buf: Vec<u8>,
    /// Records currently sitting in `buf` (so a crash can roll the LSN
    /// counter back).
    buf_records: u64,
    obs: WalMetrics,
}

impl Wal {
    /// Create a fresh log at `path` (truncating any existing file) and
    /// durably write the header page.
    pub fn create(path: &Path) -> Result<Wal, WalError> {
        Wal::create_with_page_size(path, DEFAULT_PAGE_SIZE)
    }

    /// [`Wal::create`] with an explicit page size (min 64 bytes, so the
    /// header and at least a small record fit a page).
    pub fn create_with_page_size(path: &Path, page_size: usize) -> Result<Wal, WalError> {
        assert!(page_size >= 64, "wal page size must be at least 64 bytes");
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        let mut header = vec![0u8; page_size];
        header[..8].copy_from_slice(&WAL_MAGIC);
        header[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
        file.write_all(&header)?;
        file.sync_data()?;
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            page_size,
            next_lsn: 1,
            write_pos: page_size as u64,
            buf: Vec::new(),
            buf_records: 0,
            obs: WalMetrics::default(),
        })
    }

    /// Open an existing log: verify the header, scan the tail, truncate
    /// past the last valid record, and position for append. Returns the
    /// recovered records alongside the positioned log.
    pub fn open(path: &Path) -> Result<(Wal, Vec<WalEntry>, TailReport), WalError> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        let (page_size, entries, report) = scan_bytes(&data)?;
        // Drop the torn tail so appends continue from a clean boundary.
        if report.dropped_bytes > 0 {
            file.set_len(report.valid_bytes)?;
            file.sync_data()?;
        }
        let next_lsn = entries.last().map_or(1, |e| e.lsn + 1);
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                page_size,
                next_lsn,
                write_pos: report.valid_bytes,
                buf: Vec::new(),
                buf_records: 0,
                obs: WalMetrics::default(),
            },
            entries,
            report,
        ))
    }

    /// Read-only scan of a log file: all checksum-verified records plus
    /// the tail report. Never modifies the file, never panics on
    /// arbitrary post-header bytes.
    pub fn scan(path: &Path) -> Result<(Vec<WalEntry>, TailReport), WalError> {
        let mut file = File::open(path)?;
        let mut data = Vec::new();
        file.read_to_end(&mut data)?;
        let (_, entries, report) = scan_bytes(&data)?;
        Ok((entries, report))
    }

    /// Attach live observability (a no-op set is installed by default).
    pub fn instrument(&mut self, obs: WalMetrics) {
        self.obs = obs;
    }

    /// The file path this log writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The page size the log was created with.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// The LSN the next append will receive.
    pub fn next_lsn(&self) -> Lsn {
        self.next_lsn
    }

    /// Logical size of the log in bytes (including buffered appends).
    pub fn len_bytes(&self) -> u64 {
        self.write_pos
    }

    /// Largest payload one page can hold.
    pub fn max_payload(&self) -> usize {
        self.page_size - RECORD_HEADER
    }

    /// Append one record to the user-space buffer and return its LSN.
    /// Not durable until the next [`Wal::sync`].
    pub fn append(&mut self, kind: u8, payload: &[u8]) -> Result<Lsn, WalError> {
        if payload.is_empty() {
            return Err(WalError::EmptyPayload);
        }
        let need = RECORD_HEADER + payload.len();
        if need > self.page_size {
            return Err(WalError::PayloadTooLarge {
                len: payload.len(),
                max: self.max_payload(),
            });
        }
        let page_off = (self.write_pos % self.page_size as u64) as usize;
        let room = self.page_size - page_off;
        let mut written = 0u64;
        if room < need {
            // Zero-fill the remainder; the record starts on the next page.
            self.buf.resize(self.buf.len() + room, 0);
            self.write_pos += room as u64;
            written += room as u64;
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let mut body = Vec::with_capacity(need - 4);
        body.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        body.extend_from_slice(&lsn.to_le_bytes());
        body.push(kind);
        body.extend_from_slice(payload);
        let crc = crc32(&body);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf.extend_from_slice(&body);
        self.write_pos += need as u64;
        written += need as u64;
        self.buf_records += 1;
        self.obs.append_records.inc();
        self.obs.append_bytes.add(written);
        if kind == record_kind::CHECKPOINT {
            self.obs.checkpoints.inc();
        }
        Ok(lsn)
    }

    /// Write the buffered records and `fsync`. After this returns, every
    /// prior append survives a crash.
    pub fn sync(&mut self) -> io::Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let span = Span::start(&self.obs.fsync_ns);
        // The cursor may be stale (open() reads to EOF then truncates);
        // always write at the logical end of the synced prefix.
        self.file
            .seek(SeekFrom::Start(self.write_pos - self.buf.len() as u64))?;
        self.file.write_all(&self.buf)?;
        self.buf.clear();
        self.buf_records = 0;
        self.file.sync_data()?;
        span.finish();
        self.obs.syncs.inc();
        Ok(())
    }

    /// Simulate a crash: discard the unsynced buffer. The file is left
    /// exactly as the last completed [`Wal::sync`] made it.
    pub fn abandon(&mut self) {
        self.write_pos -= self.buf.len() as u64;
        self.next_lsn -= self.buf_records;
        self.buf.clear();
        self.buf_records = 0;
    }

    /// Drop every page that lies wholly before the record carrying
    /// `keep_lsn`, keeping the header page and everything from the page
    /// that record starts on. After compaction the log scans cleanly
    /// (LSN continuity is only enforced *between* records, so a first
    /// record at `keep_lsn - k` is fine) and appends continue with the
    /// same LSN sequence.
    ///
    /// The rewrite is crash-safe: the compacted image is written to a
    /// temporary file, synced, and renamed over the log, so a kill at
    /// any point leaves either the old or the new log — never a hybrid.
    ///
    /// No-ops (returning zero pages dropped) when `keep_lsn` is 0, is
    /// not present in the log, or its record already sits on the first
    /// data page.
    pub fn compact_before(&mut self, keep_lsn: Lsn) -> Result<WalCompaction, WalError> {
        // Flush buffered appends so the file image is the whole log.
        self.sync()?;
        if keep_lsn == 0 {
            return Ok(WalCompaction::default());
        }
        self.file.seek(SeekFrom::Start(0))?;
        let mut data = Vec::new();
        self.file.read_to_end(&mut data)?;
        let (_, entries, _) = scan_bytes(&data)?;
        let Some(anchor) = entries.iter().find(|e| e.lsn == keep_lsn) else {
            return Ok(WalCompaction::default());
        };
        // Keep the whole page the anchor record starts on.
        let cut = anchor.offset - anchor.offset % self.page_size as u64;
        if cut <= self.page_size as u64 {
            return Ok(WalCompaction::default());
        }
        let dropped = cut - self.page_size as u64;
        let mut compacted = Vec::with_capacity(data.len() - dropped as usize);
        compacted.extend_from_slice(&data[..self.page_size]);
        compacted.extend_from_slice(&data[cut as usize..]);

        let tmp = self.path.with_extension("wal.compact-tmp");
        {
            let mut f = OpenOptions::new()
                .write(true)
                .create(true)
                .truncate(true)
                .open(&tmp)?;
            f.write_all(&compacted)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        // The rename replaced the directory entry; the old handle still
        // points at the orphaned inode, so reopen.
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.write_pos -= dropped;

        let report = WalCompaction {
            pages_dropped: dropped / self.page_size as u64,
            bytes_dropped: dropped,
            anchor_lsn: keep_lsn,
        };
        self.obs.compactions.inc();
        self.obs.pages_dropped.add(report.pages_dropped);
        self.obs.anchor_lsn.set(keep_lsn as i64);
        Ok(report)
    }
}

/// Parse header + records out of a full file image. Returns the page
/// size, the verified records, and the tail report.
#[allow(clippy::type_complexity)]
fn scan_bytes(data: &[u8]) -> Result<(usize, Vec<WalEntry>, TailReport), WalError> {
    if data.len() < 12 {
        return Err(WalError::BadHeader("file shorter than header"));
    }
    if data[..8] != WAL_MAGIC {
        return Err(WalError::BadHeader("bad magic"));
    }
    // lint: allow(panic) fixed-width slice of a buffer already length-checked
    let page_size = u32::from_le_bytes(data[8..12].try_into().expect("4 bytes")) as usize;
    if page_size < 64 {
        return Err(WalError::BadHeader("page size too small"));
    }
    if data.len() < page_size {
        return Err(WalError::BadHeader("truncated header page"));
    }

    let mut entries = Vec::new();
    let mut pos = page_size;
    let mut valid_end = page_size as u64;
    let mut expect_lsn: Option<Lsn> = None;
    let mut torn = false;

    'scan: while pos < data.len() {
        let page_off = pos % page_size;
        let room = page_size - page_off;
        if room < RECORD_HEADER || pos + RECORD_HEADER > data.len() {
            // Too little room for a header: must be padding (or EOF).
            let run = room.min(data.len() - pos);
            if data[pos..pos + run].iter().any(|&b| b != 0) {
                torn = true;
                break 'scan;
            }
            pos += run;
            continue;
        }
        let hdr = &data[pos..pos + RECORD_HEADER];
        if hdr.iter().all(|&b| b == 0) {
            // Padding header: the rest of this page must be zero too.
            let run = room.min(data.len() - pos);
            if data[pos..pos + run].iter().any(|&b| b != 0) {
                torn = true;
                break 'scan;
            }
            pos += run;
            continue;
        }
        // lint: allow(panic) hdr is a HEADER_LEN-sized slice, so the three
        // fixed-width windows below always convert
        let crc = u32::from_le_bytes(hdr[0..4].try_into().expect("4 bytes"));
        // lint: allow(panic) see the slice-width note above
        let len = u32::from_le_bytes(hdr[4..8].try_into().expect("4 bytes")) as usize;
        // lint: allow(panic) see the slice-width note above
        let lsn = u64::from_le_bytes(hdr[8..16].try_into().expect("8 bytes"));
        let kind = hdr[16];
        if len == 0 || RECORD_HEADER + len > room || pos + RECORD_HEADER + len > data.len() {
            torn = true;
            break 'scan;
        }
        let body = &data[pos + 4..pos + RECORD_HEADER + len];
        if crc32(body) != crc {
            torn = true;
            break 'scan;
        }
        if let Some(expect) = expect_lsn {
            if lsn != expect {
                torn = true;
                break 'scan;
            }
        }
        entries.push(WalEntry {
            lsn,
            kind,
            payload: data[pos + RECORD_HEADER..pos + RECORD_HEADER + len].to_vec(),
            offset: pos as u64,
        });
        expect_lsn = Some(lsn + 1);
        pos += RECORD_HEADER + len;
        valid_end = pos as u64;
    }

    let dropped = data.len() as u64 - valid_end;
    let report = TailReport {
        records: entries.len() as u64,
        valid_bytes: valid_end,
        dropped_bytes: dropped,
        torn,
    };
    Ok((page_size, entries, report))
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 polynomial, the zlib/`crc32fast` flavor), rolled
/// by hand because the workspace takes no external dependencies.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = (c >> 8) ^ CRC_TABLE[((c ^ b as u32) & 0xFF) as usize];
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Per-test scratch files live under the workspace `target/` dir so
    /// tests never write outside the repository.
    fn tmp_wal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        dir.pop();
        dir.pop();
        dir.push("target");
        dir.push("wal-tests");
        std::fs::create_dir_all(&dir).expect("create wal test dir");
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        dir.join(format!("{tag}-{}-{n}.wal", std::process::id()))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_sync_scan_roundtrip() {
        let path = tmp_wal("roundtrip");
        let _c = Cleanup(path.clone());
        let mut wal = Wal::create(&path).unwrap();
        let payloads: Vec<Vec<u8>> = (0..20u8)
            .map(|i| vec![i + 1; (i as usize % 7) + 1])
            .collect();
        for p in &payloads {
            wal.append(record_kind::OP, p).unwrap();
        }
        wal.sync().unwrap();
        let (entries, report) = Wal::scan(&path).unwrap();
        assert_eq!(entries.len(), payloads.len());
        assert!(!report.torn);
        assert_eq!(report.dropped_bytes, 0);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.lsn, i as u64 + 1);
            assert_eq!(e.kind, record_kind::OP);
            assert_eq!(e.payload, payloads[i]);
        }
    }

    #[test]
    fn records_never_span_pages() {
        let path = tmp_wal("pages");
        let _c = Cleanup(path.clone());
        let mut wal = Wal::create_with_page_size(&path, 128).unwrap();
        // Payloads sized so several must be pushed to a fresh page.
        for i in 0..40u8 {
            wal.append(record_kind::OP, &[i + 1; 50]).unwrap();
        }
        wal.sync().unwrap();
        let (entries, report) = Wal::scan(&path).unwrap();
        assert_eq!(entries.len(), 40);
        assert!(!report.torn);
        // Every record is intact despite page padding in between.
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.payload, vec![i as u8 + 1; 50]);
        }
    }

    #[test]
    fn oversized_and_empty_payloads_rejected() {
        let path = tmp_wal("limits");
        let _c = Cleanup(path.clone());
        let mut wal = Wal::create_with_page_size(&path, 128).unwrap();
        assert!(matches!(
            wal.append(record_kind::OP, &[0u8; 128]),
            Err(WalError::PayloadTooLarge { .. })
        ));
        assert!(matches!(
            wal.append(record_kind::OP, &[]),
            Err(WalError::EmptyPayload)
        ));
        // Limits don't burn LSNs.
        assert_eq!(wal.next_lsn(), 1);
    }

    #[test]
    fn reopen_continues_lsn_sequence() {
        let path = tmp_wal("reopen");
        let _c = Cleanup(path.clone());
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..5u8 {
            wal.append(record_kind::OP, &[i + 1]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let (mut wal, entries, report) = Wal::open(&path).unwrap();
        assert_eq!(entries.len(), 5);
        assert!(!report.torn);
        assert_eq!(wal.next_lsn(), 6);
        wal.append(record_kind::OP, &[99]).unwrap();
        wal.sync().unwrap();
        let (entries, report) = Wal::scan(&path).unwrap();
        assert_eq!(entries.len(), 6);
        assert_eq!(entries[5].lsn, 6);
        assert_eq!(entries[5].payload, vec![99]);
        assert!(!report.torn);
    }

    #[test]
    fn abandon_drops_unsynced_records() {
        let path = tmp_wal("abandon");
        let _c = Cleanup(path.clone());
        let mut wal = Wal::create(&path).unwrap();
        wal.append(record_kind::OP, &[1]).unwrap();
        wal.sync().unwrap();
        wal.append(record_kind::OP, &[2]).unwrap();
        wal.append(record_kind::OP, &[3]).unwrap();
        wal.abandon();
        // The crash lost the buffered records; the LSN counter rolled back.
        assert_eq!(wal.next_lsn(), 2);
        let (entries, report) = Wal::scan(&path).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(!report.torn);
        // And the survivor can keep appending with a dense sequence.
        wal.append(record_kind::OP, &[4]).unwrap();
        wal.sync().unwrap();
        let (entries, _) = Wal::scan(&path).unwrap();
        assert_eq!(entries.iter().map(|e| e.lsn).collect::<Vec<_>>(), [1, 2]);
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let path = tmp_wal("torn");
        let _c = Cleanup(path.clone());
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..8u8 {
            wal.append(record_kind::OP, &[i + 1; 10]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Tear the last record: chop 5 bytes off the file.
        let data = std::fs::read(&path).unwrap();
        std::fs::write(&path, &data[..data.len() - 5]).unwrap();
        let (mut wal, entries, report) = Wal::open(&path).unwrap();
        assert_eq!(entries.len(), 7);
        assert!(report.torn);
        assert!(report.dropped_bytes > 0);
        // Open truncated the tail; a new append lands cleanly at LSN 8.
        wal.append(record_kind::OP, &[0xAA; 10]).unwrap();
        wal.sync().unwrap();
        let (entries, report) = Wal::scan(&path).unwrap();
        assert_eq!(entries.len(), 8);
        assert_eq!(entries[7].lsn, 8);
        assert!(!report.torn);
    }

    #[test]
    fn bit_flip_detected_and_tail_dropped() {
        let path = tmp_wal("flip");
        let _c = Cleanup(path.clone());
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..6u8 {
            wal.append(record_kind::OP, &[i + 1; 20]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        // Flip one bit inside the 4th record's payload.
        let mut data = std::fs::read(&path).unwrap();
        let target = DEFAULT_PAGE_SIZE + 3 * (RECORD_HEADER + 20) + RECORD_HEADER + 5;
        data[target] ^= 0x40;
        std::fs::write(&path, &data).unwrap();
        let (entries, report) = Wal::scan(&path).unwrap();
        // Records before the flip survive; the flipped one and everything
        // after are dropped.
        assert_eq!(entries.len(), 3);
        assert!(report.torn);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.payload, vec![i as u8 + 1; 20]);
        }
    }

    #[test]
    fn checkpoint_records_counted() {
        let path = tmp_wal("ckpt");
        let _c = Cleanup(path.clone());
        let reg = Registry::enabled();
        let mut wal = Wal::create(&path).unwrap();
        wal.instrument(WalMetrics::new(&reg.scope("wal")));
        wal.append(record_kind::OP, &[1]).unwrap();
        wal.append(record_kind::CHECKPOINT, &[2, 2]).unwrap();
        wal.append(record_kind::OP, &[3]).unwrap();
        wal.sync().unwrap();
        let report = reg.snapshot();
        assert_eq!(report.counter("wal.append_records"), Some(3));
        assert_eq!(report.counter("wal.checkpoints"), Some(1));
        assert_eq!(report.counter("wal.syncs"), Some(1));
        let (entries, _) = Wal::scan(&path).unwrap();
        assert_eq!(entries[1].kind, record_kind::CHECKPOINT);
    }

    #[test]
    fn compaction_drops_prefix_pages_and_scans_cleanly() {
        let path = tmp_wal("compact");
        let _c = Cleanup(path.clone());
        let reg = Registry::enabled();
        let mut wal = Wal::create_with_page_size(&path, 128).unwrap();
        wal.instrument(WalMetrics::new(&reg.scope("wal")));
        // 60-byte records: two per 128-byte page, 40 records = 20 pages.
        for i in 0..40u8 {
            wal.append(record_kind::OP, &[i + 1; 43]).unwrap();
        }
        wal.sync().unwrap();
        let before = std::fs::metadata(&path).unwrap().len();

        let report = wal.compact_before(21).unwrap();
        assert_eq!(report.anchor_lsn, 21);
        assert!(report.pages_dropped > 0);
        assert_eq!(report.bytes_dropped, report.pages_dropped * 128);
        let after = std::fs::metadata(&path).unwrap().len();
        assert_eq!(before - after, report.bytes_dropped);

        // The surviving suffix scans cleanly: it starts at or before the
        // anchor (whole pages are kept) and runs dense to the end.
        let (entries, tail) = Wal::scan(&path).unwrap();
        assert!(!tail.torn);
        assert!(entries[0].lsn <= 21);
        assert!(entries.iter().any(|e| e.lsn == 21));
        assert_eq!(entries.last().unwrap().lsn, 40);
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(e.lsn, entries[0].lsn + i as u64);
            assert_eq!(e.payload, vec![e.lsn as u8; 43]);
        }

        // Appends continue with the same LSN sequence on the live handle
        // (which was reopened across the rename).
        wal.append(record_kind::OP, &[0xAB; 43]).unwrap();
        wal.sync().unwrap();
        let (entries, tail) = Wal::scan(&path).unwrap();
        assert!(!tail.torn);
        assert_eq!(entries.last().unwrap().lsn, 41);
        assert_eq!(entries.last().unwrap().payload, vec![0xAB; 43]);

        let obs = reg.snapshot();
        assert_eq!(obs.counter("wal.compactions"), Some(1));
        assert_eq!(obs.counter("wal.pages_dropped"), Some(report.pages_dropped));
        assert_eq!(obs.gauge("wal.anchor_lsn"), Some(21));
    }

    #[test]
    fn compaction_noops_never_lose_data() {
        let path = tmp_wal("compact-noop");
        let _c = Cleanup(path.clone());
        let mut wal = Wal::create_with_page_size(&path, 128).unwrap();
        for i in 0..10u8 {
            wal.append(record_kind::OP, &[i + 1; 30]).unwrap();
        }
        wal.sync().unwrap();
        let before = std::fs::read(&path).unwrap();

        // LSN 0 (the "no anchor yet" sentinel), an absent LSN, and an
        // anchor already on the first data page must all be no-ops.
        assert_eq!(wal.compact_before(0).unwrap(), WalCompaction::default());
        assert_eq!(wal.compact_before(999).unwrap(), WalCompaction::default());
        assert_eq!(wal.compact_before(1).unwrap(), WalCompaction::default());
        assert_eq!(std::fs::read(&path).unwrap(), before);
        assert_eq!(wal.next_lsn(), 11);
    }

    #[test]
    fn double_compaction_is_idempotent() {
        let path = tmp_wal("compact-twice");
        let _c = Cleanup(path.clone());
        let mut wal = Wal::create_with_page_size(&path, 128).unwrap();
        for i in 0..40u8 {
            wal.append(record_kind::OP, &[i + 1; 43]).unwrap();
        }
        wal.sync().unwrap();
        let first = wal.compact_before(30).unwrap();
        assert!(first.pages_dropped > 0);
        let image = std::fs::read(&path).unwrap();
        // The anchor now sits on the first data page: nothing to drop.
        let second = wal.compact_before(30).unwrap();
        assert_eq!(second, WalCompaction::default());
        assert_eq!(std::fs::read(&path).unwrap(), image);
    }

    #[test]
    fn reopen_after_compaction_continues_lsn_sequence() {
        let path = tmp_wal("compact-reopen");
        let _c = Cleanup(path.clone());
        let mut wal = Wal::create_with_page_size(&path, 128).unwrap();
        for i in 0..40u8 {
            wal.append(record_kind::OP, &[i + 1; 43]).unwrap();
        }
        wal.sync().unwrap();
        wal.compact_before(33).unwrap();
        drop(wal);
        let (mut wal, entries, report) = Wal::open(&path).unwrap();
        assert!(!report.torn);
        assert!(entries[0].lsn <= 33);
        assert_eq!(wal.next_lsn(), 41);
        wal.append(record_kind::OP, &[7; 43]).unwrap();
        wal.sync().unwrap();
        let (entries, _) = Wal::scan(&path).unwrap();
        assert_eq!(entries.last().unwrap().lsn, 41);
    }

    #[test]
    fn compaction_flushes_buffered_appends_first() {
        let path = tmp_wal("compact-buffered");
        let _c = Cleanup(path.clone());
        let mut wal = Wal::create_with_page_size(&path, 128).unwrap();
        for i in 0..40u8 {
            wal.append(record_kind::OP, &[i + 1; 43]).unwrap();
        }
        wal.sync().unwrap();
        // Buffered (unsynced) records must survive compaction: the
        // rewrite syncs them as part of reading the full image.
        wal.append(record_kind::OP, &[0xCD; 43]).unwrap();
        let report = wal.compact_before(35).unwrap();
        assert!(report.pages_dropped > 0);
        let (entries, tail) = Wal::scan(&path).unwrap();
        assert!(!tail.torn);
        assert_eq!(entries.last().unwrap().lsn, 41);
        assert_eq!(entries.last().unwrap().payload, vec![0xCD; 43]);
    }

    #[test]
    fn garbage_after_header_is_dropped_not_parsed() {
        let path = tmp_wal("garbage");
        let _c = Cleanup(path.clone());
        let wal = Wal::create(&path).unwrap();
        drop(wal);
        let mut data = std::fs::read(&path).unwrap();
        data.extend_from_slice(&[0xFFu8; 300]);
        std::fs::write(&path, &data).unwrap();
        let (entries, report) = Wal::scan(&path).unwrap();
        assert!(entries.is_empty());
        assert!(report.torn);
        assert_eq!(report.dropped_bytes, 300);
    }

    #[test]
    fn bad_headers_error_cleanly() {
        let path = tmp_wal("hdr");
        let _c = Cleanup(path.clone());
        std::fs::write(&path, b"NOTAWAL!").unwrap();
        assert!(matches!(Wal::scan(&path), Err(WalError::BadHeader(_))));
        std::fs::write(&path, b"shrt").unwrap();
        assert!(matches!(Wal::scan(&path), Err(WalError::BadHeader(_))));
    }

    proptest! {
        /// Satellite: encode/decode identity over arbitrary record
        /// sequences (mixed sizes and kinds).
        #[test]
        fn prop_roundtrip_identity(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..200),
                1..40,
            ),
            kinds in proptest::collection::vec(1u8..3, 40),
        ) {
            let path = tmp_wal("prop-rt");
            let _c = Cleanup(path.clone());
            let mut wal = Wal::create_with_page_size(&path, 256).unwrap();
            for (i, p) in payloads.iter().enumerate() {
                wal.append(kinds[i % kinds.len()], p).unwrap();
            }
            wal.sync().unwrap();
            let (entries, report) = Wal::scan(&path).unwrap();
            prop_assert!(!report.torn);
            prop_assert_eq!(entries.len(), payloads.len());
            for (i, e) in entries.iter().enumerate() {
                prop_assert_eq!(e.lsn, i as u64 + 1);
                prop_assert_eq!(&e.payload, &payloads[i]);
            }
        }

        /// Satellite: truncating the file at any point past the header
        /// recovers exactly the records wholly before the cut — never a
        /// panic, never a corrupt record.
        #[test]
        fn prop_truncation_tolerated(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..100),
                1..20,
            ),
            cut_frac in 0.0f64..1.0,
        ) {
            let path = tmp_wal("prop-cut");
            let _c = Cleanup(path.clone());
            let mut wal = Wal::create_with_page_size(&path, 256).unwrap();
            for p in &payloads {
                wal.append(record_kind::OP, p).unwrap();
            }
            wal.sync().unwrap();
            drop(wal);
            let data = std::fs::read(&path).unwrap();
            let cut = 256 + ((data.len() - 256) as f64 * cut_frac) as usize;
            std::fs::write(&path, &data[..cut]).unwrap();
            let (entries, _report) = Wal::scan(&path).unwrap();
            // Recovered records are a prefix of the originals, bit-exact.
            prop_assert!(entries.len() <= payloads.len());
            for (i, e) in entries.iter().enumerate() {
                prop_assert_eq!(&e.payload, &payloads[i]);
            }
        }

        /// Satellite: flipping any single bit past the header never
        /// yields a corrupt record — recovery is always a bit-exact
        /// prefix (the flip either lands past the tail we keep, or kills
        /// its record and everything after).
        #[test]
        fn prop_bit_flip_never_returns_corrupt_records(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..80),
                2..15,
            ),
            flip_frac in 0.0f64..1.0,
            bit in 0u8..8,
        ) {
            let path = tmp_wal("prop-flip");
            let _c = Cleanup(path.clone());
            let mut wal = Wal::create_with_page_size(&path, 256).unwrap();
            for p in &payloads {
                wal.append(record_kind::OP, p).unwrap();
            }
            wal.sync().unwrap();
            drop(wal);
            let mut data = std::fs::read(&path).unwrap();
            prop_assert!(data.len() > 256);
            let idx = 256 + ((data.len() - 1 - 256) as f64 * flip_frac) as usize;
            data[idx] ^= 1 << bit;
            std::fs::write(&path, &data).unwrap();
            let (entries, _report) = Wal::scan(&path).unwrap();
            prop_assert!(entries.len() <= payloads.len());
            for (i, e) in entries.iter().enumerate() {
                prop_assert_eq!(e.lsn, i as u64 + 1);
                prop_assert_eq!(&e.payload, &payloads[i]);
            }
        }
    }
}

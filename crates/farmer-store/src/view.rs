//! The persisted-correlation back-end of the query layer.
//!
//! HUSt's mining utility writes Correlator Lists into Berkeley DB and the
//! prefetcher reads them back on warm-up. With [`CorrelationSource`] as
//! the single read API, that round-trip is two calls:
//!
//! * [`MetaStore::put_correlation_source`] persists *any* source (the live
//!   model, a stream snapshot, an exported table) list by list,
//! * [`MetaStore::correlator_view`] loads every persisted list into a
//!   [`CorrelatorView`] — an immutable, queryable [`CorrelationSource`]
//!   that serves top-k/strongest/degree identically to the source that was
//!   persisted (pinned by the cross-crate equivalence suite).
//!
//! The view is deliberately decoupled from the store handle: loading pays
//! the tree scan once, after which queries are pure in-memory reads with
//! no page-I/O accounting noise on the serving path.

use farmer_core::{CorrelationSource, Correlator, CorrelatorList, CorrelatorTable};
use farmer_trace::hash::fx_hash_u64;
use farmer_trace::FileId;

use crate::store::{CorrelatorRecord, MetaStore};

/// An immutable snapshot of the store's correlator table, queryable
/// through [`CorrelationSource`].
#[derive(Debug, Clone, Default)]
pub struct CorrelatorView {
    table: CorrelatorTable,
    version: u64,
}

impl CorrelatorView {
    /// Number of files with a persisted list.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if nothing was persisted.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }
}

impl CorrelationSource for CorrelatorView {
    fn version(&self) -> u64 {
        self.version
    }

    fn top_k_into(&self, file: FileId, k: usize, min_degree: f64, out: &mut Vec<Correlator>) {
        self.table.top_k_into(file, k, min_degree, out)
    }

    fn strongest(&self, file: FileId, min_degree: f64) -> Option<Correlator> {
        self.table.strongest(file, min_degree)
    }

    fn degree(&self, from: FileId, to: FileId) -> Option<f64> {
        CorrelationSource::degree(&self.table, from, to)
    }

    fn for_each_list(&self, visit: &mut dyn FnMut(FileId, &[Correlator])) {
        self.table.for_each_list(visit)
    }

    fn heap_bytes(&self) -> usize {
        CorrelationSource::heap_bytes(&self.table)
    }
}

impl MetaStore {
    /// Persist every non-empty list of `src` into the correlator table,
    /// replacing lists already present for the same owners. Returns the
    /// number of lists written.
    pub fn put_correlation_source(&mut self, src: &dyn CorrelationSource) -> usize {
        let mut written = 0;
        let mut records: Vec<CorrelatorRecord> = Vec::new();
        src.for_each_list(&mut |owner, entries| {
            records.clear();
            records.extend(entries.iter().map(|c| CorrelatorRecord {
                file: c.file,
                degree: c.degree,
            }));
            self.put_correlators(owner, &records);
            written += 1;
        });
        written
    }

    /// Load every persisted correlator list into an immutable, queryable
    /// [`CorrelatorView`]. The view's `version` is a fingerprint of the
    /// loaded content — *not* a store counter, which would reset to zero
    /// across the snapshot/restore cycle the view exists to serve — so two
    /// views of identical persisted state compare equal-version across
    /// restarts, and differently-populated stores (almost surely) do not.
    pub fn correlator_view(&mut self) -> CorrelatorView {
        let mut version = 0u64;
        let owners: Vec<u64> = self.correlator_owners();
        let mut table = CorrelatorTable::new();
        for key in owners {
            let owner = FileId::new(key as u32);
            let Some(records) = self.get_correlators(owner) else {
                continue;
            };
            let mut entries: Vec<Correlator> = records
                .into_iter()
                .map(|r| Correlator {
                    file: r.file,
                    degree: r.degree,
                })
                .collect();
            // Persisted lists are stored sorted, but the store accepts
            // arbitrary `put_correlators` input: re-establish the canonical
            // order defensively so the view honors the trait contract.
            entries.sort_by(|a, b| {
                b.degree
                    .total_cmp(&a.degree)
                    .then_with(|| a.file.raw().cmp(&b.file.raw()))
            });
            for c in &entries {
                version = fx_hash_u64(version ^ fx_hash_u64(u64::from(owner.raw()))).wrapping_add(
                    fx_hash_u64(
                        (u64::from(c.file.raw()) << 32) ^ c.degree.to_bits().rotate_left(17),
                    ),
                );
            }
            table.insert(CorrelatorList::from_sorted(owner, entries));
        }
        CorrelatorView { table, version }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(file: u32, degree: f64) -> CorrelatorRecord {
        CorrelatorRecord {
            file: FileId::new(file),
            degree,
        }
    }

    #[test]
    fn view_round_trips_lists() {
        let mut s = MetaStore::new();
        s.put_correlators(FileId::new(1), &[rec(2, 0.9), rec(3, 0.5)]);
        s.put_correlators(FileId::new(7), &[rec(4, 0.6)]);
        let view = s.correlator_view();
        assert_eq!(view.len(), 2);
        let mut out = Vec::new();
        view.top_k_into(FileId::new(1), 8, 0.0, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].file, FileId::new(2));
        assert_eq!(
            view.strongest(FileId::new(7), 0.0).unwrap().file,
            FileId::new(4)
        );
        assert!(view.strongest(FileId::new(9), 0.0).is_none());
        let d = CorrelationSource::degree(&view, FileId::new(1), FileId::new(3)).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn view_restores_canonical_order() {
        // Records persisted out of order must still be served sorted.
        let mut s = MetaStore::new();
        s.put_correlators(FileId::new(0), &[rec(5, 0.2), rec(1, 0.8), rec(9, 0.8)]);
        let view = s.correlator_view();
        let mut out = Vec::new();
        view.top_k_into(FileId::new(0), 8, 0.0, &mut out);
        let files: Vec<u32> = out.iter().map(|c| c.file.raw()).collect();
        assert_eq!(files, vec![1, 9, 5], "degree desc, ties by id asc");
    }

    #[test]
    fn persist_source_and_reload() {
        // Table -> store -> snapshot image -> restore -> view: the full
        // durability loop preserves every query answer.
        let table: CorrelatorTable = vec![
            CorrelatorList::build(FileId::new(0), vec![c(1, 0.9), c(2, 0.5)], 0.0),
            CorrelatorList::build(FileId::new(3), vec![c(4, 0.7)], 0.0),
        ]
        .into_iter()
        .collect();
        let mut s = MetaStore::new();
        assert_eq!(s.put_correlation_source(&table), 2);
        let image = s.snapshot();
        let mut restored = MetaStore::restore(&image).expect("restore");
        let view = restored.correlator_view();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for owner in [0u32, 3, 42] {
            let owner = FileId::new(owner);
            table.top_k_into(owner, 8, 0.0, &mut a);
            view.top_k_into(owner, 8, 0.0, &mut b);
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(&b) {
                assert_eq!(x.file, y.file);
                assert_eq!(x.degree.to_bits(), y.degree.to_bits());
            }
        }
        fn c(file: u32, degree: f64) -> Correlator {
            Correlator {
                file: FileId::new(file),
                degree,
            }
        }
    }

    #[test]
    fn version_survives_restart_and_tracks_content() {
        let mut s = MetaStore::new();
        s.put_correlators(FileId::new(1), &[rec(2, 0.9), rec(3, 0.5)]);
        let v1 = CorrelationSource::version(&s.correlator_view());
        let image = s.snapshot();
        let mut restored = MetaStore::restore(&image).expect("restore");
        let v2 = CorrelationSource::version(&restored.correlator_view());
        assert_eq!(v1, v2, "restart must not change the version");
        restored.put_correlators(FileId::new(1), &[rec(2, 0.8), rec(3, 0.5)]);
        let v3 = CorrelationSource::version(&restored.correlator_view());
        assert_ne!(v1, v3, "content change must change the version");
    }

    #[test]
    fn empty_store_yields_empty_view() {
        let mut s = MetaStore::new();
        let view = s.correlator_view();
        assert!(view.is_empty());
        let mut out = vec![Correlator {
            file: FileId::new(1),
            degree: 1.0,
        }];
        view.top_k_into(FileId::new(0), 4, 0.0, &mut out);
        assert!(out.is_empty(), "queries must clear the buffer");
    }
}

//! Whole-store snapshots: serialize both tables to a byte image and
//! restore them — the durability path a Berkeley-DB-role store needs for
//! restarts (HUSt's correlator lists survive MDS restarts this way).
//!
//! Format (little-endian):
//!
//! ```text
//! magic "FSNAP1"  |  per table: u64 count, then count × (u64 key, bytes value)
//! ```
//!
//! Restores rebuild the trees by sorted bulk insertion, so a restored
//! store answers every query identically while its internal page layout is
//! freshly packed.

use crate::codec::{DecodeError, Reader, Writer};
use crate::store::MetaStore;
use crate::tree::BTree;

const MAGIC: &[u8; 6] = b"FSNAP1";

/// Errors restoring a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The magic header is missing or wrong.
    BadMagic,
    /// The payload is malformed.
    Decode(DecodeError),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a farmer-store snapshot"),
            SnapshotError::Decode(e) => write!(f, "corrupt snapshot: {e}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<DecodeError> for SnapshotError {
    fn from(e: DecodeError) -> Self {
        SnapshotError::Decode(e)
    }
}

/// Serialize one tree (count + pairs in key order).
fn dump_tree(tree: &mut BTree, w: &mut Writer) {
    let pairs = tree.range(0, u64::MAX);
    w.u64(pairs.len() as u64);
    for (k, v) in pairs {
        w.u64(k);
        w.bytes(&v);
    }
}

/// Rebuild one tree from its serialized form.
fn load_tree(r: &mut Reader<'_>) -> Result<BTree, SnapshotError> {
    let count = r.u64()?;
    let mut tree = BTree::new();
    for _ in 0..count {
        let k = r.u64()?;
        let v = r.bytes()?;
        tree.insert(k, v);
    }
    Ok(tree)
}

impl MetaStore {
    /// Serialize the whole store (both tables) to a byte image.
    pub fn snapshot(&mut self) -> Vec<u8> {
        let mut w = Writer::with_capacity(64 + self.metadata_len() * 40);
        for b in MAGIC {
            w.u8(*b);
        }
        let (metadata, correlators) = self.tables_mut();
        dump_tree(metadata, &mut w);
        dump_tree(correlators, &mut w);
        w.finish()
    }

    /// Restore a store from a snapshot image.
    pub fn restore(image: &[u8]) -> Result<MetaStore, SnapshotError> {
        if image.len() < MAGIC.len() || &image[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut r = Reader::new(&image[MAGIC.len()..]);
        let metadata = load_tree(&mut r)?;
        let correlators = load_tree(&mut r)?;
        Ok(MetaStore::from_tables(metadata, correlators))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::{CorrelatorRecord, MetadataRecord};
    use farmer_trace::FileId;
    use proptest::prelude::*;

    fn rec(file: u32, size: u64) -> MetadataRecord {
        MetadataRecord {
            file: FileId::new(file),
            size,
            dev: file % 3,
            read_only: file.is_multiple_of(2),
            group: None,
        }
    }

    #[test]
    fn snapshot_roundtrip() {
        let mut s = MetaStore::new();
        for i in 0..500 {
            s.put_metadata(&rec(i, i as u64 * 10));
        }
        s.put_correlators(
            FileId::new(1),
            &[CorrelatorRecord {
                file: FileId::new(2),
                degree: 0.75,
            }],
        );
        let image = s.snapshot();
        let mut restored = MetaStore::restore(&image).expect("restore");
        assert_eq!(restored.metadata_len(), 500);
        for i in (0..500).step_by(37) {
            assert_eq!(
                restored.get_metadata(FileId::new(i)).0,
                Some(rec(i, i as u64 * 10))
            );
        }
        assert_eq!(
            restored.get_correlators(FileId::new(1)),
            Some(vec![CorrelatorRecord {
                file: FileId::new(2),
                degree: 0.75
            }])
        );
    }

    #[test]
    fn empty_store_roundtrips() {
        let mut s = MetaStore::new();
        let image = s.snapshot();
        let restored = MetaStore::restore(&image).expect("restore");
        assert_eq!(restored.metadata_len(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(
            MetaStore::restore(b"NOTASNAP"),
            Err(SnapshotError::BadMagic)
        ));
        assert!(matches!(
            MetaStore::restore(b""),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn truncated_image_rejected() {
        let mut s = MetaStore::new();
        for i in 0..50 {
            s.put_metadata(&rec(i, 1));
        }
        let image = s.snapshot();
        let cut = &image[..image.len() / 2];
        assert!(matches!(
            MetaStore::restore(cut),
            Err(SnapshotError::Decode(_))
        ));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn arbitrary_stores_roundtrip(
            files in proptest::collection::btree_map(0u32..2000, 0u64..1_000_000, 0..200),
        ) {
            let mut s = MetaStore::new();
            for (&f, &size) in &files {
                s.put_metadata(&rec(f, size));
            }
            let image = s.snapshot();
            let mut restored = MetaStore::restore(&image).expect("restore");
            prop_assert_eq!(restored.metadata_len(), files.len());
            for (&f, &size) in &files {
                prop_assert_eq!(restored.get_metadata(FileId::new(f)).0, Some(rec(f, size)));
            }
        }
    }
}

//! # farmer-store — an embedded, ordered key-value store
//!
//! HUSt (the paper's host system) keeps file/object metadata and FARMER's
//! Correlator Lists in Berkeley DB (§5.1: "The metadata information of
//! files and objects are stored in the Berkeley DB", "The mining and
//! evaluating utility also interacts with the Berkeley DB to store the file
//! correlation information such as Correlator List"). This crate fills that
//! role from scratch:
//!
//! * [`tree`] — a slab-backed **B+-tree** (ordered map `u64 → bytes`) with
//!   leaf-chained range scans, node splitting on overflow and lazy deletion
//!   (empty-leaf unlinking, as PostgreSQL's nbtree does), plus page-level
//!   I/O accounting that the metadata-server latency model consumes,
//! * [`codec`] — compact binary encode/decode for the record types,
//! * [`store`] — the [`MetaStore`] façade: a metadata table and a
//!   correlator-list table with typed accessors,
//! * [`wal`] — an append-only, page-structured write-ahead log the
//!   durable mining tier journals its operation stream into (per-record
//!   checksums, monotone LSNs, truncation-tolerant tail scan).
//!
//! Every metadata-server cache miss performs a real tree descent here, so
//! experiment response times inherit the store's actual page-touch counts.
//!
//! The persisted correlator table plugs into the workspace-wide query
//! layer via [`view`]: [`MetaStore::put_correlation_source`] persists any
//! `farmer_core::CorrelationSource` and [`MetaStore::correlator_view`]
//! reloads it as one, so lists survive restarts without consumers ever
//! leaving the unified read API.

// This crate is unsafe-free by policy (lint rule R2 guards the rest).
#![forbid(unsafe_code)]

pub mod codec;
pub mod snapshot;
pub mod store;
pub mod tree;
pub mod view;
pub mod wal;

pub use snapshot::SnapshotError;
pub use store::{CorrelatorRecord, IoStats, MetaStore, MetadataRecord, StoreMetrics};
pub use tree::BTree;
pub use view::CorrelatorView;
pub use wal::{TailReport, Wal, WalCompaction, WalEntry, WalError, WalMetrics};

//! The [`MetaStore`] façade: typed tables over the B+-tree.
//!
//! Two tables, mirroring what HUSt keeps in Berkeley DB:
//!
//! * **metadata** — one [`MetadataRecord`] per file (size, device,
//!   read-only flag, layout group),
//! * **correlators** — one serialized correlator list per file, written by
//!   the mining utility and read by the prefetcher on warm-up.
//!
//! All accesses are counted in [`IoStats`]; the metadata server charges its
//! latency model per page touched, so store shape (tree depth, record
//! sizes) propagates into simulated response times.

use farmer_obs::{Counter, Registry};
use farmer_trace::FileId;

use crate::codec::{DecodeError, Reader, Writer};
use crate::tree::BTree;

/// Persistent per-file metadata (the MDS's source of truth).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetadataRecord {
    /// The file this record describes.
    pub file: FileId,
    /// File size in bytes.
    pub size: u64,
    /// Device/volume id.
    pub dev: u32,
    /// Whether the file is read-only (eligible for grouped layout, §4.2).
    pub read_only: bool,
    /// Layout group assigned by the FARMER-enabled data layout, if any.
    pub group: Option<u32>,
}

impl MetadataRecord {
    /// Encode to the store's binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::with_capacity(26);
        w.u32(self.file.raw())
            .u64(self.size)
            .u32(self.dev)
            .u8(u8::from(self.read_only))
            .u8(u8::from(self.group.is_some()))
            .u32(self.group.unwrap_or(0));
        w.finish()
    }

    /// Decode from the store's binary format.
    pub fn decode(buf: &[u8]) -> Result<MetadataRecord, DecodeError> {
        let mut r = Reader::new(buf);
        let file = FileId::new(r.u32()?);
        let size = r.u64()?;
        let dev = r.u32()?;
        let read_only = r.u8()? != 0;
        let has_group = r.u8()? != 0;
        let group_val = r.u32()?;
        Ok(MetadataRecord {
            file,
            size,
            dev,
            read_only,
            group: has_group.then_some(group_val),
        })
    }
}

/// One persisted correlator entry (successor + degree).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorrelatorRecord {
    /// Successor file.
    pub file: FileId,
    /// Correlation degree at persist time.
    pub degree: f64,
}

/// Cumulative store I/O counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoStats {
    /// Pages read across both tables.
    pub page_reads: u64,
    /// Pages written across both tables.
    pub page_writes: u64,
    /// Record-level lookups.
    pub lookups: u64,
    /// Record-level writes.
    pub updates: u64,
}

/// Live observability handles mirroring [`IoStats`], fed by `sync_io` as
/// page traffic is drained from the trees. No-op by default.
#[derive(Debug, Clone, Default)]
pub struct StoreMetrics {
    /// Pages read (`store.page_reads`).
    pub page_reads: Counter,
    /// Pages written (`store.page_writes`).
    pub page_writes: Counter,
    /// Record-level lookups (`store.lookups`).
    pub lookups: Counter,
    /// Record-level writes (`store.updates`).
    pub updates: Counter,
}

impl StoreMetrics {
    /// Register the store's counters under `reg` (use a `store`-scoped
    /// registry; see the workspace naming scheme in `farmer-obs`).
    pub fn new(reg: &Registry) -> StoreMetrics {
        StoreMetrics {
            page_reads: reg.counter("page_reads"),
            page_writes: reg.counter("page_writes"),
            lookups: reg.counter("lookups"),
            updates: reg.counter("updates"),
        }
    }
}

/// The embedded metadata store.
#[derive(Debug, Default)]
pub struct MetaStore {
    metadata: BTree,
    correlators: BTree,
    stats: IoStats,
    obs: StoreMetrics,
}

impl MetaStore {
    /// An empty store.
    pub fn new() -> Self {
        MetaStore::default()
    }

    /// Bulk-load metadata records (namespace ingestion at mount time).
    pub fn load_namespace<'a>(&mut self, records: impl IntoIterator<Item = &'a MetadataRecord>) {
        for rec in records {
            self.put_metadata(rec);
        }
        self.sync_io();
    }

    /// Attach live observability counters (a no-op set is installed by
    /// default). Page/record traffic from this point on streams into the
    /// registry the metrics were built from, alongside [`IoStats`].
    pub fn instrument(&mut self, obs: StoreMetrics) {
        self.obs = obs;
    }

    /// Insert or replace one metadata record.
    pub fn put_metadata(&mut self, rec: &MetadataRecord) {
        self.metadata.insert(rec.file.raw() as u64, &rec.encode());
        self.stats.updates += 1;
        self.obs.updates.inc();
        self.sync_io();
    }

    /// Look up one metadata record. Returns the number of pages the lookup
    /// touched alongside the record, for per-request latency charging.
    pub fn get_metadata(&mut self, file: FileId) -> (Option<MetadataRecord>, u64) {
        let before = self.metadata.io().page_reads;
        let rec = self
            .metadata
            .get(file.raw() as u64)
            // lint: allow(panic) records are written by encode(); a decode
            // failure means on-disk corruption, which has no sane recovery
            .map(|b| MetadataRecord::decode(b).expect("store corruption"));
        let pages = self.metadata.io().page_reads - before;
        self.stats.lookups += 1;
        self.obs.lookups.inc();
        self.sync_io();
        (rec, pages)
    }

    /// Remove a metadata record (unlink). Returns whether it existed.
    pub fn remove_metadata(&mut self, file: FileId) -> bool {
        let existed = self.metadata.remove(file.raw() as u64);
        self.stats.updates += 1;
        self.obs.updates.inc();
        self.sync_io();
        existed
    }

    /// Range scan of metadata records by file id (layout grouping uses it).
    pub fn scan_metadata(&mut self, lo: FileId, hi: FileId) -> Vec<MetadataRecord> {
        let out = self
            .metadata
            .range(lo.raw() as u64, hi.raw() as u64)
            .into_iter()
            // lint: allow(panic) same corruption policy as get()
            .map(|(_, v)| MetadataRecord::decode(&v).expect("store corruption"))
            .collect();
        self.sync_io();
        out
    }

    /// Persist a file's correlator list.
    pub fn put_correlators(&mut self, owner: FileId, list: &[CorrelatorRecord]) {
        let mut w = Writer::with_capacity(4 + list.len() * 12);
        w.u32(list.len() as u32);
        for c in list {
            w.u32(c.file.raw());
            w.f64(c.degree);
        }
        self.correlators.insert(owner.raw() as u64, &w.finish());
        self.stats.updates += 1;
        self.obs.updates.inc();
        self.sync_io();
    }

    /// Read back a file's correlator list.
    pub fn get_correlators(&mut self, owner: FileId) -> Option<Vec<CorrelatorRecord>> {
        let buf = self.correlators.get(owner.raw() as u64)?.to_vec();
        self.stats.lookups += 1;
        self.obs.lookups.inc();
        self.sync_io();
        let mut r = Reader::new(&buf);
        // lint: allow(panic) correlator pages are written by this module;
        // decode failure means on-disk corruption, which has no sane
        // recovery (policy shared by the three reads below)
        let n = r.u32().expect("store corruption");
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            // lint: allow(panic) see the corruption policy above
            let file = FileId::new(r.u32().expect("store corruption"));
            // lint: allow(panic) see the corruption policy above
            let degree = r.f64().expect("store corruption");
            out.push(CorrelatorRecord { file, degree });
        }
        Some(out)
    }

    /// Owner file ids of every persisted correlator list (key order).
    pub(crate) fn correlator_owners(&mut self) -> Vec<u64> {
        let keys = self.correlators.keys();
        self.sync_io();
        keys
    }

    /// Number of metadata records.
    pub fn metadata_len(&self) -> usize {
        self.metadata.len()
    }

    /// Tree depth of the metadata table (drives worst-case lookup cost).
    pub fn metadata_depth(&self) -> usize {
        self.metadata.depth()
    }

    /// Cumulative I/O counters.
    pub fn stats(&self) -> IoStats {
        self.stats
    }

    /// Approximate resident bytes of both tables.
    pub fn heap_bytes(&self) -> usize {
        self.metadata.heap_bytes() + self.correlators.heap_bytes()
    }

    /// Mutable access to both underlying trees (snapshot machinery).
    pub(crate) fn tables_mut(&mut self) -> (&mut BTree, &mut BTree) {
        (&mut self.metadata, &mut self.correlators)
    }

    /// Rebuild a store from restored trees (snapshot machinery).
    pub(crate) fn from_tables(metadata: BTree, correlators: BTree) -> MetaStore {
        MetaStore {
            metadata,
            correlators,
            stats: IoStats::default(),
            obs: StoreMetrics::default(),
        }
    }

    fn sync_io(&mut self) {
        let m = self.metadata.take_io();
        let c = self.correlators.take_io();
        let reads = m.page_reads + c.page_reads;
        let writes = m.page_writes + c.page_writes;
        self.stats.page_reads += reads;
        self.stats.page_writes += writes;
        self.obs.page_reads.add(reads);
        self.obs.page_writes.add(writes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(file: u32, size: u64) -> MetadataRecord {
        MetadataRecord {
            file: FileId::new(file),
            size,
            dev: file % 4,
            read_only: file.is_multiple_of(2),
            group: file.is_multiple_of(3).then_some(file / 3),
        }
    }

    #[test]
    fn metadata_roundtrip() {
        let mut s = MetaStore::new();
        s.put_metadata(&rec(1, 100));
        s.put_metadata(&rec(2, 200));
        let (got, pages) = s.get_metadata(FileId::new(1));
        assert_eq!(got, Some(rec(1, 100)));
        assert!(pages >= 1, "a lookup touches at least the root page");
        let (missing, _) = s.get_metadata(FileId::new(99));
        assert_eq!(missing, None);
    }

    #[test]
    fn record_encode_decode_all_shapes() {
        for r in [rec(0, 0), rec(3, u64::MAX), rec(7, 42)] {
            let buf = r.encode();
            assert_eq!(MetadataRecord::decode(&buf).unwrap(), r);
        }
    }

    #[test]
    fn decode_rejects_truncation() {
        let buf = rec(1, 2).encode();
        assert!(MetadataRecord::decode(&buf[..5]).is_err());
    }

    #[test]
    fn remove_metadata_works() {
        let mut s = MetaStore::new();
        s.put_metadata(&rec(5, 50));
        assert!(s.remove_metadata(FileId::new(5)));
        assert!(!s.remove_metadata(FileId::new(5)));
        assert_eq!(s.get_metadata(FileId::new(5)).0, None);
    }

    #[test]
    fn correlator_lists_roundtrip() {
        let mut s = MetaStore::new();
        let list = vec![
            CorrelatorRecord {
                file: FileId::new(2),
                degree: 0.9,
            },
            CorrelatorRecord {
                file: FileId::new(3),
                degree: 0.5,
            },
        ];
        s.put_correlators(FileId::new(1), &list);
        assert_eq!(s.get_correlators(FileId::new(1)), Some(list));
        assert_eq!(s.get_correlators(FileId::new(9)), None);
        // Empty lists are representable.
        s.put_correlators(FileId::new(4), &[]);
        assert_eq!(s.get_correlators(FileId::new(4)), Some(vec![]));
    }

    #[test]
    fn load_namespace_bulk() {
        let mut s = MetaStore::new();
        let recs: Vec<MetadataRecord> = (0..1000).map(|i| rec(i, i as u64)).collect();
        s.load_namespace(&recs);
        assert_eq!(s.metadata_len(), 1000);
        assert!(s.metadata_depth() >= 2, "1000 records should split");
        let scan = s.scan_metadata(FileId::new(10), FileId::new(19));
        assert_eq!(scan.len(), 10);
    }

    #[test]
    fn obs_counters_mirror_io_stats() {
        let mut s = MetaStore::new();
        let reg = farmer_obs::Registry::enabled();
        s.instrument(StoreMetrics::new(&reg.scope("store")));
        for i in 0..100 {
            s.put_metadata(&rec(i, i as u64));
        }
        s.get_metadata(FileId::new(7));
        s.put_correlators(FileId::new(1), &[]);
        s.get_correlators(FileId::new(1));
        let snap = reg.snapshot();
        let io = s.stats();
        assert_eq!(snap.counter("store.page_reads"), Some(io.page_reads));
        assert_eq!(snap.counter("store.page_writes"), Some(io.page_writes));
        assert_eq!(snap.counter("store.lookups"), Some(io.lookups));
        assert_eq!(snap.counter("store.updates"), Some(io.updates));
        assert!(io.page_writes > 0 && io.page_reads > 0);
    }

    #[test]
    fn io_stats_accumulate() {
        let mut s = MetaStore::new();
        s.put_metadata(&rec(1, 1));
        let w0 = s.stats().page_writes;
        let r0 = s.stats().page_reads;
        s.get_metadata(FileId::new(1));
        assert!(s.stats().page_reads > r0);
        assert_eq!(s.stats().page_writes, w0, "reads must not write");
        assert_eq!(s.stats().lookups, 1);
    }

    proptest! {
        #[test]
        fn arbitrary_records_roundtrip(
            file in any::<u32>(),
            size in any::<u64>(),
            dev in any::<u32>(),
            ro in any::<bool>(),
            group in proptest::option::of(any::<u32>()),
        ) {
            let r = MetadataRecord { file: FileId::new(file), size, dev, read_only: ro, group };
            prop_assert_eq!(MetadataRecord::decode(&r.encode()).unwrap(), r);
        }

        #[test]
        fn correlator_lists_of_any_size_roundtrip(
            entries in proptest::collection::vec((any::<u32>(), 0.0f64..1.0), 0..64),
        ) {
            let mut s = MetaStore::new();
            let list: Vec<CorrelatorRecord> = entries
                .into_iter()
                .map(|(f, d)| CorrelatorRecord { file: FileId::new(f), degree: d })
                .collect();
            s.put_correlators(FileId::new(0), &list);
            prop_assert_eq!(s.get_correlators(FileId::new(0)), Some(list));
        }
    }
}

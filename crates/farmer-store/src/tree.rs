//! A slab-backed B+-tree: ordered map from `u64` keys to byte values.
//!
//! Design points:
//!
//! * **Nodes in a slab** — internal and leaf nodes live in one `Vec`,
//!   linked by `u32` indices (the "page ids"). Freed nodes go to a free
//!   list, so the arena never shrinks under churn but never leaks either.
//! * **Leaf chaining** — leaves form a singly-linked list in key order, so
//!   range scans stream without touching internal nodes.
//! * **Split on overflow** — standard B+-tree splits; the middle key is
//!   *copied* up for leaves (B+ semantics: all values live in leaves) and
//!   *moved* up for internal nodes.
//! * **Lazy deletion** — deletes remove the key from its leaf; an emptied
//!   leaf is unlinked and freed, but partially-empty nodes are not
//!   rebalanced. This is the strategy PostgreSQL's nbtree ships with; it
//!   keeps the invariant set small while bounding space by live keys.
//! * **I/O accounting** — every node touched during a descent counts as a
//!   page read; every node mutated counts as a page write. The metadata
//!   server's latency model charges per page, so deeper trees genuinely
//!   cost more simulated time.

/// Maximum keys per node before it splits. 64 keeps trees shallow at the
/// namespace sizes the experiments use while still exercising multi-level
/// descents (three levels by ~260k keys).
pub const DEFAULT_ORDER: usize = 64;

const NIL: u32 = u32::MAX;

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        keys: Vec<u64>,
        vals: Vec<Box<[u8]>>,
        next: u32,
    },
    Internal {
        /// `keys[i]` separates `children[i]` (< key) from `children[i+1]` (≥ key).
        keys: Vec<u64>,
        children: Vec<u32>,
    },
    /// Freed slot.
    Free,
}

/// Page-level access counters (reset with [`BTree::take_io`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TreeIo {
    /// Nodes touched by descents and scans.
    pub page_reads: u64,
    /// Nodes mutated.
    pub page_writes: u64,
}

/// The B+-tree. See module docs.
#[derive(Debug, Clone)]
pub struct BTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    order: usize,
    len: usize,
    io: TreeIo,
}

impl Default for BTree {
    fn default() -> Self {
        Self::new()
    }
}

impl BTree {
    /// An empty tree with the default order.
    pub fn new() -> Self {
        Self::with_order(DEFAULT_ORDER)
    }

    /// An empty tree with a custom order (≥ 4; odd orders are rounded up).
    pub fn with_order(order: usize) -> Self {
        assert!(order >= 4, "order must be at least 4");
        let order = order + order % 2;
        let mut t = BTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: 0,
            order,
            len: 0,
            io: TreeIo::default(),
        };
        t.root = t.alloc(Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
            next: NIL,
        });
        t
    }

    /// Number of live key-value pairs.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the tree holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of allocated node slots (live + free), the tree's "file size".
    pub fn allocated_pages(&self) -> usize {
        self.nodes.len()
    }

    /// Height of the tree (1 = root is a leaf).
    pub fn depth(&self) -> usize {
        let mut d = 1;
        let mut cur = self.root;
        loop {
            match &self.nodes[cur as usize] {
                Node::Internal { children, .. } => {
                    cur = children[0];
                    d += 1;
                }
                _ => return d,
            }
        }
    }

    /// Drain the I/O counters accumulated since the last call.
    pub fn take_io(&mut self) -> TreeIo {
        std::mem::take(&mut self.io)
    }

    /// Current I/O counters without resetting.
    pub fn io(&self) -> TreeIo {
        self.io
    }

    /// Look up `key`.
    pub fn get(&mut self, key: u64) -> Option<&[u8]> {
        let leaf = self.descend_to_leaf(key);
        let Node::Leaf { keys, vals, .. } = &self.nodes[leaf as usize] else {
            unreachable!("descend_to_leaf returns a leaf");
        };
        match keys.binary_search(&key) {
            Ok(i) => Some(&vals[i]),
            Err(_) => None,
        }
    }

    /// Insert or replace. Returns `true` if the key was new.
    pub fn insert(&mut self, key: u64, value: &[u8]) -> bool {
        let (inserted, split) = self.insert_rec(self.root, key, value);
        if let Some((sep, right)) = split {
            let old_root = self.root;
            self.root = self.alloc(Node::Internal {
                keys: vec![sep],
                children: vec![old_root, right],
            });
        }
        if inserted {
            self.len += 1;
        }
        inserted
    }

    /// Remove `key`. Returns `true` if it was present.
    pub fn remove(&mut self, key: u64) -> bool {
        let leaf = self.descend_to_leaf(key);
        let Node::Leaf { keys, vals, .. } = &mut self.nodes[leaf as usize] else {
            unreachable!();
        };
        match keys.binary_search(&key) {
            Ok(i) => {
                keys.remove(i);
                vals.remove(i);
                self.io.page_writes += 1;
                self.len -= 1;
                // Lazy deletion: emptied non-root leaves are unlinked during
                // the next structural pass; we only compact an empty root.
                if self.len == 0 {
                    self.collapse_to_empty_root();
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Iterate `[lo, hi]` in key order via the leaf chain.
    pub fn range(&mut self, lo: u64, hi: u64) -> Vec<(u64, Box<[u8]>)> {
        let mut out = Vec::new();
        if lo > hi {
            return out;
        }
        let mut leaf = self.descend_to_leaf(lo);
        loop {
            let Node::Leaf { keys, vals, next } = &self.nodes[leaf as usize] else {
                unreachable!();
            };
            for (k, v) in keys.iter().zip(vals) {
                if *k > hi {
                    return out;
                }
                if *k >= lo {
                    out.push((*k, v.clone()));
                }
            }
            if *next == NIL {
                return out;
            }
            leaf = *next;
            self.io.page_reads += 1;
        }
    }

    /// All keys in order (test/diagnostic helper).
    pub fn keys(&mut self) -> Vec<u64> {
        self.range(0, u64::MAX)
            .into_iter()
            .map(|(k, _)| k)
            .collect()
    }

    /// Approximate resident bytes (slab + values).
    pub fn heap_bytes(&self) -> usize {
        let node_bytes: usize = self
            .nodes
            .iter()
            .map(|n| match n {
                Node::Leaf { keys, vals, .. } => {
                    keys.capacity() * 8
                        + vals.capacity() * std::mem::size_of::<Box<[u8]>>()
                        + vals.iter().map(|v| v.len()).sum::<usize>()
                }
                Node::Internal { keys, children } => keys.capacity() * 8 + children.capacity() * 4,
                Node::Free => 0,
            })
            .sum();
        node_bytes + self.nodes.capacity() * std::mem::size_of::<Node>()
    }

    /// Verify structural invariants; returns a description of the first
    /// violation. Used by tests and debug assertions.
    pub fn check_invariants(&self) -> Result<(), String> {
        // Keys sorted within nodes; children count = keys + 1; all leaves
        // reachable through the chain in sorted order.
        let mut leaf_keys_via_tree = Vec::new();
        self.collect_leaf_keys(self.root, &mut leaf_keys_via_tree)?;
        let mut sorted = leaf_keys_via_tree.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted != leaf_keys_via_tree {
            return Err("leaf keys not globally sorted/unique".into());
        }
        if leaf_keys_via_tree.len() != self.len {
            return Err(format!(
                "len {} != leaf key count {}",
                self.len,
                leaf_keys_via_tree.len()
            ));
        }
        Ok(())
    }

    fn collect_leaf_keys(&self, node: u32, out: &mut Vec<u64>) -> Result<(), String> {
        match &self.nodes[node as usize] {
            Node::Leaf { keys, .. } => {
                if !keys.windows(2).all(|w| w[0] < w[1]) {
                    return Err("leaf keys unsorted".into());
                }
                out.extend_from_slice(keys);
                Ok(())
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err("child/key arity mismatch".into());
                }
                if !keys.windows(2).all(|w| w[0] < w[1]) {
                    return Err("internal keys unsorted".into());
                }
                for &c in children {
                    self.collect_leaf_keys(c, out)?;
                }
                Ok(())
            }
            Node::Free => Err("reachable free node".into()),
        }
    }

    fn alloc(&mut self, node: Node) -> u32 {
        self.io.page_writes += 1;
        match self.free.pop() {
            Some(i) => {
                self.nodes[i as usize] = node;
                i
            }
            None => {
                self.nodes.push(node);
                (self.nodes.len() - 1) as u32
            }
        }
    }

    fn descend_to_leaf(&mut self, key: u64) -> u32 {
        let mut cur = self.root;
        loop {
            self.io.page_reads += 1;
            match &self.nodes[cur as usize] {
                Node::Leaf { .. } => return cur,
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|&k| k <= key);
                    cur = children[idx];
                }
                Node::Free => unreachable!("descended into free node"),
            }
        }
    }

    /// Recursive insert; returns (was-new, optional split (separator, right)).
    fn insert_rec(&mut self, node: u32, key: u64, value: &[u8]) -> (bool, Option<(u64, u32)>) {
        self.io.page_reads += 1;
        match &mut self.nodes[node as usize] {
            Node::Leaf { keys, vals, .. } => {
                let inserted = match keys.binary_search(&key) {
                    Ok(i) => {
                        vals[i] = value.into();
                        false
                    }
                    Err(i) => {
                        keys.insert(i, key);
                        vals.insert(i, value.into());
                        true
                    }
                };
                self.io.page_writes += 1;
                let split = if keys.len() > self.order {
                    Some(self.split_leaf(node))
                } else {
                    None
                };
                (inserted, split)
            }
            Node::Internal { keys, children } => {
                let idx = keys.partition_point(|&k| k <= key);
                let child = children[idx];
                let (inserted, child_split) = self.insert_rec(child, key, value);
                let split = if let Some((sep, right)) = child_split {
                    let Node::Internal { keys, children } = &mut self.nodes[node as usize] else {
                        unreachable!();
                    };
                    keys.insert(idx, sep);
                    children.insert(idx + 1, right);
                    self.io.page_writes += 1;
                    if keys.len() > self.order {
                        Some(self.split_internal(node))
                    } else {
                        None
                    }
                } else {
                    None
                };
                (inserted, split)
            }
            Node::Free => unreachable!("insert into free node"),
        }
    }

    fn split_leaf(&mut self, node: u32) -> (u64, u32) {
        let Node::Leaf { keys, vals, next } = &mut self.nodes[node as usize] else {
            unreachable!();
        };
        let mid = keys.len() / 2;
        let right_keys = keys.split_off(mid);
        let right_vals = vals.split_off(mid);
        let old_next = *next;
        let sep = right_keys[0];
        let right = self.alloc(Node::Leaf {
            keys: right_keys,
            vals: right_vals,
            next: old_next,
        });
        let Node::Leaf { next, .. } = &mut self.nodes[node as usize] else {
            unreachable!();
        };
        *next = right;
        self.io.page_writes += 1;
        (sep, right)
    }

    fn split_internal(&mut self, node: u32) -> (u64, u32) {
        let Node::Internal { keys, children } = &mut self.nodes[node as usize] else {
            unreachable!();
        };
        let mid = keys.len() / 2;
        let sep = keys[mid];
        let right_keys = keys.split_off(mid + 1);
        keys.pop(); // drop the separator: it moves up
        let right_children = children.split_off(mid + 1);
        let right = self.alloc(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        self.io.page_writes += 1;
        (sep, right)
    }

    fn collapse_to_empty_root(&mut self) {
        // Free everything and restart with one empty leaf — the tree is empty.
        for i in 0..self.nodes.len() {
            if !matches!(self.nodes[i], Node::Free) {
                self.nodes[i] = Node::Free;
                self.free.push(i as u32);
            }
        }
        self.root = self.alloc(Node::Leaf {
            keys: Vec::new(),
            vals: Vec::new(),
            next: NIL,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap;

    #[test]
    fn insert_get_roundtrip() {
        let mut t = BTree::new();
        assert!(t.insert(5, b"five"));
        assert!(t.insert(3, b"three"));
        assert!(!t.insert(5, b"FIVE")); // replace
        assert_eq!(t.get(5), Some(&b"FIVE"[..]));
        assert_eq!(t.get(3), Some(&b"three"[..]));
        assert_eq!(t.get(4), None);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn splits_keep_order() {
        let mut t = BTree::with_order(4);
        for k in 0..100u64 {
            t.insert(k * 7 % 100, &k.to_le_bytes());
        }
        assert_eq!(t.len(), 100);
        assert!(t.depth() > 1, "tree should have split");
        let keys = t.keys();
        let expect: Vec<u64> = (0..100).collect();
        assert_eq!(keys, expect);
        t.check_invariants().unwrap();
    }

    #[test]
    fn remove_then_get_misses() {
        let mut t = BTree::with_order(4);
        for k in 0..50u64 {
            t.insert(k, b"v");
        }
        assert!(t.remove(25));
        assert!(!t.remove(25));
        assert_eq!(t.get(25), None);
        assert_eq!(t.len(), 49);
        t.check_invariants().unwrap();
    }

    #[test]
    fn emptied_tree_resets() {
        let mut t = BTree::with_order(4);
        for k in 0..40u64 {
            t.insert(k, b"v");
        }
        for k in 0..40u64 {
            assert!(t.remove(k));
        }
        assert!(t.is_empty());
        assert_eq!(t.depth(), 1);
        t.check_invariants().unwrap();
        // Reusable after collapse.
        t.insert(7, b"again");
        assert_eq!(t.get(7), Some(&b"again"[..]));
    }

    #[test]
    fn range_scan_inclusive() {
        let mut t = BTree::with_order(4);
        for k in (0..100u64).step_by(2) {
            t.insert(k, &k.to_le_bytes());
        }
        let r = t.range(10, 20);
        let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![10, 12, 14, 16, 18, 20]);
        assert!(t.range(5, 4).is_empty());
        assert!(t.range(101, 200).is_empty());
    }

    #[test]
    fn depth_grows_logarithmically() {
        let mut t = BTree::with_order(4);
        for k in 0..1000u64 {
            t.insert(k, b"x");
        }
        let d = t.depth();
        // order 4 -> between log_5(1000) ~ 4.3 and log_2(1000) ~ 10.
        assert!((4..=11).contains(&d), "depth {d}");
        t.check_invariants().unwrap();
    }

    #[test]
    fn io_counters_track_descents() {
        let mut t = BTree::new();
        for k in 0..500u64 {
            t.insert(k, b"x");
        }
        t.take_io();
        t.get(250);
        let io = t.take_io();
        assert_eq!(io.page_reads as usize, t.depth());
        assert_eq!(io.page_writes, 0);
        t.insert(1000, b"y");
        let io = t.take_io();
        assert!(io.page_writes >= 1);
    }

    #[test]
    fn sequential_and_reverse_insertions() {
        for keys in [
            (0..200u64).collect::<Vec<_>>(),
            (0..200u64).rev().collect::<Vec<_>>(),
        ] {
            let mut t = BTree::with_order(4);
            for &k in &keys {
                t.insert(k, &k.to_le_bytes());
            }
            assert_eq!(t.len(), 200);
            t.check_invariants().unwrap();
            for &k in &keys {
                assert_eq!(t.get(k), Some(&k.to_le_bytes()[..]));
            }
        }
    }

    #[test]
    fn large_values_survive() {
        let mut t = BTree::new();
        let big = vec![0xAB; 4096];
        t.insert(1, &big);
        assert_eq!(t.get(1).unwrap().len(), 4096);
    }

    #[test]
    #[should_panic(expected = "order must be at least 4")]
    fn rejects_tiny_order() {
        let _ = BTree::with_order(2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Model equivalence against std's BTreeMap under random workloads.
        #[test]
        fn matches_btreemap_model(
            ops in proptest::collection::vec((0u8..3, 0u64..500, 0u8..255), 1..400),
            order in 4usize..32,
        ) {
            let mut sys = BTree::with_order(order);
            let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
            for (op, key, vbyte) in ops {
                match op {
                    0 => {
                        let val = vec![vbyte; (key % 7 + 1) as usize];
                        let new_sys = sys.insert(key, &val);
                        let new_model = model.insert(key, val).is_none();
                        prop_assert_eq!(new_sys, new_model);
                    }
                    1 => {
                        let got = sys.remove(key);
                        let want = model.remove(&key).is_some();
                        prop_assert_eq!(got, want);
                    }
                    _ => {
                        let got = sys.get(key).map(|v| v.to_vec());
                        let want = model.get(&key).cloned();
                        prop_assert_eq!(got, want);
                    }
                }
                prop_assert_eq!(sys.len(), model.len());
            }
            sys.check_invariants().unwrap();
            // Full-order agreement at the end.
            let sys_keys = sys.keys();
            let model_keys: Vec<u64> = model.keys().copied().collect();
            prop_assert_eq!(sys_keys, model_keys);
        }

        /// Range scans agree with the model on random windows.
        #[test]
        fn range_matches_model(
            keys in proptest::collection::btree_set(0u64..1000, 0..200),
            lo in 0u64..1000,
            width in 0u64..500,
        ) {
            let mut sys = BTree::with_order(8);
            let mut model = BTreeMap::new();
            for &k in &keys {
                sys.insert(k, &k.to_le_bytes());
                model.insert(k, k.to_le_bytes().to_vec());
            }
            let hi = lo.saturating_add(width);
            let got: Vec<u64> = sys.range(lo, hi).into_iter().map(|(k, _)| k).collect();
            let want: Vec<u64> = model.range(lo..=hi).map(|(k, _)| *k).collect();
            prop_assert_eq!(got, want);
        }
    }
}

//! Compact binary encoding for the store's record types.
//!
//! Hand-rolled little-endian layouts: records are tiny and fixed-shape, and
//! the decoder must be robust against truncated input (the store is also
//! exercised by property tests that corrupt buffers).

/// Encode errors are impossible (encoding is total); decode errors are not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Input shorter than the fixed header requires.
    Truncated,
    /// A length field points past the end of the buffer.
    BadLength,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "buffer truncated"),
            DecodeError::BadLength => write!(f, "length field out of bounds"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Cursor-style reader over a byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Wrap a buffer.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a little-endian u8.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(
            // lint: allow(panic) take(4) returned exactly 4 bytes
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Read a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(
            // lint: allow(panic) take(8) returned exactly 8 bytes
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a little-endian f64.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_le_bytes(
            // lint: allow(panic) take(8) returned exactly 8 bytes
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Read a u32-length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], DecodeError> {
        let len = self.u32()? as usize;
        if len > self.remaining() {
            return Err(DecodeError::BadLength);
        }
        self.take(len)
    }
}

/// Growable little-endian writer.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// An empty writer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Append a u8.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian u64.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian f64.
    pub fn f64(&mut self, v: f64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a u32-length-prefixed byte slice.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        self.u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Finish, returning the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(7).u32(0xDEAD_BEEF).u64(u64::MAX).f64(0.25);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.f64().unwrap(), 0.25);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut w = Writer::new();
        w.bytes(b"hello").bytes(b"");
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.bytes().unwrap(), b"");
    }

    #[test]
    fn truncated_reads_error() {
        let mut r = Reader::new(&[1, 2, 3]);
        assert_eq!(r.u64().unwrap_err(), DecodeError::Truncated);
    }

    #[test]
    fn bad_length_detected() {
        // Length prefix says 100 bytes but only 1 follows.
        let mut w = Writer::new();
        w.u32(100).u8(1);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap_err(), DecodeError::BadLength);
    }

    proptest! {
        #[test]
        fn arbitrary_payload_roundtrips(payload in proptest::collection::vec(any::<u8>(), 0..300)) {
            let mut w = Writer::new();
            w.bytes(&payload);
            let buf = w.finish();
            let mut r = Reader::new(&buf);
            prop_assert_eq!(r.bytes().unwrap(), &payload[..]);
        }

        #[test]
        fn decoder_never_panics_on_garbage(garbage in proptest::collection::vec(any::<u8>(), 0..64)) {
            let mut r = Reader::new(&garbage);
            // Whatever happens, no panic.
            let _ = r.u64();
            let _ = r.bytes();
            let _ = r.u32();
        }
    }
}

//! The query layer: [`CorrelationSource`], the single read API for mined
//! correlations.
//!
//! FARMER's whole point is that mined Correlator Lists get *served* — to
//! prefetchers, replication planners, security compilers and layout
//! optimizers — at demand-request rate. Every one of those consumers asks
//! the same questions ("the k strongest correlators of this file", "the
//! single strongest", "how strong is this pair"), so they all program
//! against this trait and any mining back-end can sit behind them:
//!
//! * [`crate::Farmer`] — live queries against the in-memory model, backed
//!   by a per-node sorted-view cache invalidated by the graph's mutation
//!   epoch;
//! * [`crate::CorrelatorTable`] — an exported, immutable table;
//! * `farmer_stream::StreamSnapshot` — a consistent cut of the sharded
//!   online miner, queried directly (no table copy);
//! * `farmer_store::CorrelatorView` — lists persisted in the embedded
//!   store and reloaded after a restart.
//!
//! # Contract
//!
//! All queries are read-only (`&self`), allocation-free in steady state
//! (results land in caller-owned buffers that are reused across calls),
//! and return correlators in the canonical order: decreasing degree, ties
//! by ascending file id. `min_degree` filters inclusively
//! ([`crate::miner::is_valid`]); a source only answers from the
//! correlations it *retains* — an exported table cannot resurrect entries
//! below the threshold it was built with, while a live [`crate::Farmer`]
//! retains every graph edge.
//!
//! **Threading.** The exported back-ends (table, snapshot, store view)
//! are immutable and `Sync` — share them freely across serving threads.
//! The live [`crate::Farmer`] is `Send` but *not* `Sync`: its query cache
//! uses interior mutability, matching the deployment model where each
//! mining shard owns its model and concurrent serving tiers consume
//! exported snapshots.
//!
//! # Complexity (deg = successor count of the queried file)
//!
//! | query | cost |
//! |---|---|
//! | `top_k_into` (cache hit) | O(k) copy |
//! | `top_k_into` (cache miss) | O(deg + k log k) — partial select, **not** O(deg log deg) |
//! | `strongest` | O(deg) scan, no sort, no allocation |
//! | `degree` | O(deg) scan |
//! | `version` | O(1) |

use farmer_trace::FileId;

use crate::correlator::Correlator;
use crate::miner;

/// The unified read API over mined file-access correlations.
///
/// Object safe: consumers that serve many back-ends take
/// `&dyn CorrelationSource`; hot paths that want static dispatch take
/// `impl CorrelationSource`.
pub trait CorrelationSource {
    /// A version of the underlying mined state for cheap staleness checks:
    /// two calls returning the same value guarantee the source answered
    /// identically in between. Monotonic for every provided back-end.
    fn version(&self) -> u64;

    /// Clear `out` and fill it with up to `k` strongest correlators of
    /// `file` whose degree reaches `min_degree`, strongest first (ties by
    /// ascending file id). Steady-state allocation-free: once `out` has
    /// warmed to capacity `k`, repeated calls never allocate.
    fn top_k_into(&self, file: FileId, k: usize, min_degree: f64, out: &mut Vec<Correlator>);

    /// The single strongest correlator of `file` with degree ≥
    /// `min_degree`, if any. Back-ends override this with an O(deg) scan —
    /// no sorting, no allocation — which is why head-of-list consumers
    /// must route through it rather than materializing a full list.
    fn strongest(&self, file: FileId, min_degree: f64) -> Option<Correlator> {
        let mut one = Vec::with_capacity(1);
        self.top_k_into(file, 1, min_degree, &mut one);
        one.first().copied()
    }

    /// The correlation degree `R(from, to)`, if the source retains that
    /// pair.
    fn degree(&self, from: FileId, to: FileId) -> Option<f64>;

    /// Visit every non-empty retained correlator list (exporter path:
    /// persisting to a store, building a table, shipping a snapshot).
    /// Lists arrive in the canonical per-list order; owner order is
    /// unspecified.
    fn for_each_list(&self, visit: &mut dyn FnMut(FileId, &[Correlator]));

    /// Approximate resident heap bytes of the queryable state (Table 4
    /// space accounting).
    fn heap_bytes(&self) -> usize {
        0
    }
}

/// A shared source serves exactly like an owned one. This is what lets a
/// serving tier publish one snapshot behind an [`std::sync::Arc`] and
/// hand the *same* mined state to N reader threads and to
/// `FpaPredictor::refresh`-style consumers without copying a byte.
impl<T: CorrelationSource + ?Sized> CorrelationSource for std::sync::Arc<T> {
    fn version(&self) -> u64 {
        (**self).version()
    }

    fn top_k_into(&self, file: FileId, k: usize, min_degree: f64, out: &mut Vec<Correlator>) {
        (**self).top_k_into(file, k, min_degree, out)
    }

    fn strongest(&self, file: FileId, min_degree: f64) -> Option<Correlator> {
        (**self).strongest(file, min_degree)
    }

    fn degree(&self, from: FileId, to: FileId) -> Option<f64> {
        (**self).degree(from, to)
    }

    fn for_each_list(&self, visit: &mut dyn FnMut(FileId, &[Correlator])) {
        (**self).for_each_list(visit)
    }

    fn heap_bytes(&self) -> usize {
        (**self).heap_bytes()
    }
}

/// Canonical correlator ordering: decreasing degree, ties by ascending
/// file id — the order [`crate::CorrelatorList::build`] has always used.
#[inline]
pub(crate) fn rank_cmp(a: &Correlator, b: &Correlator) -> std::cmp::Ordering {
    b.degree
        .total_cmp(&a.degree)
        .then_with(|| a.file.raw().cmp(&b.file.raw()))
}

/// Copy the valid prefix of a canonically sorted slice into `out`:
/// up to `k` entries with degree ≥ `min_degree`. Shared by every
/// sorted-storage back-end.
#[inline]
pub(crate) fn copy_top_k(
    sorted: &[Correlator],
    k: usize,
    min_degree: f64,
    out: &mut Vec<Correlator>,
) {
    out.clear();
    for c in sorted.iter().take(k) {
        if !miner::is_valid(c.degree, min_degree) {
            break; // sorted descending: everything after fails too
        }
        out.push(*c);
    }
}

impl CorrelationSource for crate::CorrelatorTable {
    fn version(&self) -> u64 {
        self.version()
    }

    fn top_k_into(&self, file: FileId, k: usize, min_degree: f64, out: &mut Vec<Correlator>) {
        match self.get(file) {
            Some(list) => copy_top_k(list.entries(), k, min_degree, out),
            None => out.clear(),
        }
    }

    fn strongest(&self, file: FileId, min_degree: f64) -> Option<Correlator> {
        self.get(file)
            .and_then(|l| l.head())
            .filter(|c| miner::is_valid(c.degree, min_degree))
    }

    fn degree(&self, from: FileId, to: FileId) -> Option<f64> {
        self.get(from)?
            .iter()
            .find(|c| c.file == to)
            .map(|c| c.degree)
    }

    fn for_each_list(&self, visit: &mut dyn FnMut(FileId, &[Correlator])) {
        for list in self.iter() {
            if !list.is_empty() {
                visit(list.owner, list.entries());
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CorrelatorList, CorrelatorTable};

    fn c(file: u32, degree: f64) -> Correlator {
        Correlator {
            file: FileId::new(file),
            degree,
        }
    }

    fn table() -> CorrelatorTable {
        vec![
            CorrelatorList::build(FileId::new(0), vec![c(1, 0.9), c(2, 0.5), c(3, 0.3)], 0.0),
            CorrelatorList::build(FileId::new(7), vec![c(4, 0.6)], 0.0),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn table_top_k_filters_and_clamps() {
        let t = table();
        let mut out = Vec::new();
        t.top_k_into(FileId::new(0), 2, 0.0, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].file, FileId::new(1));
        // Threshold cuts the sorted tail.
        t.top_k_into(FileId::new(0), 8, 0.4, &mut out);
        assert_eq!(out.len(), 2);
        assert!(out.iter().all(|c| c.degree >= 0.4));
        // Unknown owner clears the buffer.
        t.top_k_into(FileId::new(42), 4, 0.0, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn top_k_reuses_caller_buffer() {
        let t = table();
        let mut out = Vec::with_capacity(4);
        t.top_k_into(FileId::new(0), 3, 0.0, &mut out);
        let ptr = out.as_ptr();
        let cap = out.capacity();
        for _ in 0..32 {
            t.top_k_into(FileId::new(0), 3, 0.0, &mut out);
        }
        assert_eq!(out.as_ptr(), ptr, "steady-state queries must not realloc");
        assert_eq!(out.capacity(), cap);
    }

    #[test]
    fn table_strongest_and_degree() {
        let t = table();
        assert_eq!(
            t.strongest(FileId::new(0), 0.0).unwrap().file,
            FileId::new(1)
        );
        assert!(t.strongest(FileId::new(0), 0.95).is_none());
        assert!(t.strongest(FileId::new(42), 0.0).is_none());
        let d = CorrelationSource::degree(&t, FileId::new(0), FileId::new(2)).unwrap();
        assert!((d - 0.5).abs() < 1e-12);
        assert!(CorrelationSource::degree(&t, FileId::new(0), FileId::new(9)).is_none());
    }

    #[test]
    fn table_for_each_list_visits_all() {
        let t = table();
        let mut owners = Vec::new();
        let mut entries = 0;
        t.for_each_list(&mut |owner, list| {
            owners.push(owner.raw());
            entries += list.len();
            assert!(list.windows(2).all(|w| w[0].degree >= w[1].degree));
        });
        owners.sort_unstable();
        assert_eq!(owners, vec![0, 7]);
        assert_eq!(entries, 4);
    }

    #[test]
    fn table_version_tracks_inserts() {
        let mut t = CorrelatorTable::new();
        let v0 = CorrelationSource::version(&t);
        t.insert(CorrelatorList::build(FileId::new(1), vec![c(2, 0.5)], 0.0));
        assert!(CorrelationSource::version(&t) > v0);
    }

    #[test]
    fn default_strongest_matches_top_1() {
        // A back-end that does not override `strongest` must agree with
        // its own top-1.
        struct Shim(CorrelatorTable);
        impl CorrelationSource for Shim {
            fn version(&self) -> u64 {
                self.0.version()
            }
            fn top_k_into(&self, f: FileId, k: usize, m: f64, out: &mut Vec<Correlator>) {
                self.0.top_k_into(f, k, m, out)
            }
            fn degree(&self, a: FileId, b: FileId) -> Option<f64> {
                CorrelationSource::degree(&self.0, a, b)
            }
            fn for_each_list(&self, visit: &mut dyn FnMut(FileId, &[Correlator])) {
                self.0.for_each_list(visit)
            }
        }
        let s = Shim(table());
        assert_eq!(
            s.strongest(FileId::new(0), 0.0),
            s.0.strongest(FileId::new(0), 0.0)
        );
        assert_eq!(s.strongest(FileId::new(42), 0.0), None);
    }
}

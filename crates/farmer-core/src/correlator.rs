//! Stage 4 — Sorting: per-file Correlator Lists.
//!
//! "Each file with one or more successors is associated with a sorted
//! Correlator List in decreasing order of the inter-file correlation degree
//! from head to tail." (paper §3.1, Stage 4). The list is the interface the
//! prefetcher consumes: its head holds the strongest correlations, and only
//! entries whose degree reaches `max_strength` appear at all.

use farmer_trace::hash::FxHashMap;
use farmer_trace::FileId;

/// One entry of a Correlator List: a successor and its correlation degree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correlator {
    /// The correlated successor file.
    pub file: FileId,
    /// Correlation degree `R(owner, file)` at evaluation time.
    pub degree: f64,
}

/// A sorted, thresholded correlator list for one file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorrelatorList {
    /// The file owning this list.
    pub owner: FileId,
    entries: Vec<Correlator>,
}

impl CorrelatorList {
    /// Build a list from unsorted candidates: filters by `max_strength`,
    /// sorts by decreasing degree (ties broken by file id for determinism).
    pub fn build(
        owner: FileId,
        candidates: impl IntoIterator<Item = Correlator>,
        max_strength: f64,
    ) -> CorrelatorList {
        let mut entries: Vec<Correlator> = candidates
            .into_iter()
            .filter(|c| crate::miner::is_valid(c.degree, max_strength))
            .collect();
        entries.sort_by(|a, b| {
            b.degree
                .total_cmp(&a.degree)
                .then_with(|| a.file.raw().cmp(&b.file.raw()))
        });
        CorrelatorList { owner, entries }
    }

    /// Build a list from entries that are *already* filtered and sorted in
    /// the canonical order (decreasing degree, ties by ascending file id) —
    /// the order every [`crate::CorrelationSource`] query produces. This is
    /// the exporter-side constructor: it takes ownership of the buffer
    /// without re-filtering or re-sorting.
    pub fn from_sorted(owner: FileId, entries: Vec<Correlator>) -> CorrelatorList {
        debug_assert!(entries.windows(2).all(|w| {
            w[0].degree > w[1].degree
                || (w[0].degree == w[1].degree && w[0].file.raw() < w[1].file.raw())
        }));
        CorrelatorList { owner, entries }
    }

    /// Entries, strongest first.
    pub fn entries(&self) -> &[Correlator] {
        &self.entries
    }

    /// The strongest correlator, if any.
    pub fn head(&self) -> Option<Correlator> {
        self.entries.first().copied()
    }

    /// The `k` strongest correlators.
    pub fn top(&self, k: usize) -> &[Correlator] {
        &self.entries[..k.min(self.entries.len())]
    }

    /// Number of valid correlators.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no correlator passed the validity threshold.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over entries, strongest first.
    pub fn iter(&self) -> impl Iterator<Item = &Correlator> {
        self.entries.iter()
    }
}

impl IntoIterator for CorrelatorList {
    type Item = Correlator;
    type IntoIter = std::vec::IntoIter<Correlator>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

/// An indexed set of Correlator Lists, one per owner file.
///
/// This is the exchange format between a mining back-end and its consumers:
/// the streaming engine (`farmer-stream`) exports one as a consistent
/// snapshot, and the prefetcher (`farmer-prefetch`) serves predictions from
/// it, swapping in fresh tables mid-simulation without re-mining.
#[derive(Debug, Clone, Default)]
pub struct CorrelatorTable {
    lists: Vec<CorrelatorList>,
    index: FxHashMap<u32, u32>,
    version: u64,
}

impl CorrelatorTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert (or replace) the list for its owner file.
    pub fn insert(&mut self, list: CorrelatorList) {
        self.version += 1;
        match self.index.get(&list.owner.raw()) {
            Some(&slot) => self.lists[slot as usize] = list,
            None => {
                self.index.insert(list.owner.raw(), self.lists.len() as u32);
                self.lists.push(list);
            }
        }
    }

    /// Mutation version of the table (bumped per insert/replace); the
    /// [`crate::CorrelationSource`] staleness check.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The list owned by `file`, if one is present.
    pub fn get(&self, file: FileId) -> Option<&CorrelatorList> {
        self.index
            .get(&file.raw())
            .map(|&slot| &self.lists[slot as usize])
    }

    /// The `k` strongest correlators of `file` (empty if absent).
    pub fn top(&self, file: FileId, k: usize) -> &[Correlator] {
        self.get(file).map_or(&[], |l| l.top(k))
    }

    /// Iterate over all lists (owner order unspecified).
    pub fn iter(&self) -> impl Iterator<Item = &CorrelatorList> {
        self.lists.iter()
    }

    /// Number of owner files with a list.
    pub fn len(&self) -> usize {
        self.lists.len()
    }

    /// True if no file has a list.
    pub fn is_empty(&self) -> bool {
        self.lists.is_empty()
    }

    /// Total number of correlator entries across all lists.
    pub fn num_entries(&self) -> usize {
        self.lists.iter().map(CorrelatorList::len).sum()
    }

    /// Approximate heap bytes (lists + index), for space accounting.
    pub fn heap_bytes(&self) -> usize {
        self.lists.capacity() * std::mem::size_of::<CorrelatorList>()
            + self
                .lists
                .iter()
                .map(|l| l.entries.capacity() * std::mem::size_of::<Correlator>())
                .sum::<usize>()
            + self.index.len() * (std::mem::size_of::<(u32, u32)>() + 8)
    }
}

impl FromIterator<CorrelatorList> for CorrelatorTable {
    fn from_iter<I: IntoIterator<Item = CorrelatorList>>(iter: I) -> Self {
        let mut table = CorrelatorTable::new();
        for list in iter {
            table.insert(list);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(file: u32, degree: f64) -> Correlator {
        Correlator {
            file: FileId::new(file),
            degree,
        }
    }

    #[test]
    fn build_sorts_descending() {
        let l = CorrelatorList::build(FileId::new(0), vec![c(1, 0.5), c(2, 0.9), c(3, 0.7)], 0.0);
        let degrees: Vec<f64> = l.iter().map(|e| e.degree).collect();
        assert_eq!(degrees, vec![0.9, 0.7, 0.5]);
        assert_eq!(l.head().unwrap().file, FileId::new(2));
    }

    #[test]
    fn build_filters_below_threshold() {
        let l = CorrelatorList::build(FileId::new(0), vec![c(1, 0.39), c(2, 0.4), c(3, 0.41)], 0.4);
        assert_eq!(l.len(), 2);
        assert!(l.iter().all(|e| e.degree >= 0.4));
    }

    #[test]
    fn ties_break_by_file_id() {
        let l = CorrelatorList::build(FileId::new(0), vec![c(9, 0.5), c(3, 0.5)], 0.0);
        let files: Vec<u32> = l.iter().map(|e| e.file.raw()).collect();
        assert_eq!(files, vec![3, 9]);
    }

    #[test]
    fn top_clamps_to_len() {
        let l = CorrelatorList::build(FileId::new(0), vec![c(1, 0.5)], 0.0);
        assert_eq!(l.top(10).len(), 1);
        assert_eq!(l.top(0).len(), 0);
    }

    #[test]
    fn empty_when_all_filtered() {
        let l = CorrelatorList::build(FileId::new(0), vec![c(1, 0.1)], 0.4);
        assert!(l.is_empty());
        assert!(l.head().is_none());
    }

    #[test]
    fn into_iter_yields_sorted() {
        let l = CorrelatorList::build(FileId::new(0), vec![c(1, 0.2), c(2, 0.8)], 0.0);
        let v: Vec<Correlator> = l.into_iter().collect();
        assert_eq!(v[0].file, FileId::new(2));
    }

    #[test]
    fn table_insert_get_replace() {
        let mut t = CorrelatorTable::new();
        assert!(t.is_empty());
        t.insert(CorrelatorList::build(FileId::new(0), vec![c(1, 0.5)], 0.0));
        t.insert(CorrelatorList::build(FileId::new(7), vec![c(2, 0.9)], 0.0));
        assert_eq!(t.len(), 2);
        assert_eq!(t.num_entries(), 2);
        assert_eq!(
            t.get(FileId::new(7)).unwrap().head().unwrap().file,
            FileId::new(2)
        );
        assert!(t.get(FileId::new(3)).is_none());
        // Replacement keeps len stable.
        t.insert(CorrelatorList::build(
            FileId::new(0),
            vec![c(3, 0.8), c(4, 0.6)],
            0.0,
        ));
        assert_eq!(t.len(), 2);
        assert_eq!(t.get(FileId::new(0)).unwrap().len(), 2);
    }

    #[test]
    fn table_top_clamps_and_defaults_empty() {
        let t: CorrelatorTable = vec![CorrelatorList::build(
            FileId::new(1),
            vec![c(2, 0.9), c(3, 0.5)],
            0.0,
        )]
        .into_iter()
        .collect();
        assert_eq!(t.top(FileId::new(1), 1).len(), 1);
        assert_eq!(t.top(FileId::new(1), 9).len(), 2);
        assert!(t.top(FileId::new(42), 4).is_empty());
        assert!(t.heap_bytes() > 0);
    }
}

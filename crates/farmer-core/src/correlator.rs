//! Stage 4 — Sorting: per-file Correlator Lists.
//!
//! "Each file with one or more successors is associated with a sorted
//! Correlator List in decreasing order of the inter-file correlation degree
//! from head to tail." (paper §3.1, Stage 4). The list is the interface the
//! prefetcher consumes: its head holds the strongest correlations, and only
//! entries whose degree reaches `max_strength` appear at all.

use farmer_trace::FileId;

/// One entry of a Correlator List: a successor and its correlation degree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correlator {
    /// The correlated successor file.
    pub file: FileId,
    /// Correlation degree `R(owner, file)` at evaluation time.
    pub degree: f64,
}

/// A sorted, thresholded correlator list for one file.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CorrelatorList {
    /// The file owning this list.
    pub owner: FileId,
    entries: Vec<Correlator>,
}

impl CorrelatorList {
    /// Build a list from unsorted candidates: filters by `max_strength`,
    /// sorts by decreasing degree (ties broken by file id for determinism).
    pub fn build(
        owner: FileId,
        candidates: impl IntoIterator<Item = Correlator>,
        max_strength: f64,
    ) -> CorrelatorList {
        let mut entries: Vec<Correlator> = candidates
            .into_iter()
            .filter(|c| crate::miner::is_valid(c.degree, max_strength))
            .collect();
        entries.sort_by(|a, b| {
            b.degree
                .total_cmp(&a.degree)
                .then_with(|| a.file.raw().cmp(&b.file.raw()))
        });
        CorrelatorList { owner, entries }
    }

    /// Entries, strongest first.
    pub fn entries(&self) -> &[Correlator] {
        &self.entries
    }

    /// The strongest correlator, if any.
    pub fn head(&self) -> Option<Correlator> {
        self.entries.first().copied()
    }

    /// The `k` strongest correlators.
    pub fn top(&self, k: usize) -> &[Correlator] {
        &self.entries[..k.min(self.entries.len())]
    }

    /// Number of valid correlators.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no correlator passed the validity threshold.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over entries, strongest first.
    pub fn iter(&self) -> impl Iterator<Item = &Correlator> {
        self.entries.iter()
    }
}

impl IntoIterator for CorrelatorList {
    type Item = Correlator;
    type IntoIter = std::vec::IntoIter<Correlator>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(file: u32, degree: f64) -> Correlator {
        Correlator { file: FileId::new(file), degree }
    }

    #[test]
    fn build_sorts_descending() {
        let l = CorrelatorList::build(
            FileId::new(0),
            vec![c(1, 0.5), c(2, 0.9), c(3, 0.7)],
            0.0,
        );
        let degrees: Vec<f64> = l.iter().map(|e| e.degree).collect();
        assert_eq!(degrees, vec![0.9, 0.7, 0.5]);
        assert_eq!(l.head().unwrap().file, FileId::new(2));
    }

    #[test]
    fn build_filters_below_threshold() {
        let l = CorrelatorList::build(
            FileId::new(0),
            vec![c(1, 0.39), c(2, 0.4), c(3, 0.41)],
            0.4,
        );
        assert_eq!(l.len(), 2);
        assert!(l.iter().all(|e| e.degree >= 0.4));
    }

    #[test]
    fn ties_break_by_file_id() {
        let l = CorrelatorList::build(FileId::new(0), vec![c(9, 0.5), c(3, 0.5)], 0.0);
        let files: Vec<u32> = l.iter().map(|e| e.file.raw()).collect();
        assert_eq!(files, vec![3, 9]);
    }

    #[test]
    fn top_clamps_to_len() {
        let l = CorrelatorList::build(FileId::new(0), vec![c(1, 0.5)], 0.0);
        assert_eq!(l.top(10).len(), 1);
        assert_eq!(l.top(0).len(), 0);
    }

    #[test]
    fn empty_when_all_filtered() {
        let l = CorrelatorList::build(FileId::new(0), vec![c(1, 0.1)], 0.4);
        assert!(l.is_empty());
        assert!(l.head().is_none());
    }

    #[test]
    fn into_iter_yields_sorted() {
        let l = CorrelatorList::build(FileId::new(0), vec![c(1, 0.2), c(2, 0.8)], 0.0);
        let v: Vec<Correlator> = l.into_iter().collect();
        assert_eq!(v[0].file, FileId::new(2));
    }
}

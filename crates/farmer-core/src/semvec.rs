//! Semantic vectors and the VSM similarity function (paper §3.2.1).
//!
//! A file request is represented as a vector of attribute items; similarity
//! between two requests is the paper's Function 1:
//!
//! ```text
//! sim(A, B) = |A ∩ B| / max(|A|, |B|)
//! ```
//!
//! Scalar attributes (user, process, host, file id, device) contribute one
//! item each and intersect exactly (equal → 1). The file path contributes
//! according to the configured [`PathMode`]:
//!
//! * **DPA** — every path component is its own item; the intersection is a
//!   multiset intersection over components. Table 2's left column.
//! * **IPA** — the whole path is a single item whose intersection value is
//!   the *fractional* directory similarity `|dirs ∩| / max(depth)`.
//!   Table 2's right column, and the paper's final choice.
//!
//! The functions here are allocation-free: similarity is computed directly
//! from the request tuples and path references without materializing the
//! item vectors, because this sits on the hot path of every mined event.
//!
//! The similarity decomposes into two independent terms the hot loop
//! exploits separately (see [`crate::model::Farmer`]):
//!
//! * [`scalar_parts`] — the per-event scalar-attribute comparison, a
//!   branch-free match mask over the combo bits;
//! * [`path_term`] — the per-file-pair path contribution, a pure function
//!   of the two (learn-once) paths, and therefore memoizable.

use farmer_trace::FilePath;

use crate::attr::{AttrCombo, AttrKind};
use crate::config::PathMode;
use crate::extract::Request;

/// The scalar-attribute part of the similarity: `(intersection, items)`.
///
/// Branch-free: each attribute's contribution is gated by its combo bit and
/// its equality bit arithmetically, with no per-kind dispatch. Both requests
/// contribute the same item count, so one `items` covers both sides.
#[inline]
pub fn scalar_parts(a: &Request, b: &Request, combo: AttrCombo) -> (f64, usize) {
    let user = combo.contains(AttrKind::User) as u32;
    let proc_ = combo.contains(AttrKind::Process) as u32;
    let host = combo.contains(AttrKind::Host) as u32;
    let file = combo.contains(AttrKind::FileId) as u32;
    let dev = combo.contains(AttrKind::Dev) as u32;
    let inter = (user & (a.uid == b.uid) as u32)
        + (proc_ & (a.pid == b.pid) as u32)
        + (host & (a.host == b.host) as u32)
        + (file & (a.file == b.file) as u32)
        + (dev & (a.dev == b.dev) as u32);
    let items = user + proc_ + host + file + dev;
    (inter as f64, items as usize)
}

/// The path-attribute part: `(intersection value, items_a, items_b)` under
/// the configured path algorithm. Only meaningful when the combo contains
/// [`AttrKind::Path`]; a request with a path vs one without still carries
/// the item (it inflates the denominator but cannot match).
#[inline]
pub fn path_term(
    path_a: Option<&FilePath>,
    path_b: Option<&FilePath>,
    mode: PathMode,
) -> (f64, usize, usize) {
    let integrated = mode == PathMode::Ipa;
    match (path_a, path_b) {
        (Some(pa), Some(pb)) => pa.pair_term(pb, integrated),
        (Some(pa), None) => (0.0, pa.solo_items(integrated), 0),
        (None, Some(pb)) => (0.0, 0, pb.solo_items(integrated)),
        (None, None) => (0.0, 0, 0),
    }
}

/// Semantic distance between two requests under an attribute combination.
///
/// Returns a value in `[0, 1]`. Symmetric. Empty combinations (or a
/// path-only combination on a pathless trace) give 0.
pub fn similarity(
    a: &Request,
    path_a: Option<&FilePath>,
    b: &Request,
    path_b: Option<&FilePath>,
    combo: AttrCombo,
    mode: PathMode,
) -> f64 {
    let (mut inter, scalars) = scalar_parts(a, b, combo);
    let (mut n_a, mut n_b) = (scalars, scalars);
    if combo.contains(AttrKind::Path) {
        let (p_inter, p_a, p_b) = path_term(path_a, path_b, mode);
        inter += p_inter;
        n_a += p_a;
        n_b += p_b;
    }
    let denom = n_a.max(n_b);
    if denom == 0 {
        0.0
    } else {
        inter / denom as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::{DevId, FileId, HostId, PathInterner, ProcId, UserId};

    /// Build the paper's Table 1 example: three requests
    ///   (user1, p1, host1, /home/user1/paper/a)
    ///   (user1, p2, host1, /home/user1/paper/b)
    ///   (user2, p3, host2, /home/user2/c)
    fn table1() -> (Vec<Request>, Vec<FilePath>, PathInterner) {
        let mut i = PathInterner::new();
        let paths = vec![
            i.parse("/home/user1/paper/a"),
            i.parse("/home/user1/paper/b"),
            i.parse("/home/user2/c"),
        ];
        let reqs = vec![req(0, 1, 1, 1), req(1, 1, 2, 1), req(2, 2, 3, 2)];
        (reqs, paths, i)
    }

    fn req(file: u32, uid: u32, pid: u32, host: u32) -> Request {
        Request {
            file: FileId::new(file),
            uid: UserId::new(uid),
            pid: ProcId::new(pid),
            host: HostId::new(host),
            dev: DevId::new(0),
        }
    }

    /// The paper's Table 1/2 combo: {User, Process, Host, File path}.
    fn combo() -> AttrCombo {
        AttrCombo::hp_default()
    }

    #[test]
    fn table2_dpa_a_vs_b() {
        // sim(A,B) = 5/7 under DPA.
        let (r, p, _i) = table1();
        let s = similarity(
            &r[0],
            Some(&p[0]),
            &r[1],
            Some(&p[1]),
            combo(),
            PathMode::Dpa,
        );
        assert!((s - 5.0 / 7.0).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn table2_dpa_b_vs_c_and_a_vs_c() {
        // sim(B,C) = sim(A,C) = 1/7 under DPA.
        let (r, p, _i) = table1();
        let s_bc = similarity(
            &r[1],
            Some(&p[1]),
            &r[2],
            Some(&p[2]),
            combo(),
            PathMode::Dpa,
        );
        let s_ac = similarity(
            &r[0],
            Some(&p[0]),
            &r[2],
            Some(&p[2]),
            combo(),
            PathMode::Dpa,
        );
        assert!((s_bc - 1.0 / 7.0).abs() < 1e-12, "got {s_bc}");
        assert!((s_ac - 1.0 / 7.0).abs() < 1e-12, "got {s_ac}");
    }

    #[test]
    fn table2_ipa_a_vs_b() {
        // sim(A,B) = 2.75/4 under IPA (2 scalar matches + 0.75 path).
        let (r, p, _i) = table1();
        let s = similarity(
            &r[0],
            Some(&p[0]),
            &r[1],
            Some(&p[1]),
            combo(),
            PathMode::Ipa,
        );
        assert!((s - 2.75 / 4.0).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn table2_ipa_vs_c() {
        // sim(A,C) = sim(B,C) = 0.25/4 under IPA.
        let (r, p, _i) = table1();
        let s_ac = similarity(
            &r[0],
            Some(&p[0]),
            &r[2],
            Some(&p[2]),
            combo(),
            PathMode::Ipa,
        );
        let s_bc = similarity(
            &r[1],
            Some(&p[1]),
            &r[2],
            Some(&p[2]),
            combo(),
            PathMode::Ipa,
        );
        assert!((s_ac - 0.25 / 4.0).abs() < 1e-12, "got {s_ac}");
        assert!((s_bc - 0.25 / 4.0).abs() < 1e-12, "got {s_bc}");
    }

    #[test]
    fn decomposed_parts_rebuild_similarity_exactly() {
        // scalar_parts + path_term must reproduce similarity() bit-for-bit:
        // the memoized hot path relies on this decomposition.
        let (r, p, _i) = table1();
        for mode in [PathMode::Dpa, PathMode::Ipa] {
            for x in 0..3 {
                for y in 0..3 {
                    let whole = similarity(&r[x], Some(&p[x]), &r[y], Some(&p[y]), combo(), mode);
                    let (s_inter, s_items) = scalar_parts(&r[x], &r[y], combo());
                    let (p_inter, p_a, p_b) = path_term(Some(&p[x]), Some(&p[y]), mode);
                    let denom = (s_items + p_a).max(s_items + p_b);
                    let rebuilt = (s_inter + p_inter) / denom as f64;
                    assert_eq!(whole.to_bits(), rebuilt.to_bits());
                }
            }
        }
    }

    #[test]
    fn similarity_is_symmetric() {
        let (r, p, _i) = table1();
        for mode in [PathMode::Dpa, PathMode::Ipa] {
            for x in 0..3 {
                for y in 0..3 {
                    let s1 = similarity(&r[x], Some(&p[x]), &r[y], Some(&p[y]), combo(), mode);
                    let s2 = similarity(&r[y], Some(&p[y]), &r[x], Some(&p[x]), combo(), mode);
                    assert_eq!(s1.to_bits(), s2.to_bits());
                }
            }
        }
    }

    #[test]
    fn similarity_bounded_zero_one() {
        let (r, p, _i) = table1();
        for mode in [PathMode::Dpa, PathMode::Ipa] {
            for x in 0..3 {
                for y in 0..3 {
                    let s = similarity(&r[x], Some(&p[x]), &r[y], Some(&p[y]), combo(), mode);
                    assert!((0.0..=1.0).contains(&s), "sim = {s}");
                }
            }
        }
    }

    #[test]
    fn self_similarity_is_one() {
        let (r, p, _i) = table1();
        for mode in [PathMode::Dpa, PathMode::Ipa] {
            let s = similarity(&r[0], Some(&p[0]), &r[0], Some(&p[0]), combo(), mode);
            assert!((s - 1.0).abs() < 1e-12, "self sim = {s}");
        }
    }

    #[test]
    fn empty_combo_gives_zero() {
        let (r, p, _i) = table1();
        let s = similarity(
            &r[0],
            Some(&p[0]),
            &r[1],
            Some(&p[1]),
            AttrCombo::EMPTY,
            PathMode::Ipa,
        );
        assert_eq!(s, 0.0);
    }

    #[test]
    fn pathless_requests_with_path_combo() {
        // Path in the combo but no recorded paths: only scalars count.
        let (r, _p, _i) = table1();
        let s = similarity(&r[0], None, &r[1], None, combo(), PathMode::Ipa);
        // user + host match, process differs; n = 3 scalar items.
        assert!((s - 2.0 / 3.0).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn one_sided_path_dilutes() {
        // One request carries a path, the other doesn't: the path item
        // inflates the denominator but cannot match.
        let (r, p, _i) = table1();
        let s = similarity(&r[0], Some(&p[0]), &r[1], None, combo(), PathMode::Ipa);
        assert!((s - 2.0 / 4.0).abs() < 1e-12, "got {s}");
    }

    #[test]
    fn file_id_attr_never_matches_distinct_files() {
        // The INS/RES combo: file id dilutes but never matches across files.
        let (r, _p, _i) = table1();
        let c = AttrCombo::ins_default();
        let s = similarity(&r[0], None, &r[1], None, c, PathMode::Ipa);
        // user + host match out of 4 items.
        assert!((s - 2.0 / 4.0).abs() < 1e-12, "got {s}");
        // Same request on both sides: all 4 match.
        let s_self = similarity(&r[0], None, &r[0], None, c, PathMode::Ipa);
        assert!((s_self - 1.0).abs() < 1e-12);
    }

    #[test]
    fn executable_vs_library_dpa_underestimates() {
        // The paper's motivating flaw in DPA: an executable and the library
        // it links share no path components, so DPA drowns the scalar
        // matches in deep paths while IPA keeps them visible.
        let mut i = PathInterner::new();
        let exe = i.parse("/home/user1/project/build/bin/app");
        let lib = i.parse("/usr/lib/libc.so");
        let a = req(0, 1, 1, 1);
        let b = req(1, 1, 1, 1); // same user, process, host
        let c = combo();
        let dpa = similarity(&a, Some(&exe), &b, Some(&lib), c, PathMode::Dpa);
        let ipa = similarity(&a, Some(&exe), &b, Some(&lib), c, PathMode::Ipa);
        // DPA: 3 matches / (3 + 6) items; IPA: 3 / 4.
        assert!(dpa < 0.5, "dpa = {dpa}");
        assert!(ipa >= 0.75, "ipa = {ipa}");
        assert!(ipa > dpa);
    }
}

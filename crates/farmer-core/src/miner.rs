//! Stage 3 — Mining & Evaluating: the CoMiner algorithm (paper §3.2).
//!
//! CoMiner's three steps are:
//!
//! 1. **Mine and quantify** the similarity of semantic attributes
//!    ([`crate::semvec::similarity`]) and the access frequency
//!    ([`access_frequency`], fed by LDA-weighted successor counts).
//! 2. **Evaluate** the file correlation degree
//!    `R(x,y) = sim(x,y)·p + F(x,y)·(1−p)` ([`correlation_degree`],
//!    paper Function 2).
//! 3. **Filter** out weak or false correlations against the validity
//!    threshold `max_strength` ([`is_valid`], paper §3.2.4).
//!
//! The per-request orchestration (pseudo-code Algorithm 1) lives in
//! [`crate::model::Farmer::observe`]; this module holds the arithmetic so
//! it can be unit-tested against the paper's worked examples and reused by
//! the graph.

/// Access frequency `F(A,B) = N(A,B) / N(A)`, clamped to `[0, 1]`.
///
/// `N(A,B)` is the LDA-weighted count of B following A; `N(A)` the total
/// access count of A. Clamping guards the corner case where several
/// in-window repetitions of B push the weighted mass past the predecessor's
/// access count.
#[inline]
pub fn access_frequency(mass: f64, total: f64) -> f64 {
    if total <= 0.0 {
        return 0.0;
    }
    (mass / total).clamp(0.0, 1.0)
}

/// The paper's Function 2: `R(x,y) = sim(x,y)·p + F(x,y)·(1−p)`.
#[inline]
pub fn correlation_degree(sim: f64, freq: f64, p: f64) -> f64 {
    sim * p + freq * (1.0 - p)
}

/// Validity filter (paper §3.2.4): a correlation is exploitable only if its
/// degree reaches the `max_strength` threshold.
#[inline]
pub fn is_valid(degree: f64, max_strength: f64) -> bool {
    degree >= max_strength
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequency_is_ratio() {
        assert!((access_frequency(1.0, 4.0) - 0.25).abs() < 1e-12);
        assert!((access_frequency(2.7, 3.0) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn frequency_clamps() {
        assert_eq!(access_frequency(5.0, 2.0), 1.0);
        assert_eq!(access_frequency(-1.0, 2.0), 0.0);
        assert_eq!(access_frequency(1.0, 0.0), 0.0);
    }

    #[test]
    fn degree_interpolates() {
        // p = 0: pure frequency (the paper's Nexus reduction).
        assert_eq!(correlation_degree(0.9, 0.4, 0.0), 0.4);
        // p = 1: pure semantics.
        assert_eq!(correlation_degree(0.9, 0.4, 1.0), 0.9);
        // p = 0.7 (default): 0.9*0.7 + 0.4*0.3 = 0.75.
        assert!((correlation_degree(0.9, 0.4, 0.7) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degree_bounded_when_inputs_bounded() {
        for &sim in &[0.0, 0.3, 1.0] {
            for &f in &[0.0, 0.5, 1.0] {
                for &p in &[0.0, 0.5, 1.0] {
                    let r = correlation_degree(sim, f, p);
                    assert!((0.0..=1.0).contains(&r));
                }
            }
        }
    }

    #[test]
    fn validity_threshold_inclusive() {
        assert!(is_valid(0.4, 0.4));
        assert!(is_valid(0.41, 0.4));
        assert!(!is_valid(0.399, 0.4));
    }

    #[test]
    fn weak_random_correlation_filtered() {
        // The paper's example: a degree of 0.0001 is meaningless.
        assert!(!is_valid(0.0001, 0.4));
    }
}

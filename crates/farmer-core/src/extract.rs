//! Stage 1 — Extracting (paper §3.1).
//!
//! The extractor is "a file-type specific filter that takes as input the
//! request for a file from a client and outputs the corresponding semantic
//! vector of this file" (paper §5.1). Here it pulls the attribute tuple out
//! of a [`TraceEvent`] and resolves the file's path from the trace
//! namespace; the resulting [`Request`] plus path reference is everything
//! the later stages consume.

use farmer_trace::{DevId, FileId, FilePath, HostId, ProcId, Trace, TraceEvent, UserId};

/// The semantic-attribute tuple of one file request (scalar part).
///
/// Together with the file's path (carried separately because it lives in
/// the trace namespace) this is the semantic vector's raw material.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// File being accessed.
    pub file: FileId,
    /// Requesting user.
    pub uid: UserId,
    /// Requesting process.
    pub pid: ProcId,
    /// Requesting host.
    pub host: HostId,
    /// Device holding the file.
    pub dev: DevId,
}

impl Request {
    /// Extract the scalar attributes from a trace event.
    pub fn from_event(e: &TraceEvent) -> Request {
        Request {
            file: e.file,
            uid: e.uid,
            pid: e.pid,
            host: e.host,
            dev: e.dev,
        }
    }
}

/// Stage-1 extractor bound to nothing: stateless, reusable across traces.
#[derive(Debug, Default, Clone, Copy)]
pub struct Extractor;

impl Extractor {
    /// Extract the request tuple and the file's path (if the trace records
    /// paths) for one event.
    pub fn extract<'t>(&self, trace: &'t Trace, e: &TraceEvent) -> (Request, Option<&'t FilePath>) {
        (Request::from_event(e), trace.path_of(e.file))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::WorkloadSpec;

    #[test]
    fn request_copies_event_attributes() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let e = &trace.events[0];
        let r = Request::from_event(e);
        assert_eq!(r.file, e.file);
        assert_eq!(r.uid, e.uid);
        assert_eq!(r.pid, e.pid);
        assert_eq!(r.host, e.host);
        assert_eq!(r.dev, e.dev);
    }

    #[test]
    fn extract_resolves_paths_when_available() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let ex = Extractor;
        let (_, path) = ex.extract(&trace, &trace.events[0]);
        assert!(path.is_some());
    }

    #[test]
    fn extract_yields_no_path_for_pathless_traces() {
        let trace = WorkloadSpec::ins().scaled(0.01).generate();
        let ex = Extractor;
        let (_, path) = ex.extract(&trace, &trace.events[0]);
        assert!(path.is_none());
    }
}

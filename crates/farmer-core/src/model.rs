//! The FARMER model façade: the four-stage pipeline wired together.
//!
//! "This is an iterative process that repeats itself for each incoming
//! request" (paper §3.1): every call to [`Farmer::observe`] runs
//! Extracting → Constructing → Mining & Evaluating, and the Sorting stage
//! is served on demand through [`CorrelationSource`] —
//! [`Farmer::correlators`] materializes an owned list over the same path.
//!
//! # Serving (the query layer)
//!
//! The model implements [`CorrelationSource`] with a per-node sorted-view
//! cache: the first top-k query of a file snapshots its edges and
//! partially selects the k strongest (O(deg + k log k)); later queries of
//! the same file copy from the cached view in O(k). Views are validated
//! against the graph's mutation epoch (plus the active `p`), so any
//! observe/prune/decay/eviction invalidates them implicitly, and view
//! buffers are reused across epochs — steady-state queries allocate
//! nothing. [`CorrelationSource::strongest`] bypasses the cache entirely
//! with one O(deg) scan.
//!
//! The model is deliberately front-end agnostic ("black-box", §3.1): it
//! consumes plain [`Request`] tuples plus an optional path, so it can sit
//! behind a trace replayer, a metadata server, or a live file system.
//!
//! # The mining hot path
//!
//! [`Farmer::observe`] is the loop everything else rides on, and it is
//! engineered to be allocation-free and O(window) per event:
//!
//! * **LDA weights** come from a precomputed table
//!   ([`FarmerConfig::lda_weights`]), rebuilt only when the window or
//!   decrement change — not re-derived per predecessor per event.
//! * **Similarity** is split ([`crate::semvec`]) into a branch-free scalar
//!   match mask (per event) and a **memoized path term** keyed by
//!   `(predecessor file, successor file)`. Paths are learned once per file,
//!   so the path term is a pure function of the pair; it is computed when
//!   an edge is first created and stored *on the edge*, which makes
//!   invalidation free — [`Farmer::forget_files`] and cap eviction remove
//!   the edge, and the term with it. The two ways a memo can go stale
//!   without the edge dying — a path learned only after the file already
//!   had edges, or a mid-run combo/path-mode change — mark the affected
//!   memos for recomputation on next touch.
//! * **Storage** is id-sparse end to end: learned paths live in a hash map
//!   and the graph in slotted storage, so resident memory tracks live
//!   files, not the largest file id ever interned.
//!
//! # Complexity (w = window, d = successor cap, n = active nodes, e = edges)
//!
//! | phase | before | now |
//! |---|---|---|
//! | per event | O(w·(d + path²)) + spine growth | O(w) — one-cache-line id scan per predecessor (linear beats binary search at the small cap), memoized path terms, batched + prefetch-pipelined |
//! | per prune tick | O(max_id + e) age sweep + O(max_id + e) prune | O(1) age + O(n + e) prune with per-node skip |
//! | per snapshot/eviction | O(max_id) `active_nodes` scan | O(1) counter |
//! | resident bytes | O(max file id) | O(live files) |

use std::cell::RefCell;
use std::collections::VecDeque;

use farmer_trace::hash::FxHashMap;
use farmer_trace::{FileId, FilePath, Trace, TraceEvent};

use crate::attr::AttrKind;
use crate::config::FarmerConfig;
use crate::correlator::{Correlator, CorrelatorList};
use crate::extract::{Extractor, Request};
use crate::graph::{CorrelationGraph, NodeHint, PredUpdate};
use crate::semvec::{path_term, scalar_parts};
use crate::source::{rank_cmp, CorrelationSource};

/// One look-ahead-window entry: the request plus the graph-slot hint of
/// its file's node (valid only for owned files; stale hints are safe).
#[derive(Debug, Clone, Copy)]
struct WindowEntry {
    req: Request,
    hint: NodeHint,
}

/// Hard bound on cached per-node sorted views; past it the cache resets
/// wholesale (queried-file churn in a streaming deployment must not leak).
const QUERY_CACHE_CAP: usize = 8192;

/// One file's lazily sorted correlator view: the node's edges snapshotted
/// at `stamp`, with only the strongest `sorted` entries actually in order.
/// A top-k query extends the sorted prefix by partial selection
/// (O(deg + k log k)), never paying a full O(deg log deg) sort for small k.
#[derive(Debug, Default)]
struct SortedView {
    /// `(graph epoch, p bits)` the entries were built under.
    stamp: (u64, u64),
    entries: Vec<Correlator>,
    /// Length of the canonically sorted prefix.
    sorted: usize,
}

impl SortedView {
    /// Grow the sorted prefix to cover the strongest `k` entries.
    fn ensure_sorted(&mut self, k: usize) {
        let k = k.min(self.entries.len());
        if self.sorted >= k {
            return;
        }
        let tail = &mut self.entries[self.sorted..];
        let take = k - self.sorted;
        if take < tail.len() {
            // Partition the unsorted tail so its strongest `take` entries
            // lead (everything already sorted is stronger than the tail).
            tail.select_nth_unstable_by(take - 1, rank_cmp);
        }
        tail[..take].sort_unstable_by(rank_cmp);
        self.sorted = k;
    }
}

/// The per-[`Farmer`] query cache behind [`CorrelationSource`]: file →
/// [`SortedView`], validated per query against the graph's mutation epoch
/// (and the active `p`, which degrees depend on). Entry buffers are reused
/// across epochs, so steady-state queries never allocate.
#[derive(Debug, Default)]
struct QueryCache {
    views: FxHashMap<u32, SortedView>,
}

/// The FARMER model: feed requests, query sorted correlator lists.
#[derive(Debug)]
pub struct Farmer {
    cfg: FarmerConfig,
    graph: CorrelationGraph,
    /// Sliding look-ahead window: the most recent `cfg.window` requests,
    /// each carrying a best-effort [`NodeHint`] so mining from it skips the
    /// graph's id→slot probe.
    window: VecDeque<WindowEntry>,
    /// Per-file learned paths (cloned from the first observation of each
    /// file), keyed sparsely by file id. This mirrors the paper's
    /// semantic-vector store: "vectors are stored as columns of a single
    /// matrix" — but only live columns are resident.
    paths: FxHashMap<u32, FilePath>,
    /// Precomputed LDA weight table (`lda[i]` = weight at distance i+1).
    lda: Vec<f64>,
    /// Fingerprint of the config inputs `lda` was built from.
    lda_key: (usize, u64),
    /// Fingerprint of the config inputs the memoized path terms were built
    /// under; a change marks every memo stale.
    sim_key: (crate::attr::AttrCombo, crate::config::PathMode),
    /// Reusable per-event batch of predecessor updates (no allocation on
    /// the hot path after warm-up).
    scratch: Vec<PredUpdate>,
    /// Sorted-view cache serving the [`CorrelationSource`] queries.
    /// Interior mutability keeps the whole read API `&self` (consumers
    /// share the model behind `&dyn CorrelationSource`).
    cache: RefCell<QueryCache>,
    observed: u64,
}

impl Farmer {
    /// A fresh model with the given configuration.
    pub fn new(cfg: FarmerConfig) -> Self {
        let lda = cfg.lda_weights();
        let lda_key = cfg.lda_fingerprint();
        let cfg_sim_key = (cfg.combo, cfg.path_mode);
        Farmer {
            cfg,
            graph: CorrelationGraph::new(),
            window: VecDeque::new(),
            paths: FxHashMap::default(),
            lda,
            lda_key,
            sim_key: (cfg_sim_key.0, cfg_sim_key.1),
            scratch: Vec::new(),
            cache: RefCell::new(QueryCache::default()),
            observed: 0,
        }
    }

    /// A fresh model with the paper's default configuration.
    pub fn with_defaults() -> Self {
        Self::new(FarmerConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &FarmerConfig {
        &self.cfg
    }

    /// Mutable access to the configuration. Changing `p`/`max_strength`
    /// affects future evaluations immediately (degrees are computed at
    /// query time); changing the window or combo only affects future
    /// observations.
    pub fn config_mut(&mut self) -> &mut FarmerConfig {
        &mut self.cfg
    }

    /// Number of requests observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Read access to the correlation graph (diagnostics, tests, layout).
    pub fn graph(&self) -> &CorrelationGraph {
        &self.graph
    }

    /// Observe one request (stages 1–3 for this request).
    ///
    /// `path` is the file's path if the front-end knows it; it is learned
    /// and cached per file on first sight.
    pub fn observe(&mut self, req: Request, path: Option<&FilePath>) {
        self.observe_where(req, path, |_| true);
    }

    /// Observe one request under a file-ownership partition.
    ///
    /// This is the sharded-mining entry point (`farmer-stream`): every
    /// partition instance receives the *full* request stream so its
    /// look-ahead window carries the true global access order, but the
    /// instance only accounts for files it owns — `N(file)` and the learned
    /// path are updated only when `owns(req.file)`, and edges are mined
    /// only from windowed predecessors with `owns(pred.file)`. The union of
    /// the partition graphs over a disjoint ownership cover equals the
    /// graph a single [`Farmer::observe`] loop would build.
    pub fn observe_where(
        &mut self,
        req: Request,
        path: Option<&FilePath>,
        owns: impl Fn(FileId) -> bool,
    ) {
        let mut hint = NodeHint::NONE;
        if owns(req.file) {
            if self.learn_path(req.file, path) && self.graph.num_edges() > 0 {
                // The path arrived only after this file already had mined
                // edges: the memoized pair terms are stale.
                self.graph.mark_path_memos_stale(req.file);
            }
            hint = self.graph.record_access_hinted(req.file);
        }
        if self.lda_key != self.cfg.lda_fingerprint() {
            self.lda = self.cfg.lda_weights();
            self.lda_key = self.cfg.lda_fingerprint();
        }
        if self.sim_key != (self.cfg.combo, self.cfg.path_mode) {
            self.sim_key = (self.cfg.combo, self.cfg.path_mode);
            self.graph.mark_all_path_memos_stale();
        }
        let use_path = self.cfg.combo.contains(AttrKind::Path);

        // Constructing + Mining: update the edge from every windowed
        // predecessor to the new request, LDA-weighted by distance and
        // carrying the semantic similarity of the two requests. The scalar
        // part of the similarity is a branch-free mask per predecessor; the
        // path part is memoized on the edge itself (the term thunk is only
        // invoked when a pair is first seen). The updates are prepared into
        // a reusable batch and committed by the graph's two-phase pipeline
        // ([`CorrelationGraph::mine_batch`]), which overlaps the one cold
        // memory load each update needs.
        self.scratch.clear();
        for (i, pred) in self.window.iter().rev().enumerate() {
            let Some(&w) = self.lda.get(i) else {
                break; // beyond the window, every weight is 0
            };
            if w <= 0.0 || pred.req.file == req.file {
                continue; // self-transitions carry no inter-file signal
            }
            if !owns(pred.req.file) {
                continue; // another partition instance mines this edge
            }
            let (s_inter, s_items) = scalar_parts(&pred.req, &req, self.cfg.combo);
            self.scratch.push(PredUpdate {
                file: pred.req.file,
                hint: pred.hint,
                weight: w,
                s_inter,
                s_items: s_items as u32,
            });
        }
        if !self.scratch.is_empty() {
            let paths = &self.paths;
            let mode = self.cfg.path_mode;
            self.graph.mine_batch(
                &self.scratch,
                req.file,
                use_path && path.is_some(),
                |pred_file| {
                    if !use_path {
                        return (0.0, 0);
                    }
                    let (inter, n_pred, n_succ) =
                        path_term(paths.get(&pred_file.raw()), path, mode);
                    (inter, n_pred.max(n_succ) as u32)
                },
                &self.cfg,
            );
        }

        self.window.push_back(WindowEntry { req, hint });
        while self.window.len() > self.cfg.window {
            self.window.pop_front();
        }

        self.observed += 1;
        if self.cfg.prune_interval > 0
            && self.observed.is_multiple_of(self.cfg.prune_interval as u64)
        {
            if self.cfg.decay < 1.0 {
                self.graph.age(self.cfg.decay);
            }
            self.graph.prune_below(self.cfg.prune_floor, &self.cfg);
        }
    }

    /// Convenience: observe a trace event (runs the Stage-1 extractor).
    pub fn observe_event(&mut self, trace: &Trace, e: &TraceEvent) {
        let (req, path) = Extractor.extract(trace, e);
        self.observe(req, path);
    }

    /// Batch-mine an entire trace.
    pub fn mine_trace(trace: &Trace, cfg: FarmerConfig) -> Farmer {
        let mut farmer = Farmer::new(cfg);
        for e in &trace.events {
            farmer.observe_event(trace, e);
        }
        farmer
    }

    /// Stage 4: the sorted, thresholded Correlator List of `file`,
    /// evaluated against the *current* access counts.
    ///
    /// This materializes an owned list (exports, diagnostics). The serving
    /// hot path queries through [`CorrelationSource`] instead —
    /// `top_k_into` reuses a caller buffer and the model's sorted-view
    /// cache, so steady-state queries allocate nothing.
    pub fn correlators(&self, file: FileId) -> CorrelatorList {
        self.correlators_with_threshold(file, self.cfg.max_strength)
    }

    /// Correlator list under an explicit threshold (used by the
    /// `max_strength` sweeps without re-mining). Same unified query path
    /// as [`CorrelationSource::top_k_into`]; only the list is owned.
    pub fn correlators_with_threshold(&self, file: FileId, max_strength: f64) -> CorrelatorList {
        let mut entries = Vec::new();
        self.top_k_into(file, usize::MAX, max_strength, &mut entries);
        CorrelatorList::from_sorted(file, entries)
    }

    /// Manually drop all edges below the configured prune floor. Returns
    /// the number of edges removed.
    pub fn prune(&mut self) -> usize {
        self.graph.prune_below(self.cfg.prune_floor, &self.cfg)
    }

    /// Evict one file from the model entirely: its learned path, its node
    /// (access count + outgoing edges), every incoming edge, and any
    /// look-ahead-window entry referencing it. Afterwards the model behaves
    /// as if the file had never been observed; a later access re-admits it
    /// as a fresh file. Returns the number of edges removed.
    pub fn forget_file(&mut self, file: FileId) -> usize {
        self.forget_files(&[file])
    }

    /// Batched [`Farmer::forget_file`]: evicts every file in `files` with a
    /// *single* sweep over the graph for the incoming-edge cleanup, which
    /// is what makes streaming eviction affordable — the sweep cost is paid
    /// once per batch instead of once per victim. Returns the number of
    /// edges removed.
    pub fn forget_files(&mut self, files: &[FileId]) -> usize {
        if files.is_empty() {
            return 0;
        }
        let mut victims: Vec<u32> = files.iter().map(|f| f.raw()).collect();
        victims.sort_unstable();
        victims.dedup();
        let gone = |f: FileId| victims.binary_search(&f.raw()).is_ok();

        let mut removed = 0;
        for &raw in &victims {
            self.paths.remove(&raw);
            removed += self.graph.clear_node(FileId::new(raw));
        }
        removed += self.graph.retain_edges(|_, to| !gone(to));
        self.window.retain(|r| !gone(r.req.file));
        removed
    }

    /// Approximate resident heap bytes of the model: graph (including the
    /// per-edge memoized path terms), learned paths, the look-ahead
    /// window's `Request` payload, and the LDA table. Regenerates the
    /// paper's Table 4 space-overhead numbers — every live structure is
    /// accounted, so the figure stays honest under eviction and
    /// re-admission.
    pub fn memory_bytes(&self) -> usize {
        let paths: usize = self.paths.values().map(FilePath::heap_bytes).sum::<usize>()
            + self.paths.len() * (std::mem::size_of::<u32>() + std::mem::size_of::<FilePath>() + 8);
        let cache = self.cache.borrow();
        let views: usize = cache.views.len()
            * (std::mem::size_of::<u32>() + std::mem::size_of::<SortedView>() + 8)
            + cache
                .views
                .values()
                .map(|v| v.entries.capacity() * std::mem::size_of::<Correlator>())
                .sum::<usize>();
        self.graph.heap_bytes()
            + paths
            + views
            + self.window.capacity() * std::mem::size_of::<WindowEntry>()
            + self.scratch.capacity() * std::mem::size_of::<PredUpdate>()
            + self.lda.capacity() * std::mem::size_of::<f64>()
    }

    /// Export the model's full state as plain data for checkpoint
    /// images: the graph (bit-exact, see [`crate::state`]), the
    /// look-ahead window, the learned paths (sorted by file id), and the
    /// observation count. Derived structures (LDA table, query cache,
    /// scratch) are functions of the config and are not carried.
    pub fn export_state(&self) -> crate::state::FarmerState {
        let mut paths: Vec<(u32, Vec<u32>)> = self
            .paths
            .iter()
            .map(|(&id, p)| (id, p.components().to_vec()))
            .collect();
        paths.sort_unstable_by_key(|(id, _)| *id);
        crate::state::FarmerState {
            observed: self.observed,
            window: self.window.iter().map(|w| w.req).collect(),
            paths,
            graph: self.graph.export_state(),
        }
    }

    /// Rebuild a model from an exported state image under `cfg`, which
    /// must be the configuration the image was taken under (the same
    /// contract WAL replay has: determinism holds only for identical
    /// configs). Window slot hints restart as [`NodeHint::NONE`] — a
    /// stale-hint probe miss, which the graph treats identically.
    pub fn from_state(cfg: FarmerConfig, state: &crate::state::FarmerState) -> Farmer {
        let mut farmer = Farmer::new(cfg);
        farmer.graph = CorrelationGraph::from_state(&state.graph);
        farmer.window = state
            .window
            .iter()
            .map(|&req| WindowEntry {
                req,
                hint: NodeHint::NONE,
            })
            .collect();
        farmer.paths = state
            .paths
            .iter()
            .map(|(id, comps)| (*id, FilePath::from_components(comps.clone())))
            .collect();
        farmer.observed = state.observed;
        farmer
    }

    /// Learn `file`'s path on first sight. Returns true only for a *late*
    /// install — the path arrived after the file had already been observed
    /// pathless — which is the one case where memoized pair terms must be
    /// invalidated (see [`CorrelationGraph::mark_path_memos_stale`]).
    fn learn_path(&mut self, file: FileId, path: Option<&FilePath>) -> bool {
        let Some(p) = path else { return false };
        if self.paths.contains_key(&file.raw()) {
            return false;
        }
        self.paths.insert(file.raw(), p.clone());
        self.observed > 0 && self.graph.total_accesses(file) > 0.0
    }
}

impl CorrelationSource for Farmer {
    fn version(&self) -> u64 {
        self.graph.epoch()
    }

    fn top_k_into(&self, file: FileId, k: usize, min_degree: f64, out: &mut Vec<Correlator>) {
        out.clear();
        if k == 0 {
            return;
        }
        let mut cache = self.cache.borrow_mut();
        // Degrees depend on the graph state *and* the mining weight `p`
        // (mutable via `config_mut`), so both stamp a view.
        let stamp = (self.graph.epoch(), self.cfg.p.to_bits());
        if cache.views.len() >= QUERY_CACHE_CAP && !cache.views.contains_key(&file.raw()) {
            cache.views.clear();
        }
        let view = cache.views.entry(file.raw()).or_default();
        if view.stamp != stamp {
            view.stamp = stamp;
            view.sorted = 0;
            view.entries.clear(); // capacity retained: rebuilds don't allocate
            view.entries
                .extend(self.graph.edges(file, &self.cfg).map(|e| Correlator {
                    file: e.to,
                    degree: e.degree,
                }));
        }
        view.ensure_sorted(k);
        crate::source::copy_top_k(&view.entries[..view.sorted], k, min_degree, out);
    }

    fn strongest(&self, file: FileId, min_degree: f64) -> Option<Correlator> {
        // Serve from a still-valid sorted view when one exists (its head IS
        // the strongest entry); otherwise fall back to one pass over the
        // node's edges — no sort, no cache population, no allocation.
        let stamp = (self.graph.epoch(), self.cfg.p.to_bits());
        if let Some(view) = self.cache.borrow().views.get(&file.raw()) {
            if view.stamp == stamp {
                // top_k_into sorts at least one entry of every fresh view.
                return view
                    .entries
                    .first()
                    .copied()
                    .filter(|c| crate::miner::is_valid(c.degree, min_degree));
            }
        }
        let mut best: Option<Correlator> = None;
        for e in self.graph.edges(file, &self.cfg) {
            if !crate::miner::is_valid(e.degree, min_degree) {
                continue;
            }
            let c = Correlator {
                file: e.to,
                degree: e.degree,
            };
            if best.is_none_or(|b| rank_cmp(&c, &b).is_lt()) {
                best = Some(c);
            }
        }
        best
    }

    fn degree(&self, from: FileId, to: FileId) -> Option<f64> {
        self.graph
            .edges(from, &self.cfg)
            .find(|e| e.to == to)
            .map(|e| e.degree)
    }

    fn for_each_list(&self, visit: &mut dyn FnMut(FileId, &[Correlator])) {
        let mut buf = Vec::new();
        for file in self.graph.files() {
            self.top_k_into(file, usize::MAX, self.cfg.max_strength, &mut buf);
            if !buf.is_empty() {
                visit(file, &buf);
            }
        }
    }

    fn heap_bytes(&self) -> usize {
        self.memory_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AttrCombo;
    use farmer_trace::{DevId, HostId, PathInterner, ProcId, UserId, WorkloadSpec};

    fn req(file: u32, uid: u32, pid: u32, host: u32) -> Request {
        Request {
            file: FileId::new(file),
            uid: UserId::new(uid),
            pid: ProcId::new(pid),
            host: HostId::new(host),
            dev: DevId::new(0),
        }
    }

    /// Feed the sequence A B C D from one process and check the LDA masses.
    #[test]
    fn abcd_lda_masses_match_paper() {
        let mut f = Farmer::with_defaults();
        for file in 0..4 {
            f.observe(req(file, 1, 1, 1), None);
        }
        let cfg = f.config().clone();
        let edges: Vec<_> = f.graph().edges(FileId::new(0), &cfg).collect();
        let mass_of = |to: u32| {
            edges
                .iter()
                .find(|e| e.to == FileId::new(to))
                .map(|e| e.mass)
                .unwrap_or(0.0)
        };
        assert!((mass_of(1) - 1.0).abs() < 1e-12, "B mass {}", mass_of(1));
        assert!((mass_of(2) - 0.9).abs() < 1e-12, "C mass {}", mass_of(2));
        assert!((mass_of(3) - 0.8).abs() < 1e-12, "D mass {}", mass_of(3));
    }

    #[test]
    fn repeated_predecessor_in_window_accumulates_both_distances() {
        // A B A C: observing C mines A at distance 1 (w=1.0) and again at
        // distance 3 (w=0.8) — the batched pipeline must commit both.
        let mut f = Farmer::with_defaults();
        f.observe(req(0, 1, 1, 1), None);
        f.observe(req(1, 1, 1, 1), None);
        f.observe(req(0, 1, 1, 1), None);
        f.observe(req(2, 1, 1, 1), None);
        let cfg = f.config().clone();
        let mass = f
            .graph()
            .edges(FileId::new(0), &cfg)
            .find(|e| e.to == FileId::new(2))
            .map(|e| e.mass)
            .unwrap_or(0.0);
        assert!((mass - 1.8).abs() < 1e-12, "mass {mass}");
    }

    #[test]
    fn late_path_learn_refreshes_memoized_terms() {
        // File 0 is first observed pathless, so the memoized 0→1 term has
        // no path intersection. When its path arrives later, the memo must
        // be refreshed: subsequent co-occurrences carry the path signal.
        let mut i = PathInterner::new();
        let pa = i.parse("/home/u1/d/a");
        let pb = i.parse("/home/u1/d/b");
        let mut f = Farmer::with_defaults();
        f.observe(req(0, 1, 1, 1), None); // path withheld
        f.observe(req(1, 1, 1, 1), Some(&pb)); // sim = 3/4 (one-sided path)
        f.observe(req(0, 1, 1, 1), Some(&pa)); // late install -> invalidate
        f.observe(req(1, 1, 1, 1), Some(&pb)); // 0→1 twice: sim = 3.75/4
        let cfg = f.config().clone();
        let e = f
            .graph()
            .edges(FileId::new(0), &cfg)
            .find(|e| e.to == FileId::new(1))
            .unwrap();
        // sim_avg = (0.75 + 0.9375 + 0.9375) / 3 = 0.875, not a stale 0.75.
        assert!((e.sim_avg - 0.875).abs() < 1e-12, "sim_avg {}", e.sim_avg);
    }

    #[test]
    fn partitioned_union_handles_late_path_arrival() {
        // File 1's path is withheld at first and arrives later. The
        // memoized path terms must refresh identically in the batch model
        // and in every ownership partition — including the partition that
        // does *not* own file 1 and therefore never learns its path (the
        // successor side of the memo is guarded by the per-edge path
        // presence flag, not by learn_path).
        let mut i = PathInterner::new();
        let pa = i.parse("/home/u1/d/a");
        let pb = i.parse("/home/u1/d/b");
        let stream = [
            (req(0, 1, 1, 1), Some(&pa)),
            (req(1, 1, 1, 1), None), // pathless at first
            (req(0, 1, 1, 1), Some(&pa)),
            (req(1, 1, 1, 1), Some(&pb)), // path arrives late
            (req(0, 1, 1, 1), Some(&pa)),
            (req(1, 1, 1, 1), Some(&pb)),
        ];
        let mut whole = Farmer::with_defaults();
        let mut even = Farmer::with_defaults();
        let mut odd = Farmer::with_defaults();
        for (r, p) in &stream {
            whole.observe(*r, *p);
            even.observe_where(*r, *p, |f| f.raw() % 2 == 0);
            odd.observe_where(*r, *p, |f| f.raw() % 2 == 1);
        }
        let cfg = whole.config().clone();
        for file in 0..2u32 {
            let fid = FileId::new(file);
            let part = if file % 2 == 0 { &even } else { &odd };
            let want: Vec<_> = whole
                .graph()
                .edges(fid, &cfg)
                .map(|e| (e.to, e.mass, e.sim_avg))
                .collect();
            let got: Vec<_> = part
                .graph()
                .edges(fid, &cfg)
                .map(|e| (e.to, e.mass, e.sim_avg))
                .collect();
            assert_eq!(got.len(), want.len(), "edge count diverged for f{file}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0, w.0);
                assert!((g.1 - w.1).abs() < 1e-12, "mass diverged for f{file}");
                assert!(
                    (g.2 - w.2).abs() < 1e-12,
                    "sim diverged for f{file}: {} vs {}",
                    g.2,
                    w.2
                );
            }
        }
        // And the late path genuinely contributes: the 0→1 similarity mean
        // must exceed the one-sided 0.75 it would stay at if stale.
        let e = whole
            .graph()
            .edges(FileId::new(0), &cfg)
            .find(|e| e.to == FileId::new(1))
            .unwrap();
        assert!(e.sim_avg > 0.76, "stale successor term: {}", e.sim_avg);
    }

    #[test]
    fn combo_change_applies_to_existing_pairs() {
        // Changing the attribute combination must affect *future*
        // observations even of already-memoized pairs.
        let mut f = Farmer::with_defaults(); // hp combo: 3 scalars + path
        f.observe(req(0, 1, 1, 1), None);
        f.observe(req(1, 1, 1, 1), None); // sim = 3/3 = 1 (pathless)
        f.config_mut().combo = AttrCombo::EMPTY;
        f.observe(req(0, 1, 1, 1), None);
        f.observe(req(1, 1, 1, 1), None); // 0→1 twice more at sim 0
        let cfg = f.config().clone();
        let e = f
            .graph()
            .edges(FileId::new(0), &cfg)
            .find(|e| e.to == FileId::new(1))
            .unwrap();
        assert!(
            (e.sim_avg - 1.0 / 3.0).abs() < 1e-12,
            "stale combo served: sim_avg {}",
            e.sim_avg
        );
    }

    #[test]
    fn self_transitions_ignored() {
        let mut f = Farmer::with_defaults();
        f.observe(req(0, 1, 1, 1), None);
        f.observe(req(0, 1, 1, 1), None);
        let cfg = f.config().clone();
        assert_eq!(f.graph().edges(FileId::new(0), &cfg).count(), 0);
    }

    #[test]
    fn window_limits_reach() {
        let mut cfg = FarmerConfig::default();
        cfg.window = 2;
        let mut f = Farmer::new(cfg.clone());
        for file in 0..5 {
            f.observe(req(file, 1, 1, 1), None);
        }
        // 0 can only reach 1 and 2 with window 2.
        let succs: Vec<u32> = f
            .graph()
            .edges(FileId::new(0), &cfg)
            .map(|e| e.to.raw())
            .collect();
        assert_eq!(succs.len(), 2);
        assert!(succs.contains(&1) && succs.contains(&2));
    }

    #[test]
    fn correlator_list_sorted_and_thresholded() {
        let mut f = Farmer::with_defaults();
        // Same-context successor (high sim) and cross-context one (low sim).
        for _ in 0..10 {
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(1, 1, 1, 1), None); // same user/pid/host
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(2, 9, 9, 9), None); // foreign context
        }
        let l = f.correlators(FileId::new(0));
        assert!(!l.is_empty());
        // Sorted descending.
        for w in l.entries().windows(2) {
            assert!(w[0].degree >= w[1].degree);
        }
        // The same-context successor outranks the foreign one.
        assert_eq!(l.head().unwrap().file, FileId::new(1));
    }

    #[test]
    fn threshold_query_does_not_require_remine() {
        let mut f = Farmer::with_defaults();
        for _ in 0..5 {
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(1, 1, 1, 1), None);
        }
        let lo = f.correlators_with_threshold(FileId::new(0), 0.0);
        let hi = f.correlators_with_threshold(FileId::new(0), 0.99);
        assert!(lo.len() >= hi.len());
    }

    #[test]
    fn paths_are_learned_once() {
        let mut i = PathInterner::new();
        let pa = i.parse("/home/u1/proj/a");
        let pb = i.parse("/home/u1/proj/b");
        let mut f = Farmer::with_defaults();
        f.observe(req(0, 1, 1, 1), Some(&pa));
        f.observe(req(1, 1, 1, 1), Some(&pb));
        f.observe(req(0, 1, 1, 1), Some(&pa));
        f.observe(req(1, 1, 1, 1), Some(&pb));
        let l = f.correlators_with_threshold(FileId::new(0), 0.0);
        // Path similarity contributes: same dir -> sim well above scalar-only.
        assert!(
            l.head().unwrap().degree > 0.8,
            "degree {}",
            l.head().unwrap().degree
        );
    }

    #[test]
    fn memory_grows_then_prune_shrinks() {
        let mut cfg = FarmerConfig::default();
        cfg.prune_interval = 0; // manual pruning only
        cfg.prune_floor = 0.9; // aggressive, drops nearly everything
        let trace = WorkloadSpec::res().scaled(0.05).generate();
        let mut f = Farmer::new(cfg);
        for e in &trace.events {
            f.observe_event(&trace, e);
        }
        let edges_before = f.graph().num_edges();
        assert!(edges_before > 0);
        let removed = f.prune();
        assert!(removed > 0);
        assert_eq!(f.graph().num_edges(), edges_before - removed);
    }

    #[test]
    fn mine_trace_consumes_everything() {
        let trace = WorkloadSpec::ins().scaled(0.02).generate();
        let f = Farmer::mine_trace(&trace, FarmerConfig::pathless());
        assert_eq!(f.observed(), trace.len() as u64);
        assert!(f.graph().num_edges() > 0);
        assert!(f.memory_bytes() > 0);
    }

    #[test]
    fn decay_adapts_to_workload_shift() {
        // Phase 1: 0 -> 1 dominates. Phase 2: the workload shifts to
        // 0 -> 2. With aging the new successor overtakes the stale one;
        // without aging the historical mass keeps 1 on top much longer.
        let run = |decay: f64| {
            let mut cfg = FarmerConfig::default();
            cfg.prune_interval = 50;
            cfg.prune_floor = 0.0;
            cfg.decay = decay;
            cfg.p = 0.0; // isolate the frequency signal
            let mut f = Farmer::new(cfg);
            for _ in 0..200 {
                f.observe(req(0, 1, 1, 1), None);
                f.observe(req(1, 1, 1, 1), None);
            }
            for _ in 0..80 {
                f.observe(req(0, 1, 1, 1), None);
                f.observe(req(2, 1, 1, 1), None);
            }
            f.correlators_with_threshold(FileId::new(0), 0.0)
                .head()
                .unwrap()
                .file
        };
        assert_eq!(run(0.5), FileId::new(2), "decayed model follows the shift");
        assert_eq!(
            run(1.0),
            FileId::new(1),
            "undecayed model stays with history"
        );
    }

    #[test]
    fn forget_file_erases_every_trace_of_it() {
        let mut f = Farmer::with_defaults();
        for _ in 0..5 {
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(1, 1, 1, 1), None);
            f.observe(req(2, 1, 1, 1), None);
        }
        assert!(!f.correlators_with_threshold(FileId::new(0), 0.0).is_empty());
        f.forget_file(FileId::new(1));
        // No outgoing edges, no access count, and no incoming edges.
        assert!(f.correlators_with_threshold(FileId::new(1), 0.0).is_empty());
        assert_eq!(f.graph().total_accesses(FileId::new(1)), 0.0);
        let cfg = f.config().clone();
        for file in [0u32, 2] {
            assert!(
                f.graph()
                    .edges(FileId::new(file), &cfg)
                    .all(|e| e.to != FileId::new(1)),
                "stale incoming edge from f{file}"
            );
        }
    }

    #[test]
    fn forget_files_batch_matches_sequential() {
        let build = || {
            let mut f = Farmer::with_defaults();
            for round in 0..4 {
                for file in 0..6 {
                    f.observe(req(file, round, 1, 1), None);
                }
            }
            f
        };
        let mut batched = build();
        let mut sequential = build();
        let victims = [FileId::new(1), FileId::new(4)];
        let removed_batch = batched.forget_files(&victims);
        let removed_seq: usize = victims.iter().map(|&v| sequential.forget_file(v)).sum();
        assert_eq!(removed_batch, removed_seq);
        assert_eq!(batched.graph().num_edges(), sequential.graph().num_edges());
        assert_eq!(
            batched.graph().active_nodes(),
            sequential.graph().active_nodes()
        );
    }

    #[test]
    fn forgotten_file_readmits_as_fresh() {
        let mut f = Farmer::with_defaults();
        for _ in 0..10 {
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(1, 1, 1, 1), None);
        }
        f.forget_file(FileId::new(1));
        // Re-admission: the pair builds back up from zero. The window kept
        // its three file-0 entries ([1,0,1,0,1] minus the victims, plus the
        // fresh 0), so the rebuilt mass is 1.0 + 0.9 + 0.8 — not the ~19
        // the ten alternating rounds had accumulated before the eviction.
        f.observe(req(0, 1, 1, 1), None);
        f.observe(req(1, 1, 1, 1), None);
        let cfg = f.config().clone();
        let mass = f
            .graph()
            .edges(FileId::new(0), &cfg)
            .find(|e| e.to == FileId::new(1))
            .map(|e| e.mass)
            .unwrap_or(0.0);
        assert!((mass - 2.7).abs() < 1e-12, "mass restarted at {mass}");
    }

    #[test]
    fn partitioned_union_equals_batch() {
        // Two ownership partitions (even/odd file ids) fed the same stream
        // must together hold exactly the edges of the unpartitioned model.
        let stream: Vec<Request> = (0..200)
            .map(|i| req((i * 7) % 9, i % 3, 1, i % 2))
            .collect();
        let mut whole = Farmer::with_defaults();
        let mut even = Farmer::with_defaults();
        let mut odd = Farmer::with_defaults();
        for r in &stream {
            whole.observe(*r, None);
            even.observe_where(*r, None, |f| f.raw() % 2 == 0);
            odd.observe_where(*r, None, |f| f.raw() % 2 == 1);
        }
        let cfg = whole.config().clone();
        for file in 0..9u32 {
            let fid = FileId::new(file);
            let part = if file % 2 == 0 { &even } else { &odd };
            let mut want: Vec<_> = whole
                .graph()
                .edges(fid, &cfg)
                .map(|e| (e.to.raw(), e.mass, e.degree))
                .collect();
            let mut got: Vec<_> = part
                .graph()
                .edges(fid, &cfg)
                .map(|e| (e.to.raw(), e.mass, e.degree))
                .collect();
            want.sort_by_key(|a| a.0);
            got.sort_by_key(|a| a.0);
            assert_eq!(got.len(), want.len(), "edge count diverged for f{file}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0, w.0);
                assert!((g.1 - w.1).abs() < 1e-12, "mass diverged for f{file}");
                assert!((g.2 - w.2).abs() < 1e-12, "degree diverged for f{file}");
            }
            // The non-owner partition holds nothing for this file.
            let other = if file % 2 == 0 { &odd } else { &even };
            assert_eq!(other.graph().edges(fid, &cfg).count(), 0);
        }
    }

    #[test]
    fn p_zero_orders_by_frequency_alone() {
        // §7: with p = 0 FARMER reduces to pure sequence mining (Nexus).
        let mut cfg = FarmerConfig::default();
        cfg.p = 0.0;
        cfg.max_strength = 0.0;
        let mut f = Farmer::new(cfg);
        // file 1 follows 0 often but from a foreign context; file 2 follows
        // rarely but same-context. With p = 0 frequency must win.
        for i in 0..12 {
            f.observe(req(0, 1, 1, 1), None);
            if i % 4 == 0 {
                f.observe(req(2, 1, 1, 1), None);
            } else {
                f.observe(req(1, 9, 9, 9), None);
            }
        }
        let l = f.correlators_with_threshold(FileId::new(0), 0.0);
        assert_eq!(l.head().unwrap().file, FileId::new(1));
    }

    #[test]
    fn top_k_matches_full_list_prefix() {
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let f = Farmer::mine_trace(&trace, FarmerConfig::default());
        let mut buf = Vec::new();
        for file in (0..trace.num_files() as u32).map(FileId::new) {
            let full = f.correlators_with_threshold(file, 0.0);
            for k in [0usize, 1, 3, 8, usize::MAX] {
                f.top_k_into(file, k, 0.0, &mut buf);
                assert_eq!(buf.len(), full.len().min(k));
                for (got, want) in buf.iter().zip(full.iter()) {
                    assert_eq!(got.file, want.file);
                    assert_eq!(got.degree.to_bits(), want.degree.to_bits());
                }
            }
            // strongest == head of the full list, under both thresholds.
            assert_eq!(f.strongest(file, 0.0), full.head());
            assert_eq!(
                f.strongest(file, f.config().max_strength),
                f.correlators(file).head()
            );
        }
    }

    #[test]
    fn query_cache_invalidated_by_mutation() {
        let mut f = Farmer::with_defaults();
        for _ in 0..5 {
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(1, 1, 1, 1), None);
        }
        let v0 = f.version();
        let mut before = Vec::new();
        f.top_k_into(FileId::new(0), 4, 0.0, &mut before);
        // New observations shift the degrees; the cached view must follow.
        for _ in 0..5 {
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(2, 1, 1, 1), None);
        }
        assert!(f.version() > v0, "mutations must advance the version");
        let mut after = Vec::new();
        f.top_k_into(FileId::new(0), 4, 0.0, &mut after);
        assert!(
            after.len() > before.len() || after[0].degree != before[0].degree,
            "stale cached view served after mutation"
        );
        let fresh = f.correlators_with_threshold(FileId::new(0), 0.0);
        assert_eq!(after.len(), fresh.len());
        for (got, want) in after.iter().zip(fresh.iter()) {
            assert_eq!(got.degree.to_bits(), want.degree.to_bits());
        }
    }

    #[test]
    fn query_cache_tracks_p_change() {
        let mut f = Farmer::with_defaults();
        for i in 0..12 {
            f.observe(req(0, 1, 1, 1), None);
            if i % 4 == 0 {
                f.observe(req(2, 1, 1, 1), None); // same context, rare
            } else {
                f.observe(req(1, 9, 9, 9), None); // foreign context, frequent
            }
        }
        // Warm the cache under the default p, then flip p without touching
        // the graph: the sorted view must be rebuilt, not served stale.
        let _ = f.strongest(FileId::new(0), 0.0);
        let mut buf = Vec::new();
        f.top_k_into(FileId::new(0), 1, 0.0, &mut buf);
        f.config_mut().p = 0.0;
        f.top_k_into(FileId::new(0), 1, 0.0, &mut buf);
        assert_eq!(buf[0].file, FileId::new(1), "frequency must win at p=0");
        f.config_mut().p = 1.0;
        f.top_k_into(FileId::new(0), 1, 0.0, &mut buf);
        assert_eq!(buf[0].file, FileId::new(2), "semantics must win at p=1");
    }

    #[test]
    fn queries_forget_forgotten_files() {
        let mut f = Farmer::with_defaults();
        for _ in 0..5 {
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(1, 1, 1, 1), None);
        }
        let mut buf = Vec::new();
        f.top_k_into(FileId::new(0), 4, 0.0, &mut buf);
        assert!(!buf.is_empty());
        f.forget_file(FileId::new(0));
        f.top_k_into(FileId::new(0), 4, 0.0, &mut buf);
        assert!(buf.is_empty(), "evicted file still served from cache");
        assert_eq!(f.strongest(FileId::new(0), 0.0), None);
    }

    #[test]
    fn degree_and_for_each_list_agree_with_lists() {
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let f = Farmer::mine_trace(&trace, FarmerConfig::default());
        let mut visited = 0usize;
        f.for_each_list(&mut |owner, entries| {
            visited += 1;
            let full = f.correlators(owner);
            assert_eq!(entries.len(), full.len());
            for (got, want) in entries.iter().zip(full.iter()) {
                assert_eq!(got.file, want.file);
                assert_eq!(got.degree.to_bits(), want.degree.to_bits());
                let d = CorrelationSource::degree(&f, owner, got.file).unwrap();
                assert_eq!(d.to_bits(), got.degree.to_bits());
            }
        });
        let non_empty = (0..trace.num_files() as u32)
            .filter(|&i| !f.correlators(FileId::new(i)).is_empty())
            .count();
        assert_eq!(visited, non_empty);
    }

    #[test]
    fn p_one_orders_by_semantics_alone() {
        let mut cfg = FarmerConfig::default();
        cfg.p = 1.0;
        cfg.max_strength = 0.0;
        let mut f = Farmer::new(cfg);
        for i in 0..12 {
            f.observe(req(0, 1, 1, 1), None);
            if i % 4 == 0 {
                f.observe(req(2, 1, 1, 1), None); // same context, rare
            } else {
                f.observe(req(1, 9, 9, 9), None); // foreign context, frequent
            }
        }
        let l = f.correlators_with_threshold(FileId::new(0), 0.0);
        assert_eq!(l.head().unwrap().file, FileId::new(2));
    }
}

//! The FARMER model façade: the four-stage pipeline wired together.
//!
//! "This is an iterative process that repeats itself for each incoming
//! request" (paper §3.1): every call to [`Farmer::observe`] runs
//! Extracting → Constructing → Mining & Evaluating, and
//! [`Farmer::correlators`] materializes the Sorting stage on demand.
//!
//! The model is deliberately front-end agnostic ("black-box", §3.1): it
//! consumes plain [`Request`] tuples plus an optional path, so it can sit
//! behind a trace replayer, a metadata server, or a live file system.

use std::collections::VecDeque;

use farmer_trace::{FileId, FilePath, Trace, TraceEvent};

use crate::config::FarmerConfig;
use crate::correlator::{Correlator, CorrelatorList};
use crate::extract::{Extractor, Request};
use crate::graph::CorrelationGraph;
use crate::semvec::similarity;

/// The FARMER model: feed requests, query sorted correlator lists.
#[derive(Debug)]
pub struct Farmer {
    cfg: FarmerConfig,
    graph: CorrelationGraph,
    /// Sliding look-ahead window: the most recent `cfg.window` requests.
    window: VecDeque<Request>,
    /// Per-file learned paths (cloned from the first observation of each
    /// file). This mirrors the paper's semantic-vector store: "vectors are
    /// stored as columns of a single matrix".
    paths: Vec<Option<FilePath>>,
    observed: u64,
}

impl Farmer {
    /// A fresh model with the given configuration.
    pub fn new(cfg: FarmerConfig) -> Self {
        Farmer {
            cfg,
            graph: CorrelationGraph::new(),
            window: VecDeque::new(),
            paths: Vec::new(),
            observed: 0,
        }
    }

    /// A fresh model with the paper's default configuration.
    pub fn with_defaults() -> Self {
        Self::new(FarmerConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &FarmerConfig {
        &self.cfg
    }

    /// Mutable access to the configuration. Changing `p`/`max_strength`
    /// affects future evaluations immediately (degrees are computed at
    /// query time); changing the window or combo only affects future
    /// observations.
    pub fn config_mut(&mut self) -> &mut FarmerConfig {
        &mut self.cfg
    }

    /// Number of requests observed so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// Read access to the correlation graph (diagnostics, tests, layout).
    pub fn graph(&self) -> &CorrelationGraph {
        &self.graph
    }

    /// Observe one request (stages 1–3 for this request).
    ///
    /// `path` is the file's path if the front-end knows it; it is learned
    /// and cached per file on first sight.
    pub fn observe(&mut self, req: Request, path: Option<&FilePath>) {
        self.observe_where(req, path, |_| true);
    }

    /// Observe one request under a file-ownership partition.
    ///
    /// This is the sharded-mining entry point (`farmer-stream`): every
    /// partition instance receives the *full* request stream so its
    /// look-ahead window carries the true global access order, but the
    /// instance only accounts for files it owns — `N(file)` and the learned
    /// path are updated only when `owns(req.file)`, and edges are mined
    /// only from windowed predecessors with `owns(pred.file)`. The union of
    /// the partition graphs over a disjoint ownership cover equals the
    /// graph a single [`Farmer::observe`] loop would build.
    pub fn observe_where(
        &mut self,
        req: Request,
        path: Option<&FilePath>,
        owns: impl Fn(FileId) -> bool,
    ) {
        if owns(req.file) {
            self.learn_path(req.file, path);
            self.graph.record_access(req.file);
        }

        // Constructing + Mining: update the edge from every windowed
        // predecessor to the new request, LDA-weighted by distance and
        // carrying the semantic similarity of the two requests.
        for (i, pred) in self.window.iter().rev().enumerate() {
            if pred.file == req.file {
                continue; // self-transitions carry no inter-file signal
            }
            if !owns(pred.file) {
                continue; // another partition instance mines this edge
            }
            let d = i + 1;
            let w = self.cfg.lda_weight(d);
            if w <= 0.0 {
                continue;
            }
            let sim = similarity(
                pred,
                self.paths.get(pred.file.index()).and_then(Option::as_ref),
                &req,
                path,
                self.cfg.combo,
                self.cfg.path_mode,
            );
            self.graph
                .update_edge(pred.file, req.file, w, sim, &self.cfg);
        }

        self.window.push_back(req);
        while self.window.len() > self.cfg.window {
            self.window.pop_front();
        }

        self.observed += 1;
        if self.cfg.prune_interval > 0
            && self.observed.is_multiple_of(self.cfg.prune_interval as u64)
        {
            if self.cfg.decay < 1.0 {
                self.graph.age(self.cfg.decay);
            }
            self.graph.prune_below(self.cfg.prune_floor, &self.cfg);
        }
    }

    /// Convenience: observe a trace event (runs the Stage-1 extractor).
    pub fn observe_event(&mut self, trace: &Trace, e: &TraceEvent) {
        let (req, path) = Extractor.extract(trace, e);
        self.observe(req, path);
    }

    /// Batch-mine an entire trace.
    pub fn mine_trace(trace: &Trace, cfg: FarmerConfig) -> Farmer {
        let mut farmer = Farmer::new(cfg);
        for e in &trace.events {
            farmer.observe_event(trace, e);
        }
        farmer
    }

    /// Stage 4: the sorted, thresholded Correlator List of `file`,
    /// evaluated against the *current* access counts.
    pub fn correlators(&self, file: FileId) -> CorrelatorList {
        self.correlators_with_threshold(file, self.cfg.max_strength)
    }

    /// Correlator list under an explicit threshold (used by the
    /// `max_strength` sweeps without re-mining).
    pub fn correlators_with_threshold(&self, file: FileId, max_strength: f64) -> CorrelatorList {
        CorrelatorList::build(
            file,
            self.graph.edges(file, &self.cfg).map(|e| Correlator {
                file: e.to,
                degree: e.degree,
            }),
            max_strength,
        )
    }

    /// Manually drop all edges below the configured prune floor. Returns
    /// the number of edges removed.
    pub fn prune(&mut self) -> usize {
        self.graph.prune_below(self.cfg.prune_floor, &self.cfg)
    }

    /// Evict one file from the model entirely: its learned path, its node
    /// (access count + outgoing edges), every incoming edge, and any
    /// look-ahead-window entry referencing it. Afterwards the model behaves
    /// as if the file had never been observed; a later access re-admits it
    /// as a fresh file. Returns the number of edges removed.
    pub fn forget_file(&mut self, file: FileId) -> usize {
        self.forget_files(&[file])
    }

    /// Batched [`Farmer::forget_file`]: evicts every file in `files` with a
    /// *single* sweep over the graph for the incoming-edge cleanup, which
    /// is what makes streaming eviction affordable — the sweep cost is paid
    /// once per batch instead of once per victim. Returns the number of
    /// edges removed.
    pub fn forget_files(&mut self, files: &[FileId]) -> usize {
        if files.is_empty() {
            return 0;
        }
        let mut victims: Vec<u32> = files.iter().map(|f| f.raw()).collect();
        victims.sort_unstable();
        victims.dedup();
        let gone = |f: FileId| victims.binary_search(&f.raw()).is_ok();

        let mut removed = 0;
        for &raw in &victims {
            let file = FileId::new(raw);
            if let Some(p) = self.paths.get_mut(file.index()) {
                *p = None;
            }
            removed += self.graph.clear_node(file);
        }
        removed += self.graph.retain_edges(|_, to| !gone(to));
        self.window.retain(|r| !gone(r.file));
        removed
    }

    /// Approximate resident heap bytes of the model: graph, learned paths
    /// and window. Regenerates the paper's Table 4 space-overhead numbers.
    pub fn memory_bytes(&self) -> usize {
        let paths: usize = self
            .paths
            .iter()
            .map(|p| p.as_ref().map_or(0, FilePath::heap_bytes))
            .sum::<usize>()
            + self.paths.capacity() * std::mem::size_of::<Option<FilePath>>();
        self.graph.heap_bytes() + paths + self.window.capacity() * std::mem::size_of::<Request>()
    }

    fn learn_path(&mut self, file: FileId, path: Option<&FilePath>) {
        let idx = file.index();
        if idx >= self.paths.len() {
            self.paths.resize_with(idx + 1, || None);
        }
        if self.paths[idx].is_none() {
            if let Some(p) = path {
                self.paths[idx] = Some(p.clone());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::{DevId, HostId, PathInterner, ProcId, UserId, WorkloadSpec};

    fn req(file: u32, uid: u32, pid: u32, host: u32) -> Request {
        Request {
            file: FileId::new(file),
            uid: UserId::new(uid),
            pid: ProcId::new(pid),
            host: HostId::new(host),
            dev: DevId::new(0),
        }
    }

    /// Feed the sequence A B C D from one process and check the LDA masses.
    #[test]
    fn abcd_lda_masses_match_paper() {
        let mut f = Farmer::with_defaults();
        for file in 0..4 {
            f.observe(req(file, 1, 1, 1), None);
        }
        let cfg = f.config().clone();
        let edges: Vec<_> = f.graph().edges(FileId::new(0), &cfg).collect();
        let mass_of = |to: u32| {
            edges
                .iter()
                .find(|e| e.to == FileId::new(to))
                .map(|e| e.mass)
                .unwrap_or(0.0)
        };
        assert!((mass_of(1) - 1.0).abs() < 1e-12, "B mass {}", mass_of(1));
        assert!((mass_of(2) - 0.9).abs() < 1e-12, "C mass {}", mass_of(2));
        assert!((mass_of(3) - 0.8).abs() < 1e-12, "D mass {}", mass_of(3));
    }

    #[test]
    fn self_transitions_ignored() {
        let mut f = Farmer::with_defaults();
        f.observe(req(0, 1, 1, 1), None);
        f.observe(req(0, 1, 1, 1), None);
        let cfg = f.config().clone();
        assert_eq!(f.graph().edges(FileId::new(0), &cfg).count(), 0);
    }

    #[test]
    fn window_limits_reach() {
        let mut cfg = FarmerConfig::default();
        cfg.window = 2;
        let mut f = Farmer::new(cfg.clone());
        for file in 0..5 {
            f.observe(req(file, 1, 1, 1), None);
        }
        // 0 can only reach 1 and 2 with window 2.
        let succs: Vec<u32> = f
            .graph()
            .edges(FileId::new(0), &cfg)
            .map(|e| e.to.raw())
            .collect();
        assert_eq!(succs.len(), 2);
        assert!(succs.contains(&1) && succs.contains(&2));
    }

    #[test]
    fn correlator_list_sorted_and_thresholded() {
        let mut f = Farmer::with_defaults();
        // Same-context successor (high sim) and cross-context one (low sim).
        for _ in 0..10 {
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(1, 1, 1, 1), None); // same user/pid/host
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(2, 9, 9, 9), None); // foreign context
        }
        let l = f.correlators(FileId::new(0));
        assert!(!l.is_empty());
        // Sorted descending.
        for w in l.entries().windows(2) {
            assert!(w[0].degree >= w[1].degree);
        }
        // The same-context successor outranks the foreign one.
        assert_eq!(l.head().unwrap().file, FileId::new(1));
    }

    #[test]
    fn threshold_query_does_not_require_remine() {
        let mut f = Farmer::with_defaults();
        for _ in 0..5 {
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(1, 1, 1, 1), None);
        }
        let lo = f.correlators_with_threshold(FileId::new(0), 0.0);
        let hi = f.correlators_with_threshold(FileId::new(0), 0.99);
        assert!(lo.len() >= hi.len());
    }

    #[test]
    fn paths_are_learned_once() {
        let mut i = PathInterner::new();
        let pa = i.parse("/home/u1/proj/a");
        let pb = i.parse("/home/u1/proj/b");
        let mut f = Farmer::with_defaults();
        f.observe(req(0, 1, 1, 1), Some(&pa));
        f.observe(req(1, 1, 1, 1), Some(&pb));
        f.observe(req(0, 1, 1, 1), Some(&pa));
        f.observe(req(1, 1, 1, 1), Some(&pb));
        let l = f.correlators_with_threshold(FileId::new(0), 0.0);
        // Path similarity contributes: same dir -> sim well above scalar-only.
        assert!(
            l.head().unwrap().degree > 0.8,
            "degree {}",
            l.head().unwrap().degree
        );
    }

    #[test]
    fn memory_grows_then_prune_shrinks() {
        let mut cfg = FarmerConfig::default();
        cfg.prune_interval = 0; // manual pruning only
        cfg.prune_floor = 0.9; // aggressive, drops nearly everything
        let trace = WorkloadSpec::res().scaled(0.05).generate();
        let mut f = Farmer::new(cfg);
        for e in &trace.events {
            f.observe_event(&trace, e);
        }
        let edges_before = f.graph().num_edges();
        assert!(edges_before > 0);
        let removed = f.prune();
        assert!(removed > 0);
        assert_eq!(f.graph().num_edges(), edges_before - removed);
    }

    #[test]
    fn mine_trace_consumes_everything() {
        let trace = WorkloadSpec::ins().scaled(0.02).generate();
        let f = Farmer::mine_trace(&trace, FarmerConfig::pathless());
        assert_eq!(f.observed(), trace.len() as u64);
        assert!(f.graph().num_edges() > 0);
        assert!(f.memory_bytes() > 0);
    }

    #[test]
    fn decay_adapts_to_workload_shift() {
        // Phase 1: 0 -> 1 dominates. Phase 2: the workload shifts to
        // 0 -> 2. With aging the new successor overtakes the stale one;
        // without aging the historical mass keeps 1 on top much longer.
        let run = |decay: f64| {
            let mut cfg = FarmerConfig::default();
            cfg.prune_interval = 50;
            cfg.prune_floor = 0.0;
            cfg.decay = decay;
            cfg.p = 0.0; // isolate the frequency signal
            let mut f = Farmer::new(cfg);
            for _ in 0..200 {
                f.observe(req(0, 1, 1, 1), None);
                f.observe(req(1, 1, 1, 1), None);
            }
            for _ in 0..80 {
                f.observe(req(0, 1, 1, 1), None);
                f.observe(req(2, 1, 1, 1), None);
            }
            f.correlators_with_threshold(FileId::new(0), 0.0)
                .head()
                .unwrap()
                .file
        };
        assert_eq!(run(0.5), FileId::new(2), "decayed model follows the shift");
        assert_eq!(
            run(1.0),
            FileId::new(1),
            "undecayed model stays with history"
        );
    }

    #[test]
    fn forget_file_erases_every_trace_of_it() {
        let mut f = Farmer::with_defaults();
        for _ in 0..5 {
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(1, 1, 1, 1), None);
            f.observe(req(2, 1, 1, 1), None);
        }
        assert!(!f.correlators_with_threshold(FileId::new(0), 0.0).is_empty());
        f.forget_file(FileId::new(1));
        // No outgoing edges, no access count, and no incoming edges.
        assert!(f.correlators_with_threshold(FileId::new(1), 0.0).is_empty());
        assert_eq!(f.graph().total_accesses(FileId::new(1)), 0.0);
        let cfg = f.config().clone();
        for file in [0u32, 2] {
            assert!(
                f.graph()
                    .edges(FileId::new(file), &cfg)
                    .all(|e| e.to != FileId::new(1)),
                "stale incoming edge from f{file}"
            );
        }
    }

    #[test]
    fn forget_files_batch_matches_sequential() {
        let build = || {
            let mut f = Farmer::with_defaults();
            for round in 0..4 {
                for file in 0..6 {
                    f.observe(req(file, round, 1, 1), None);
                }
            }
            f
        };
        let mut batched = build();
        let mut sequential = build();
        let victims = [FileId::new(1), FileId::new(4)];
        let removed_batch = batched.forget_files(&victims);
        let removed_seq: usize = victims.iter().map(|&v| sequential.forget_file(v)).sum();
        assert_eq!(removed_batch, removed_seq);
        assert_eq!(batched.graph().num_edges(), sequential.graph().num_edges());
        assert_eq!(
            batched.graph().active_nodes(),
            sequential.graph().active_nodes()
        );
    }

    #[test]
    fn forgotten_file_readmits_as_fresh() {
        let mut f = Farmer::with_defaults();
        for _ in 0..10 {
            f.observe(req(0, 1, 1, 1), None);
            f.observe(req(1, 1, 1, 1), None);
        }
        f.forget_file(FileId::new(1));
        // Re-admission: the pair builds back up from zero. The window kept
        // its three file-0 entries ([1,0,1,0,1] minus the victims, plus the
        // fresh 0), so the rebuilt mass is 1.0 + 0.9 + 0.8 — not the ~19
        // the ten alternating rounds had accumulated before the eviction.
        f.observe(req(0, 1, 1, 1), None);
        f.observe(req(1, 1, 1, 1), None);
        let cfg = f.config().clone();
        let mass = f
            .graph()
            .edges(FileId::new(0), &cfg)
            .find(|e| e.to == FileId::new(1))
            .map(|e| e.mass)
            .unwrap_or(0.0);
        assert!((mass - 2.7).abs() < 1e-12, "mass restarted at {mass}");
    }

    #[test]
    fn partitioned_union_equals_batch() {
        // Two ownership partitions (even/odd file ids) fed the same stream
        // must together hold exactly the edges of the unpartitioned model.
        let stream: Vec<Request> = (0..200)
            .map(|i| req((i * 7) % 9, i % 3, 1, i % 2))
            .collect();
        let mut whole = Farmer::with_defaults();
        let mut even = Farmer::with_defaults();
        let mut odd = Farmer::with_defaults();
        for r in &stream {
            whole.observe(*r, None);
            even.observe_where(*r, None, |f| f.raw() % 2 == 0);
            odd.observe_where(*r, None, |f| f.raw() % 2 == 1);
        }
        let cfg = whole.config().clone();
        for file in 0..9u32 {
            let fid = FileId::new(file);
            let part = if file % 2 == 0 { &even } else { &odd };
            let mut want: Vec<_> = whole
                .graph()
                .edges(fid, &cfg)
                .map(|e| (e.to.raw(), e.mass, e.degree))
                .collect();
            let mut got: Vec<_> = part
                .graph()
                .edges(fid, &cfg)
                .map(|e| (e.to.raw(), e.mass, e.degree))
                .collect();
            want.sort_by_key(|a| a.0);
            got.sort_by_key(|a| a.0);
            assert_eq!(got.len(), want.len(), "edge count diverged for f{file}");
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.0, w.0);
                assert!((g.1 - w.1).abs() < 1e-12, "mass diverged for f{file}");
                assert!((g.2 - w.2).abs() < 1e-12, "degree diverged for f{file}");
            }
            // The non-owner partition holds nothing for this file.
            let other = if file % 2 == 0 { &odd } else { &even };
            assert_eq!(other.graph().edges(fid, &cfg).count(), 0);
        }
    }

    #[test]
    fn p_zero_orders_by_frequency_alone() {
        // §7: with p = 0 FARMER reduces to pure sequence mining (Nexus).
        let mut cfg = FarmerConfig::default();
        cfg.p = 0.0;
        cfg.max_strength = 0.0;
        let mut f = Farmer::new(cfg);
        // file 1 follows 0 often but from a foreign context; file 2 follows
        // rarely but same-context. With p = 0 frequency must win.
        for i in 0..12 {
            f.observe(req(0, 1, 1, 1), None);
            if i % 4 == 0 {
                f.observe(req(2, 1, 1, 1), None);
            } else {
                f.observe(req(1, 9, 9, 9), None);
            }
        }
        let l = f.correlators_with_threshold(FileId::new(0), 0.0);
        assert_eq!(l.head().unwrap().file, FileId::new(1));
    }

    #[test]
    fn p_one_orders_by_semantics_alone() {
        let mut cfg = FarmerConfig::default();
        cfg.p = 1.0;
        cfg.max_strength = 0.0;
        let mut f = Farmer::new(cfg);
        for i in 0..12 {
            f.observe(req(0, 1, 1, 1), None);
            if i % 4 == 0 {
                f.observe(req(2, 1, 1, 1), None); // same context, rare
            } else {
                f.observe(req(1, 9, 9, 9), None); // foreign context, frequent
            }
        }
        let l = f.correlators_with_threshold(FileId::new(0), 0.0);
        assert_eq!(l.head().unwrap().file, FileId::new(2));
    }
}

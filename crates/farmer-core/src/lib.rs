//! # farmer-core — the FARMER model (paper §3)
//!
//! Implements the File Access coRrelation Mining and Evaluation Reference
//! model of Xia et al. (TR-UNL-CSE-2008-0001 / HPDC 2008): a four-stage
//! online pipeline that combines **access-sequence mining** with
//! **semantic-attribute mining** to quantify inter-file correlations.
//!
//! | paper stage | module |
//! |---|---|
//! | 1. Extracting — collect request attributes | [`extract`] |
//! | 2. Constructing — weighted, directed correlation graph | [`graph`] |
//! | 3. Mining & Evaluating — the CoMiner algorithm | [`miner`] |
//! | 4. Sorting — per-file Correlator Lists | [`correlator`] |
//!
//! The model façade is [`Farmer`]: feed it one request at a time
//! ([`Farmer::observe`]) and query sorted correlator lists at any point
//! ([`Farmer::correlators`]).
//!
//! The two mined signals are:
//!
//! * **Semantic distance** `sim(A,B) = |A ∩ B| / max(|A|,|B|)` over semantic
//!   vectors built from a configurable attribute combination ([`AttrCombo`])
//!   with the file path handled by either the Divided or the Integrated
//!   Path Algorithm ([`PathMode`]) — see [`semvec`].
//! * **Access frequency** `F(A,B) = N(A,B)/N(A)` where `N(A,B)` accumulates
//!   Linear-Decremented-Assignment weights over a look-ahead window — see
//!   [`miner`].
//!
//! They combine into the correlation degree
//! `R(A,B) = sim·p + F·(1−p)` (paper Function 2), and only pairs with
//! `R ≥ max_strength` are considered valid correlations.
//!
//! # The query layer
//!
//! Mining produces the model; *serving* happens through one API:
//! [`CorrelationSource`] ([`source`]), implemented by the live [`Farmer`],
//! the exported [`CorrelatorTable`], `farmer-stream`'s merged snapshots
//! and `farmer-store`'s persisted view. Its contract — caller-owned
//! buffers, canonical ordering, partial-select top-k in O(deg + k log k)
//! rather than a full O(deg log deg) sort — is what lets every consumer
//! (prefetcher, replication planner, security compiler, layout optimizer)
//! query any back-end allocation-free at demand-request rate.

// The few unsafe blocks here each carry a SAFETY: proof (lint rule R2);
// unsafe fns must still mark their internal unsafe operations explicitly.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod attr;
pub mod config;
pub mod correlator;
pub mod extract;
pub mod graph;
pub mod miner;
pub mod model;
pub mod semvec;
pub mod source;
pub mod state;

pub use attr::{AttrCombo, AttrKind};
pub use config::{FarmerConfig, PathMode};
pub use correlator::{Correlator, CorrelatorList, CorrelatorTable};
pub use extract::{Extractor, Request};
pub use graph::{CorrelationGraph, EdgeView};
pub use model::Farmer;
pub use semvec::similarity;
pub use source::CorrelationSource;
pub use state::{EdgeState, FarmerState, GraphState, NodeState};

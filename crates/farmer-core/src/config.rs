//! FARMER configuration knobs, with the paper's defaults.

use crate::attr::AttrCombo;

/// How the file-path attribute enters the semantic vector (paper §3.2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PathMode {
    /// Divided Path Algorithm: every path component is its own vector item.
    /// Deep directories dominate the similarity and drown out the other
    /// attributes — the drawback the paper demonstrates with the
    /// executable-vs-linked-library example.
    Dpa,
    /// Integrated Path Algorithm: the whole path is a single item whose
    /// intersection value is the fractional component similarity. The
    /// paper's choice, and the default here.
    #[default]
    Ipa,
}

/// Tunables of the FARMER model. `FarmerConfig::default()` reproduces the
/// paper's final configuration (p = 0.7, max_strength = 0.4, IPA).
#[derive(Debug, Clone, PartialEq)]
pub struct FarmerConfig {
    /// Weight of semantic distance vs access frequency in
    /// `R = sim·p + F·(1−p)` (paper Function 2). The paper's sweep
    /// (Figure 3) finds 0.7 best.
    pub p: f64,
    /// Validity threshold: pairs with `R < max_strength` are filtered out
    /// (paper §3.2.4). Figure 6 shows response time degrades above ≈ 0.4.
    pub max_strength: f64,
    /// Look-ahead window for successor counting. Paper's example uses the
    /// Nexus-style window; successors past the window contribute nothing.
    pub window: usize,
    /// Linear Decremented Assignment step: distance-1 successors add 1.0,
    /// distance-2 add `1.0 − lda_decrement`, etc. (paper §3.2.2 uses 0.1:
    /// "0.9 for C, and 0.8 for D").
    pub lda_decrement: f64,
    /// Which semantic attributes enter the vectors (paper Table 5).
    pub combo: AttrCombo,
    /// Path algorithm (paper selects IPA).
    pub path_mode: PathMode,
    /// Cap on retained successors per file; the lowest-degree edge is
    /// evicted first. This is FARMER's filtering-driven memory bound
    /// (paper §3.3: weak correlations are not maintained).
    pub max_successors: usize,
    /// Every `prune_interval` observed requests the model drops edges whose
    /// degree fell below [`FarmerConfig::prune_floor`] (0 disables).
    /// Together with `max_successors` this realizes the paper's claim that
    /// FARMER keeps no state for weak correlations.
    pub prune_interval: usize,
    /// Degree floor for the periodic prune.
    pub prune_floor: f64,
    /// Aging factor applied to every edge's accumulated mass and to node
    /// access totals at each prune tick (1.0 disables). Values below 1
    /// make the miner track *non-stationary* workloads: correlations that
    /// stop recurring decay away instead of haunting the correlator lists.
    pub decay: f64,
}

impl Default for FarmerConfig {
    fn default() -> Self {
        FarmerConfig {
            p: 0.7,
            max_strength: 0.4,
            window: 5,
            lda_decrement: 0.1,
            combo: AttrCombo::hp_default(),
            path_mode: PathMode::Ipa,
            max_successors: 16,
            prune_interval: 8192,
            prune_floor: 0.05,
            decay: 1.0,
        }
    }
}

impl FarmerConfig {
    /// Paper defaults with the pathless attribute base (INS/RES traces).
    pub fn pathless() -> Self {
        FarmerConfig {
            combo: AttrCombo::ins_default(),
            ..Self::default()
        }
    }

    /// Builder-style weight override.
    #[must_use]
    pub fn with_p(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        self.p = p;
        self
    }

    /// Builder-style threshold override.
    #[must_use]
    pub fn with_max_strength(mut self, s: f64) -> Self {
        assert!((0.0..=1.0).contains(&s), "max_strength must be in [0,1]");
        self.max_strength = s;
        self
    }

    /// Builder-style combo override.
    #[must_use]
    pub fn with_combo(mut self, combo: AttrCombo) -> Self {
        self.combo = combo;
        self
    }

    /// Builder-style path-mode override.
    #[must_use]
    pub fn with_path_mode(mut self, mode: PathMode) -> Self {
        self.path_mode = mode;
        self
    }

    /// Builder-style decay override (see [`FarmerConfig::decay`]).
    #[must_use]
    pub fn with_decay(mut self, decay: f64) -> Self {
        assert!((0.0..=1.0).contains(&decay), "decay must be in [0,1]");
        self.decay = decay;
        self
    }

    /// LDA weight at successor distance `d ≥ 1`; 0 outside the window.
    #[inline]
    pub fn lda_weight(&self, d: usize) -> f64 {
        if d == 0 || d > self.window {
            return 0.0;
        }
        (1.0 - self.lda_decrement * (d - 1) as f64).max(0.0)
    }

    /// The precomputed LDA weight table for the configured window:
    /// `table[i] == lda_weight(i + 1)`. The mining hot loop indexes this
    /// once per windowed predecessor instead of re-deriving the linear
    /// decrement per event ([`crate::model::Farmer`] caches it and rebuilds
    /// only when `window`/`lda_decrement` change).
    pub fn lda_weights(&self) -> Vec<f64> {
        (1..=self.window).map(|d| self.lda_weight(d)).collect()
    }

    /// Fingerprint of the inputs [`FarmerConfig::lda_weights`] depends on,
    /// for cheap staleness checks on a cached table.
    #[inline]
    pub fn lda_fingerprint(&self) -> (usize, u64) {
        (self.window, self.lda_decrement.to_bits())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = FarmerConfig::default();
        assert_eq!(c.p, 0.7);
        assert_eq!(c.max_strength, 0.4);
        assert_eq!(c.path_mode, PathMode::Ipa);
        assert_eq!(c.lda_decrement, 0.1);
    }

    #[test]
    fn lda_weights_match_paper_example() {
        // "given an access sequence of ABCD ... 1 will be added for B,
        //  0.9 for C, and 0.8 for D."
        let c = FarmerConfig::default();
        assert!((c.lda_weight(1) - 1.0).abs() < 1e-12);
        assert!((c.lda_weight(2) - 0.9).abs() < 1e-12);
        assert!((c.lda_weight(3) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn lda_weight_zero_outside_window() {
        let c = FarmerConfig::default();
        assert_eq!(c.lda_weight(0), 0.0);
        assert_eq!(c.lda_weight(c.window + 1), 0.0);
        assert!(c.lda_weight(c.window) > 0.0);
    }

    #[test]
    fn lda_weight_never_negative() {
        let mut c = FarmerConfig::default();
        c.window = 100;
        for d in 1..=100 {
            assert!(c.lda_weight(d) >= 0.0);
        }
    }

    #[test]
    fn lda_table_matches_per_distance_api() {
        let mut c = FarmerConfig::default();
        c.window = 17;
        c.lda_decrement = 0.07;
        let table = c.lda_weights();
        assert_eq!(table.len(), c.window);
        for (i, &w) in table.iter().enumerate() {
            assert_eq!(w.to_bits(), c.lda_weight(i + 1).to_bits());
        }
        // Fingerprint changes with either input.
        let fp = c.lda_fingerprint();
        c.window = 18;
        assert_ne!(c.lda_fingerprint(), fp);
    }

    #[test]
    #[should_panic(expected = "p must be in [0,1]")]
    fn with_p_validates() {
        let _ = FarmerConfig::default().with_p(1.5);
    }

    #[test]
    fn builders_set_fields() {
        let c = FarmerConfig::default()
            .with_p(0.3)
            .with_max_strength(0.2)
            .with_path_mode(PathMode::Dpa);
        assert_eq!(c.p, 0.3);
        assert_eq!(c.max_strength, 0.2);
        assert_eq!(c.path_mode, PathMode::Dpa);
    }
}

//! Semantic attribute kinds and combinations.
//!
//! The paper's Table 5 sweeps every combination of four attributes — for the
//! HP trace {User, Process, Host, File path}, for INS/RES {User, Process,
//! Host, File ID} (those traces record no paths) — and shows the choice of
//! combination moves the cache hit ratio by up to ~13 points. [`AttrCombo`]
//! is a small bitmask over [`AttrKind`] that drives which items enter the
//! semantic vectors, and it can enumerate exactly the paper's sweep.

use std::fmt;

/// One semantic attribute of a file request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttrKind {
    /// Requesting user id.
    User,
    /// Requesting process id.
    Process,
    /// Requesting host id.
    Host,
    /// Full file path (HP/LLNL-style traces).
    Path,
    /// The file's own id (the INS/RES substitute for a path).
    FileId,
    /// Device/volume id.
    Dev,
}

impl AttrKind {
    /// All kinds, in bit order.
    pub const ALL: [AttrKind; 6] = [
        AttrKind::User,
        AttrKind::Process,
        AttrKind::Host,
        AttrKind::Path,
        AttrKind::FileId,
        AttrKind::Dev,
    ];

    const fn bit(self) -> u8 {
        match self {
            AttrKind::User => 1 << 0,
            AttrKind::Process => 1 << 1,
            AttrKind::Host => 1 << 2,
            AttrKind::Path => 1 << 3,
            AttrKind::FileId => 1 << 4,
            AttrKind::Dev => 1 << 5,
        }
    }

    /// Display label matching the paper's Table 5 rows.
    pub fn label(self) -> &'static str {
        match self {
            AttrKind::User => "User",
            AttrKind::Process => "Process",
            AttrKind::Host => "Host",
            AttrKind::Path => "File path",
            AttrKind::FileId => "File ID",
            AttrKind::Dev => "Dev",
        }
    }
}

/// A set of semantic attributes entering the vector-space model.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct AttrCombo(u8);

impl AttrCombo {
    /// The empty combination (semantic distance identically 0; with it
    /// FARMER degenerates to pure sequence mining, paper §7).
    pub const EMPTY: AttrCombo = AttrCombo(0);

    /// The paper's default for path-bearing traces:
    /// {User, Process, Host, File path}.
    pub fn hp_default() -> AttrCombo {
        AttrCombo::EMPTY
            .with(AttrKind::User)
            .with(AttrKind::Process)
            .with(AttrKind::Host)
            .with(AttrKind::Path)
    }

    /// The paper's default for pathless traces:
    /// {User, Process, Host, File ID}.
    pub fn ins_default() -> AttrCombo {
        AttrCombo::EMPTY
            .with(AttrKind::User)
            .with(AttrKind::Process)
            .with(AttrKind::Host)
            .with(AttrKind::FileId)
    }

    /// Add one attribute (builder style).
    #[must_use]
    pub const fn with(self, kind: AttrKind) -> AttrCombo {
        AttrCombo(self.0 | kind.bit())
    }

    /// Remove one attribute.
    #[must_use]
    pub const fn without(self, kind: AttrKind) -> AttrCombo {
        AttrCombo(self.0 & !kind.bit())
    }

    /// Membership test.
    #[inline]
    pub const fn contains(self, kind: AttrKind) -> bool {
        self.0 & kind.bit() != 0
    }

    /// Number of attributes in the combination.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// True for the empty combination.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of *scalar* vector items this combo contributes (everything
    /// except Path, which is handled by the path algorithms).
    pub fn scalar_items(self) -> usize {
        self.len() - usize::from(self.contains(AttrKind::Path))
    }

    /// Enumerate every non-empty subset of the given base attributes —
    /// the paper's Table 5 sweep (15 combos for a 4-attribute base).
    pub fn sweep(base: &[AttrKind]) -> Vec<AttrCombo> {
        let n = base.len();
        let mut combos = Vec::with_capacity((1 << n) - 1);
        for mask in 1u32..(1 << n) {
            let mut c = AttrCombo::EMPTY;
            for (i, &k) in base.iter().enumerate() {
                if mask & (1 << i) != 0 {
                    c = c.with(k);
                }
            }
            combos.push(c);
        }
        combos
    }

    /// The Table 5 base for path-bearing traces.
    pub const HP_BASE: [AttrKind; 4] = [
        AttrKind::User,
        AttrKind::Process,
        AttrKind::Host,
        AttrKind::Path,
    ];

    /// The Table 5 base for pathless traces.
    pub const INS_BASE: [AttrKind; 4] = [
        AttrKind::User,
        AttrKind::Process,
        AttrKind::Host,
        AttrKind::FileId,
    ];

    /// Iterate over the kinds present, in bit order.
    pub fn iter(self) -> impl Iterator<Item = AttrKind> {
        AttrKind::ALL.into_iter().filter(move |k| self.contains(*k))
    }
}

impl fmt::Display for AttrCombo {
    /// Formats as `{User, Process, File path}`, matching Table 5 rows.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for k in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{}", k.label())?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl fmt::Debug for AttrCombo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_without_contains() {
        let c = AttrCombo::EMPTY.with(AttrKind::User).with(AttrKind::Path);
        assert!(c.contains(AttrKind::User));
        assert!(c.contains(AttrKind::Path));
        assert!(!c.contains(AttrKind::Host));
        assert_eq!(c.len(), 2);
        let c2 = c.without(AttrKind::User);
        assert!(!c2.contains(AttrKind::User));
        assert_eq!(c2.len(), 1);
    }

    #[test]
    fn defaults_match_paper_bases() {
        let hp = AttrCombo::hp_default();
        assert!(hp.contains(AttrKind::Path));
        assert!(!hp.contains(AttrKind::FileId));
        assert_eq!(hp.len(), 4);
        let ins = AttrCombo::ins_default();
        assert!(ins.contains(AttrKind::FileId));
        assert!(!ins.contains(AttrKind::Path));
    }

    #[test]
    fn sweep_enumerates_fifteen_combos() {
        let combos = AttrCombo::sweep(&AttrCombo::HP_BASE);
        assert_eq!(combos.len(), 15);
        // All distinct.
        let mut seen = std::collections::HashSet::new();
        for c in &combos {
            assert!(seen.insert(c.0));
        }
        // The full combo is included.
        assert!(combos.contains(&AttrCombo::hp_default()));
    }

    #[test]
    fn scalar_items_excludes_path() {
        assert_eq!(AttrCombo::hp_default().scalar_items(), 3);
        assert_eq!(AttrCombo::ins_default().scalar_items(), 4);
        assert_eq!(AttrCombo::EMPTY.scalar_items(), 0);
    }

    #[test]
    fn display_lists_labels() {
        let c = AttrCombo::EMPTY
            .with(AttrKind::User)
            .with(AttrKind::Process);
        assert_eq!(c.to_string(), "{User, Process}");
        assert_eq!(AttrCombo::EMPTY.to_string(), "{}");
    }

    #[test]
    fn iter_yields_members_in_bit_order() {
        let c = AttrCombo::EMPTY.with(AttrKind::Host).with(AttrKind::User);
        let v: Vec<AttrKind> = c.iter().collect();
        assert_eq!(v, vec![AttrKind::User, AttrKind::Host]);
    }
}

//! Plain-data state images of the mining model, for checkpointing.
//!
//! The durable tier (`farmer-stream::durable`) extends checkpoints from
//! serving snapshots to **full state images**: everything a miner needs
//! to resume mining mid-stream with bit-identical future behaviour. The
//! structs here are that image's in-memory form — plain owned data, no
//! private-field access, so the byte codec can live next to the WAL
//! (`farmer-store` codecs) without this crate growing a storage
//! dependency.
//!
//! # Bit-exactness contract
//!
//! Restoring a state image and continuing the stream must produce the
//! same bits as the uninterrupted miner. Every accumulator that shapes
//! future arithmetic is therefore carried as **raw `f64` bits**
//! (`f64::to_bits`), never re-derived:
//!
//! * node totals and edge masses stay in their *stamped* decay scale —
//!   pending lazy decay is preserved, not applied, so the restored node
//!   absorbs the same `exp(decay_ln − stamp)` factor on its next touch;
//! * cached per-edge degrees are historical values (degree as of the
//!   edge's last touch — the eviction-ordering key), so they are carried
//!   verbatim rather than recomputed against the current totals;
//! * the memoized path-similarity term round-trips exactly, including
//!   the NaN `inv_denom` staleness marker.
//!
//! Derived structures (id→slot index, edge counts, LDA tables, query
//! caches, window slot hints, the cached weakest-edge index) are rebuilt
//! or lazily re-derived on restore; dropping them is behaviour-neutral
//! by construction (stale hints always fall back to the index probe, and
//! a weakest rescan finds the same `(degree, to)` minimum the
//! incremental cache maintained).

use crate::extract::Request;

/// One successor edge's accumulators, in the owning node's decay scale.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeState {
    /// Successor file id.
    pub to: u32,
    /// LDA mass `N(A,B)` (raw bits).
    pub mass: u64,
    /// Similarity sum over co-occurrences (raw bits).
    pub sim_sum: u64,
    /// Co-occurrence count.
    pub sim_n: u32,
    /// Cached degree as of the edge's last touch (raw bits) — the
    /// eviction-ordering key, historical by design.
    pub deg: u64,
    /// Memoized path-intersection term (raw bits).
    pub path_inter: u64,
    /// Memoized reciprocal similarity denominator (raw bits; NaN bits
    /// mark a stale memo awaiting recomputation).
    pub inv_denom: u64,
    /// Whether the memo was computed with a path-bearing successor.
    pub succ_path: bool,
}

/// One node slot, in slab order.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeState {
    /// The file id this slot represents.
    pub id: u32,
    /// Total access count `N(A)` (raw bits, in the `stamp` scale).
    pub total: u64,
    /// Decay epoch the accumulators were last normalized to (raw bits).
    pub stamp: u64,
    /// Similarity lower bound (raw bits) — the prune-skip key.
    pub sim_lb: u64,
    /// Successor edges, ordered by ascending `to` (the node's `tos`
    /// order).
    pub edges: Vec<EdgeState>,
}

/// Full image of a [`crate::CorrelationGraph`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GraphState {
    /// Global log-scale decay epoch (raw bits).
    pub decay_ln: u64,
    /// Mutation epoch (restored so `version()` stays monotone across a
    /// recovery).
    pub epoch: u64,
    /// Live nodes in slab order — preserving the order keeps slot
    /// indices, and therefore every later swap-remove, identical to the
    /// uninterrupted miner's.
    pub nodes: Vec<NodeState>,
}

/// Full image of a [`crate::Farmer`] (everything not derivable from its
/// config). The config itself is deliberately *not* part of the image:
/// recovery runs under the caller-supplied config, which must match the
/// one the image was taken under — the same contract WAL replay already
/// has.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FarmerState {
    /// Requests observed so far.
    pub observed: u64,
    /// The look-ahead window, oldest first. Slot hints are not carried
    /// (restored entries probe the index on first touch — stale hints
    /// are safe by contract, absent ones equally so).
    pub window: Vec<Request>,
    /// Learned per-file paths as `(file id, components)`, sorted by id.
    pub paths: Vec<(u32, Vec<u32>)>,
    /// The correlation graph.
    pub graph: GraphState,
}

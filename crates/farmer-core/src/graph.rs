//! Stage 2 — Constructing: the weighted, directed correlation graph.
//!
//! "A node represents an accessed file and a directed edge that starts from
//! a predecessor node and ends at a successor node represents an access
//! order. The weight on each edge equals the value of correlation degree
//! between the predecessor and the successor." (paper §3.1, Stage 2)
//!
//! Each node tracks its total access count `N(A)`; each edge accumulates
//! the LDA successor mass `N(A,B)` and the running mean of the semantic
//! similarity observed at each co-occurrence. The correlation degree is
//! derived from those accumulators by the miner (see [`crate::miner`]).
//!
//! Memory discipline (paper §3.3): FARMER "does not need to maintain any
//! correlative information for weak correlations". Two mechanisms enforce
//! this: a hard per-node successor cap (lowest-degree edge evicted) and an
//! explicit [`CorrelationGraph::prune_below`] for dropping edges whose
//! degree has decayed under a floor.
//!
//! # Storage: sparse slotted nodes
//!
//! Nodes live in a dense slab of slots with an id→slot hash index, *not* in
//! a `Vec` indexed by file id. The slab holds exactly the live nodes
//! (freeing a node swap-removes its slot), so resident memory and every
//! whole-graph sweep are proportional to *active* nodes — never to the
//! magnitude of the largest file id observed. An open-ended id universe
//! (ids spread over 10^7 and beyond) costs the same as a dense one, and
//! [`CorrelationGraph::clear_node`] genuinely reclaims space.
//!
//! # Aging: O(1) lazy decay
//!
//! [`CorrelationGraph::age`] no longer sweeps the graph. The graph keeps a
//! global log-scale decay epoch `decay_ln = Σ ln(factor)` and each node a
//! `stamp` of the epoch its accumulators were last normalized to. Touching
//! a node (access, edge update, prune visit) first rescales its total and
//! edge masses by `exp(decay_ln − stamp)`; untouched nodes carry their
//! pending decay implicitly and read-side views apply the scale on the fly.
//! Each node pays for each aging epoch at most once, on its next touch.
//!
//! # Hot-path layout
//!
//! Per-node successor storage is a structure of arrays: a compact sorted
//! id array (`tos`, 16 successors = one cache line) searched on every
//! update, a parallel payload array holding the accumulators and the
//! memoized per-pair path-similarity term, and a parallel cached-degree
//! array that keeps the weakest-edge (cap eviction) scan off the
//! payloads. [`CorrelationGraph::mine_batch`] commits one event's window
//! of predecessor updates in two phases — locate + prefetch, then update —
//! so the one cold memory load per predecessor overlaps across the batch.
//!
//! # Complexity (d = per-node successor cap, n = active nodes, e = edges)
//!
//! | operation | dense spine (before) | sparse slotted (now) |
//! |---|---|---|
//! | `record_access` | O(1) + spine growth | O(1) hash probe |
//! | edge-update hit | O(d) strided scan + full similarity | one-line id scan + memoized term |
//! | edge-update full-node miss | O(d) min-scan | O(1) reject via cached weakest / O(d) admit |
//! | `age` | O(n_max_id + e) sweep | O(1) |
//! | `prune_below` | O(n_max_id + e) | O(n + e), skips `p·sim_lb ≥ floor` nodes |
//! | `retain_edges` / `heap_bytes` | O(n_max_id + e) | O(n + e) |
//! | `active_nodes` | O(n_max_id) scan | O(1) |
//! | resident memory | O(max file id) | O(active nodes) |

use farmer_trace::hash::FxHashMap;
use farmer_trace::FileId;

use crate::config::FarmerConfig;
use crate::miner;

/// Sentinel for "weakest-edge index unknown / no edges".
const NO_EDGE: u32 = u32::MAX;

/// First index in the sorted slice not less than `to` — a forward scan
/// with early exit: for a capped successor list (16 ids = one cache line)
/// this beats a binary search's unpredictable branches.
#[inline]
fn lower_bound(tos: &[u32], to: u32) -> usize {
    let mut pos = tos.len();
    for (j, &t) in tos.iter().enumerate() {
        if t >= to {
            pos = j;
            break;
        }
    }
    pos
}

/// Best-effort read prefetch of the cache line holding `t`.
#[inline(always)]
fn prefetch_read<T>(t: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: _mm_prefetch is a hint with no memory effects — it cannot
    // fault even on an invalid address, and `t` is a live reference anyway.
    unsafe {
        std::arch::x86_64::_mm_prefetch(t as *const T as *const i8, std::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = t;
}

/// One successor edge's accumulators (the payload half of the node's
/// structure-of-arrays edge storage; the successor id lives in the parallel
/// `Node::tos` array so the hit-path search touches one compact cache line).
#[derive(Debug, Clone, Copy)]
struct EdgeData {
    /// LDA-weighted successor mass `N(A,B)`, in the owning node's scale
    /// (see [`Node::stamp`]).
    mass: f64,
    /// Sum of semantic similarities over co-occurrences.
    sim_sum: f64,
    /// Number of co-occurrences (for the similarity mean).
    sim_n: u32,
    /// Memoized path-similarity term of this `(from, to)` file pair: the
    /// path intersection value, plus the reciprocal of the full similarity
    /// denominator (scalar + path items; 0.0 for an empty vector), so a hit
    /// evaluates the similarity with one fused multiply. Paths are learned
    /// once per file, so both are pure functions of the pair — computed
    /// once at edge creation, and eviction/forgetting invalidates the memo
    /// for free (the edge goes, the term goes).
    path_inter: f64,
    inv_denom: f64,
    /// Whether the memo was computed with the successor carrying a path.
    /// The successor side of the term comes from each event's path
    /// argument, so a presence flip (pathless ↔ path-bearing events for
    /// the same file) must recompute the memo — this keeps the memoized
    /// loop equivalent to the old per-event similarity, identically in
    /// batch and in every shard.
    succ_path: bool,
}

impl EdgeData {
    #[inline]
    fn sim_avg(&self) -> f64 {
        if self.sim_n == 0 {
            0.0
        } else {
            self.sim_sum / self.sim_n as f64
        }
    }
}

/// One file's node slot: total accesses plus its successor edges.
#[derive(Debug, Clone)]
struct Node {
    /// The file id this slot currently represents.
    id: u32,
    /// Total access count `N(A)`, in this node's scale (see `stamp`).
    total: f64,
    /// Value of the graph's `decay_ln` this node's accumulators were last
    /// normalized to. `stamp == decay_ln` means no decay is pending.
    stamp: f64,
    /// Successor file ids, sorted ascending. Kept separate from the
    /// payloads so the hit-path search scans one compact cache line
    /// (16 successors = 64 bytes) instead of striding across payloads.
    tos: Vec<u32>,
    /// Edge payloads, parallel to `tos`.
    edges: Vec<EdgeData>,
    /// Per-edge degree as of the edge's last touch, parallel to `tos`;
    /// the eviction-ordering key. Kept in its own compact array so the
    /// weakest-edge scan touches two cache lines, not every payload. The
    /// exact degree is recomputed at query time because `N(A)` keeps
    /// growing; this cached value is scale-invariant under uniform decay
    /// (mass/total is a ratio), so lazy aging never staleness it further
    /// than the dense sweep did.
    degs: Vec<f64>,
    /// Slot index (into `edges`) of the weakest edge by
    /// `(cached_degree, to)`, maintained incrementally so cap eviction does
    /// not re-scan on every insert. `NO_EDGE` when empty or stale.
    weakest: u32,
    /// Lower bound on every edge's mean similarity (maintained as the min
    /// over observed per-event sims, which bounds every mean from below);
    /// since an edge's degree is at least `p · sim_avg`, `p · sim_lb ≥
    /// floor` lets `prune_below` skip the whole node without touching its
    /// edges. Only decreases between prune visits (which recompute it from
    /// the exact means).
    sim_lb: f64,
}

impl Node {
    fn fresh(id: u32, stamp: f64) -> Node {
        Node {
            id,
            total: 0.0,
            stamp,
            tos: Vec::new(),
            edges: Vec::new(),
            degs: Vec::new(),
            weakest: NO_EDGE,
            sim_lb: f64::INFINITY,
        }
    }

    /// Apply any pending lazy decay so `total`/`mass` are in the current
    /// epoch's scale.
    #[inline]
    fn refresh(&mut self, decay_ln: f64) {
        if self.stamp == decay_ln {
            return;
        }
        let scale = (decay_ln - self.stamp).exp();
        self.total *= scale;
        for e in &mut self.edges {
            e.mass *= scale;
        }
        self.stamp = decay_ln;
    }

    /// Pending decay multiplier for read-side views (no mutation).
    #[inline]
    fn pending_scale(&self, decay_ln: f64) -> f64 {
        if self.stamp == decay_ln {
            1.0
        } else {
            (decay_ln - self.stamp).exp()
        }
    }

    /// Keep only edges for which `keep(to, payload) -> (keep, sim)` says
    /// so, compacting the three parallel arrays (`tos`/`edges`/`degs`) in
    /// lockstep — the single source of truth for that invariant. Returns
    /// the number of edges dropped; invalidates the weakest cache when
    /// anything was dropped.
    fn compact(&mut self, mut keep: impl FnMut(u32, &EdgeData) -> bool) -> usize {
        let before = self.tos.len();
        let mut keep_at = 0;
        for r in 0..before {
            if keep(self.tos[r], &self.edges[r]) {
                self.tos[keep_at] = self.tos[r];
                self.edges[keep_at] = self.edges[r];
                self.degs[keep_at] = self.degs[r];
                keep_at += 1;
            }
        }
        self.tos.truncate(keep_at);
        self.edges.truncate(keep_at);
        self.degs.truncate(keep_at);
        let dropped = before - keep_at;
        if dropped > 0 {
            self.weakest = NO_EDGE; // recomputed lazily at the cap
        }
        dropped
    }

    /// Recompute the weakest-edge index by `(cached degree, to)`.
    fn rescan_weakest(&mut self) {
        self.weakest = self
            .degs
            .iter()
            .zip(&self.tos)
            .enumerate()
            .min_by(|(_, (a, at)), (_, (b, bt))| a.total_cmp(b).then(at.cmp(bt)))
            .map_or(NO_EDGE, |(i, _)| i as u32);
    }

    /// Is `(degree, to)` strictly weaker than the current weakest edge?
    #[inline]
    fn weaker_than_weakest(&self, degree: f64, to: u32) -> bool {
        match self.degs.get(self.weakest as usize) {
            Some(w) => match degree.total_cmp(w) {
                std::cmp::Ordering::Less => true,
                std::cmp::Ordering::Equal => to < self.tos[self.weakest as usize],
                std::cmp::Ordering::Greater => false,
            },
            None => true,
        }
    }

    /// A live slot with no accesses and no edges is semantically inactive
    /// and must be freed (the slab holds active nodes only).
    #[inline]
    fn is_inactive(&self) -> bool {
        self.total == 0.0 && self.tos.is_empty()
    }
}

/// An opaque, best-effort handle to a node's slot, returned by
/// [`CorrelationGraph::record_access_hinted`]. A hint lets a later touch of
/// the same file skip the id→slot index probe: the graph validates it
/// against the slot's resident id and silently falls back to the index when
/// eviction has moved the node. Stale hints are therefore always safe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeHint(u32);

impl NodeHint {
    /// The always-invalid hint (forces an index probe).
    pub const NONE: NodeHint = NodeHint(u32::MAX);
}

/// Number of predecessor updates located-and-prefetched per pipeline
/// round in [`CorrelationGraph::mine_batch`].
const PIPELINE_WIDTH: usize = 8;

/// One windowed predecessor's pending edge update, prepared by the model's
/// mining loop and committed by [`CorrelationGraph::mine_batch`].
#[derive(Debug, Clone, Copy)]
pub struct PredUpdate {
    /// Predecessor file (edge source).
    pub file: FileId,
    /// Best-effort slot hint for the predecessor's node.
    pub hint: NodeHint,
    /// LDA weight of this co-occurrence.
    pub weight: f64,
    /// Scalar similarity intersection of the two requests.
    pub s_inter: f64,
    /// Scalar similarity item count.
    pub s_items: u32,
}

/// Read-only view of an edge, exposed for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeView {
    /// Successor file.
    pub to: FileId,
    /// Accumulated LDA mass `N(A,B)` (with pending decay applied).
    pub mass: f64,
    /// Mean semantic similarity across co-occurrences.
    pub sim_avg: f64,
    /// Correlation degree `R` computed with the *current* `N(A)`.
    pub degree: f64,
}

/// The correlation graph: a slab of live node slots plus an id→slot index.
#[derive(Debug, Default)]
pub struct CorrelationGraph {
    /// Live nodes, densely packed; freeing swap-removes.
    slots: Vec<Node>,
    /// file id → slot index.
    index: FxHashMap<u32, u32>,
    num_edges: usize,
    /// Global log-scale decay epoch: Σ ln(factor) over all `age` calls.
    decay_ln: f64,
    /// Mutation epoch: bumped by every state-changing operation, so read
    /// layers (the query cache in [`crate::model::Farmer`], snapshot
    /// staleness checks) can validate derived views in O(1).
    epoch: u64,
}

impl CorrelationGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn slot_of(&self, file: FileId) -> Option<usize> {
        self.index.get(&file.raw()).map(|&s| s as usize)
    }

    /// Slot of `file`, allocating a fresh one if absent.
    fn slot_or_insert(&mut self, file: FileId) -> usize {
        if let Some(&s) = self.index.get(&file.raw()) {
            return s as usize;
        }
        let s = self.slots.len();
        self.slots.push(Node::fresh(file.raw(), self.decay_ln));
        self.index.insert(file.raw(), s as u32);
        s
    }

    /// Free slot `s`: swap-remove it and re-point the index entry of the
    /// slot that moved into its place.
    fn free_slot(&mut self, s: usize) {
        let node = self.slots.swap_remove(s);
        self.index.remove(&node.id);
        if s < self.slots.len() {
            self.index.insert(self.slots[s].id, s as u32);
        }
    }

    /// Resolve a best-effort hint, falling back to the index probe when the
    /// hinted slot no longer holds `file`.
    #[inline]
    fn slot_by_hint(&self, file: FileId, hint: NodeHint) -> Option<usize> {
        match self.slots.get(hint.0 as usize) {
            Some(n) if n.id == file.raw() => Some(hint.0 as usize),
            _ => self.slot_of(file),
        }
    }

    /// Record one access to `file`, incrementing `N(file)`.
    pub fn record_access(&mut self, file: FileId) {
        let _ = self.record_access_hinted(file);
    }

    /// [`CorrelationGraph::record_access`], returning a [`NodeHint`] that a
    /// later mining touch of the same file can use to skip the index probe.
    pub fn record_access_hinted(&mut self, file: FileId) -> NodeHint {
        self.epoch += 1;
        let decay_ln = self.decay_ln;
        let s = self.slot_or_insert(file);
        let node = &mut self.slots[s];
        node.refresh(decay_ln);
        node.total += 1.0;
        NodeHint(s as u32)
    }

    /// Total access count `N(file)` (with pending decay applied).
    pub fn total_accesses(&self, file: FileId) -> f64 {
        match self.slot_of(file) {
            Some(s) => {
                let node = &self.slots[s];
                node.total * node.pending_scale(self.decay_ln)
            }
            None => 0.0,
        }
    }

    /// Update (or create) the edge `from → to` after observing `to` at LDA
    /// weight `weight` with semantic similarity `sim`. Enforces the
    /// per-node successor cap from `cfg`: at a full node the newcomer
    /// competes against the weakest edge by `(cached_degree, to)` — the
    /// common reject is a single comparison, no min-scan.
    ///
    /// A given edge must be driven consistently through *either* this
    /// pre-combined-similarity API *or* the decomposed
    /// [`CorrelationGraph::mine_edge`]/[`CorrelationGraph::mine_batch`]
    /// path: the memoized denominator baked into the edge assumes the
    /// scalar-item convention of whichever call created it, so mixing the
    /// two on one edge would mis-scale later similarities.
    pub fn update_edge(
        &mut self,
        from: FileId,
        to: FileId,
        weight: f64,
        sim: f64,
        cfg: &FarmerConfig,
    ) {
        // The pre-combined similarity is expressed as a pure scalar part
        // (one matching item) with an empty path term, which `mine_edge`
        // reproduces exactly: (sim + 0) / (1 + 0) = sim.
        self.mine_edge(
            from,
            NodeHint::NONE,
            to,
            weight,
            sim,
            1,
            false,
            || (0.0, 0),
            cfg,
        );
    }

    /// The mining hot-path edge update: the caller supplies the per-event
    /// *scalar* similarity part (`s_inter` matches over `s_items` items)
    /// and a thunk producing the per-pair *path* term. On a hit the stored
    /// term is reused (the thunk is never called); the path term is only
    /// computed when the edge is first created — the memoization that makes
    /// repeated co-occurrences allocation- and recompute-free.
    #[allow(clippy::too_many_arguments)]
    pub fn mine_edge(
        &mut self,
        from: FileId,
        from_hint: NodeHint,
        to: FileId,
        weight: f64,
        s_inter: f64,
        s_items: u32,
        succ_has_path: bool,
        path: impl FnOnce() -> (f64, u32),
        cfg: &FarmerConfig,
    ) {
        self.epoch += 1;
        let s = match self.slot_by_hint(from, from_hint) {
            Some(s) => s,
            None => self.slot_or_insert(from),
        };
        let mut path = Some(path);
        self.apply_at(
            s,
            None,
            to.raw(),
            weight,
            s_inter,
            s_items,
            succ_has_path,
            // lint: allow(panic) apply_at invokes the path closure at most
            // once (only when the edge is first created), so take() on the
            // second call is unreachable by construction
            &mut || path.take().expect("path term computed once")(),
            cfg,
        );
    }

    /// Mine one event against a batch of windowed predecessors in two
    /// phases: phase 1 resolves every predecessor's slot and successor
    /// position and issues a prefetch for exactly the edge payload each
    /// update will touch; phase 2 commits the updates. The per-predecessor
    /// payload line is the one cold load of the mining loop (the nodes and
    /// id arrays stay hot because consecutive events share four of five
    /// predecessors), so overlapping those loads is what pipelining buys.
    ///
    /// `path_term(pred_file)` is invoked only when a `pred_file → to` edge
    /// is first created (see [`CorrelationGraph::mine_edge`]).
    pub fn mine_batch(
        &mut self,
        preds: &[PredUpdate],
        to: FileId,
        succ_has_path: bool,
        mut path_term: impl FnMut(FileId) -> (f64, u32),
        cfg: &FarmerConfig,
    ) {
        self.epoch += 1;
        let to_raw = to.raw();
        for chunk in preds.chunks(PIPELINE_WIDTH) {
            let mut loc = [(0usize, usize::MAX); PIPELINE_WIDTH];
            for (k, pu) in chunk.iter().enumerate() {
                let s = match self.slot_by_hint(pu.file, pu.hint) {
                    Some(s) => s,
                    None => self.slot_or_insert(pu.file),
                };
                let node = &self.slots[s];
                let pos = lower_bound(&node.tos, to_raw);
                if node.tos.get(pos) == Some(&to_raw) {
                    prefetch_read(&node.edges[pos]);
                    loc[k] = (s, pos);
                } else {
                    loc[k] = (s, usize::MAX); // miss (or duplicate): re-search
                }
            }
            for (k, pu) in chunk.iter().enumerate() {
                let (s, pos) = loc[k];
                let hint = if pos == usize::MAX { None } else { Some(pos) };
                self.apply_at(
                    s,
                    hint,
                    to_raw,
                    pu.weight,
                    pu.s_inter,
                    pu.s_items,
                    succ_has_path,
                    &mut || path_term(pu.file),
                    cfg,
                );
            }
        }
    }

    /// Commit one edge update at a resolved slot. `pos_hint` is a phase-1
    /// hit position, re-validated here because an earlier update in the
    /// same batch (a duplicated predecessor) may have shifted the arrays.
    #[allow(clippy::too_many_arguments)]
    fn apply_at(
        &mut self,
        s: usize,
        pos_hint: Option<usize>,
        to_raw: u32,
        weight: f64,
        s_inter: f64,
        s_items: u32,
        succ_has_path: bool,
        path: &mut dyn FnMut() -> (f64, u32),
        cfg: &FarmerConfig,
    ) {
        let p = cfg.p;
        let max_successors = cfg.max_successors.max(1);
        let decay_ln = self.decay_ln;
        let node = &mut self.slots[s];
        node.refresh(decay_ln);
        let total = node.total.max(1.0);

        let (pos, hit) = match pos_hint {
            Some(ph) if node.tos.get(ph) == Some(&to_raw) => (ph, true),
            _ => {
                let pos = lower_bound(&node.tos, to_raw);
                (pos, node.tos.get(pos) == Some(&to_raw))
            }
        };
        if hit {
            let i = pos;
            let e = &mut node.edges[i];
            if e.inv_denom.is_nan() || e.succ_path != succ_has_path {
                // Memo stale: marked by a late predecessor-path learn or an
                // attribute-config change, or the successor's path presence
                // flipped versus the event the memo was computed from.
                // Recompute the pair term once, then memoize again.
                let (path_inter, path_items) = path();
                let denom = s_items + path_items;
                e.path_inter = path_inter;
                e.inv_denom = if denom == 0 {
                    0.0
                } else {
                    1.0 / f64::from(denom)
                };
                e.succ_path = succ_has_path;
            }
            let sim = (s_inter + e.path_inter) * e.inv_denom;
            e.mass += weight;
            e.sim_sum += sim;
            e.sim_n += 1;
            let avg = e.sim_sum / e.sim_n as f64;
            let deg = miner::correlation_degree(avg, miner::access_frequency(e.mass, total), p);
            node.degs[i] = deg;
            node.sim_lb = node.sim_lb.min(sim);
            if node.weakest == NO_EDGE {
                // Already stale; recomputed lazily when the cap bites.
            } else if node.weakest == i as u32 {
                node.weakest = NO_EDGE; // may have strengthened: go lazy
            } else if node.weaker_than_weakest(deg, to_raw) {
                node.weakest = i as u32;
            }
        } else {
            let (path_inter, path_items) = path();
            let denom = s_items + path_items;
            let inv_denom = if denom == 0 {
                0.0
            } else {
                1.0 / f64::from(denom)
            };
            let sim = (s_inter + path_inter) * inv_denom;
            let degree = miner::correlation_degree(sim, miner::access_frequency(weight, total), p);
            let edge = EdgeData {
                mass: weight,
                sim_sum: sim,
                sim_n: 1,
                path_inter,
                inv_denom,
                succ_path: succ_has_path,
            };
            if node.tos.len() < max_successors {
                node.tos.insert(pos, to_raw);
                node.edges.insert(pos, edge);
                node.degs.insert(pos, degree);
                self.num_edges += 1;
                node.sim_lb = node.sim_lb.min(sim);
                if node.weakest != NO_EDGE {
                    if node.weakest as usize >= pos {
                        node.weakest += 1; // shifted by the insert
                    }
                    if node.weaker_than_weakest(degree, to_raw) {
                        node.weakest = pos as u32;
                    }
                }
                return;
            }
            // Cap reached: admit only if strictly stronger than the
            // weakest; on admit, evict it and re-scan (admits are the
            // rare path — rejects cost one comparison).
            if node.weakest == NO_EDGE {
                node.rescan_weakest();
            }
            let w = node.weakest as usize;
            if degree > node.degs[w] {
                node.tos.remove(w);
                node.edges.remove(w);
                node.degs.remove(w);
                let pos = node.tos.partition_point(|&t| t < to_raw);
                node.tos.insert(pos, to_raw);
                node.edges.insert(pos, edge);
                node.degs.insert(pos, degree);
                node.sim_lb = node.sim_lb.min(sim);
                node.rescan_weakest();
            }
        }
    }

    /// Iterate over the successors of `file` (ordered by successor id) with
    /// degrees computed against the current `N(file)`.
    pub fn edges(&self, file: FileId, cfg: &FarmerConfig) -> impl Iterator<Item = EdgeView> + '_ {
        let p = cfg.p;
        let (scale, total, tos, edges) = match self.slot_of(file) {
            Some(s) => {
                let node = &self.slots[s];
                (
                    node.pending_scale(self.decay_ln),
                    node.total,
                    node.tos.as_slice(),
                    node.edges.as_slice(),
                )
            }
            None => (1.0, 0.0, &[] as &[u32], &[] as &[EdgeData]),
        };
        let total = (total * scale).max(1.0);
        edges.iter().zip(tos).map(move |(e, &to)| {
            let mass = e.mass * scale;
            let sim_avg = e.sim_avg();
            EdgeView {
                to: FileId::new(to),
                mass,
                sim_avg,
                degree: miner::correlation_degree(sim_avg, miner::access_frequency(mass, total), p),
            }
        })
    }

    /// Mark the memoized path-similarity terms of `file`'s *outgoing*
    /// edges stale, forcing recomputation on next touch. Called when a
    /// file's path is first learned *after* it already has mined edges —
    /// possible only when a front-end withheld the path on earlier
    /// observations. Only the predecessor side of a memo reads the learned
    /// path (the successor side comes from each event's path argument and
    /// is guarded by the per-edge presence flag), so this is O(out-degree),
    /// not a graph sweep.
    pub fn mark_path_memos_stale(&mut self, file: FileId) {
        self.epoch += 1;
        if let Some(s) = self.slot_of(file) {
            for e in &mut self.slots[s].edges {
                e.inv_denom = f64::NAN;
            }
        }
    }

    /// Mark every memoized path-similarity term stale. Called when the
    /// attribute combination or path algorithm changes mid-run, so that
    /// existing pairs re-evaluate under the new configuration (matching
    /// the documented rule that config changes affect future
    /// observations).
    pub fn mark_all_path_memos_stale(&mut self) {
        self.epoch += 1;
        for node in &mut self.slots {
            for e in &mut node.edges {
                e.inv_denom = f64::NAN;
            }
        }
    }

    /// Drop every edge whose current degree is below `floor`. Returns the
    /// number of edges removed.
    ///
    /// Visits only nodes that may actually have prunable edges: a node
    /// whose similarity lower bound gives `p · sim_lb ≥ floor` is skipped
    /// in O(1), since every one of its degrees is at least `p · sim_avg`.
    pub fn prune_below(&mut self, floor: f64, cfg: &FarmerConfig) -> usize {
        self.epoch += 1;
        let p = cfg.p;
        let decay_ln = self.decay_ln;
        let mut removed = 0;
        let mut s = 0;
        while s < self.slots.len() {
            let node = &mut self.slots[s];
            if node.tos.is_empty() || p * node.sim_lb >= floor {
                s += 1;
                continue;
            }
            node.refresh(decay_ln);
            let total = node.total.max(1.0);
            let mut sim_lb = f64::INFINITY;
            let dropped = node.compact(|_, e| {
                let sim = e.sim_avg();
                let deg = miner::correlation_degree(sim, miner::access_frequency(e.mass, total), p);
                if deg >= floor {
                    sim_lb = sim_lb.min(sim);
                    true
                } else {
                    false
                }
            });
            removed += dropped;
            // Keep the exact recomputed bound even when nothing dropped:
            // one historic low-sim event must not force a re-visit of a
            // now-strong node on every future prune tick.
            node.sim_lb = sim_lb;
            if node.is_inactive() {
                self.free_slot(s);
            } else {
                s += 1;
            }
        }
        self.num_edges -= removed;
        removed
    }

    /// Age the graph: multiply every node total and every edge's mass by
    /// `factor` (≤ 1). Semantic similarity means are *not* decayed —
    /// attributes "are rarely modified" (paper §3.2.3) — only the access
    /// frequency evidence fades, so stale sequence signal dies out while
    /// semantic structure is retained.
    ///
    /// O(1): only the global log-scale epoch advances; nodes absorb the
    /// factor lazily on their next touch.
    pub fn age(&mut self, factor: f64) {
        debug_assert!((0.0..=1.0).contains(&factor));
        if factor >= 1.0 {
            return;
        }
        self.epoch += 1;
        // Clamp away from 0: ln(0) = -inf would freeze the epoch forever
        // (-inf + anything stays -inf, so later age calls would no-op for
        // nodes stamped afterwards). The clamp decays accumulators to
        // ~5e-324 of their value on the next touch — indistinguishable
        // from the eager sweep's exact zeroes.
        self.decay_ln += factor.max(f64::MIN_POSITIVE).ln();
    }

    /// Drop every outgoing edge of `file` and reset its access count,
    /// releasing the node slot (and its storage) entirely. Incoming edges
    /// are untouched — pair with [`CorrelationGraph::remove_edges_to`] (or
    /// a batched [`CorrelationGraph::retain_edges`] sweep) for full node
    /// eviction. Returns the number of edges removed.
    pub fn clear_node(&mut self, file: FileId) -> usize {
        self.epoch += 1;
        match self.slot_of(file) {
            Some(s) => {
                let removed = self.slots[s].tos.len();
                self.free_slot(s);
                self.num_edges -= removed;
                removed
            }
            None => 0,
        }
    }

    /// Keep only edges for which `keep(from, to)` holds; one sweep over the
    /// live nodes, so batch evictions can clean the incoming edges of many
    /// victims at once. Returns the number of edges removed.
    pub fn retain_edges(&mut self, mut keep: impl FnMut(FileId, FileId) -> bool) -> usize {
        self.epoch += 1;
        let mut removed = 0;
        let mut s = 0;
        while s < self.slots.len() {
            let node = &mut self.slots[s];
            let from = FileId::new(node.id);
            removed += node.compact(|to, _| keep(from, FileId::new(to)));
            if node.is_inactive() {
                self.free_slot(s);
            } else {
                s += 1;
            }
        }
        self.num_edges -= removed;
        removed
    }

    /// Drop every edge pointing at `to`. Returns the number removed.
    pub fn remove_edges_to(&mut self, to: FileId) -> usize {
        self.retain_edges(|_, t| t != to)
    }

    /// Number of *active* nodes: files with a positive access count or at
    /// least one outgoing edge. O(1): the slab holds exactly the active
    /// nodes, so this is the live slot count — the quantity a streaming
    /// memory budget caps.
    #[inline]
    pub fn active_nodes(&self) -> usize {
        self.slots.len()
    }

    /// Number of node slots currently allocated. With sparse slotted
    /// storage this equals [`CorrelationGraph::active_nodes`] — the graph
    /// no longer keeps a dense spine up to the largest file id.
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.slots.len()
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The mutation epoch: changes whenever any graph state changes, so a
    /// derived view (sorted correlator cache, exported table) stamped with
    /// the epoch it was built at can be staleness-checked in O(1).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Iterate over the files with a live node (slab order, unspecified).
    pub fn files(&self) -> impl Iterator<Item = FileId> + '_ {
        self.slots.iter().map(|n| FileId::new(n.id))
    }

    /// Export the full graph state as plain data (slab order, raw f64
    /// bits) for checkpoint images. See [`crate::state`] for the
    /// bit-exactness contract; [`CorrelationGraph::from_state`] is the
    /// inverse.
    pub fn export_state(&self) -> crate::state::GraphState {
        crate::state::GraphState {
            decay_ln: self.decay_ln.to_bits(),
            epoch: self.epoch,
            nodes: self
                .slots
                .iter()
                .map(|n| crate::state::NodeState {
                    id: n.id,
                    total: n.total.to_bits(),
                    stamp: n.stamp.to_bits(),
                    sim_lb: n.sim_lb.to_bits(),
                    edges: n
                        .tos
                        .iter()
                        .zip(&n.edges)
                        .zip(&n.degs)
                        .map(|((&to, e), &deg)| crate::state::EdgeState {
                            to,
                            mass: e.mass.to_bits(),
                            sim_sum: e.sim_sum.to_bits(),
                            sim_n: e.sim_n,
                            deg: deg.to_bits(),
                            path_inter: e.path_inter.to_bits(),
                            inv_denom: e.inv_denom.to_bits(),
                            succ_path: e.succ_path,
                        })
                        .collect(),
                })
                .collect(),
        }
    }

    /// Rebuild a graph from an exported state image. Accumulators are
    /// restored bit for bit in slab order; the id→slot index and edge
    /// count are re-derived, and the per-node weakest-edge cache starts
    /// stale (`NO_EDGE`), which the next cap decision resolves by a
    /// rescan to the same `(degree, to)` minimum the incremental cache
    /// would have held.
    pub fn from_state(state: &crate::state::GraphState) -> CorrelationGraph {
        let mut g = CorrelationGraph {
            slots: Vec::with_capacity(state.nodes.len()),
            index: FxHashMap::default(),
            num_edges: 0,
            decay_ln: f64::from_bits(state.decay_ln),
            epoch: state.epoch,
        };
        for (s, ns) in state.nodes.iter().enumerate() {
            let mut node = Node::fresh(ns.id, f64::from_bits(ns.stamp));
            node.total = f64::from_bits(ns.total);
            node.sim_lb = f64::from_bits(ns.sim_lb);
            node.tos = ns.edges.iter().map(|e| e.to).collect();
            node.degs = ns.edges.iter().map(|e| f64::from_bits(e.deg)).collect();
            node.edges = ns
                .edges
                .iter()
                .map(|e| EdgeData {
                    mass: f64::from_bits(e.mass),
                    sim_sum: f64::from_bits(e.sim_sum),
                    sim_n: e.sim_n,
                    path_inter: f64::from_bits(e.path_inter),
                    inv_denom: f64::from_bits(e.inv_denom),
                    succ_path: e.succ_path,
                })
                .collect();
            g.num_edges += node.tos.len();
            g.index.insert(ns.id, s as u32);
            g.slots.push(node);
        }
        g
    }

    /// Approximate heap bytes held by the graph (Table 4 accounting):
    /// slab + per-node edge storage + id→slot index. O(active nodes),
    /// and — unlike the dense spine — independent of id magnitudes.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Node>()
            + self
                .slots
                .iter()
                .map(|n| {
                    n.edges.capacity() * std::mem::size_of::<EdgeData>()
                        + n.tos.capacity() * std::mem::size_of::<u32>()
                        + n.degs.capacity() * std::mem::size_of::<f64>()
                })
                .sum::<usize>()
            + self.index.capacity() * (2 * std::mem::size_of::<u32>() + 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileId {
        FileId::new(i)
    }

    fn cfg() -> FarmerConfig {
        FarmerConfig::default()
    }

    #[test]
    fn record_access_counts() {
        let mut g = CorrelationGraph::new();
        g.record_access(f(3));
        g.record_access(f(3));
        assert_eq!(g.total_accesses(f(3)), 2.0);
        assert_eq!(g.total_accesses(f(0)), 0.0);
        // Sparse storage: one live node, regardless of id magnitude.
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn storage_is_id_sparse() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(9_999_999));
        g.update_edge(f(9_999_999), f(5_000_000), 1.0, 0.5, &c);
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.active_nodes(), 1);
        let small = g.heap_bytes();
        // A dense spine would be hundreds of MiB here.
        assert!(small < 1 << 16, "heap {small} scales with id magnitude");
        assert_eq!(g.total_accesses(f(9_999_999)), 1.0);
    }

    #[test]
    fn update_edge_accumulates() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.8, &c);
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 0.9, 0.6, &c);
        let edges: Vec<EdgeView> = g.edges(f(0), &c).collect();
        assert_eq!(edges.len(), 1);
        assert!((edges[0].mass - 1.9).abs() < 1e-12);
        assert!((edges[0].sim_avg - 0.7).abs() < 1e-12);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edges_iterate_sorted_by_successor() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        for to in [9u32, 2, 7, 4] {
            g.update_edge(f(0), f(to), 1.0, 0.5, &c);
        }
        let succs: Vec<u32> = g.edges(f(0), &c).map(|e| e.to.raw()).collect();
        assert_eq!(succs, vec![2, 4, 7, 9]);
    }

    #[test]
    fn degree_combines_sim_and_frequency() {
        let mut g = CorrelationGraph::new();
        let c = cfg(); // p = 0.7
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.5, &c);
        let e: Vec<EdgeView> = g.edges(f(0), &c).collect();
        // F = 1.0/1.0 = 1, sim = 0.5 -> R = 0.5*0.7 + 1.0*0.3 = 0.65.
        assert!((e[0].degree - 0.65).abs() < 1e-12, "degree {}", e[0].degree);
    }

    #[test]
    fn degree_reflects_growing_total() {
        // As N(A) grows without B recurring, F decays and so does R.
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.5, &c);
        let before = g.edges(f(0), &c).next().unwrap().degree;
        for _ in 0..9 {
            g.record_access(f(0));
        }
        let after = g.edges(f(0), &c).next().unwrap().degree;
        assert!(after < before, "{after} !< {before}");
        // Semantic part survives: R >= p * sim.
        assert!(after >= 0.7 * 0.5 - 1e-12);
    }

    #[test]
    fn successor_cap_evicts_weakest() {
        let mut g = CorrelationGraph::new();
        let mut c = cfg();
        c.max_successors = 2;
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.1, &c); // weak sim
        g.update_edge(f(0), f(2), 1.0, 0.9, &c); // strong sim
        g.update_edge(f(0), f(3), 1.0, 0.5, &c); // mid: evicts f(1)
        let succs: Vec<u32> = g.edges(f(0), &c).map(|e| e.to.raw()).collect();
        assert_eq!(succs.len(), 2);
        assert!(succs.contains(&2));
        assert!(succs.contains(&3));
        assert!(!succs.contains(&1));
    }

    #[test]
    fn cap_does_not_admit_weaker_newcomer() {
        let mut g = CorrelationGraph::new();
        let mut c = cfg();
        c.max_successors = 1;
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.9, &c);
        g.update_edge(f(0), f(2), 0.1, 0.0, &c); // weaker, must bounce
        let succs: Vec<u32> = g.edges(f(0), &c).map(|e| e.to.raw()).collect();
        assert_eq!(succs, vec![1]);
    }

    #[test]
    fn cap_eviction_tracks_weakest_across_touches() {
        // The weakest edge strengthens via touches; the incremental weakest
        // pointer must follow, so the *new* weakest is the one evicted.
        let mut g = CorrelationGraph::new();
        let mut c = cfg();
        c.max_successors = 2;
        c.p = 1.0; // degree == sim: deterministic ordering
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.2, &c); // weakest at first
        g.update_edge(f(0), f(2), 1.0, 0.4, &c);
        g.update_edge(f(0), f(1), 1.0, 1.0, &c); // f1 sim_avg -> 0.6: now strongest
        g.update_edge(f(0), f(3), 1.0, 0.5, &c); // must evict f2, not f1
        let succs: Vec<u32> = g.edges(f(0), &c).map(|e| e.to.raw()).collect();
        assert_eq!(succs, vec![1, 3]);
    }

    #[test]
    fn mine_batch_handles_duplicate_predecessors() {
        // The same predecessor file can appear twice in one window (two
        // distances). The pipelined batch must commit both updates — the
        // second re-validates its phase-1 position after the first's
        // insert.
        let c = cfg();
        let batch = |g: &mut CorrelationGraph| {
            let preds = [
                PredUpdate {
                    file: f(7),
                    hint: NodeHint::NONE,
                    weight: 1.0,
                    s_inter: 0.5,
                    s_items: 1,
                },
                PredUpdate {
                    file: f(7),
                    hint: NodeHint::NONE,
                    weight: 0.8,
                    s_inter: 0.5,
                    s_items: 1,
                },
            ];
            g.mine_batch(&preds, f(3), false, |_| (0.0, 0), &c);
        };
        let mut g = CorrelationGraph::new();
        g.record_access(f(7));
        batch(&mut g);
        let mut seq = CorrelationGraph::new();
        seq.record_access(f(7));
        seq.update_edge(f(7), f(3), 1.0, 0.5, &c);
        seq.update_edge(f(7), f(3), 0.8, 0.5, &c);
        let got: Vec<EdgeView> = g.edges(f(7), &c).collect();
        let want: Vec<EdgeView> = seq.edges(f(7), &c).collect();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].mass.to_bits(), want[0].mass.to_bits());
        assert_eq!(got[0].degree.to_bits(), want[0].degree.to_bits());
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn stale_hints_are_safe() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        let hint_a = g.record_access_hinted(f(1));
        let _ = g.record_access_hinted(f(2));
        // Evicting f(1) frees its slot; f(2) swaps into it. The stale hint
        // for f(1) now points at f(2)'s slot and must fall back cleanly.
        g.clear_node(f(1));
        g.mine_edge(f(1), hint_a, f(9), 1.0, 0.5, 1, false, || (0.0, 0), &c);
        let succs: Vec<u32> = g.edges(f(1), &c).map(|e| e.to.raw()).collect();
        assert_eq!(succs, vec![9]);
        assert_eq!(g.total_accesses(f(2)), 1.0, "bystander node corrupted");
    }

    #[test]
    fn prune_below_drops_weak_edges() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.9, &c); // strong
        g.update_edge(f(0), f(2), 0.05, 0.0, &c); // weak
        let removed = g.prune_below(0.3, &c);
        assert_eq!(removed, 1);
        let succs: Vec<u32> = g.edges(f(0), &c).map(|e| e.to.raw()).collect();
        assert_eq!(succs, vec![1]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn prune_skip_bound_is_sound() {
        // A node whose every sim clears floor/p is skipped; one with a weak
        // frequency-only edge is not. Same outcome either way.
        let mut g = CorrelationGraph::new();
        let mut c = cfg();
        c.p = 0.7;
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.9, &c); // p*sim = 0.63 >= floor
        g.record_access(f(2));
        g.update_edge(f(2), f(3), 0.01, 0.0, &c); // prunable
        let removed = g.prune_below(0.3, &c);
        assert_eq!(removed, 1);
        assert_eq!(g.edges(f(0), &c).count(), 1);
        assert_eq!(g.edges(f(2), &c).count(), 0);
    }

    #[test]
    fn edges_of_unknown_node_empty() {
        let g = CorrelationGraph::new();
        assert_eq!(g.edges(f(42), &cfg()).count(), 0);
    }

    #[test]
    fn aging_scales_mass_but_keeps_frequency_ratio() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        // Keep totals well above the divide-by-zero clamp so the ratio
        // invariance is observable.
        for _ in 0..4 {
            g.record_access(f(0));
            g.update_edge(f(0), f(1), 1.0, 0.5, &c);
        }
        let before = g.edges(f(0), &c).next().unwrap();
        g.age(0.5);
        let after = g.edges(f(0), &c).next().unwrap();
        assert!((after.mass - before.mass * 0.5).abs() < 1e-12);
        // F = mass/total is invariant under uniform aging...
        assert!((after.degree - before.degree).abs() < 1e-12);
        // ...but fresh accesses of A now outweigh the aged mass faster.
        g.record_access(f(0));
        let diluted = g.edges(f(0), &c).next().unwrap();
        assert!(diluted.degree < after.degree);
    }

    #[test]
    fn aging_to_zero_does_not_freeze_the_epoch() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        for _ in 0..4 {
            g.record_access(f(0));
            g.update_edge(f(0), f(1), 1.0, 0.5, &c);
        }
        g.age(0.0); // ln(0) must not poison the epoch with -inf
        assert!((g.total_accesses(f(0))).abs() < 1e-9, "total not wiped");
        // Nodes created after the zero-age still decay normally.
        for _ in 0..4 {
            g.record_access(f(2));
        }
        g.age(0.5);
        assert!(
            (g.total_accesses(f(2)) - 2.0).abs() < 1e-9,
            "post-zero decay broken: {}",
            g.total_accesses(f(2))
        );
    }

    #[test]
    fn aging_with_factor_one_is_noop() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.5, &c);
        let before = g.edges(f(0), &c).next().unwrap();
        g.age(1.0);
        let after = g.edges(f(0), &c).next().unwrap();
        assert_eq!(before.mass.to_bits(), after.mass.to_bits());
    }

    #[test]
    fn lazy_decay_is_absorbed_on_touch() {
        // Two nodes age; only one is touched afterwards. Both must report
        // identically decayed state: pending decay is invisible to readers.
        let mut g = CorrelationGraph::new();
        let c = cfg();
        for file in [0u32, 5] {
            for _ in 0..4 {
                g.record_access(f(file));
                g.update_edge(f(file), f(file + 1), 1.0, 0.5, &c);
            }
        }
        g.age(0.5);
        g.age(0.5); // two stacked epochs
                    // Touch node 0 (absorbs decay eagerly); node 5 stays lazy.
        g.record_access(f(0));
        let touched_total = g.total_accesses(f(0));
        let lazy_total = g.total_accesses(f(5));
        assert!((touched_total - (4.0 * 0.25 + 1.0)).abs() < 1e-9);
        assert!((lazy_total - 4.0 * 0.25).abs() < 1e-9);
        let lazy_mass = g.edges(f(5), &c).next().unwrap().mass;
        let touched_mass = g.edges(f(0), &c).next().unwrap().mass;
        assert!((lazy_mass - 4.0 * 0.25).abs() < 1e-9);
        assert!((touched_mass - lazy_mass).abs() < 1e-12);
    }

    #[test]
    fn clear_node_drops_outgoing_and_total() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.5, &c);
        g.update_edge(f(0), f(2), 1.0, 0.5, &c);
        assert_eq!(g.clear_node(f(0)), 2);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_accesses(f(0)), 0.0);
        assert_eq!(g.edges(f(0), &c).count(), 0);
        // Unknown nodes are a no-op.
        assert_eq!(g.clear_node(f(99)), 0);
    }

    #[test]
    fn clear_node_reclaims_the_slot() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        for i in 0..64u32 {
            g.record_access(f(i));
            g.update_edge(f(i), f(i + 1_000_000), 1.0, 0.5, &c);
        }
        assert_eq!(g.num_nodes(), 64);
        for i in 0..64u32 {
            g.clear_node(f(i));
        }
        assert_eq!(g.num_nodes(), 0, "slots must be reclaimed");
        assert_eq!(g.num_edges(), 0);
        // Re-admission works and indexes correctly after slot churn.
        g.record_access(f(7));
        assert_eq!(g.total_accesses(f(7)), 1.0);
        assert_eq!(g.num_nodes(), 1);
    }

    #[test]
    fn remove_edges_to_cleans_incoming() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.record_access(f(1));
        g.update_edge(f(0), f(2), 1.0, 0.5, &c);
        g.update_edge(f(1), f(2), 1.0, 0.5, &c);
        g.update_edge(f(1), f(3), 1.0, 0.5, &c);
        assert_eq!(g.remove_edges_to(f(2)), 2);
        assert_eq!(g.num_edges(), 1);
        let succs: Vec<u32> = g.edges(f(1), &c).map(|e| e.to.raw()).collect();
        assert_eq!(succs, vec![3]);
    }

    #[test]
    fn retain_edges_batch_sweep() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        for to in 1..5 {
            g.update_edge(f(0), f(to), 1.0, 0.5, &c);
        }
        let removed = g.retain_edges(|_, to| to.raw() % 2 == 0);
        assert_eq!(removed, 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn retain_edges_frees_emptied_unaccessed_nodes() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        // Node 0 has accesses (stays active when emptied); node 1 does not.
        g.record_access(f(0));
        g.update_edge(f(0), f(9), 1.0, 0.5, &c);
        g.update_edge(f(1), f(9), 1.0, 0.5, &c);
        assert_eq!(g.active_nodes(), 2);
        g.remove_edges_to(f(9));
        assert_eq!(g.active_nodes(), 1);
        assert_eq!(g.total_accesses(f(0)), 1.0);
    }

    #[test]
    fn active_nodes_tracks_eviction() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(7));
        g.update_edge(f(7), f(3), 1.0, 0.5, &c);
        // Node 3 exists only as an edge target; node 7 is active.
        assert_eq!(g.active_nodes(), 1);
        g.clear_node(f(7));
        assert_eq!(g.active_nodes(), 0);
        assert_eq!(g.num_nodes(), 0, "slot storage is reclaimed on eviction");
    }

    #[test]
    fn heap_bytes_grow_with_edges() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        let before = g.heap_bytes();
        g.record_access(f(0));
        for i in 1..10 {
            g.update_edge(f(0), f(i), 1.0, 0.5, &c);
        }
        assert!(g.heap_bytes() > before);
    }
}

//! Stage 2 — Constructing: the weighted, directed correlation graph.
//!
//! "A node represents an accessed file and a directed edge that starts from
//! a predecessor node and ends at a successor node represents an access
//! order. The weight on each edge equals the value of correlation degree
//! between the predecessor and the successor." (paper §3.1, Stage 2)
//!
//! Each node tracks its total access count `N(A)`; each edge accumulates
//! the LDA successor mass `N(A,B)` and the running mean of the semantic
//! similarity observed at each co-occurrence. The correlation degree is
//! derived from those accumulators by the miner (see [`crate::miner`]).
//!
//! Memory discipline (paper §3.3): FARMER "does not need to maintain any
//! correlative information for weak correlations". Two mechanisms enforce
//! this: a hard per-node successor cap (lowest-degree edge evicted) and an
//! explicit [`CorrelationGraph::prune_below`] for dropping edges whose
//! degree has decayed under a floor.

use farmer_trace::FileId;

use crate::config::FarmerConfig;
use crate::miner;

/// One successor edge's accumulators.
#[derive(Debug, Clone)]
struct Edge {
    to: u32,
    /// LDA-weighted successor mass `N(A,B)`.
    mass: f64,
    /// Sum of semantic similarities over co-occurrences.
    sim_sum: f64,
    /// Number of co-occurrences (for the similarity mean).
    sim_n: u32,
    /// Degree as of the last touch; used for eviction ordering. The exact
    /// degree is recomputed at query time because `N(A)` keeps growing.
    cached_degree: f64,
}

/// One file's node: total accesses plus its successor edges.
#[derive(Debug, Clone, Default)]
struct Node {
    /// Total access count `N(A)`.
    total: f64,
    edges: Vec<Edge>,
}

/// Read-only view of an edge, exposed for diagnostics and tests.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EdgeView {
    /// Successor file.
    pub to: FileId,
    /// Accumulated LDA mass `N(A,B)`.
    pub mass: f64,
    /// Mean semantic similarity across co-occurrences.
    pub sim_avg: f64,
    /// Correlation degree `R` computed with the *current* `N(A)`.
    pub degree: f64,
}

/// The correlation graph. Nodes are indexed densely by [`FileId`].
#[derive(Debug, Default)]
pub struct CorrelationGraph {
    nodes: Vec<Node>,
    num_edges: usize,
}

impl CorrelationGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    fn node_mut(&mut self, file: FileId) -> &mut Node {
        let idx = file.index();
        if idx >= self.nodes.len() {
            self.nodes.resize_with(idx + 1, Node::default);
        }
        &mut self.nodes[idx]
    }

    /// Record one access to `file`, incrementing `N(file)`.
    pub fn record_access(&mut self, file: FileId) {
        self.node_mut(file).total += 1.0;
    }

    /// Total access count `N(file)`.
    pub fn total_accesses(&self, file: FileId) -> f64 {
        self.nodes.get(file.index()).map_or(0.0, |n| n.total)
    }

    /// Update (or create) the edge `from → to` after observing `to` at LDA
    /// weight `weight` with semantic similarity `sim`. Enforces the
    /// per-node successor cap from `cfg`.
    pub fn update_edge(
        &mut self,
        from: FileId,
        to: FileId,
        weight: f64,
        sim: f64,
        cfg: &FarmerConfig,
    ) {
        let p = cfg.p;
        let max_successors = cfg.max_successors.max(1);
        let node = self.node_mut(from);
        let total = node.total.max(1.0);

        if let Some(e) = node.edges.iter_mut().find(|e| e.to == to.raw()) {
            e.mass += weight;
            e.sim_sum += sim;
            e.sim_n += 1;
            e.cached_degree = miner::correlation_degree(
                e.sim_sum / e.sim_n as f64,
                miner::access_frequency(e.mass, total),
                p,
            );
            return;
        }

        let degree = miner::correlation_degree(sim, miner::access_frequency(weight, total), p);
        let edge = Edge {
            to: to.raw(),
            mass: weight,
            sim_sum: sim,
            sim_n: 1,
            cached_degree: degree,
        };
        if node.edges.len() < max_successors {
            node.edges.push(edge);
            self.num_edges += 1;
            return;
        }
        // Cap reached: replace the weakest edge if the newcomer is stronger.
        let (weakest_idx, weakest_degree) = node
            .edges
            .iter()
            .enumerate()
            .map(|(i, e)| (i, e.cached_degree))
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("cap >= 1");
        if degree > weakest_degree {
            node.edges[weakest_idx] = edge;
        }
    }

    /// Iterate over the successors of `file` with degrees computed against
    /// the current `N(file)`.
    pub fn edges(&self, file: FileId, cfg: &FarmerConfig) -> impl Iterator<Item = EdgeView> + '_ {
        let p = cfg.p;
        let (total, edges) = match self.nodes.get(file.index()) {
            Some(n) => (n.total.max(1.0), n.edges.as_slice()),
            None => (1.0, &[] as &[Edge]),
        };
        edges.iter().map(move |e| EdgeView {
            to: FileId::new(e.to),
            mass: e.mass,
            sim_avg: if e.sim_n == 0 {
                0.0
            } else {
                e.sim_sum / e.sim_n as f64
            },
            degree: miner::correlation_degree(
                if e.sim_n == 0 {
                    0.0
                } else {
                    e.sim_sum / e.sim_n as f64
                },
                miner::access_frequency(e.mass, total),
                p,
            ),
        })
    }

    /// Drop every edge whose current degree is below `floor`. Returns the
    /// number of edges removed.
    pub fn prune_below(&mut self, floor: f64, cfg: &FarmerConfig) -> usize {
        let p = cfg.p;
        let mut removed = 0;
        for node in &mut self.nodes {
            let total = node.total.max(1.0);
            let before = node.edges.len();
            node.edges.retain(|e| {
                let sim = if e.sim_n == 0 {
                    0.0
                } else {
                    e.sim_sum / e.sim_n as f64
                };
                let deg = miner::correlation_degree(sim, miner::access_frequency(e.mass, total), p);
                deg >= floor
            });
            removed += before - node.edges.len();
        }
        self.num_edges -= removed;
        removed
    }

    /// Age the graph: multiply every node total and every edge's mass by
    /// `factor` (≤ 1). Semantic similarity means are *not* decayed —
    /// attributes "are rarely modified" (paper §3.2.3) — only the access
    /// frequency evidence fades, so stale sequence signal dies out while
    /// semantic structure is retained.
    pub fn age(&mut self, factor: f64) {
        debug_assert!((0.0..=1.0).contains(&factor));
        if factor >= 1.0 {
            return;
        }
        for node in &mut self.nodes {
            node.total *= factor;
            for e in &mut node.edges {
                e.mass *= factor;
                e.cached_degree *= factor; // conservative; exact on next touch
            }
        }
    }

    /// Drop every outgoing edge of `file` and reset its access count,
    /// releasing the edge storage. Incoming edges are untouched — pair with
    /// [`CorrelationGraph::remove_edges_to`] (or a batched
    /// [`CorrelationGraph::retain_edges`] sweep) for full node eviction.
    /// Returns the number of edges removed.
    pub fn clear_node(&mut self, file: FileId) -> usize {
        match self.nodes.get_mut(file.index()) {
            Some(node) => {
                let removed = node.edges.len();
                node.edges = Vec::new();
                node.total = 0.0;
                self.num_edges -= removed;
                removed
            }
            None => 0,
        }
    }

    /// Keep only edges for which `keep(from, to)` holds; one sweep over the
    /// whole graph, so batch evictions can clean the incoming edges of many
    /// victims at once. Returns the number of edges removed.
    pub fn retain_edges(&mut self, mut keep: impl FnMut(FileId, FileId) -> bool) -> usize {
        let mut removed = 0;
        for (idx, node) in self.nodes.iter_mut().enumerate() {
            let from = FileId::new(idx as u32);
            let before = node.edges.len();
            node.edges.retain(|e| keep(from, FileId::new(e.to)));
            removed += before - node.edges.len();
        }
        self.num_edges -= removed;
        removed
    }

    /// Drop every edge pointing at `to`. Returns the number removed.
    pub fn remove_edges_to(&mut self, to: FileId) -> usize {
        self.retain_edges(|_, t| t != to)
    }

    /// Number of *active* nodes: files with a positive access count or at
    /// least one outgoing edge. This — not [`CorrelationGraph::num_nodes`],
    /// which is a dense index bound — is the quantity a streaming memory
    /// budget caps.
    pub fn active_nodes(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.total > 0.0 || !n.edges.is_empty())
            .count()
    }

    /// Number of nodes allocated (dense upper bound of observed file ids).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Approximate heap bytes held by the graph (Table 4 accounting).
    pub fn heap_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self
                .nodes
                .iter()
                .map(|n| n.edges.capacity() * std::mem::size_of::<Edge>())
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(i: u32) -> FileId {
        FileId::new(i)
    }

    fn cfg() -> FarmerConfig {
        FarmerConfig::default()
    }

    #[test]
    fn record_access_counts() {
        let mut g = CorrelationGraph::new();
        g.record_access(f(3));
        g.record_access(f(3));
        assert_eq!(g.total_accesses(f(3)), 2.0);
        assert_eq!(g.total_accesses(f(0)), 0.0);
        assert_eq!(g.num_nodes(), 4);
    }

    #[test]
    fn update_edge_accumulates() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.8, &c);
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 0.9, 0.6, &c);
        let edges: Vec<EdgeView> = g.edges(f(0), &c).collect();
        assert_eq!(edges.len(), 1);
        assert!((edges[0].mass - 1.9).abs() < 1e-12);
        assert!((edges[0].sim_avg - 0.7).abs() < 1e-12);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn degree_combines_sim_and_frequency() {
        let mut g = CorrelationGraph::new();
        let c = cfg(); // p = 0.7
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.5, &c);
        let e: Vec<EdgeView> = g.edges(f(0), &c).collect();
        // F = 1.0/1.0 = 1, sim = 0.5 -> R = 0.5*0.7 + 1.0*0.3 = 0.65.
        assert!((e[0].degree - 0.65).abs() < 1e-12, "degree {}", e[0].degree);
    }

    #[test]
    fn degree_reflects_growing_total() {
        // As N(A) grows without B recurring, F decays and so does R.
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.5, &c);
        let before = g.edges(f(0), &c).next().unwrap().degree;
        for _ in 0..9 {
            g.record_access(f(0));
        }
        let after = g.edges(f(0), &c).next().unwrap().degree;
        assert!(after < before, "{after} !< {before}");
        // Semantic part survives: R >= p * sim.
        assert!(after >= 0.7 * 0.5 - 1e-12);
    }

    #[test]
    fn successor_cap_evicts_weakest() {
        let mut g = CorrelationGraph::new();
        let mut c = cfg();
        c.max_successors = 2;
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.1, &c); // weak sim
        g.update_edge(f(0), f(2), 1.0, 0.9, &c); // strong sim
        g.update_edge(f(0), f(3), 1.0, 0.5, &c); // mid: evicts f(1)
        let succs: Vec<u32> = g.edges(f(0), &c).map(|e| e.to.raw()).collect();
        assert_eq!(succs.len(), 2);
        assert!(succs.contains(&2));
        assert!(succs.contains(&3));
        assert!(!succs.contains(&1));
    }

    #[test]
    fn cap_does_not_admit_weaker_newcomer() {
        let mut g = CorrelationGraph::new();
        let mut c = cfg();
        c.max_successors = 1;
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.9, &c);
        g.update_edge(f(0), f(2), 0.1, 0.0, &c); // weaker, must bounce
        let succs: Vec<u32> = g.edges(f(0), &c).map(|e| e.to.raw()).collect();
        assert_eq!(succs, vec![1]);
    }

    #[test]
    fn prune_below_drops_weak_edges() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.9, &c); // strong
        g.update_edge(f(0), f(2), 0.05, 0.0, &c); // weak
        let removed = g.prune_below(0.3, &c);
        assert_eq!(removed, 1);
        let succs: Vec<u32> = g.edges(f(0), &c).map(|e| e.to.raw()).collect();
        assert_eq!(succs, vec![1]);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edges_of_unknown_node_empty() {
        let g = CorrelationGraph::new();
        assert_eq!(g.edges(f(42), &cfg()).count(), 0);
    }

    #[test]
    fn aging_scales_mass_but_keeps_frequency_ratio() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        // Keep totals well above the divide-by-zero clamp so the ratio
        // invariance is observable.
        for _ in 0..4 {
            g.record_access(f(0));
            g.update_edge(f(0), f(1), 1.0, 0.5, &c);
        }
        let before = g.edges(f(0), &c).next().unwrap();
        g.age(0.5);
        let after = g.edges(f(0), &c).next().unwrap();
        assert!((after.mass - before.mass * 0.5).abs() < 1e-12);
        // F = mass/total is invariant under uniform aging...
        assert!((after.degree - before.degree).abs() < 1e-12);
        // ...but fresh accesses of A now outweigh the aged mass faster.
        g.record_access(f(0));
        let diluted = g.edges(f(0), &c).next().unwrap();
        assert!(diluted.degree < after.degree);
    }

    #[test]
    fn aging_with_factor_one_is_noop() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.5, &c);
        let before = g.edges(f(0), &c).next().unwrap();
        g.age(1.0);
        let after = g.edges(f(0), &c).next().unwrap();
        assert_eq!(before.mass.to_bits(), after.mass.to_bits());
    }

    #[test]
    fn clear_node_drops_outgoing_and_total() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.update_edge(f(0), f(1), 1.0, 0.5, &c);
        g.update_edge(f(0), f(2), 1.0, 0.5, &c);
        assert_eq!(g.clear_node(f(0)), 2);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.total_accesses(f(0)), 0.0);
        assert_eq!(g.edges(f(0), &c).count(), 0);
        // Unknown nodes are a no-op.
        assert_eq!(g.clear_node(f(99)), 0);
    }

    #[test]
    fn remove_edges_to_cleans_incoming() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(0));
        g.record_access(f(1));
        g.update_edge(f(0), f(2), 1.0, 0.5, &c);
        g.update_edge(f(1), f(2), 1.0, 0.5, &c);
        g.update_edge(f(1), f(3), 1.0, 0.5, &c);
        assert_eq!(g.remove_edges_to(f(2)), 2);
        assert_eq!(g.num_edges(), 1);
        let succs: Vec<u32> = g.edges(f(1), &c).map(|e| e.to.raw()).collect();
        assert_eq!(succs, vec![3]);
    }

    #[test]
    fn retain_edges_batch_sweep() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        for to in 1..5 {
            g.update_edge(f(0), f(to), 1.0, 0.5, &c);
        }
        let removed = g.retain_edges(|_, to| to.raw() % 2 == 0);
        assert_eq!(removed, 2);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn active_nodes_tracks_eviction() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        g.record_access(f(7));
        g.update_edge(f(7), f(3), 1.0, 0.5, &c);
        // Node 3 exists only as an edge target; node 7 is active.
        assert_eq!(g.active_nodes(), 1);
        g.clear_node(f(7));
        assert_eq!(g.active_nodes(), 0);
        assert!(g.num_nodes() >= 8, "dense index bound is not shrunk");
    }

    #[test]
    fn heap_bytes_grow_with_edges() {
        let mut g = CorrelationGraph::new();
        let c = cfg();
        let before = g.heap_bytes();
        g.record_access(f(0));
        for i in 1..10 {
            g.update_edge(f(0), f(i), 1.0, 0.5, &c);
        }
        assert!(g.heap_bytes() > before);
    }
}

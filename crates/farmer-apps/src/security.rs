//! FARMER-enabled security (§4.3): correlation-aware rule propagation.
//!
//! A rule configured on one file is automatically extended to files that
//! are strongly correlated with it. Propagation follows the correlation
//! graph transitively with multiplicative degree decay, so a rule's reach
//! is bounded both by the validity threshold and by a hop limit —
//! "intelligent secure storage" without per-file administration.

use farmer_core::{CorrelationSource, Correlator};
use farmer_trace::hash::FxHashMap;
use farmer_trace::{FileId, TraceEvent, UserId};

/// What a rule does when it matches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuleAction {
    /// Deny the subject access to the file.
    Deny,
    /// Require audit logging for the access.
    Audit,
}

/// A user-configured access rule on one file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRule {
    /// The file the administrator attached the rule to.
    pub file: FileId,
    /// Subject the rule constrains (None = every user).
    pub subject: Option<UserId>,
    /// Action on match.
    pub action: RuleAction,
}

/// Outcome of checking one access against the policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDecision {
    /// No rule applies.
    Allow,
    /// A rule (origin file, effective strength in 0–1) denies the access.
    Deny {
        /// File the triggering rule was originally attached to.
        origin: FileId,
        /// Propagated strength (1.0 at the origin itself).
        strength_millis: u32,
    },
    /// A rule requires auditing this access.
    Audit {
        /// File the triggering rule was originally attached to.
        origin: FileId,
    },
}

/// Propagation tuning.
#[derive(Debug, Clone, Copy)]
pub struct PropagationConfig {
    /// Minimum correlation degree for an edge to carry a rule.
    pub min_degree: f64,
    /// Maximum hops from the origin file.
    pub max_hops: usize,
    /// Minimum accumulated strength for a propagated rule to stay active.
    pub min_strength: f64,
}

impl Default for PropagationConfig {
    fn default() -> Self {
        PropagationConfig {
            min_degree: 0.4,
            max_hops: 2,
            min_strength: 0.25,
        }
    }
}

/// A compiled policy: per-file effective rules after propagation.
#[derive(Debug)]
pub struct SecurityPolicy {
    /// file -> (origin rule index, accumulated strength).
    effective: FxHashMap<u32, Vec<(usize, f64)>>,
    rules: Vec<AccessRule>,
    cfg: PropagationConfig,
}

impl SecurityPolicy {
    /// Compile rules against any mined correlation source: each rule
    /// spreads from its origin along correlator edges, multiplying degrees
    /// per hop.
    pub fn compile(
        source: &dyn CorrelationSource,
        rules: Vec<AccessRule>,
        cfg: PropagationConfig,
    ) -> Self {
        let mut effective: FxHashMap<u32, Vec<(usize, f64)>> = FxHashMap::default();
        let mut correlators: Vec<Correlator> = Vec::new();
        for (idx, rule) in rules.iter().enumerate() {
            // BFS with multiplicative strength decay.
            let mut frontier = vec![(rule.file, 1.0f64)];
            let mut best: FxHashMap<u32, f64> = FxHashMap::default();
            best.insert(rule.file.raw(), 1.0);
            for _hop in 0..cfg.max_hops {
                let mut next = Vec::new();
                for (file, strength) in frontier {
                    source.top_k_into(file, usize::MAX, cfg.min_degree, &mut correlators);
                    for c in &correlators {
                        let s = strength * c.degree;
                        if s < cfg.min_strength {
                            continue;
                        }

                        let entry = best.entry(c.file.raw()).or_insert(0.0);
                        if s > *entry {
                            *entry = s;
                            next.push((c.file, s));
                        }
                    }
                }
                frontier = next;
                if frontier.is_empty() {
                    break;
                }
            }
            for (file, strength) in best {
                effective.entry(file).or_default().push((idx, strength));
            }
        }
        // Strongest rule first per file.
        for v in effective.values_mut() {
            v.sort_by(|a, b| b.1.total_cmp(&a.1));
        }
        SecurityPolicy {
            effective,
            rules,
            cfg,
        }
    }

    /// Number of files the policy touches after propagation.
    pub fn covered_files(&self) -> usize {
        self.effective.len()
    }

    /// The propagation configuration the policy was compiled with.
    pub fn config(&self) -> PropagationConfig {
        self.cfg
    }

    /// Check one access event against the policy.
    pub fn check(&self, event: &TraceEvent) -> AccessDecision {
        let Some(rules) = self.effective.get(&event.file.raw()) else {
            return AccessDecision::Allow;
        };
        for &(idx, strength) in rules {
            let rule = &self.rules[idx];
            let subject_matches = rule.subject.is_none() || rule.subject == Some(event.uid);
            if !subject_matches {
                continue;
            }
            match rule.action {
                RuleAction::Deny => {
                    return AccessDecision::Deny {
                        origin: rule.file,
                        strength_millis: (strength * 1000.0) as u32,
                    }
                }
                RuleAction::Audit => return AccessDecision::Audit { origin: rule.file },
            }
        }
        AccessDecision::Allow
    }

    /// Enforce the policy over a whole event stream; returns
    /// (denied, audited, allowed) counts.
    pub fn enforce<'a>(&self, events: impl IntoIterator<Item = &'a TraceEvent>) -> (u64, u64, u64) {
        let mut denied = 0;
        let mut audited = 0;
        let mut allowed = 0;
        for e in events {
            match self.check(e) {
                AccessDecision::Deny { .. } => denied += 1,
                AccessDecision::Audit { .. } => audited += 1,
                AccessDecision::Allow => allowed += 1,
            }
        }
        (denied, audited, allowed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::{Farmer, FarmerConfig, Request};
    use farmer_trace::{DevId, HostId, ProcId};

    fn req(file: u32) -> Request {
        Request {
            file: FileId::new(file),
            uid: UserId::new(1),
            pid: ProcId::new(1),
            host: HostId::new(1),
            dev: DevId::new(0),
        }
    }

    /// Mine a model where 0 -> 1 -> 2 are strongly correlated and 9 is
    /// not. Each file is touched by its own process so the pairwise
    /// similarity (and hence the correlation degree) stays below 1 and
    /// propagation decay is observable.
    fn mined() -> Farmer {
        let mut f = Farmer::new(FarmerConfig::default());
        for _ in 0..20 {
            for file in [0u32, 1, 2] {
                let mut r = req(file);
                r.pid = ProcId::new(100 + file);
                f.observe(r, None);
            }
            // Unrelated foreign activity.
            f.observe(
                Request {
                    file: FileId::new(9),
                    uid: UserId::new(7),
                    pid: ProcId::new(7),
                    host: HostId::new(7),
                    dev: DevId::new(3),
                },
                None,
            );
        }
        f
    }

    fn deny_rule(file: u32) -> AccessRule {
        AccessRule {
            file: FileId::new(file),
            subject: None,
            action: RuleAction::Deny,
        }
    }

    fn ev(file: u32, uid: u32) -> TraceEvent {
        TraceEvent::synthetic(
            0,
            FileId::new(file),
            UserId::new(uid),
            ProcId::new(1),
            HostId::new(1),
        )
    }

    #[test]
    fn rule_applies_at_origin() {
        let farmer = mined();
        let policy =
            SecurityPolicy::compile(&farmer, vec![deny_rule(0)], PropagationConfig::default());
        assert!(matches!(
            policy.check(&ev(0, 1)),
            AccessDecision::Deny { .. }
        ));
    }

    #[test]
    fn rule_propagates_to_correlated_files() {
        let farmer = mined();
        let policy =
            SecurityPolicy::compile(&farmer, vec![deny_rule(0)], PropagationConfig::default());
        assert!(
            policy.covered_files() >= 2,
            "covered {}",
            policy.covered_files()
        );
        match policy.check(&ev(1, 1)) {
            AccessDecision::Deny {
                origin,
                strength_millis,
            } => {
                assert_eq!(origin, FileId::new(0));
                assert!(strength_millis < 1000, "propagated strength must decay");
            }
            other => panic!("expected propagated deny, got {other:?}"),
        }
    }

    #[test]
    fn uncorrelated_files_unaffected() {
        let farmer = mined();
        let policy =
            SecurityPolicy::compile(&farmer, vec![deny_rule(0)], PropagationConfig::default());
        assert_eq!(policy.check(&ev(9, 1)), AccessDecision::Allow);
    }

    #[test]
    fn subject_scoping() {
        let farmer = mined();
        let rule = AccessRule {
            file: FileId::new(0),
            subject: Some(UserId::new(5)),
            action: RuleAction::Deny,
        };
        let policy = SecurityPolicy::compile(&farmer, vec![rule], PropagationConfig::default());
        assert!(matches!(
            policy.check(&ev(0, 5)),
            AccessDecision::Deny { .. }
        ));
        assert_eq!(policy.check(&ev(0, 1)), AccessDecision::Allow);
    }

    #[test]
    fn audit_rules_audit() {
        let farmer = mined();
        let rule = AccessRule {
            file: FileId::new(0),
            subject: None,
            action: RuleAction::Audit,
        };
        let policy = SecurityPolicy::compile(&farmer, vec![rule], PropagationConfig::default());
        assert!(matches!(
            policy.check(&ev(0, 1)),
            AccessDecision::Audit { .. }
        ));
    }

    #[test]
    fn hop_limit_bounds_reach() {
        let farmer = mined();
        let tight = PropagationConfig {
            max_hops: 0,
            ..Default::default()
        };
        let policy = SecurityPolicy::compile(&farmer, vec![deny_rule(0)], tight);
        assert_eq!(policy.covered_files(), 1, "0 hops = origin only");
    }

    #[test]
    fn enforce_counts_stream() {
        let farmer = mined();
        let policy =
            SecurityPolicy::compile(&farmer, vec![deny_rule(0)], PropagationConfig::default());
        let events = [ev(0, 1), ev(9, 1), ev(1, 1)];
        let (denied, audited, allowed) = policy.enforce(events.iter());
        assert_eq!(denied, 2);
        assert_eq!(audited, 0);
        assert_eq!(allowed, 1);
    }
}

//! # farmer-apps — FARMER applications beyond prefetching
//!
//! The paper sketches three further uses of mined correlations and names
//! one analysis as future work; this crate implements them:
//!
//! * [`security`] — §4.3: "once a user configures rule-based accesses for
//!   a file or directory, this rule may be applied to other files that
//!   have strong file correlations with this file or directory
//!   automatically". Rule propagation over the correlation graph with
//!   per-hop degree decay, plus an enforcement simulator.
//! * [`replication`] — §4.3: "grouping files with strong inter-file
//!   correlations in the same logical replica group. Each backup and
//!   recovery task on a replica group can be an atomic operation so that
//!   we can guarantee the strong consistency of files in the same replica
//!   group." Replica-group planning plus an atomic backup/recovery engine
//!   with failure injection.
//! * [`regression`] — §7: "multiple regression can be used to learn more
//!   about association between file correlations and attributes."
//!   Ordinary-least-squares regression of successor strength on
//!   attribute-match indicators, with a small dense linear solver.

// This crate is unsafe-free by policy (lint rule R2 guards the rest).
#![forbid(unsafe_code)]

pub mod regression;
pub mod replication;
pub mod security;

pub use regression::{AttributeRegression, RegressionReport};
pub use replication::{ReplicaManager, ReplicaPlan};
pub use security::{AccessDecision, AccessRule, RuleAction, SecurityPolicy};

//! FARMER-enabled reliability (§4.3): correlation-aware replica groups
//! with atomic backup and recovery.
//!
//! Files with strong inter-file correlations are placed in the same
//! *logical replica group*; backup and recovery operate on whole groups as
//! atomic operations, which guarantees that correlated files are always
//! mutually consistent after a recovery — the property the paper argues
//! for ("we can guarantee the strong consistency of files in the same
//! replica group").
//!
//! The manager models file versions as monotonically increasing counters.
//! A crash between per-file backups of *independent* files can leave a
//! correlated set mixed-version; grouped atomic backups cannot, which the
//! failure-injection tests demonstrate.

use farmer_core::{CorrelationSource, Correlator};
use farmer_trace::hash::FxHashMap;
use farmer_trace::FileId;

/// The grouping plan: which replica group each file belongs to.
#[derive(Debug, Clone)]
pub struct ReplicaPlan {
    /// file -> group (files absent from the map are singletons).
    group_of: FxHashMap<u32, u32>,
    /// group -> member files.
    members: Vec<Vec<FileId>>,
}

impl ReplicaPlan {
    /// Build a plan from any mined correlation source (live model, stream
    /// snapshot, store view): walk every file's correlators and greedily
    /// group mutually correlated files (same strategy as the §4.2 layout,
    /// but without the read-only restriction — replicas are copies, so
    /// writes don't complicate placement).
    pub fn plan(
        source: &dyn CorrelationSource,
        num_files: usize,
        min_degree: f64,
        max_group: usize,
    ) -> Self {
        let mut group_of: FxHashMap<u32, u32> = FxHashMap::default();
        let mut members: Vec<Vec<FileId>> = Vec::new();
        let mut list: Vec<Correlator> = Vec::new();
        for fid in 0..num_files {
            let owner = FileId::new(fid as u32);
            if group_of.contains_key(&owner.raw()) {
                continue;
            }
            source.top_k_into(owner, usize::MAX, min_degree, &mut list);
            let group: Vec<FileId> = std::iter::once(owner)
                .chain(
                    list.iter()
                        .map(|c| c.file)
                        .filter(|f| !group_of.contains_key(&f.raw()) && *f != owner),
                )
                .take(max_group)
                .collect();
            if group.len() < 2 {
                continue;
            }
            let gid = members.len() as u32;
            for f in &group {
                group_of.insert(f.raw(), gid);
            }
            members.push(group);
        }
        ReplicaPlan { group_of, members }
    }

    /// Number of multi-file groups.
    pub fn num_groups(&self) -> usize {
        self.members.len()
    }

    /// Group of a file, if it belongs to one.
    pub fn group_of(&self, file: FileId) -> Option<u32> {
        self.group_of.get(&file.raw()).copied()
    }

    /// Members of a group.
    pub fn members(&self, group: u32) -> &[FileId] {
        &self.members[group as usize]
    }
}

/// Per-file primary/replica version state plus the backup engine.
#[derive(Debug)]
pub struct ReplicaManager {
    plan: ReplicaPlan,
    /// Authoritative (primary) version per file.
    primary: Vec<u64>,
    /// Replica (backup) version per file.
    replica: Vec<u64>,
    /// Backups performed (file count).
    pub backups: u64,
}

impl ReplicaManager {
    /// Fresh manager over `num_files`, all at version 0, replicas in sync.
    pub fn new(plan: ReplicaPlan, num_files: usize) -> Self {
        ReplicaManager {
            plan,
            primary: vec![0; num_files],
            replica: vec![0; num_files],
            backups: 0,
        }
    }

    /// The plan in use.
    pub fn plan(&self) -> &ReplicaPlan {
        &self.plan
    }

    /// A write bumps the primary version of a file.
    pub fn write(&mut self, file: FileId) {
        self.primary[file.index()] += 1;
    }

    /// Back up one file's group atomically. If the file is grouped, every
    /// member's replica is brought to its current primary version in one
    /// operation; singletons back up alone. `crash_after` injects a crash
    /// after that many per-file copies (None = no crash) — an atomic group
    /// backup aborts entirely in that case (all-or-nothing), which is the
    /// §4.3 guarantee.
    pub fn backup(&mut self, file: FileId, crash_after: Option<usize>) -> bool {
        let files: Vec<FileId> = match self.plan.group_of(file) {
            Some(g) => self.plan.members(g).to_vec(),
            None => vec![file],
        };
        if let Some(n) = crash_after {
            if n < files.len() {
                // Atomicity: partial group backups are discarded.
                return false;
            }
        }
        for f in &files {
            self.replica[f.index()] = self.primary[f.index()];
            self.backups += 1;
        }
        true
    }

    /// Naive per-file backup (the non-FARMER baseline): copies files one at
    /// a time with no group atomicity; a crash leaves the copies already
    /// made in place.
    pub fn backup_unguarded(&mut self, files: &[FileId], crash_after: Option<usize>) {
        for (i, f) in files.iter().enumerate() {
            if let Some(n) = crash_after {
                if i >= n {
                    return;
                }
            }
            self.replica[f.index()] = self.primary[f.index()];
            self.backups += 1;
        }
    }

    /// Recover a file (and, if grouped, its whole group) from replicas —
    /// atomic by construction.
    pub fn recover(&mut self, file: FileId) {
        let files: Vec<FileId> = match self.plan.group_of(file) {
            Some(g) => self.plan.members(g).to_vec(),
            None => vec![file],
        };
        for f in files {
            self.primary[f.index()] = self.replica[f.index()];
        }
    }

    /// Consistency check: every multi-file group's replicas carry versions
    /// captured by the same backup generation — i.e. a group is internally
    /// consistent iff all members' replica versions were copied together.
    /// Returns groups whose replicas are mutually inconsistent (some
    /// members stale relative to a backup that included the others).
    pub fn inconsistent_groups(&self, expected: &FxHashMap<u32, u64>) -> Vec<u32> {
        let mut bad = Vec::new();
        for (gid, members) in self.plan.members.iter().enumerate() {
            let mismatch = members.iter().any(|f| {
                expected
                    .get(&f.raw())
                    .is_some_and(|&want| self.replica[f.index()] != want)
            });
            if mismatch {
                bad.push(gid as u32);
            }
        }
        bad
    }

    /// Current replica version of a file.
    pub fn replica_version(&self, file: FileId) -> u64 {
        self.replica[file.index()]
    }

    /// Current primary version of a file.
    pub fn primary_version(&self, file: FileId) -> u64 {
        self.primary[file.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::{Farmer, FarmerConfig, Request};
    use farmer_trace::{DevId, HostId, ProcId, UserId};

    fn req(file: u32) -> Request {
        Request {
            file: FileId::new(file),
            uid: UserId::new(1),
            pid: ProcId::new(1),
            host: HostId::new(1),
            dev: DevId::new(0),
        }
    }

    /// Model with files 0,1,2 strongly correlated.
    fn mined() -> Farmer {
        let mut f = Farmer::new(FarmerConfig::default());
        for _ in 0..20 {
            for file in [0u32, 1, 2] {
                f.observe(req(file), None);
            }
        }
        f
    }

    #[test]
    fn plan_groups_correlated_files() {
        let farmer = mined();
        let plan = ReplicaPlan::plan(&farmer, 3, 0.4, 4);
        assert_eq!(plan.num_groups(), 1);
        let g = plan.group_of(FileId::new(0)).unwrap();
        assert_eq!(plan.group_of(FileId::new(1)), Some(g));
        assert_eq!(plan.group_of(FileId::new(2)), Some(g));
    }

    #[test]
    fn group_backup_is_atomic() {
        let farmer = mined();
        let plan = ReplicaPlan::plan(&farmer, 3, 0.4, 4);
        let mut mgr = ReplicaManager::new(plan, 3);
        mgr.write(FileId::new(0));
        mgr.write(FileId::new(1));
        mgr.write(FileId::new(2));
        // Crash mid-backup: atomic group backup aborts wholesale.
        let ok = mgr.backup(FileId::new(0), Some(1));
        assert!(!ok);
        for f in 0..3u32 {
            assert_eq!(mgr.replica_version(FileId::new(f)), 0, "no partial copies");
        }
        // Clean backup brings the whole group forward together.
        assert!(mgr.backup(FileId::new(0), None));
        for f in 0..3u32 {
            assert_eq!(mgr.replica_version(FileId::new(f)), 1);
        }
    }

    #[test]
    fn unguarded_backup_can_tear_groups() {
        let farmer = mined();
        let plan = ReplicaPlan::plan(&farmer, 3, 0.4, 4);
        let mut mgr = ReplicaManager::new(plan, 3);
        for f in 0..3u32 {
            mgr.write(FileId::new(f));
        }
        let files: Vec<FileId> = (0..3).map(FileId::new).collect();
        mgr.backup_unguarded(&files, Some(1)); // crash after one copy
                                               // Group is now internally inconsistent: member 0 at v1, others v0.
        let mut expected = FxHashMap::default();
        for f in 0..3u32 {
            expected.insert(f, 1u64);
        }
        let bad = mgr.inconsistent_groups(&expected);
        assert_eq!(bad.len(), 1, "torn group must be detected");
    }

    #[test]
    fn recovery_restores_whole_group() {
        let farmer = mined();
        let plan = ReplicaPlan::plan(&farmer, 3, 0.4, 4);
        let mut mgr = ReplicaManager::new(plan, 3);
        for f in 0..3u32 {
            mgr.write(FileId::new(f));
        }
        mgr.backup(FileId::new(0), None);
        // Further writes get lost in a "disk failure"...
        for f in 0..3u32 {
            mgr.write(FileId::new(f));
        }
        mgr.recover(FileId::new(1)); // recovering any member restores all
        for f in 0..3u32 {
            assert_eq!(
                mgr.primary_version(FileId::new(f)),
                1,
                "group rolled back together"
            );
        }
    }

    #[test]
    fn singletons_backup_alone() {
        let farmer = mined();
        let plan = ReplicaPlan::plan(&farmer, 5, 0.4, 4);
        let mut mgr = ReplicaManager::new(plan, 5);
        mgr.write(FileId::new(4)); // uncorrelated file
        assert!(mgr.backup(FileId::new(4), None));
        assert_eq!(mgr.replica_version(FileId::new(4)), 1);
        assert_eq!(mgr.replica_version(FileId::new(0)), 0);
    }

    #[test]
    fn group_size_cap_respected() {
        let mut f = Farmer::new(FarmerConfig::default());
        // One hub file followed by many correlated successors.
        for _ in 0..15 {
            for file in 0..8u32 {
                f.observe(req(file), None);
            }
        }
        let plan = ReplicaPlan::plan(&f, 8, 0.3, 3);
        for g in 0..plan.num_groups() as u32 {
            assert!(plan.members(g).len() <= 3);
        }
    }
}

//! Multiple regression of correlation strength on attribute matches — the
//! paper's named future work (§7: "multiple regression can be used to
//! learn more about association between file correlations and
//! attributes").
//!
//! For every observed successor pair (A, B) we form a sample: features
//! `x = [1, uid_match, pid_match, host_match, path_sim]` (the
//! attribute-match indicators of the pair of events) and target
//! `y = R(A,B)` — the mined correlation degree served by any
//! [`CorrelationSource`] (0 if the pair was filtered or evicted).
//! Ordinary least squares then yields per-attribute coefficients: how much
//! each matching attribute predicts that two files are genuinely
//! correlated. This quantifies what Table 5 probes empirically by sweeping
//! combinations, and it runs against *any* back-end — the live model, a
//! stream snapshot, or a store view — since it only needs pair degrees.
//!
//! The normal equations are solved with a small, self-contained Gaussian
//! elimination with partial pivoting ([`solve`]).

use farmer_core::{similarity, AttrCombo, AttrKind, CorrelationSource, PathMode, Request};
use farmer_trace::{Trace, TraceEvent};

/// Number of regression features (intercept + 4 attribute signals).
pub const NUM_FEATURES: usize = 5;

/// Feature labels in column order.
pub const FEATURE_LABELS: [&str; NUM_FEATURES] = [
    "intercept",
    "user match",
    "process match",
    "host match",
    "path similarity",
];

/// The fitted model.
#[derive(Debug, Clone)]
pub struct RegressionReport {
    /// OLS coefficients, indexed like [`FEATURE_LABELS`].
    pub coefficients: [f64; NUM_FEATURES],
    /// Number of (pair) samples used.
    pub samples: usize,
    /// Coefficient of determination on the training samples.
    pub r_squared: f64,
}

impl RegressionReport {
    /// The most predictive attribute (largest positive coefficient among
    /// the non-intercept features).
    pub fn strongest_attribute(&self) -> &'static str {
        let (idx, _) = self.coefficients[1..]
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            // lint: allow(panic) coefficients has FEATURE_LABELS' fixed
            // length, so the [1..] slice is never empty
            .expect("non-empty");
        FEATURE_LABELS[idx + 1]
    }
}

/// Attribute-regression driver: accumulates per-pair samples from a trace
/// and fits OLS.
#[derive(Debug, Default)]
pub struct AttributeRegression {
    xs: Vec<[f64; NUM_FEATURES]>,
    ys: Vec<f64>,
}

impl AttributeRegression {
    /// Fresh, empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one explicit sample (used by tests; [`fit_trace`] is the usual
    /// entry point).
    pub fn push_sample(&mut self, x: [f64; NUM_FEATURES], y: f64) {
        self.xs.push(x);
        self.ys.push(y);
    }

    /// Number of accumulated samples.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// True when no samples were accumulated.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Build samples from consecutive event pairs of a trace: feature
    /// vector = attribute matches of the pair; target = the mined
    /// correlation degree `R(A,B)` served by `source` (0 if the pair was
    /// filtered or never retained).
    pub fn accumulate_trace(&mut self, trace: &Trace, source: &dyn CorrelationSource) {
        let mut prev: Option<&TraceEvent> = None;
        for e in &trace.events {
            if let Some(p) = prev {
                if p.file != e.file {
                    let x = features(trace, p, e);
                    let y = source
                        .degree(p.file, e.file)
                        .map(|d| d.clamp(0.0, 1.0))
                        .unwrap_or(0.0);
                    self.push_sample(x, y);
                }
            }
            prev = Some(e);
        }
    }

    /// Fit OLS over the accumulated samples.
    ///
    /// # Panics
    /// Panics if fewer samples than features were accumulated.
    pub fn fit(&self) -> RegressionReport {
        assert!(
            self.len() >= NUM_FEATURES,
            "need at least {NUM_FEATURES} samples"
        );
        // Normal equations: (XᵀX) β = Xᵀy.
        let mut xtx = [[0.0f64; NUM_FEATURES]; NUM_FEATURES];
        let mut xty = [0.0f64; NUM_FEATURES];
        for (x, &y) in self.xs.iter().zip(&self.ys) {
            for i in 0..NUM_FEATURES {
                xty[i] += x[i] * y;
                for j in 0..NUM_FEATURES {
                    xtx[i][j] += x[i] * x[j];
                }
            }
        }
        // Ridge epsilon keeps the system solvable when a feature is
        // constant (e.g. pathless traces have path_sim ≡ 0).
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-9;
        }
        let beta = solve(xtx, xty);

        // R² on the training set.
        let mean_y: f64 = self.ys.iter().sum::<f64>() / self.len() as f64;
        let mut ss_res = 0.0;
        let mut ss_tot = 0.0;
        for (x, &y) in self.xs.iter().zip(&self.ys) {
            let pred: f64 = x.iter().zip(&beta).map(|(a, b)| a * b).sum();
            ss_res += (y - pred).powi(2);
            ss_tot += (y - mean_y).powi(2);
        }
        let r_squared = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else {
            0.0
        };

        RegressionReport {
            coefficients: beta,
            samples: self.len(),
            r_squared,
        }
    }
}

/// Convenience: fit the attribute regression of a trace against any mined
/// correlation source in one call.
pub fn fit_trace(trace: &Trace, source: &dyn CorrelationSource) -> RegressionReport {
    let mut reg = AttributeRegression::new();
    reg.accumulate_trace(trace, source);
    reg.fit()
}

fn features(trace: &Trace, a: &TraceEvent, b: &TraceEvent) -> [f64; NUM_FEATURES] {
    let ra = Request::from_event(a);
    let rb = Request::from_event(b);
    let path_sim = similarity(
        &ra,
        trace.path_of(a.file),
        &rb,
        trace.path_of(b.file),
        AttrCombo::EMPTY.with(AttrKind::Path),
        PathMode::Ipa,
    );
    [
        1.0,
        f64::from(a.uid == b.uid),
        f64::from(a.pid == b.pid),
        f64::from(a.host == b.host),
        path_sim,
    ]
}

/// Solve `A x = b` for small dense systems via Gaussian elimination with
/// partial pivoting.
#[allow(clippy::needless_range_loop)] // the elimination reads row `col` while mutating row `row`
pub fn solve(
    mut a: [[f64; NUM_FEATURES]; NUM_FEATURES],
    mut b: [f64; NUM_FEATURES],
) -> [f64; NUM_FEATURES] {
    let n = NUM_FEATURES;
    for col in 0..n {
        // Pivot.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            // lint: allow(panic) col < n, so the col..n range always has
            // at least one element
            .expect("non-empty range");
        a.swap(col, pivot);
        b.swap(col, pivot);
        let diag = a[col][col];
        assert!(diag.abs() > 1e-15, "singular system");
        for row in (col + 1)..n {
            let factor = a[row][col] / diag;
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = [0.0f64; NUM_FEATURES];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::{Farmer, FarmerConfig};
    use farmer_trace::WorkloadSpec;

    #[test]
    fn solver_handles_identity() {
        let mut a = [[0.0; NUM_FEATURES]; NUM_FEATURES];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = 1.0;
        }
        let b = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(solve(a, b), b);
    }

    #[test]
    fn solver_matches_known_system() {
        // A = diag(2) plus an off-diagonal coupling in the first two rows.
        let mut a = [[0.0; NUM_FEATURES]; NUM_FEATURES];
        for (i, row) in a.iter_mut().enumerate() {
            row[i] = 2.0;
        }
        a[0][1] = 1.0;
        // x = [1, 2, 0, 0, 0] -> b = A x.
        let x_true = [1.0, 2.0, 0.0, 0.0, 0.0];
        let mut b = [0.0; NUM_FEATURES];
        for i in 0..NUM_FEATURES {
            for j in 0..NUM_FEATURES {
                b[i] += a[i][j] * x_true[j];
            }
        }
        let x = solve(a, b);
        for (got, want) in x.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-9);
        }
    }

    #[test]
    fn regression_recovers_planted_coefficients() {
        // y = 0.1 + 0.5*uid + 0.3*path, no pid/host effect.
        let mut reg = AttributeRegression::new();
        let mut lcg = 12345u64;
        let mut rand01 = move || {
            lcg = lcg
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((lcg >> 33) as f64) / ((1u64 << 31) as f64)
        };
        for _ in 0..2000 {
            let x = [
                1.0,
                f64::from(rand01() > 0.5),
                f64::from(rand01() > 0.5),
                f64::from(rand01() > 0.5),
                rand01(),
            ];
            let y = 0.1 + 0.5 * x[1] + 0.3 * x[4];
            reg.push_sample(x, y);
        }
        let fit = reg.fit();
        assert!(
            (fit.coefficients[0] - 0.1).abs() < 0.02,
            "{:?}",
            fit.coefficients
        );
        assert!((fit.coefficients[1] - 0.5).abs() < 0.02);
        assert!(fit.coefficients[2].abs() < 0.02);
        assert!(fit.coefficients[3].abs() < 0.02);
        assert!((fit.coefficients[4] - 0.3).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
        assert_eq!(fit.strongest_attribute(), "user match");
    }

    #[test]
    fn trace_regression_finds_positive_process_signal() {
        // On a synthetic HP trace, pairs sharing a process are the true
        // intra-run pairs, so the process-match coefficient must be
        // clearly positive.
        let trace = WorkloadSpec::hp().scaled(0.1).generate();
        let farmer = Farmer::mine_trace(&trace, FarmerConfig::default());
        let fit = fit_trace(&trace, &farmer);
        assert!(fit.samples > 1000);
        assert!(
            fit.coefficients[2] > 0.05,
            "process coefficient should be positive: {:?}",
            fit.coefficients
        );
        assert!(fit.r_squared > 0.0);
    }

    #[test]
    #[should_panic(expected = "need at least")]
    fn fit_requires_samples() {
        let _ = AttributeRegression::new().fit();
    }
}

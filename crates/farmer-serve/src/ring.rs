//! A fixed-capacity lock-free MPSC ring buffer — the ingest feed of the
//! serving tier.
//!
//! The streaming miner's own channels are `std::sync::mpsc` bounded
//! channels: fine between the router and its shard workers, but the
//! serving tier's *front door* takes events from many producer threads at
//! once, and a mutex-guarded queue there would put every producer behind
//! one lock. This ring is the classic bounded MPMC queue (per-slot
//! sequence numbers, Dmitry Vyukov's design) specialised to many
//! producers / one consumer:
//!
//! * **Fixed capacity, allocated once.** `capacity` slots (rounded up to
//!   a power of two) live in one boxed slab; no allocation ever happens
//!   on push or pop, and a full ring pushes back explicitly
//!   ([`Producer::try_push`] returns the value) instead of growing.
//! * **Lock-free producers.** A push claims a slot with one CAS on the
//!   enqueue cursor and publishes it with one release store of the slot's
//!   sequence number. Producers never block each other beyond CAS
//!   retries; a stalled producer cannot wedge the queue for more than its
//!   one claimed slot.
//! * **Wait-free consumer.** The single consumer owns the dequeue cursor
//!   exclusively ([`Consumer`] is not `Clone` and pops through `&mut
//!   self`), so a pop is two atomic loads, a value move, and one release
//!   store — no CAS, no retry loop.
//! * **FIFO.** Slots are claimed and consumed in cursor order: the
//!   consumer observes every producer's items in that producer's push
//!   order, and the global order is the order in which pushes claimed
//!   slots. Nothing is lost or reordered across wrap-around — the
//!   property `tests/ring_oracle.rs` pins against a `VecDeque` oracle.
//!
//! Backpressure accounting (spin/yield/park when full) is the serving
//! tier's job (`crate::serve`); the ring itself never waits.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pad the cursors to their own cache lines so producers hammering the
/// enqueue cursor do not false-share with the consumer's dequeue cursor.
#[repr(align(64))]
struct CachePadded<T>(T);

struct Slot<T> {
    /// Vyukov sequence number: `pos` when free for the push at cursor
    /// `pos`, `pos + 1` when holding that push's value, `pos + capacity`
    /// when free for the next lap.
    seq: AtomicUsize,
    value: UnsafeCell<MaybeUninit<T>>,
}

struct Ring<T> {
    slots: Box<[Slot<T>]>,
    mask: usize,
    enqueue: CachePadded<AtomicUsize>,
    dequeue: CachePadded<AtomicUsize>,
}

// SAFETY: values cross threads through the slots; the per-slot sequence
// protocol makes every `value` access exclusive.
unsafe impl<T: Send> Send for Ring<T> {}
// SAFETY: shared access is mediated entirely by the atomic cursors and
// per-slot sequence numbers; the UnsafeCell payloads are never aliased.
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Single-threaded by construction (last Arc). Drop every value
        // that was pushed but never popped.
        let mut pos = *self.dequeue.0.get_mut();
        let end = *self.enqueue.0.get_mut();
        while pos != end {
            let mask = self.mask;
            let slot = &mut self.slots[pos & mask];
            if *slot.seq.get_mut() == pos.wrapping_add(1) {
                // SAFETY: seq == pos + 1 means a producer completed its
                // write to this slot and no pop consumed it; the value is
                // initialized and we have exclusive access via &mut self.
                unsafe { slot.value.get_mut().assume_init_drop() };
            }
            pos = pos.wrapping_add(1);
        }
    }
}

/// Create a ring with room for at least `capacity` items (rounded up to
/// the next power of two, minimum 2), returning the producer and consumer
/// ends. The [`Producer`] is `Clone` — hand one to every writer thread;
/// the [`Consumer`] is unique.
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[Slot<T>]> = (0..cap)
        .map(|i| Slot {
            seq: AtomicUsize::new(i),
            value: UnsafeCell::new(MaybeUninit::uninit()),
        })
        .collect();
    let ring = Arc::new(Ring {
        slots,
        mask: cap - 1,
        enqueue: CachePadded(AtomicUsize::new(0)),
        dequeue: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            ring: Arc::clone(&ring),
        },
        Consumer { ring },
    )
}

/// A producer end of the ring. Cloning shares the same ring.
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
}

impl<T> Clone for Producer<T> {
    fn clone(&self) -> Self {
        Producer {
            ring: Arc::clone(&self.ring),
        }
    }
}

impl<T: Send> Producer<T> {
    /// Push `value`, or hand it back if the ring is full. Lock-free: one
    /// CAS to claim a slot, one release store to publish it.
    pub fn try_push(&self, value: T) -> Result<(), T> {
        let ring = &*self.ring;
        // ord: the cursor read is only a position hint; staleness is
        // corrected by the CAS below, so Relaxed suffices.
        let mut pos = ring.enqueue.0.load(Ordering::Relaxed);
        loop {
            let slot = &ring.slots[pos & ring.mask];
            // ord: Acquire pairs with the consumer's Release in try_pop —
            // seeing the freed sequence number also sees the slot vacated.
            let seq = slot.seq.load(Ordering::Acquire);
            let dif = seq as isize - pos as isize;
            if dif == 0 {
                // Slot free for this lap: claim it.
                // ord: the CAS only arbitrates cursor ownership; the
                // value handoff is ordered by the slot's seq Release
                // below, so both success and failure can stay Relaxed.
                match ring.enqueue.0.compare_exchange_weak(
                    pos,
                    pos.wrapping_add(1),
                    Ordering::Relaxed, // ord: see above
                    Ordering::Relaxed, // ord: see above
                ) {
                    Ok(_) => {
                        // SAFETY: the CAS claimed position `pos`
                        // exclusively, and seq == pos showed the slot free
                        // for this lap; no other thread touches the cell
                        // until the Release store publishes it.
                        unsafe { (*slot.value.get()).write(value) };
                        // ord: Release publishes the value write above to
                        // the consumer's Acquire load of seq.
                        slot.seq.store(pos.wrapping_add(1), Ordering::Release);
                        return Ok(());
                    }
                    Err(now) => pos = now,
                }
            } else if dif < 0 {
                // The slot still holds a value from `capacity` pushes
                // ago: the ring is full.
                return Err(value);
            } else {
                // Another producer claimed this position; chase the
                // cursor.
                // ord: position hint again — any staleness is caught by
                // the next CAS attempt, so Relaxed suffices.
                pos = ring.enqueue.0.load(Ordering::Relaxed);
            }
        }
    }

    /// Items currently in the ring (racy snapshot — exact only when
    /// quiescent). Never exceeds [`Producer::capacity`].
    pub fn len(&self) -> usize {
        len(&self.ring)
    }

    /// Whether the ring is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }
}

/// The unique consumer end of the ring. Not `Clone`; pops take `&mut
/// self`, which is what makes the pop path CAS-free.
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
}

impl<T: Send> Consumer<T> {
    /// Pop the oldest item, or `None` if the ring is empty. Wait-free.
    pub fn try_pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        // ord: only this thread writes dequeue (&mut self), so reading
        // our own cursor needs no ordering.
        let pos = ring.dequeue.0.load(Ordering::Relaxed);
        let slot = &ring.slots[pos & ring.mask];
        // ord: Acquire pairs with the producer's Release store of seq —
        // seeing pos + 1 also sees the fully written value.
        let seq = slot.seq.load(Ordering::Acquire);
        if seq != pos.wrapping_add(1) {
            // Either empty, or a producer has claimed the slot but not
            // yet published its value — in both cases there is nothing
            // consumable at the head.
            return None;
        }
        // Sole consumer: plain store, no CAS.
        // ord: producers never read dequeue for synchronization (len() is
        // advisory), so the cursor bump can stay Relaxed.
        ring.dequeue.0.store(pos.wrapping_add(1), Ordering::Relaxed);
        // SAFETY: the Acquire load above observed seq == pos + 1, so the
        // producer's write to this cell happens-before us and no other
        // consumer exists (&mut self); reading the value out is exclusive.
        let value = unsafe { (*slot.value.get()).assume_init_read() };
        // Free the slot for the producers' next lap.
        // ord: Release pairs with the producer's Acquire load of seq —
        // the slot must be observed vacated before it is overwritten.
        slot.seq
            .store(pos.wrapping_add(ring.mask + 1), Ordering::Release); // ord: see above
        Some(value)
    }

    /// Items currently in the ring (racy snapshot).
    pub fn len(&self) -> usize {
        len(&self.ring)
    }

    /// Whether the ring is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fixed slot count.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }
}

fn len<T>(ring: &Ring<T>) -> usize {
    // ord: advisory snapshot — the two cursors are not read atomically
    // together, so stronger orderings would not make it exact anyway.
    let enq = ring.enqueue.0.load(Ordering::Relaxed);
    let deq = ring.dequeue.0.load(Ordering::Relaxed); // ord: see above
    enq.wrapping_sub(deq).min(ring.mask + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_capacity() {
        let (tx, mut rx) = ring::<u32>(4);
        assert_eq!(tx.capacity(), 4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(99), "full ring hands the value back");
        assert_eq!(tx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.try_pop(), Some(i));
        }
        assert_eq!(rx.try_pop(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (tx, _rx) = ring::<u8>(5);
        assert_eq!(tx.capacity(), 8);
        let (tx, _rx) = ring::<u8>(0);
        assert_eq!(tx.capacity(), 2);
    }

    #[test]
    fn wrap_around_many_laps() {
        let (tx, mut rx) = ring::<usize>(8);
        let mut next_out = 0usize;
        for i in 0..10_000usize {
            tx.try_push(i).unwrap();
            if i % 3 == 2 {
                // Drain partially so the cursors lap the slab repeatedly.
                while let Some(v) = rx.try_pop() {
                    assert_eq!(v, next_out);
                    next_out += 1;
                }
            }
        }
        while let Some(v) = rx.try_pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, 10_000);
    }

    #[test]
    fn drop_releases_unpopped_items() {
        let payload = Arc::new(());
        let (tx, mut rx) = ring::<Arc<()>>(8);
        for _ in 0..6 {
            tx.try_push(Arc::clone(&payload)).unwrap();
        }
        assert_eq!(rx.try_pop().map(|_| ()), Some(()));
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&payload), 1, "ring leaked items on drop");
    }

    #[test]
    fn multi_producer_totals_add_up() {
        let (tx, mut rx) = ring::<(usize, usize)>(64);
        let producers = 4;
        let per = 5_000usize;
        std::thread::scope(|s| {
            for p in 0..producers {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..per {
                        let mut item = (p, i);
                        loop {
                            match tx.try_push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                });
            }
            let mut next = vec![0usize; producers];
            let mut got = 0usize;
            while got < producers * per {
                match rx.try_pop() {
                    Some((p, i)) => {
                        assert_eq!(i, next[p], "producer {p} reordered");
                        next[p] += 1;
                        got += 1;
                    }
                    None => std::thread::yield_now(),
                }
                assert!(rx.len() <= rx.capacity());
            }
            assert_eq!(rx.try_pop(), None);
        });
    }
}

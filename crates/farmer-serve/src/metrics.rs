//! Observability handles for the serving tier (the `serve.*` scope of the
//! workspace registry map).
//!
//! One [`ServeMetrics`] set is shared by the ingest worker, every
//! producer handle, and the reader-registration path — the handles are
//! relaxed-atomic, so increments from any thread sum without
//! coordination. Per-reader query histograms are registered separately
//! (`serve.reader<N>.query_ns`) when a reader is created, so tail
//! latencies stay attributable per reader thread.

use farmer_obs::{Counter, Gauge, Histogram, Registry};

/// Live handles for the `serve.*` metrics. No-op by default.
#[derive(Debug, Clone, Default)]
pub struct ServeMetrics {
    /// Access events ingested through the ring (`serve.ingest_events`).
    pub ingest_events: Counter,
    /// Forget tombstones ingested through the ring
    /// (`serve.ingest_forgets`).
    pub ingest_forgets: Counter,
    /// Snapshot publications swapped into the cell
    /// (`serve.snapshot_swaps`).
    pub snapshot_swaps: Counter,
    /// Producer-side backpressure episodes: pushes that found the ring
    /// full and had to wait (`serve.backpressure_waits`).
    pub backpressure_waits: Counter,
    /// Queries served across all readers (`serve.queries`).
    pub queries: Counter,
    /// Currently registered readers (`serve.readers`).
    pub readers: Gauge,
    /// Epoch of the last published snapshot (`serve.epoch`).
    pub epoch: Gauge,
    /// Ring occupancy sampled by the ingest worker at each drain
    /// (`serve.ring_depth`).
    pub ring_depth: Gauge,
    /// Wall-clock nanoseconds per publication — consistent-cut snapshot
    /// plus cell install (`serve.publish_ns`).
    pub publish_ns: Histogram,
}

impl ServeMetrics {
    /// Register the serve metrics under `reg` (pass a `serve`-scoped
    /// registry; [`crate::FarmerServe::spawn_instrumented`] does this).
    pub fn new(reg: &Registry) -> ServeMetrics {
        ServeMetrics {
            ingest_events: reg.counter("ingest_events"),
            ingest_forgets: reg.counter("ingest_forgets"),
            snapshot_swaps: reg.counter("snapshot_swaps"),
            backpressure_waits: reg.counter("backpressure_waits"),
            queries: reg.counter("queries"),
            readers: reg.gauge("readers"),
            epoch: reg.gauge("epoch"),
            ring_depth: reg.gauge("ring_depth"),
            publish_ns: reg.histogram("publish_ns"),
        }
    }
}

//! The serving tier: one mining writer, N wait-free query readers.
//!
//! [`FarmerServe`] owns a [`ShardedMiner`] on a dedicated ingest worker
//! thread and closes FARMER's loop between mining and serving:
//!
//! ```text
//!  producers ──try_push──▶ MPSC ring ──pop──▶ ingest worker ──route──▶ ShardedMiner
//!                                                  │ every publish_every events
//!                                                  ▼
//!                                            SnapshotCell ◀──refresh── ServeReader × N
//! ```
//!
//! * **Ingest** goes through the lock-free ring ([`crate::ring`]): any
//!   number of [`IngestHandle`]s push events without a shared lock, and a
//!   full ring pushes back explicitly — the handle spins/yields and counts
//!   one `serve.backpressure_waits` episode instead of queueing without
//!   bound.
//! * **Publication** is epoch-swapped: the worker periodically takes a
//!   consistent cut ([`ShardedMiner::publish_into`]) and installs it in
//!   the tier's [`SnapshotCell`] in O(1).
//! * **Queries** never touch the miner, the ring, or any lock: each
//!   [`ServeReader`] serves from its cached snapshot `Arc`, re-cloning
//!   only when the epoch advances. The steady-state query hot path is
//!   allocation-free (pinned by `serve_throughput`'s counting allocator).
//! * **Shutdown is graceful**: [`FarmerServe::shutdown`] stops intake,
//!   drains every event already in the ring into the miner, publishes one
//!   final snapshot, and joins the worker — readers keep serving from the
//!   final epoch for as long as they live.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::{self, JoinHandle, Thread};
use std::time::Duration;

use farmer_core::{CorrelationSource, Correlator, Request};
use farmer_obs::Registry;
use farmer_stream::{CellReader, ShardedMiner, SnapshotCell, StreamSnapshot};
use farmer_trace::hash::FxHashMap;
use farmer_trace::{FileId, FilePath, Trace, TraceEvent};

use crate::metrics::ServeMetrics;
use crate::ring::{self, Consumer, Producer};
use crate::ServeConfig;

/// One operation travelling through the ingest ring.
enum IngestOp {
    /// An access event (the path `Arc`-shared per file, as in the miner's
    /// own router, so ingest never clones path bytes per event).
    Event {
        req: Request,
        path: Option<Arc<FilePath>>,
    },
    /// A forget tombstone (unlink/churn).
    Forget(FileId),
    /// Publish a snapshot now, regardless of cadence.
    Publish,
    /// Barrier: mine everything ahead of this op, publish, then ack.
    Flush(mpsc::Sender<()>),
}

/// State shared between the tier, its producers, and the worker.
struct Shared {
    /// Set by [`FarmerServe::shutdown`]: the worker drains and exits, and
    /// producers stop accepting new work.
    stop: AtomicBool,
    /// True while the worker is parked on an empty ring; producers unpark
    /// it after a push (the flag makes the common un-parked push skip the
    /// unpark syscall).
    sleeping: AtomicBool,
    /// The worker's thread handle, for unparking. Set right after spawn.
    worker: OnceLock<Thread>,
    metrics: ServeMetrics,
}

impl Shared {
    fn wake_worker(&self) {
        // ord: SeqCst joins the worker's flag-raise/recheck protocol in a
        // single total order — a producer either sees sleeping=true here or
        // its push is seen by the worker's recheck; no lost wakeup.
        if self.sleeping.load(Ordering::SeqCst) {
            if let Some(t) = self.worker.get() {
                t.unpark();
            }
        }
    }
}

/// Final accounting returned by [`FarmerServe::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeStats {
    /// Access events ingested into the miner over the tier's lifetime.
    pub events: u64,
    /// Forget tombstones ingested.
    pub forgets: u64,
    /// Snapshots published (including the final shutdown publication).
    pub publishes: u64,
    /// The cell epoch after the final publication.
    pub final_epoch: u64,
}

/// The concurrent serving tier. See the [module docs](self).
pub struct FarmerServe {
    producer: Producer<IngestOp>,
    cell: Arc<SnapshotCell>,
    shared: Arc<Shared>,
    /// Registry scoped to `serve`, kept to register per-reader histograms.
    reg: Registry,
    next_reader: std::sync::atomic::AtomicUsize,
    worker: Option<JoinHandle<ServeStats>>,
}

impl FarmerServe {
    /// Spawn the tier (miner shards plus one ingest worker) without
    /// observability.
    pub fn spawn(cfg: ServeConfig) -> FarmerServe {
        Self::spawn_instrumented(cfg, &Registry::disabled())
    }

    /// [`FarmerServe::spawn`] with observability: registers the `serve.*`
    /// metrics under `reg` (and the wrapped miner's `stream.*` set). With
    /// a disabled registry this is exactly `spawn`.
    pub fn spawn_instrumented(cfg: ServeConfig, reg: &Registry) -> FarmerServe {
        let serve_reg = reg.scope("serve");
        let metrics = ServeMetrics::new(&serve_reg);
        let miner = ShardedMiner::spawn_instrumented(cfg.stream.clone(), reg);
        let (producer, consumer) = ring::ring(cfg.ring_capacity);
        let cell = Arc::new(SnapshotCell::new());
        let shared = Arc::new(Shared {
            stop: AtomicBool::new(false),
            sleeping: AtomicBool::new(false),
            worker: OnceLock::new(),
            metrics,
        });
        let worker = {
            let cell = Arc::clone(&cell);
            let shared = Arc::clone(&shared);
            let publish_every = cfg.publish_every;
            thread::Builder::new()
                .name("farmer-serve-ingest".into())
                .spawn(move || ingest_worker(miner, consumer, cell, shared, publish_every))
                // lint: allow(panic) thread-spawn failure at tier startup is
                // unrecoverable resource exhaustion
                .expect("spawn serve ingest worker")
        };
        shared
            .worker
            .set(worker.thread().clone())
            // lint: allow(panic) the OnceLock is written exactly here,
            // right after the single spawn
            .expect("worker thread set once");
        FarmerServe {
            producer,
            cell,
            shared,
            reg: serve_reg,
            next_reader: std::sync::atomic::AtomicUsize::new(0),
            worker: Some(worker),
        }
    }

    /// A new producer handle for an ingest thread. Handles are cheap and
    /// independent; clone or call this once per writer thread.
    pub fn handle(&self) -> IngestHandle {
        IngestHandle {
            producer: self.producer.clone(),
            shared: Arc::clone(&self.shared),
            path_cache: FxHashMap::default(),
        }
    }

    /// Register a query reader. The returned [`ServeReader`] is owned by
    /// one reader thread and serves wait-free from the tier's current
    /// snapshot; its query latency lands in `serve.reader<N>.query_ns`.
    pub fn reader(&self) -> ServeReader {
        // ord: reader ids only need uniqueness, which any atomic RMW
        // gives; nothing is published through this counter.
        let i = self.next_reader.fetch_add(1, Ordering::Relaxed);
        let m = &self.shared.metrics;
        m.readers.adjust(1);
        ServeReader {
            reader: self.cell.reader(),
            query_ns: self.reg.scope(&format!("reader{i}")).histogram("query_ns"),
            queries: m.queries.clone(),
            readers: m.readers.clone(),
        }
    }

    /// The tier's publication cell — for consumers that want a raw
    /// [`CellReader`] (e.g. `FpaPredictor::refresh_from_cell`) instead of
    /// an instrumented [`ServeReader`].
    pub fn cell(&self) -> &Arc<SnapshotCell> {
        &self.cell
    }

    /// The epoch of the latest published snapshot (0 before the first).
    pub fn epoch(&self) -> u64 {
        self.cell.epoch()
    }

    /// Ask the worker to publish a snapshot now (FIFO with respect to this
    /// tier handle's earlier pushes). Returns without waiting; use
    /// [`FarmerServe::flush`] to wait for the publication.
    pub fn publish(&self) {
        self.push(IngestOp::Publish);
    }

    /// Barrier: block until every event pushed (by any handle) before this
    /// call has been mined and a fresh snapshot published.
    ///
    /// FIFO gives the guarantee for this thread's own pushes directly; for
    /// other producers it holds for everything that entered the ring
    /// before the flush op did.
    pub fn flush(&self) {
        let (ack_tx, ack_rx) = mpsc::channel();
        self.push(IngestOp::Flush(ack_tx));
        ack_rx
            .recv()
            // lint: allow(panic) a dead worker means a miner panic already
            // happened; surfacing it at the barrier is the contract
            .expect("serve ingest worker died during flush");
    }

    /// Stop intake, drain the ring into the miner, publish a final
    /// snapshot, join the worker, and return the tier's lifetime stats.
    ///
    /// Events already in the ring are mined, never dropped; pushes *after*
    /// shutdown are refused at the handle ([`IngestHandle::ingest`]
    /// returns `false`). Readers outlive the tier: they keep serving the
    /// final epoch from their cached `Arc`s.
    pub fn shutdown(mut self) -> ServeStats {
        // lint: allow(panic) shutdown re-raises a worker panic on the
        // caller's thread rather than swallowing lost events
        self.shutdown_inner().expect("serve ingest worker panicked")
    }

    fn shutdown_inner(&mut self) -> thread::Result<ServeStats> {
        let worker = match self.worker.take() {
            Some(w) => w,
            None => unreachable!("shutdown runs once"),
        };
        // ord: SeqCst so the stop flag and the sleeping-flag protocol
        // share one total order with the worker's park recheck.
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.wake_worker();
        worker.join()
    }

    fn push(&self, op: IngestOp) {
        push_with_backpressure(&self.producer, &self.shared, op);
    }
}

impl Drop for FarmerServe {
    fn drop(&mut self) {
        if self.worker.is_some() {
            // Same graceful drain as `shutdown`, minus the stats. Surface
            // a worker panic unless we are already unwinding.
            if let Err(p) = self.shutdown_inner() {
                if !thread::panicking() {
                    std::panic::resume_unwind(p);
                }
            }
        }
    }
}

/// Push, spinning through explicit backpressure. Counts one
/// `backpressure_waits` episode per push that found the ring full.
/// Returns `false` (op dropped) once the tier is stopping — a livelock
/// guard: after shutdown the consumer is draining towards exit, and a
/// producer must not spin forever on a ring that will never be popped
/// again.
fn push_with_backpressure(producer: &Producer<IngestOp>, shared: &Shared, op: IngestOp) -> bool {
    let mut op = match producer.try_push(op) {
        Ok(()) => {
            shared.wake_worker();
            return true;
        }
        Err(op) => op,
    };
    shared.metrics.backpressure_waits.inc();
    let mut spins = 0u32;
    loop {
        // ord: Acquire pairs with shutdown's stop store; a refused push
        // must not be reordered ahead of observing the stop.
        if shared.stop.load(Ordering::Acquire) {
            return false;
        }
        match producer.try_push(op) {
            Ok(()) => {
                shared.wake_worker();
                return true;
            }
            Err(back) => op = back,
        }
        spins += 1;
        if spins < 64 {
            std::hint::spin_loop();
        } else {
            thread::yield_now();
        }
    }
}

/// A `Clone`-able producer handle onto the tier's ingest ring.
///
/// Each handle keeps its own per-file path cache (`Arc`-shared paths, as
/// in the miner's router), so path-bearing ingest costs one allocation per
/// distinct file per handle, not one per event.
pub struct IngestHandle {
    producer: Producer<IngestOp>,
    shared: Arc<Shared>,
    path_cache: FxHashMap<u32, Arc<FilePath>>,
}

impl Clone for IngestHandle {
    fn clone(&self) -> Self {
        IngestHandle {
            producer: self.producer.clone(),
            shared: Arc::clone(&self.shared),
            path_cache: FxHashMap::default(),
        }
    }
}

/// Path-cache size at which the per-handle cache resets (same bound as
/// the miner's router cache, scaled down for per-thread use).
const HANDLE_PATH_CACHE_LIMIT: usize = 1 << 16;

impl IngestHandle {
    /// Ingest one access event. Returns `true` once the event is in the
    /// ring; `false` only if the tier is shutting down (the event is
    /// dropped). Blocks (spin/yield) only under backpressure — a full
    /// ring with a live worker.
    pub fn ingest(&mut self, req: Request, path: Option<&FilePath>) -> bool {
        let path = path.map(|p| {
            if self.path_cache.len() >= HANDLE_PATH_CACHE_LIMIT {
                self.path_cache.clear();
            }
            self.path_cache
                .entry(req.file.raw())
                .or_insert_with(|| Arc::new(p.clone()))
                .clone()
        });
        let ok =
            push_with_backpressure(&self.producer, &self.shared, IngestOp::Event { req, path });
        if ok {
            self.shared.metrics.ingest_events.inc();
        }
        ok
    }

    /// Convenience: ingest a trace event (runs the Stage-1 extraction).
    pub fn ingest_event(&mut self, trace: &Trace, e: &TraceEvent) -> bool {
        self.ingest(Request::from_event(e), trace.path_of(e.file))
    }

    /// Ingest a forget tombstone (unlink/churn). Same return contract as
    /// [`IngestHandle::ingest`].
    pub fn forget(&mut self, file: FileId) -> bool {
        let ok = push_with_backpressure(&self.producer, &self.shared, IngestOp::Forget(file));
        if ok {
            self.shared.metrics.ingest_forgets.inc();
        }
        ok
    }

    /// Items currently waiting in the ring (racy snapshot).
    pub fn ring_depth(&self) -> usize {
        self.producer.len()
    }
}

/// One reader thread's query handle. Wait-free and allocation-free on the
/// steady-state hot path: [`ServeReader::top_k_into`] is one atomic epoch
/// load plus a query against the cached snapshot into a caller-owned
/// buffer.
pub struct ServeReader {
    reader: CellReader,
    query_ns: farmer_obs::Histogram,
    queries: farmer_obs::Counter,
    readers: farmer_obs::Gauge,
}

impl ServeReader {
    /// Pick up the latest published snapshot if one arrived since the
    /// last query. Returns `true` if the serving snapshot changed.
    #[inline]
    pub fn refresh(&mut self) -> bool {
        self.reader.refresh()
    }

    /// The k strongest correlators of `file` (degree ≥ `min_degree`) from
    /// the newest published snapshot, into `out`. Steady-state hot path:
    /// one atomic load, no lock, no allocation once `out` has warmed.
    #[inline]
    pub fn top_k_into(
        &mut self,
        file: FileId,
        k: usize,
        min_degree: f64,
        out: &mut Vec<Correlator>,
    ) {
        let span = self.query_ns.span();
        self.reader.current().top_k_into(file, k, min_degree, out);
        span.finish();
        self.queries.inc();
    }

    /// The single strongest correlator of `file`, if any.
    #[inline]
    pub fn strongest(&mut self, file: FileId, min_degree: f64) -> Option<Correlator> {
        let span = self.query_ns.span();
        let got = self.reader.current().strongest(file, min_degree);
        span.finish();
        self.queries.inc();
        got
    }

    /// The epoch this reader currently serves from.
    pub fn epoch_seen(&self) -> u64 {
        self.reader.epoch_seen()
    }

    /// A shared handle on the snapshot this reader currently serves from
    /// (refreshing first) — a reference-count bump, no copy.
    pub fn snapshot(&mut self) -> Arc<StreamSnapshot> {
        self.reader.refresh();
        self.reader.cached()
    }
}

impl Drop for ServeReader {
    fn drop(&mut self) {
        self.readers.adjust(-1);
    }
}

/// The ingest worker: drain the ring into the miner, publish on cadence,
/// park when idle, drain-and-exit on stop.
fn ingest_worker(
    mut miner: ShardedMiner,
    mut rx: Consumer<IngestOp>,
    cell: Arc<SnapshotCell>,
    shared: Arc<Shared>,
    publish_every: u64,
) -> ServeStats {
    let m = shared.metrics.clone();
    let mut stats = ServeStats {
        events: 0,
        forgets: 0,
        publishes: 0,
        final_epoch: 0,
    };
    let mut since_publish = 0u64;
    let publish = |miner: &mut ShardedMiner, stats: &mut ServeStats| {
        let span = m.publish_ns.span();
        let epoch = miner.publish_into(&cell);
        span.finish();
        stats.publishes += 1;
        stats.final_epoch = epoch;
        m.snapshot_swaps.inc();
        m.epoch.set(epoch as i64);
    };
    let mut spins = 0u32;
    loop {
        match rx.try_pop() {
            Some(op) => {
                spins = 0;
                match op {
                    IngestOp::Event { req, path } => {
                        miner.route(req, path.as_deref());
                        stats.events += 1;
                        since_publish += 1;
                        if publish_every > 0 && since_publish >= publish_every {
                            since_publish = 0;
                            m.ring_depth.set(rx.len() as i64);
                            publish(&mut miner, &mut stats);
                        }
                    }
                    IngestOp::Forget(file) => {
                        miner.route_forget(file);
                        stats.forgets += 1;
                    }
                    IngestOp::Publish => {
                        since_publish = 0;
                        publish(&mut miner, &mut stats);
                    }
                    IngestOp::Flush(ack) => {
                        miner.flush();
                        since_publish = 0;
                        publish(&mut miner, &mut stats);
                        // A hung-up flusher is not an error.
                        let _ = ack.send(());
                    }
                }
            }
            None => {
                // ord: SeqCst keeps the stop check in the same total order
                // as the producers' pushes and the sleeping protocol.
                if shared.stop.load(Ordering::SeqCst) {
                    // Stop is only honoured on an *empty* ring: everything
                    // that entered before shutdown gets mined.
                    break;
                }
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else if spins < 128 {
                    thread::yield_now();
                } else {
                    // ord: SeqCst — the flag store must precede the
                    // emptiness recheck in the single total order the
                    // producers' wake_worker load participates in.
                    shared.sleeping.store(true, Ordering::SeqCst);
                    // Lost-wakeup guard: re-check both conditions after
                    // raising the flag; a producer that pushed in between
                    // sees the flag and unparks us immediately.
                    // ord: SeqCst recheck — see the flag store above.
                    if rx.is_empty() && !shared.stop.load(Ordering::SeqCst) {
                        m.ring_depth.set(0);
                        thread::park_timeout(Duration::from_millis(1));
                    }
                    // ord: SeqCst to stay in the protocol's total order; a
                    // stale true only costs a spurious unpark.
                    shared.sleeping.store(false, Ordering::SeqCst);
                }
            }
        }
    }
    // Final consistent publication: flush the miner so the last snapshot
    // reflects every drained event.
    miner.flush();
    publish(&mut miner, &mut stats);
    m.ring_depth.set(0);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServeConfig;
    use farmer_core::CorrelationSource;
    use farmer_trace::WorkloadSpec;

    #[test]
    fn single_writer_end_to_end() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let serve = FarmerServe::spawn(ServeConfig::default());
        let mut tx = serve.handle();
        for e in &trace.events {
            assert!(tx.ingest_event(&trace, e));
        }
        serve.flush();
        let mut r = serve.reader();
        assert!(r.epoch_seen() >= 1 || r.refresh());
        let snap = r.snapshot();
        assert_eq!(snap.events, trace.len() as u64);
        let mut out = Vec::new();
        let mut served = 0usize;
        for f in 0..trace.num_files() as u32 {
            r.top_k_into(FileId::new(f), 4, 0.0, &mut out);
            served += out.len();
        }
        assert!(served > 0, "tier served no correlations");
        let stats = serve.shutdown();
        assert_eq!(stats.events, trace.len() as u64);
        assert!(stats.publishes >= 1);
    }

    #[test]
    fn shutdown_drains_ring_before_final_publish() {
        let trace = WorkloadSpec::ins().scaled(0.01).generate();
        let mut cfg = ServeConfig::default();
        cfg.publish_every = 0; // manual publication only
        let serve = FarmerServe::spawn(cfg);
        let mut tx = serve.handle();
        for e in &trace.events {
            assert!(tx.ingest_event(&trace, e));
        }
        let cell = Arc::clone(serve.cell());
        let stats = serve.shutdown();
        assert_eq!(stats.events, trace.len() as u64, "ring drained fully");
        assert_eq!(stats.publishes, 1, "exactly the final shutdown publish");
        let (epoch, snap) = cell.load();
        assert_eq!(epoch, stats.final_epoch);
        assert_eq!(snap.events, trace.len() as u64);
    }

    #[test]
    fn forgets_travel_in_order() {
        let trace = WorkloadSpec::ins().scaled(0.02).generate();
        let serve = FarmerServe::spawn(ServeConfig::default());
        let mut tx = serve.handle();
        for e in &trace.events {
            tx.ingest_event(&trace, e);
        }
        serve.flush();
        let mut r = serve.reader();
        let victim = {
            let snap = r.snapshot();
            let mut found = None;
            snap.for_each_list(&mut |owner, _| {
                found.get_or_insert(owner);
            });
            found.expect("mined something")
        };
        tx.forget(victim);
        serve.flush();
        assert!(r.refresh());
        let snap = r.snapshot();
        let mut out = Vec::new();
        snap.top_k_into(victim, 4, 0.0, &mut out);
        assert!(out.is_empty(), "forgotten file still served");
        let stats = serve.shutdown();
        assert_eq!(stats.forgets, 1);
    }

    #[test]
    fn publish_cadence_advances_epochs_mid_stream() {
        let trace = WorkloadSpec::hp().scaled(0.02).generate();
        let mut cfg = ServeConfig::default();
        cfg.publish_every = 512;
        let serve = FarmerServe::spawn(cfg);
        let mut tx = serve.handle();
        let mut r = serve.reader();
        let mut seen_epochs = vec![r.epoch_seen()];
        for e in &trace.events {
            tx.ingest_event(&trace, e);
            if r.refresh() {
                let s = r.snapshot();
                assert!(
                    s.events >= seen_epochs.len() as u64,
                    "snapshot behind publication count"
                );
                seen_epochs.push(r.epoch_seen());
            }
        }
        let stats = serve.shutdown();
        assert!(
            stats.publishes as usize >= trace.len() / 512,
            "cadence publications missing: {} for {} events",
            stats.publishes,
            trace.len()
        );
        assert!(
            seen_epochs.windows(2).all(|w| w[0] < w[1]),
            "reader observed a non-increasing epoch"
        );
    }

    #[test]
    fn ingest_after_shutdown_is_refused() {
        let serve = FarmerServe::spawn(ServeConfig::default());
        let mut tx = serve.handle();
        let trace = WorkloadSpec::ins().scaled(0.005).generate();
        assert!(tx.ingest_event(&trace, &trace.events[0]));
        let _ = serve.shutdown();
        // The worker is gone; the handle must refuse instead of spinning
        // forever once the ring fills.
        for e in trace.stream().take(5000) {
            let _ = tx.ingest_event(&trace, &e);
        }
    }

    #[test]
    fn instrumented_tier_reports_serve_metrics() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let reg = Registry::enabled();
        let mut cfg = ServeConfig::default();
        cfg.publish_every = 1024;
        let serve = FarmerServe::spawn_instrumented(cfg, &reg);
        let mut tx = serve.handle();
        for e in &trace.events {
            tx.ingest_event(&trace, e);
        }
        serve.flush();
        {
            let mut r0 = serve.reader();
            let mut r1 = serve.reader();
            let mut out = Vec::new();
            r0.top_k_into(FileId::new(0), 4, 0.0, &mut out);
            r1.top_k_into(FileId::new(1), 4, 0.0, &mut out);
            r1.strongest(FileId::new(2), 0.0);
            let obs = reg.snapshot();
            assert_eq!(obs.gauge("serve.readers"), Some(2));
            assert_eq!(obs.counter("serve.queries"), Some(3));
            assert_eq!(obs.histogram("serve.reader0.query_ns").unwrap().count, 1);
            assert_eq!(obs.histogram("serve.reader1.query_ns").unwrap().count, 2);
        }
        let stats = serve.shutdown();
        let obs = reg.snapshot();
        assert_eq!(obs.gauge("serve.readers"), Some(0), "drop deregisters");
        assert_eq!(obs.counter("serve.ingest_events"), Some(trace.len() as u64));
        assert_eq!(obs.counter("serve.snapshot_swaps"), Some(stats.publishes));
        assert_eq!(obs.gauge("serve.epoch"), Some(stats.final_epoch as i64));
        assert_eq!(
            obs.histogram("serve.publish_ns").unwrap().count,
            stats.publishes
        );
        // The wrapped miner's stream.* scope registers under the same root.
        assert_eq!(obs.counter("stream.events_mined"), Some(trace.len() as u64));
    }

    #[test]
    fn disabled_registry_reports_nothing() {
        let trace = WorkloadSpec::ins().scaled(0.005).generate();
        let reg = Registry::disabled();
        let serve = FarmerServe::spawn_instrumented(ServeConfig::default(), &reg);
        let mut tx = serve.handle();
        for e in &trace.events {
            tx.ingest_event(&trace, e);
        }
        serve.flush();
        let mut r = serve.reader();
        let mut out = Vec::new();
        r.top_k_into(FileId::new(0), 4, 0.0, &mut out);
        let _ = serve.shutdown();
        let obs = reg.snapshot();
        assert_eq!(obs.counter("serve.ingest_events"), None);
        assert_eq!(obs.gauge("serve.readers"), None);
        assert_eq!(obs.histogram("serve.reader0.query_ns"), None);
    }
}

//! # farmer-serve — the concurrent serving tier
//!
//! FARMER (HPDC'08) mines file-access correlations *so that they can be
//! served* — to prefetchers, replication planners, layout optimizers — at
//! demand-request rate. The rest of the workspace builds the mining side
//! (`farmer-core` model, `farmer-stream` sharded online miner); this
//! crate closes the loop with the serving side, where one always-running
//! miner and many query threads share the same machine without
//! contending:
//!
//! * [`ring`] — a fixed-capacity lock-free MPSC ring buffer. Any number
//!   of producer threads feed access events in; the single ingest worker
//!   drains them into the miner. Full ring = explicit backpressure (the
//!   push returns the value), never unbounded queueing.
//! * [`SnapshotCell`] / [`CellReader`] (re-exported from
//!   `farmer_stream::publish`) — epoch-swapped snapshot publication:
//!   installs are O(1), reads are wait-free and allocation-free between
//!   publications, and epochs (and the stream prefix they reflect) are
//!   strictly monotone per reader.
//! * [`FarmerServe`] — the tier itself: owns a
//!   [`farmer_stream::ShardedMiner`] on a dedicated ingest thread,
//!   publishes consistent cuts on a configurable cadence, hands out
//!   [`IngestHandle`]s (lock-free writers) and [`ServeReader`]s
//!   (wait-free readers), and shuts down gracefully by draining the ring
//!   before the final publication.
//!
//! Observability follows the workspace pattern: `spawn` is silent,
//! [`FarmerServe::spawn_instrumented`] registers the `serve.*` scope (see
//! the registry map in the repo README), and a disabled registry makes
//! every handle a no-op.
//!
//! `cargo run --release -p farmer --example serving` walks the tier end
//! to end; `serve_throughput` (farmer-bench) pins the read-scaling and
//! ingest-under-load numbers.

// The few unsafe blocks here each carry a SAFETY: proof (lint rule R2);
// unsafe fns must still mark their internal unsafe operations explicitly.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod metrics;
pub mod ring;
pub mod serve;

pub use farmer_stream::{CellReader, SnapshotCell, StreamConfig, StreamSnapshot};
pub use metrics::ServeMetrics;
pub use ring::{Consumer, Producer};
pub use serve::{FarmerServe, IngestHandle, ServeReader, ServeStats};

/// Configuration of the serving tier.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// The wrapped online miner's configuration (shards, caps, cadence —
    /// see [`StreamConfig`]).
    pub stream: StreamConfig,
    /// Slots in the ingest ring (rounded up to a power of two). The
    /// backpressure knob: producers outrunning the miner fill the ring
    /// and then wait, so resident memory stays capped.
    pub ring_capacity: usize,
    /// Publish a snapshot every this many ingested events; `0` disables
    /// the cadence (publication happens only on [`FarmerServe::publish`],
    /// [`FarmerServe::flush`], and shutdown).
    pub publish_every: u64,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            stream: StreamConfig::default(),
            ring_capacity: 1024,
            publish_every: 8192,
        }
    }
}

impl ServeConfig {
    /// Builder-style shard count override.
    pub fn with_shards(mut self, n: usize) -> Self {
        self.stream.num_shards = n;
        self
    }

    /// Builder-style publication cadence override.
    pub fn with_publish_every(mut self, n: u64) -> Self {
        self.publish_every = n;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let cfg = ServeConfig::default();
        assert!(cfg.ring_capacity.is_power_of_two());
        assert!(cfg.publish_every > 0);
        let cfg = cfg.with_shards(4).with_publish_every(100);
        assert_eq!(cfg.stream.num_shards, 4);
        assert_eq!(cfg.publish_every, 100);
    }
}

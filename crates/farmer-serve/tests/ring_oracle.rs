//! Property tests pinning the ingest ring against a `VecDeque` oracle.
//!
//! Single-threaded here on purpose: with one thread driving both ends,
//! the ring must behave *exactly* like a capacity-capped FIFO — same
//! accept/reject decision on every push, same value on every pop, same
//! length at every step, across arbitrary op interleavings and enough
//! volume to lap the slab many times. (Multi-threaded linearizability is
//! covered by the stress tests in `concurrency.rs`; this file is the
//! sequential-semantics anchor those runs are judged against.)

use std::collections::VecDeque;

use farmer_serve::ring::ring;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ring_matches_vecdeque_oracle(
        cap in 1usize..20,
        ops in proptest::collection::vec((any::<bool>(), 0u64..1_000_000), 0..400),
    ) {
        let (tx, mut rx) = ring::<u64>(cap);
        let real_cap = tx.capacity();
        prop_assert!(real_cap >= cap.max(2));
        prop_assert!(real_cap.is_power_of_two());
        let mut oracle: VecDeque<u64> = VecDeque::new();
        for (is_push, v) in ops {
            if is_push {
                match tx.try_push(v) {
                    Ok(()) => {
                        prop_assert!(
                            oracle.len() < real_cap,
                            "ring accepted a push the oracle says is over capacity"
                        );
                        oracle.push_back(v);
                    }
                    Err(back) => {
                        prop_assert_eq!(back, v, "rejected push must hand the value back");
                        prop_assert_eq!(
                            oracle.len(), real_cap,
                            "ring rejected a push below capacity"
                        );
                    }
                }
            } else {
                prop_assert_eq!(rx.try_pop(), oracle.pop_front());
            }
            prop_assert_eq!(tx.len(), oracle.len());
            prop_assert_eq!(rx.is_empty(), oracle.is_empty());
        }
        // Drain: everything still queued comes out in FIFO order.
        while let Some(want) = oracle.pop_front() {
            prop_assert_eq!(rx.try_pop(), Some(want));
        }
        prop_assert_eq!(rx.try_pop(), None);
    }

    #[test]
    fn wrap_around_preserves_fifo_across_many_laps(
        cap in 1usize..9,
        laps in 4usize..40,
    ) {
        // Fill-then-drain cycles: each lap pushes to capacity and pops to
        // empty, so the cursors wrap the (tiny) slab `laps` times.
        let (tx, mut rx) = ring::<usize>(cap);
        let real_cap = tx.capacity();
        let mut next = 0usize;
        let mut expect = 0usize;
        for _ in 0..laps {
            while tx.try_push(next).is_ok() {
                next += 1;
            }
            prop_assert_eq!(rx.len(), real_cap);
            while let Some(got) = rx.try_pop() {
                prop_assert_eq!(got, expect);
                expect += 1;
            }
        }
        prop_assert_eq!(expect, next);
        prop_assert_eq!(expect, real_cap * laps);
    }
}

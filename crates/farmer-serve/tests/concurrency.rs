//! Concurrency stress tests for the serving tier's two lock-free
//! primitives and for the assembled tier.
//!
//! These runs hammer the real invariants a concurrent serving tier must
//! never violate, under genuine multi-threaded interleavings:
//!
//! * a reader never observes a **torn snapshot** (the paired-field
//!   invariant baked into every published snapshot always holds),
//! * epochs and stream positions are **monotone per reader**,
//! * the MPSC ring loses nothing, duplicates nothing, and preserves
//!   **per-producer FIFO** under full-ring backpressure,
//! * the assembled tier mines exactly what its producers pushed.
//!
//! On a single-core host the interleavings come from preemption rather
//! than parallelism — the invariants are the same either way.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use farmer_core::CorrelationSource;
use farmer_serve::ring::ring;
use farmer_serve::{FarmerServe, ServeConfig, SnapshotCell, StreamSnapshot};
use farmer_trace::{FileId, WorkloadSpec};

/// A snapshot whose fields are pairwise locked together: any mix of two
/// different publications would break `events == 7 * evictions` or
/// `state_bytes == 3 * evictions`.
fn linked_snapshot(i: u64) -> Arc<StreamSnapshot> {
    Arc::new(StreamSnapshot {
        events: 7 * i,
        evictions: i,
        state_bytes: 3 * i as usize,
        shards: 1,
        ..StreamSnapshot::default()
    })
}

#[test]
fn snapshot_cell_swap_load_stress() {
    const INSTALLS: u64 = 20_000;
    const READERS: usize = 4;
    let cell = Arc::new(SnapshotCell::new());
    let done = Arc::new(AtomicBool::new(false));
    let max_seen = Arc::new(AtomicU64::new(0));
    thread::scope(|s| {
        for _ in 0..READERS {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            let max_seen = Arc::clone(&max_seen);
            s.spawn(move || {
                let mut r = cell.reader();
                let mut last_epoch = r.epoch_seen();
                let mut last_events = r.cached().events;
                let mut picked_up = 0u64;
                loop {
                    let finished = done.load(Ordering::Acquire);
                    if r.refresh() {
                        picked_up += 1;
                        let snap = r.cached();
                        // No torn reads: the paired invariant survives.
                        assert_eq!(snap.events, 7 * snap.evictions, "torn snapshot");
                        assert_eq!(
                            snap.state_bytes,
                            3 * snap.evictions as usize,
                            "torn snapshot"
                        );
                        // Monotone per reader, in both clocks.
                        assert!(r.epoch_seen() > last_epoch, "epoch regressed");
                        assert!(snap.events >= last_events, "stream position regressed");
                        last_epoch = r.epoch_seen();
                        last_events = snap.events;
                    } else if finished {
                        break;
                    }
                }
                max_seen.fetch_max(last_events, Ordering::AcqRel);
                picked_up
            });
        }
        let writer = {
            let cell = Arc::clone(&cell);
            let done = Arc::clone(&done);
            s.spawn(move || {
                for i in 1..=INSTALLS {
                    cell.install(linked_snapshot(i));
                }
                done.store(true, Ordering::Release);
            })
        };
        writer.join().unwrap();
    });
    assert_eq!(cell.epoch(), INSTALLS);
    // Every reader that outlived the writer converged on the final state.
    assert_eq!(max_seen.load(Ordering::Acquire), 7 * INSTALLS);
    let (epoch, last) = cell.load();
    assert_eq!(epoch, INSTALLS);
    assert_eq!(last.events, 7 * INSTALLS);
}

#[test]
fn ring_mpsc_stress_under_backpressure() {
    // A ring far smaller than the volume: producers live in permanent
    // backpressure, so every push exercises the full/retry path and the
    // cursors wrap the slab thousands of times.
    const PRODUCERS: usize = 8;
    const PER: usize = 20_000;
    let (tx, mut rx) = ring::<(usize, usize)>(16);
    let mut next = [0usize; PRODUCERS];
    thread::scope(|s| {
        for p in 0..PRODUCERS {
            let tx = tx.clone();
            s.spawn(move || {
                for i in 0..PER {
                    let mut item = (p, i);
                    loop {
                        match tx.try_push(item) {
                            Ok(()) => break,
                            Err(back) => {
                                item = back;
                                thread::yield_now();
                            }
                        }
                    }
                }
            });
        }
        let next = &mut next;
        let mut got = 0usize;
        while got < PRODUCERS * PER {
            match rx.try_pop() {
                Some((p, i)) => {
                    // Per-producer FIFO: producer p's items arrive in push
                    // order, with no loss and no duplication.
                    assert_eq!(i, next[p], "producer {p} lost or reordered an item");
                    next[p] += 1;
                    got += 1;
                }
                None => thread::yield_now(),
            }
        }
    });
    assert_eq!(rx.try_pop(), None, "ring held more items than were pushed");
    assert!(next.iter().all(|&n| n == PER));
}

#[test]
fn tier_serves_while_ingesting_from_many_writers() {
    const WRITERS: usize = 2;
    const READERS: usize = 4;
    let trace = Arc::new(WorkloadSpec::hp().scaled(0.02).generate());
    let cfg = ServeConfig {
        ring_capacity: 64, // small: force real backpressure
        publish_every: 1024,
        ..ServeConfig::default()
    };
    let serve = FarmerServe::spawn(cfg);
    let ingest_done = Arc::new(AtomicBool::new(false));
    let num_files = trace.num_files() as u32;
    thread::scope(|s| {
        // Writers split the trace round-robin; every event lands exactly
        // once, so the mined stream length is exact.
        for w in 0..WRITERS {
            let mut tx = serve.handle();
            let trace = Arc::clone(&trace);
            s.spawn(move || {
                for e in trace.events.iter().skip(w).step_by(WRITERS) {
                    assert!(tx.ingest_event(&trace, e), "tier refused mid-run ingest");
                }
            });
        }
        // Readers query throughout: epochs monotone, every served snapshot
        // internally consistent with its own stream position.
        for _ in 0..READERS {
            let mut r = serve.reader();
            let ingest_done = Arc::clone(&ingest_done);
            s.spawn(move || {
                let mut out = Vec::with_capacity(8);
                let mut last_epoch = r.epoch_seen();
                let mut last_events = 0u64;
                let mut f = 0u32;
                loop {
                    let finished = ingest_done.load(Ordering::Acquire);
                    r.top_k_into(FileId::new(f % num_files.max(1)), 4, 0.0, &mut out);
                    f = f.wrapping_add(1);
                    let epoch = r.epoch_seen();
                    assert!(epoch >= last_epoch, "reader epoch regressed");
                    if epoch > last_epoch {
                        let snap = r.snapshot();
                        assert!(
                            snap.events >= last_events,
                            "served stream position regressed"
                        );
                        last_events = snap.events;
                        last_epoch = r.epoch_seen();
                    }
                    if finished {
                        break;
                    }
                }
            });
        }
        // First two scoped threads spawned are the writers; wait for them
        // via a drain barrier once they are done pushing.
        s.spawn({
            let serve = &serve;
            let ingest_done = Arc::clone(&ingest_done);
            let trace = Arc::clone(&trace);
            move || {
                // Writers signal completion implicitly: keep flushing until
                // the mined prefix covers the whole trace.
                loop {
                    serve.flush();
                    let (_, snap) = serve.cell().load();
                    if snap.events == trace.len() as u64 {
                        break;
                    }
                    thread::yield_now();
                }
                ingest_done.store(true, Ordering::Release);
            }
        });
    });
    let stats = serve.shutdown();
    assert_eq!(stats.events, trace.len() as u64, "events lost in the tier");
}

#[test]
fn readers_survive_tier_shutdown() {
    let trace = WorkloadSpec::ins().scaled(0.01).generate();
    let serve = FarmerServe::spawn(ServeConfig::default());
    let mut tx = serve.handle();
    for e in &trace.events {
        tx.ingest_event(&trace, e);
    }
    let mut r = serve.reader();
    let stats = serve.shutdown();
    // The tier is gone; the reader still serves the final epoch.
    assert!(r.refresh() || r.epoch_seen() == stats.final_epoch);
    assert_eq!(r.epoch_seen(), stats.final_epoch);
    let snap = r.snapshot();
    assert_eq!(snap.events, trace.len() as u64);
    assert_eq!(snap.version(), trace.len() as u64);
}

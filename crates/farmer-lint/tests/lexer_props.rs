//! Property tests for the hand-rolled lexer: totality (never panics on
//! arbitrary byte soup) and the span-tiling round-trip invariant that
//! everything the engine's adjacency model relies on is built from.

use farmer_lint::lexer::{lex, LineIndex, TokenKind};
use proptest::prelude::*;

/// Spans must be in-bounds, ordered, non-overlapping, and the bytes they
/// skip must be pure whitespace — i.e. tokens tile the input.
fn assert_tiling(src: &str) {
    let tokens = lex(src);
    let mut pos = 0usize;
    for t in &tokens {
        assert!(t.start >= pos, "overlapping span at {} in {src:?}", t.start);
        assert!(t.start < t.end && t.end <= src.len(), "bad span in {src:?}");
        assert!(
            src[pos..t.start].chars().all(char::is_whitespace),
            "skipped non-whitespace {:?} in {src:?}",
            &src[pos..t.start]
        );
        pos = t.end;
    }
    assert!(
        src[pos..].chars().all(char::is_whitespace),
        "trailing non-whitespace {:?}",
        &src[pos..]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Totality on arbitrary (mostly invalid) UTF-8: the lexer must never
    /// panic and must still tile whatever `from_utf8_lossy` yields.
    #[test]
    fn lexer_never_panics_on_byte_soup(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        assert_tiling(&src);
    }

    /// Byte soup drawn from the characters that drive the lexer's state
    /// machine (quotes, hashes, slashes, escapes) — far more likely to
    /// land in half-open strings and nested comments than uniform bytes.
    #[test]
    fn lexer_never_panics_on_delimiter_soup(
        picks in proptest::collection::vec(0usize..16, 0..120),
    ) {
        const ALPHABET: [&str; 16] = [
            "\"", "'", "r", "b", "#", "/", "*", "\\", "\n", "//", "/*", "*/",
            "r#\"", "b'", "x", " ",
        ];
        let src: String = picks.iter().map(|&i| ALPHABET[i]).collect();
        assert_tiling(&src);
    }
}

/// Hand-picked tricky fragments: every construct the scanner's comment
/// and string handling must not misparse, each checked for tiling plus a
/// spot-check of the decisive token kind.
#[test]
fn tricky_fragments() {
    let cases: &[(&str, TokenKind)] = &[
        (
            "/* outer /* nested */ still comment */ fn",
            TokenKind::BlockComment,
        ),
        ("r##\"raw with \"# inside\"## + x", TokenKind::RawStr),
        ("br#\"byte raw\"# ;", TokenKind::RawStr),
        ("\"esc \\\" quote\" ;", TokenKind::Str),
        ("'\\'' ;", TokenKind::Char),
        ("'a' ;", TokenKind::Char),
        ("'lifetime bound", TokenKind::Lifetime),
        ("r#fn ;", TokenKind::Ident),
        ("/// doc comment\nfn f() {}", TokenKind::LineComment),
        ("b'\\xff' ;", TokenKind::Char),
        ("1.5e3 ;", TokenKind::Num),
        ("c\"c string\" ;", TokenKind::Str),
    ];
    for (src, kind) in cases {
        assert_tiling(src);
        let kinds: Vec<TokenKind> = lex(src).iter().map(|t| t.kind).collect();
        assert!(
            kinds.contains(kind),
            "{src:?}: expected a {kind:?} token, got {kinds:?}"
        );
    }
}

/// Unterminated constructs must consume to EOF without panicking.
#[test]
fn unterminated_constructs_are_total() {
    for src in [
        "\"never closed",
        "r#\"never closed",
        "/* never closed",
        "/* /* doubly open */",
        "'",
        "b\"",
        "r###",
    ] {
        assert_tiling(src);
    }
}

/// The line index agrees with a straightforward scan.
#[test]
fn line_index_matches_naive_count() {
    let src = "a\nbb\n\nccc\n";
    let idx = LineIndex::new(src);
    for (off, _) in src.char_indices() {
        let naive = 1 + src[..off].matches('\n').count();
        assert_eq!(idx.line_of(off), naive, "offset {off}");
    }
}

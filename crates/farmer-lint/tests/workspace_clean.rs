//! The self-check that makes the lint gate part of tier-1: running the
//! full rule set over the real workspace must come back clean. A PR that
//! introduces an unjustified ordering, an uncommented unsafe block, or a
//! stray unwrap fails `cargo test` before CI even reaches the dedicated
//! `farmer_lint --check` job.

use farmer_lint::rules::LintConfig;
use std::path::PathBuf;

#[test]
fn workspace_has_no_findings() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/farmer-lint sits two levels below the workspace root")
        .to_path_buf();
    assert!(
        root.join("Cargo.toml").is_file(),
        "workspace root not found at {}",
        root.display()
    );
    let (files, findings) = farmer_lint::lint_workspace(&root, &LintConfig::workspace());
    assert!(
        files > 100,
        "suspiciously few files scanned ({files}) — walk misrooted?"
    );
    assert!(
        findings.is_empty(),
        "workspace lint findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}", f.file, f.line, f.rule, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

//! Per-rule fixture corpus: every rule must fire on its seeded-violation
//! fixture and stay silent on its clean counterpart. This is the proof
//! that a green `farmer_lint --check` means the rules actually ran, not
//! that they matched nothing.

use farmer_lint::rules::{LintConfig, RULES};
use farmer_lint::scan::FileClass;
use std::path::PathBuf;

fn fixture(kind: &str, name: &str) -> (String, String) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(kind)
        .join(name);
    let rel = format!("fixtures/{kind}/{name}");
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    (rel, src)
}

fn run(kind: &str, name: &str) -> Vec<&'static str> {
    let (rel, src) = fixture(kind, name);
    farmer_lint::lint_source(&rel, FileClass::Fixture, &src, &LintConfig::workspace())
        .into_iter()
        .map(|f| f.rule)
        .collect()
}

/// Each rule: the seeded fixture fires (with at least one finding from
/// *that* rule and none from any other — fixtures are violation-pure),
/// and the clean twin is silent.
#[test]
fn every_rule_has_a_firing_seeded_fixture_and_a_silent_clean_one() {
    for rule in &RULES {
        let name = format!("{}_{}.rs", rule.id.to_lowercase(), rule.key);
        let seeded = run("seeded", &name);
        assert!(
            !seeded.is_empty() && seeded.iter().all(|r| *r == rule.id),
            "{name}: seeded fixture should fire only {}: {seeded:?}",
            rule.id
        );
        let clean = run("clean", &name);
        assert!(clean.is_empty(), "{name}: clean fixture fired {clean:?}");
    }
}

/// Exact finding counts for the seeded corpus, so a rule silently
/// matching less than it used to is caught, not just "matched nothing".
#[test]
fn seeded_fixture_finding_counts_are_pinned() {
    let expected = [
        ("r1_ord.rs", 2),     // Acquire load + Relaxed fetch_add
        ("r2_safety.rs", 2),  // unsafe impl + unsafe block
        ("r3_panic.rs", 5),   // unwrap, expect, panic!, reason-less allow, todo!
        ("r4_metric.rs", 4),  // bad case, empty segment, no suffix, multi-segment scope
        ("r5_sibling.rs", 2), // missing sibling + non-delegating sibling
        ("r6_sleep.rs", 1),   // sleeping test
    ];
    for (name, count) in expected {
        let findings = run("seeded", name);
        assert_eq!(findings.len(), count, "{name}: {findings:?}");
    }
}

/// The reason-less allow in the R3 fixture must be reported as such.
#[test]
fn reasonless_allow_is_reported() {
    let (rel, src) = fixture("seeded", "r3_panic.rs");
    let findings =
        farmer_lint::lint_source(&rel, FileClass::Fixture, &src, &LintConfig::workspace());
    assert!(
        findings
            .iter()
            .any(|f| f.message.contains("without a reason")),
        "expected a reason-less allow finding: {findings:?}"
    );
}

/// End-to-end over the fixture trees via the library entry point the
/// binary uses, pinning classification: seeded dirty, clean clean.
#[test]
fn fixture_trees_classify_as_fixtures() {
    use farmer_lint::walk::classify;
    assert_eq!(
        classify("crates/farmer-lint/fixtures/seeded/r1_ord.rs"),
        FileClass::Fixture
    );
    assert_eq!(
        classify("crates/farmer-lint/fixtures/clean/r1_ord.rs"),
        FileClass::Fixture
    );
}

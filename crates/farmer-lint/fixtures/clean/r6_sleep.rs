// Clean R6 counterpart: library backoff may sleep; the one test that
// must sleep carries a reasoned allow.
pub fn backoff(ms: u64) {
    std::thread::sleep(std::time::Duration::from_millis(ms));
}

#[cfg(test)]
mod tests {
    #[test]
    fn waits_for_detached_worker() {
        // lint: allow(sleep) the panicking worker cannot be joined; there is
        // no completion signal to poll for
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
}

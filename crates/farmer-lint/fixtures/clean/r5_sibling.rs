// Clean R5 counterpart: the plain sibling delegates through the
// disabled registry, so both paths share one implementation.
pub fn mine(input: &[u64]) -> u64 {
    mine_instrumented(input, &Registry::disabled())
}

pub fn mine_instrumented(input: &[u64], reg: &Registry) -> u64 {
    let _ = reg;
    input.len() as u64
}

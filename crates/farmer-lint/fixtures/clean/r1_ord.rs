// Clean R1 counterpart: every ordering justified, imports exempt.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::atomic::Ordering::Relaxed;

pub fn load_seq(slot: &AtomicU64) -> u64 {
    // ord: Acquire pairs with the Release store in `publish`; reads of the
    // payload after this load see the fully written record.
    slot.load(Ordering::Acquire)
}

pub fn bump(slot: &AtomicU64) {
    slot.fetch_add(1, Relaxed); // ord: monotonic counter, no payload to order
}

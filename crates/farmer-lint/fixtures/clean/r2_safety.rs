// Clean R2 counterpart: every unsafe site carries its proof obligation.
pub struct Slot(*mut u8);

// SAFETY: Slot owns the allocation behind the pointer exclusively; moving
// it between threads transfers that ownership.
unsafe impl Send for Slot {}

pub fn read(s: &Slot) -> u8 {
    // SAFETY: the pointer is non-null and valid for reads for the lifetime
    // of &self by the constructor's contract.
    unsafe { *s.0 }
}

// Clean R4 counterpart: lower_snake segments, unit-suffixed histograms,
// single-segment scopes.
pub fn register(reg: &Registry) {
    let c = reg.counter("serve.hits");
    let g = reg.gauge("serve.queue_depth");
    let h = reg.histogram("serve.publish_ns");
    let b = reg.histogram("stream.batch_events");
    let s = reg.scope("serve");
    let _ = (c, g, h, b, s);
}

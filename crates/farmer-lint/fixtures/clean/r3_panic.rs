// Clean R3 counterpart: errors propagated, invariants annotated with a
// reason, and tests free to unwrap.
pub fn head(v: &[u32]) -> Option<u32> {
    v.first().copied()
}

pub fn tail(v: &[u32]) -> Result<u32, &'static str> {
    v.last().copied().ok_or("empty input")
}

pub fn checked(v: &[u32]) -> u32 {
    // lint: allow(panic) caller guarantees non-empty: the mining loop only
    // reaches here after the batch-size check in ingest()
    *v.first().unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_here() {
        let v = vec![1u32];
        assert_eq!(*v.first().unwrap(), 1);
    }
}

// Seeded R5 violations: an instrumented entry point with no plain
// sibling, and one whose sibling does not delegate.
pub fn mine_instrumented(input: &[u64], reg: &Registry) -> u64 {
    let _ = reg;
    input.len() as u64
}

pub fn replay(input: &[u64]) -> u64 {
    input.len() as u64
}

pub fn replay_instrumented(input: &[u64], reg: &Registry) -> u64 {
    let _ = reg;
    input.len() as u64
}

// Seeded R3 violations: panic-capable calls in library code, plus a
// reason-less allow (which is itself a finding).
pub fn head(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn tail(v: &[u32]) -> u32 {
    *v.last().expect("non-empty")
}

pub fn grow(v: &mut Vec<u32>) {
    if v.len() > 1 << 20 {
        panic!("too big");
    }
    // lint: allow(panic)
    v.first().unwrap();
}

pub fn later() -> u32 {
    todo!()
}

// Seeded R4 violations: bad metric-name grammar and a histogram with no
// unit suffix.
pub fn register(reg: &Registry) {
    let c = reg.counter("Serve.Hits");
    let g = reg.gauge("serve..depth");
    let h = reg.histogram("serve.publish");
    let s = reg.scope("serve.ring");
    let _ = (c, g, h, s);
}

// Seeded R2 violations: unsafe without a SAFETY: comment.
pub struct Slot(*mut u8);

unsafe impl Send for Slot {}

pub fn read(s: &Slot) -> u8 {
    unsafe { *s.0 }
}

// Seeded R1 violations: atomic orderings with no `// ord:` justification.
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::atomic::Ordering::Relaxed;

pub fn load_seq(slot: &AtomicU64) -> u64 {
    slot.load(Ordering::Acquire)
}

pub fn bump(slot: &AtomicU64) {
    slot.fetch_add(1, Relaxed);
}

// Seeded R6 violation: a sleeping test.
pub fn spawn_worker() {}

#[cfg(test)]
mod tests {
    #[test]
    fn waits_by_sleeping() {
        super::spawn_worker();
        std::thread::sleep(std::time::Duration::from_millis(200));
    }
}

//! The six workspace rules and the engine that runs them.
//!
//! | id | key       | enforces |
//! |----|-----------|----------|
//! | R1 | `ord`     | every atomic-`Ordering` use in a designated lock-free module carries an `// ord:` justification |
//! | R2 | `safety`  | every `unsafe` block / fn / impl carries a `// SAFETY:` comment |
//! | R3 | `panic`   | no `unwrap()` / `expect()` / `panic!` / `todo!` / `unimplemented!` in non-test, non-bench library code |
//! | R4 | `metric`  | obs metric name literals match the `scope.metric` grammar; histograms carry a unit suffix |
//! | R5 | `sibling` | every public `*_instrumented` entry point has a plain sibling delegating via `Registry::disabled()` |
//! | R6 | `sleep`   | no `std::thread::sleep` in test code |
//!
//! Escape hatch: `// lint: allow(<key>) <reason>` on the offending line
//! or the comment block directly above it. The reason is mandatory — an
//! allow without one is itself a finding, so the hatch cannot silently
//! rot into a blanket waiver.

use crate::lexer::TokenKind;
use crate::scan::{Allow, FileClass, FileCtx};

/// One rule's identity, as reported in findings and the JSON record.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable id (`R1` … `R6`).
    pub id: &'static str,
    /// The `lint: allow(<key>)` key.
    pub key: &'static str,
    /// One-line summary for reports.
    pub summary: &'static str,
}

/// The active rule set, in id order.
pub const RULES: [RuleInfo; 6] = [
    RuleInfo {
        id: "R1",
        key: "ord",
        summary: "atomic Ordering uses in lock-free modules need an `// ord:` justification",
    },
    RuleInfo {
        id: "R2",
        key: "safety",
        summary: "unsafe blocks/fns/impls need a `// SAFETY:` comment",
    },
    RuleInfo {
        id: "R3",
        key: "panic",
        summary: "no unwrap/expect/panic!/todo!/unimplemented! in non-test library code",
    },
    RuleInfo {
        id: "R4",
        key: "metric",
        summary: "obs metric names follow the scope.metric grammar; histograms carry a unit suffix",
    },
    RuleInfo {
        id: "R5",
        key: "sibling",
        summary: "public *_instrumented entry points need a plain sibling delegating via Registry::disabled()",
    },
    RuleInfo {
        id: "R6",
        key: "sleep",
        summary: "no std::thread::sleep in test code",
    },
];

/// One finding: a rule violation (or a reason-less allow) at a line.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule id (`R1` …).
    pub rule: &'static str,
    /// Rule key (`ord`, `safety`, …).
    pub key: &'static str,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

/// Workspace policy: which files the path-gated rules designate.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Modules whose atomic-`Ordering` choices carry correctness claims
    /// (R1 applies to these files only — plus fixtures).
    pub lockfree_modules: Vec<String>,
    /// Crates whose library code R3 exempts (the bench harness may
    /// assert its own invariants with panics).
    pub panic_exempt_crates: Vec<String>,
    /// Histogram name suffixes accepted by R4: duration units plus the
    /// non-duration magnitudes the workspace records.
    pub hist_suffixes: Vec<&'static str>,
}

impl LintConfig {
    /// The workspace policy: the lock-free modules named in the README's
    /// concurrency section, bench harness exempt from R3.
    pub fn workspace() -> LintConfig {
        LintConfig {
            lockfree_modules: vec![
                "crates/farmer-serve/src/ring.rs".into(),
                "crates/farmer-serve/src/serve.rs".into(),
                "crates/farmer-stream/src/publish.rs".into(),
                "crates/farmer-obs/src/metric.rs".into(),
                "crates/farmer-obs/src/hist.rs".into(),
            ],
            panic_exempt_crates: vec!["farmer-bench".into()],
            hist_suffixes: vec!["_ns", "_us", "_ms", "_events", "_bytes"],
        }
    }
}

/// Run every applicable rule over one file. `path` gates which rules
/// apply (see [`FileClass`]); fixtures activate all of them.
pub fn lint_file(ctx: &FileCtx<'_>, cfg: &LintConfig) -> Vec<Finding> {
    let mut out = Vec::new();
    rule_ord(ctx, cfg, &mut out);
    rule_safety(ctx, &mut out);
    rule_panic(ctx, cfg, &mut out);
    rule_metric(ctx, cfg, &mut out);
    rule_sibling(ctx, &mut out);
    rule_sleep(ctx, &mut out);
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

fn push(
    out: &mut Vec<Finding>,
    rule: &RuleInfo,
    ctx: &FileCtx<'_>,
    offset: usize,
    message: String,
) {
    out.push(Finding {
        rule: rule.id,
        key: rule.key,
        file: ctx.path.clone(),
        line: ctx.line_of(offset),
        message,
    });
}

/// Emit either the violation or (with a reason-less allow) the
/// weaker-but-still-failing annotation finding; a reasoned allow emits
/// nothing.
fn check_allow(
    out: &mut Vec<Finding>,
    rule: &RuleInfo,
    ctx: &FileCtx<'_>,
    offset: usize,
    message: String,
) {
    match ctx.allow(offset, rule.key) {
        Allow::Yes => {}
        Allow::MissingReason => push(
            out,
            rule,
            ctx,
            offset,
            format!("`lint: allow({})` without a reason — {message}", rule.key),
        ),
        Allow::No => push(out, rule, ctx, offset, message),
    }
}

const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// R1: every atomic-`Ordering` use (path form `Ordering::X` or imported
/// bare `X`) in a designated lock-free module must be covered by an
/// `// ord:` comment explaining why that ordering is sufficient.
fn rule_ord(ctx: &FileCtx<'_>, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let designated = ctx.class == FileClass::Fixture || cfg.lockfree_modules.contains(&ctx.path);
    if !designated {
        return;
    }
    let rule = &RULES[0];
    for t in &ctx.tokens {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text(ctx.src);
        if !ORDERINGS.contains(&text) {
            continue;
        }
        if ctx.in_use(t.start) || ctx.in_test_region(t.start) {
            continue;
        }
        if ctx.has_marker(t.start, "ord:") {
            continue;
        }
        check_allow(
            out,
            rule,
            ctx,
            t.start,
            format!("atomic ordering `{text}` without an `// ord:` justification"),
        );
    }
}

/// R2: every `unsafe` keyword (block, fn, impl) must be covered by a
/// `// SAFETY:` comment. Applies everywhere, tests included.
fn rule_safety(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let rule = &RULES[1];
    for t in &ctx.tokens {
        if t.kind != TokenKind::Ident || t.text(ctx.src) != "unsafe" {
            continue;
        }
        if ctx.has_marker(t.start, "SAFETY:") {
            continue;
        }
        check_allow(
            out,
            rule,
            ctx,
            t.start,
            "`unsafe` without a `// SAFETY:` comment".to_string(),
        );
    }
}

/// R3: no panic-capable call in non-test library code. Matches method
/// calls `.unwrap()` / `.expect(` and macro invocations `panic!` /
/// `todo!` / `unimplemented!`; `unreachable!` is deliberately exempt (an
/// explicit unreachability invariant), as are `assert!` family macros.
fn rule_panic(ctx: &FileCtx<'_>, cfg: &LintConfig, out: &mut Vec<Finding>) {
    let governed = match &ctx.class {
        FileClass::Library { krate } => !cfg.panic_exempt_crates.contains(krate),
        FileClass::Fixture => true,
        _ => false,
    };
    if !governed {
        return;
    }
    let rule = &RULES[2];
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = t.text(ctx.src);
        let hit = match text {
            "unwrap" | "expect" => {
                i > 0
                    && toks[i - 1].text(ctx.src) == "."
                    && toks.get(i + 1).is_some_and(|n| n.text(ctx.src) == "(")
            }
            "panic" | "todo" | "unimplemented" => {
                toks.get(i + 1).is_some_and(|n| n.text(ctx.src) == "!")
            }
            _ => false,
        };
        if !hit || ctx.in_test_region(t.start) {
            continue;
        }
        let what = match text {
            "unwrap" => ".unwrap()".to_string(),
            "expect" => ".expect(..)".to_string(),
            m => format!("{m}!"),
        };
        check_allow(
            out,
            rule,
            ctx,
            t.start,
            format!("{what} in library code — return an error or annotate the invariant"),
        );
    }
}

/// R4: metric name literals passed to `.counter("…")` / `.gauge("…")` /
/// `.histogram("…")` / `.scope("…")` must match the naming grammar:
/// dot-separated `[a-z][a-z0-9_]*` segments (scopes: exactly one
/// segment), histograms ending in a recognized unit suffix. Skips test
/// code (scratch names in tests are fine) and dynamically built names
/// (only string literals are checkable statically).
fn rule_metric(ctx: &FileCtx<'_>, cfg: &LintConfig, out: &mut Vec<Finding>) {
    if ctx.class == FileClass::TestFile {
        return;
    }
    let rule = &RULES[3];
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = toks[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let method = t.text(ctx.src);
        if !matches!(method, "counter" | "gauge" | "histogram" | "scope") {
            continue;
        }
        // Must look like a method/function call with a literal first arg.
        if i == 0 || toks[i - 1].text(ctx.src) != "." {
            continue;
        }
        let Some(open) = toks.get(i + 1) else {
            continue;
        };
        if open.text(ctx.src) != "(" {
            continue;
        }
        let Some(lit) = toks.get(i + 2) else { continue };
        if lit.kind != TokenKind::Str {
            continue;
        }
        if ctx.in_test_region(t.start) {
            continue;
        }
        let raw = lit.text(ctx.src);
        let name = raw.trim_matches('"');
        let mut problem = None;
        let segments: Vec<&str> = name.split('.').collect();
        if method == "scope" && segments.len() != 1 {
            problem = Some("scope names are single segments".to_string());
        }
        for seg in &segments {
            if !segment_ok(seg) {
                problem = Some(format!(
                    "segment {seg:?} violates the `[a-z][a-z0-9_]*` grammar"
                ));
                break;
            }
        }
        if problem.is_none() && method == "histogram" {
            let last = segments.last().copied().unwrap_or("");
            if !cfg.hist_suffixes.iter().any(|s| last.ends_with(s)) {
                problem = Some(format!(
                    "histogram lacks a unit suffix ({})",
                    cfg.hist_suffixes.join("/")
                ));
            }
        }
        if let Some(p) = problem {
            check_allow(
                out,
                rule,
                ctx,
                lit.start,
                format!("metric name {name:?}: {p}"),
            );
        }
    }
}

fn segment_ok(seg: &str) -> bool {
    let mut chars = seg.bytes();
    match chars.next() {
        Some(c) if c.is_ascii_lowercase() => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == b'_')
}

/// R5: for every public `foo_instrumented` fn there must be a plain
/// `foo` in the same file whose body delegates — i.e. mentions the
/// instrumented fn or `disabled` (the `Registry::disabled()` no-op
/// registry). Keeps the convention that observability is opt-in and the
/// uninstrumented path exists everywhere.
fn rule_sibling(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    if !matches!(ctx.class, FileClass::Library { .. } | FileClass::Fixture) {
        return;
    }
    let rule = &RULES[4];
    for f in &ctx.fns {
        let Some(base) = f.name.strip_suffix("_instrumented") else {
            continue;
        };
        if !f.is_pub || ctx.in_test_region(f.offset) {
            continue;
        }
        let Some(sib) = ctx.fns.iter().find(|s| s.name == base) else {
            check_allow(
                out,
                rule,
                ctx,
                f.offset,
                format!("`{}` has no plain `{base}` sibling in this file", f.name),
            );
            continue;
        };
        let delegates = sib.body.is_some_and(|(s, e)| {
            ctx.tokens.iter().any(|t| {
                t.kind == TokenKind::Ident
                    && t.start >= s
                    && t.end <= e
                    && matches!(t.text(ctx.src), s2 if s2 == "disabled" || s2 == f.name)
            })
        });
        if !delegates {
            check_allow(
                out,
                rule,
                ctx,
                sib.offset,
                format!(
                    "`{base}` does not delegate to `{}` (expected a `Registry::disabled()` call)",
                    f.name
                ),
            );
        }
    }
}

/// R6: no `thread::sleep` in test code — sleeping tests are either flaky
/// (too short under load) or slow (padded for safety); both rot CI.
fn rule_sleep(ctx: &FileCtx<'_>, out: &mut Vec<Finding>) {
    let whole_file_is_test = matches!(ctx.class, FileClass::TestFile | FileClass::Bench);
    let rule = &RULES[5];
    let toks = &ctx.tokens;
    for i in 0..toks.len() {
        let t = toks[i];
        if t.kind != TokenKind::Ident || t.text(ctx.src) != "sleep" {
            continue;
        }
        // Require the `thread::sleep` path shape.
        let is_thread_path = i >= 3
            && toks[i - 1].text(ctx.src) == ":"
            && toks[i - 2].text(ctx.src) == ":"
            && toks[i - 3].text(ctx.src) == "thread";
        if !is_thread_path {
            continue;
        }
        if !(whole_file_is_test || ctx.in_test_region(t.start)) {
            continue;
        }
        check_allow(
            out,
            rule,
            ctx,
            t.start,
            "`thread::sleep` in test code — poll a condition or use a channel timeout".to_string(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::FileCtx;

    fn run(src: &str) -> Vec<Finding> {
        let ctx = FileCtx::new("fixture.rs", FileClass::Fixture, src);
        lint_file(&ctx, &LintConfig::workspace())
    }

    fn rules_of(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn ord_fires_and_is_satisfied_by_marker() {
        let bad = "fn f(a: &AtomicU64) { a.load(Ordering::Acquire); }";
        assert_eq!(rules_of(&run(bad)), vec!["R1"]);
        let good = "fn f(a: &AtomicU64) {\n    // ord: pairs with the Release store in g\n    a.load(Ordering::Acquire);\n}";
        assert!(run(good).is_empty());
        let trailing = "fn f(a: &AtomicU64) { a.load(Ordering::Acquire) } // ord: why";
        assert!(run(trailing).is_empty());
    }

    #[test]
    fn ord_matches_bare_imported_orderings_but_not_imports() {
        let src =
            "use std::sync::atomic::Ordering::Relaxed;\nfn f(a: &AtomicU64) { a.load(Relaxed); }";
        let f = run(src);
        assert_eq!(rules_of(&f), vec!["R1"], "{f:?}");
        assert_eq!(f[0].line, 2, "the import line is exempt");
    }

    #[test]
    fn safety_fires_on_all_unsafe_forms() {
        let src = "unsafe impl Send for X {}\npub unsafe fn f() {}\nfn g() { unsafe { h() } }";
        assert_eq!(rules_of(&run(src)), vec!["R2", "R2", "R2"]);
        let good = "// SAFETY: X owns its data\nunsafe impl Send for X {}";
        assert!(run(good).is_empty());
    }

    #[test]
    fn panic_rule_catches_the_five_forms_and_skips_tests() {
        let src = "\
fn f(v: &[u32]) -> u32 {
    let a = v.first().unwrap();
    let b = v.first().expect(\"x\");
    if v.is_empty() { panic!(\"no\"); }
    todo!()
}
#[cfg(test)]
mod tests {
    fn t(v: &[u32]) { v.first().unwrap(); }
}
";
        assert_eq!(rules_of(&run(src)), vec!["R3", "R3", "R3", "R3"]);
    }

    #[test]
    fn panic_allow_needs_a_reason() {
        let with = "fn f(v: &[u32]) {\n    // lint: allow(panic) v is non-empty by construction\n    v.first().unwrap();\n}";
        assert!(run(with).is_empty());
        let without = "fn f(v: &[u32]) {\n    // lint: allow(panic)\n    v.first().unwrap();\n}";
        let f = run(without);
        assert_eq!(rules_of(&f), vec!["R3"]);
        assert!(f[0].message.contains("without a reason"));
    }

    #[test]
    fn unwrap_or_variants_are_not_flagged() {
        let src = "fn f(v: Option<u32>) -> u32 { v.unwrap_or(0).max(v.unwrap_or_default()) }";
        assert!(run(src).is_empty());
        // A closure *named* unwrap is a call of a binding, not Option::unwrap.
        let named = "fn f(unwrap: impl Fn() -> u32) -> u32 { unwrap() }";
        assert!(run(named).is_empty());
    }

    #[test]
    fn metric_grammar_and_unit_suffixes() {
        let bad = r#"fn f(reg: &Registry) { reg.histogram("serve.publish"); reg.counter("Bad.name"); reg.scope("a.b"); }"#;
        assert_eq!(rules_of(&run(bad)), vec!["R4", "R4", "R4"]);
        let good = r#"fn f(reg: &Registry) { reg.histogram("serve.publish_ns"); reg.counter("stream.events_mined"); reg.scope("wal"); reg.histogram("batch_events"); }"#;
        assert!(run(good).is_empty());
    }

    #[test]
    fn metric_rule_ignores_dynamic_names_and_test_code() {
        let dynamic = r#"fn f(reg: &Registry) { reg.histogram(&format!("reader{i}.query_ns")); }"#;
        assert!(run(dynamic).is_empty());
        let test = "#[cfg(test)]\nmod tests {\n    fn t(reg: &Registry) { reg.counter(\"X\"); }\n}";
        assert!(run(test).is_empty());
    }

    #[test]
    fn sibling_rule_requires_plain_delegating_twin() {
        let missing = "pub fn mine_instrumented(reg: &Registry) {}";
        let f = run(missing);
        assert_eq!(rules_of(&f), vec!["R5"]);
        assert!(f[0].message.contains("no plain `mine` sibling"));
        let good = "pub fn mine() { mine_instrumented(&Registry::disabled()) }\npub fn mine_instrumented(reg: &Registry) {}";
        assert!(run(good).is_empty());
        let non_delegating =
            "pub fn mine() { other() }\npub fn mine_instrumented(reg: &Registry) {}";
        assert_eq!(rules_of(&run(non_delegating)), vec!["R5"]);
    }

    #[test]
    fn sleep_rule_fires_only_in_test_code() {
        let in_test =
            "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { std::thread::sleep(d); }\n}";
        assert_eq!(rules_of(&run(in_test)), vec!["R6"]);
        let in_lib = "fn backoff() { std::thread::sleep(d); }";
        assert!(run(in_lib).is_empty(), "library sleep is R6-exempt");
        let allowed = "#[cfg(test)]\nmod tests {\n    fn t() {\n        // lint: allow(sleep) waiting for an unjoinable worker to die\n        std::thread::sleep(d);\n    }\n}";
        assert!(run(allowed).is_empty());
    }

    #[test]
    fn findings_are_line_ordered() {
        let src = "fn f(v: &[u32]) {\n    v.first().unwrap();\n    unsafe { g() }\n    v.last().unwrap();\n}";
        let f = run(src);
        let lines: Vec<usize> = f.iter().map(|x| x.line).collect();
        let mut sorted = lines.clone();
        sorted.sort_unstable();
        assert_eq!(lines, sorted);
    }
}

//! `farmer_lint` — run the workspace rules and emit the JSON report.
//!
//! ```text
//! farmer_lint [--check] [ROOT]
//! ```
//!
//! Scans `ROOT` (default: the workspace root containing this crate,
//! falling back to the current directory), prints the ordered-JSON
//! report to stdout and a one-line summary to stderr. With `--check`,
//! exits nonzero when any finding survives — that is the CI gate.

use farmer_lint::rules::LintConfig;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut check = false;
    let mut root: Option<PathBuf> = None;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                eprintln!("usage: farmer_lint [--check] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => {
                if root.is_some() {
                    eprintln!("farmer_lint: unexpected argument {other:?}");
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(other));
            }
        }
    }
    let root = root.unwrap_or_else(default_root);

    let cfg = LintConfig::workspace();
    let (files, findings) = farmer_lint::lint_workspace(&root, &cfg);
    print!("{}", farmer_lint::emit::report(&findings, files));

    if findings.is_empty() {
        eprintln!("farmer_lint: {files} files scanned, clean");
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            eprintln!("{}:{}: [{}] {}", f.file, f.line, f.rule, f.message);
        }
        eprintln!(
            "farmer_lint: {files} files scanned, {} finding(s)",
            findings.len()
        );
        if check {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}

/// The workspace root: two levels up from this crate's manifest dir
/// (`crates/farmer-lint` → repo root) when that looks like a workspace,
/// else the current directory.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    if let Some(ws) = manifest.parent().and_then(|p| p.parent()) {
        if ws.join("Cargo.toml").is_file() {
            return ws.to_path_buf();
        }
    }
    PathBuf::from(".")
}

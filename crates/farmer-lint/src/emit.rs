//! Minimal ordered-JSON emitter for the lint report.
//!
//! Mirrors the farmer-bench emitter convention (insertion-ordered
//! objects, stable escaping, schema version pinned at the top) without
//! depending on it — farmer-lint stays zero-dependency so it can lint
//! the crate that would otherwise be its dependency.

use crate::rules::{Finding, RULES};
use std::fmt::Write as _;

/// Bumped whenever the report shape changes; CI pins on it.
pub const LINT_SCHEMA_VERSION: u32 = 1;

/// Render the full report: schema version, rule table, per-file finding
/// counts, and the findings themselves in (file, line, rule) order.
pub fn report(findings: &[Finding], files_scanned: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"schema_version\": {LINT_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"files_scanned\": {files_scanned},");
    let _ = writeln!(out, "  \"finding_count\": {},", findings.len());

    out.push_str("  \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"id\": {}, \"key\": {}, \"summary\": {}}}",
            escape(r.id),
            escape(r.key),
            escape(r.summary)
        );
        out.push_str(if i + 1 < RULES.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ],\n");

    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"rule\": {}, \"file\": {}, \"line\": {}, \"message\": {}}}",
            escape(f.rule),
            escape(&f.file),
            f.line,
            escape(&f.message)
        );
        out.push_str(if i + 1 < findings.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// JSON string escaping: quotes, backslashes, and control characters.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_report_is_valid_shape() {
        let r = report(&[], 42);
        assert!(r.contains("\"schema_version\": 1"));
        assert!(r.contains("\"files_scanned\": 42"));
        assert!(r.contains("\"finding_count\": 0"));
        assert!(r.ends_with("}\n"));
    }

    #[test]
    fn findings_render_with_escapes() {
        let f = Finding {
            rule: "R3",
            key: "panic",
            file: "a/b.rs".into(),
            line: 7,
            message: "quote \" and\nnewline".into(),
        };
        let r = report(&[f], 1);
        assert!(r.contains(r#""rule": "R3""#));
        assert!(r.contains(r#""line": 7"#));
        assert!(r.contains(r#"quote \" and\nnewline"#));
    }

    #[test]
    fn escape_control_chars() {
        assert_eq!(escape("a\u{1}b"), "\"a\\u0001b\"");
    }
}

//! The item scanner: everything the rules need beyond raw tokens.
//!
//! Built once per file into a [`FileCtx`]:
//!
//! * **per-line facts** — whether a line holds code, and the concatenated
//!   comment text touching it (the substrate of the justification-comment
//!   checks);
//! * **`#[cfg(test)]` / `#[test]` regions** — byte spans of items marked
//!   as test-only, so panic/metric rules skip test code without any
//!   path-based guessing;
//! * **`use` statement spans** — so `use std::sync::atomic::Ordering`
//!   does not count as an `Ordering` *use site*;
//! * **fn items** — name, visibility, and body span, for the
//!   `*_instrumented` sibling rule.
//!
//! Coverage model for justification comments (`// ord:`, `// SAFETY:`,
//! `// lint: allow(...)`): a marker covers a token if it appears in a
//! comment **on the token's own line**, or in the contiguous run of
//! comment-only lines (attribute lines are skipped) **directly above**
//! it. A blank line or an unrelated code line breaks the association —
//! the same adjacency rule `clippy::undocumented_unsafe_blocks` uses.

use crate::lexer::{lex, LineIndex, Token, TokenKind};

/// How a file participates in the rule set, derived from its
/// workspace-relative path (see [`crate::walk::classify`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FileClass {
    /// `crates/<name>/src/**` (non-bin) and the umbrella `src/` — the
    /// code the panic-freedom and sibling rules govern.
    Library {
        /// The owning crate's package name (`farmer-core`, …).
        krate: String,
    },
    /// `src/bin/**` or `**/main.rs`: binary entry points (CLI glue may
    /// panic on bad usage).
    Bin,
    /// `tests/**`: integration test code.
    TestFile,
    /// `benches/**`: criterion benches.
    Bench,
    /// `examples/**`.
    Example,
    /// A lint fixture: every path-gated rule is active, so seeded
    /// violations fire regardless of where the fixture lives.
    Fixture,
}

/// One `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// Whether a `pub` (of any restriction) precedes it.
    pub is_pub: bool,
    /// Byte offset of the `fn` keyword (for line reporting).
    pub offset: usize,
    /// Byte span of the `{ … }` body, when the item has one.
    pub body: Option<(usize, usize)>,
}

/// Per-line facts.
#[derive(Debug, Default, Clone)]
struct LineInfo {
    /// Any non-comment token touches this line.
    has_code: bool,
    /// Concatenated text of every comment touching this line.
    comment: String,
}

/// Everything the rules need to know about one file.
#[derive(Debug)]
pub struct FileCtx<'a> {
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// Rule-applicability class.
    pub class: FileClass,
    /// The source text.
    pub src: &'a str,
    /// The token stream.
    pub tokens: Vec<Token>,
    /// Line starts.
    pub lines: LineIndex,
    /// Byte spans of `#[cfg(test)]` / `#[test]` items.
    pub test_regions: Vec<(usize, usize)>,
    /// Byte spans of `use … ;` statements.
    pub use_spans: Vec<(usize, usize)>,
    /// Every `fn` item in the file.
    pub fns: Vec<FnItem>,
    line_info: Vec<LineInfo>,
}

/// Result of an escape-hatch lookup ([`FileCtx::allow`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Allow {
    /// No `lint: allow(key)` covers the line.
    No,
    /// Covered, with a non-empty reason.
    Yes,
    /// Covered, but the annotation gives no reason — itself a finding.
    MissingReason,
}

impl<'a> FileCtx<'a> {
    /// Lex and scan `src`.
    pub fn new(path: impl Into<String>, class: FileClass, src: &'a str) -> FileCtx<'a> {
        let tokens = lex(src);
        let lines = LineIndex::new(src);
        let mut line_info = vec![LineInfo::default(); lines.num_lines() + 1];
        for t in &tokens {
            let first = lines.line_of(t.start);
            let last = lines.line_of(t.end.saturating_sub(1).max(t.start));
            let is_comment = matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment);
            for info in line_info.iter_mut().take(last + 1).skip(first) {
                if is_comment {
                    info.comment.push_str(t.text(src));
                    info.comment.push('\n');
                } else {
                    info.has_code = true;
                }
            }
        }
        let test_regions = find_test_regions(&tokens, src);
        let use_spans = find_use_spans(&tokens, src);
        let fns = find_fns(&tokens, src);
        FileCtx {
            path: path.into(),
            class,
            src,
            tokens,
            lines,
            test_regions,
            use_spans,
            fns,
            line_info,
        }
    }

    /// The 1-based line of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        self.lines.line_of(offset)
    }

    /// Whether `offset` falls inside a `#[cfg(test)]` / `#[test]` item.
    pub fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| s <= offset && offset < e)
    }

    /// Whether `offset` falls inside a `use …;` statement.
    pub fn in_use(&self, offset: usize) -> bool {
        self.use_spans
            .iter()
            .any(|&(s, e)| s <= offset && offset < e)
    }

    fn comment_on(&self, line: usize) -> Option<&str> {
        let info = self.line_info.get(line)?;
        if info.comment.is_empty() {
            None
        } else {
            Some(&info.comment)
        }
    }

    fn line_text(&self, line: usize) -> &str {
        let lo = *self.lines_starts().get(line - 1).unwrap_or(&0);
        let hi = self
            .lines_starts()
            .get(line)
            .copied()
            .unwrap_or(self.src.len());
        self.src.get(lo..hi).unwrap_or("")
    }

    fn lines_starts(&self) -> &[usize] {
        // Exposed through LineIndex for line_text's slicing.
        self.lines.starts()
    }

    /// Walk the coverage window of `line` (its own comments, then the
    /// contiguous comment/attribute block directly above), yielding each
    /// comment blob to `check` until one matches.
    fn covered_by(&self, line: usize, check: &mut dyn FnMut(&str) -> bool) -> bool {
        if let Some(c) = self.comment_on(line) {
            if check(c) {
                return true;
            }
        }
        let mut l = line;
        while l > 1 {
            l -= 1;
            let has_code = self.line_has_code(l);
            let comment = self.comment_on(l);
            if has_code {
                // Attribute lines between a justification comment and the
                // item it documents are skipped, like rustc does for doc
                // comments.
                let trimmed = self.line_text(l).trim_start();
                if trimmed.starts_with("#[") || trimmed.starts_with("#![") {
                    continue;
                }
                return false;
            }
            match comment {
                Some(c) => {
                    if check(c) {
                        return true;
                    }
                }
                None => return false, // blank line breaks the block
            }
        }
        false
    }

    fn line_has_code(&self, line: usize) -> bool {
        self.line_info.get(line).is_some_and(|i| i.has_code)
    }

    /// Whether a justification `marker` (e.g. `"ord:"`, `"SAFETY:"`)
    /// covers the token at `offset` under the adjacency rule.
    pub fn has_marker(&self, offset: usize, marker: &str) -> bool {
        let line = self.line_of(offset);
        self.covered_by(line, &mut |c| c.contains(marker))
    }

    /// Look up a `// lint: allow(key) reason` escape hatch covering
    /// `offset`.
    pub fn allow(&self, offset: usize, key: &str) -> Allow {
        let line = self.line_of(offset);
        let needle = format!("lint: allow({key})");
        let mut missing_reason = false;
        let covered = self.covered_by(line, &mut |c| {
            c.lines().any(|cl| match cl.find(&needle) {
                None => false,
                Some(i) => {
                    let rest = cl[i + needle.len()..].trim();
                    if rest.is_empty() {
                        missing_reason = true;
                        false
                    } else {
                        true
                    }
                }
            })
        });
        if covered {
            Allow::Yes
        } else if missing_reason {
            Allow::MissingReason
        } else {
            Allow::No
        }
    }
}

/// Find `#[cfg(test)]` / `#[test]` item spans. Attributes accumulate
/// until the next item; the item extends to its matching close brace (or
/// terminating semicolon).
fn find_test_regions(tokens: &[Token], src: &str) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut i = 0usize;
    let mut pending_test = false;
    let mut pending_start: Option<usize> = None;
    while i < tokens.len() {
        let t = tokens[i];
        if t.kind == TokenKind::Punct && t.text(src) == "#" {
            // An attribute: `#[…]` or `#![…]` with nested brackets.
            let mut j = i + 1;
            if tokens.get(j).is_some_and(|t| t.text(src) == "!") {
                j += 1;
            }
            if tokens.get(j).is_some_and(|t| t.text(src) == "[") {
                let mut depth = 0usize;
                let mut is_test = false;
                let attr_start = t.start;
                while j < tokens.len() {
                    let a = tokens[j];
                    match a.text(src) {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        "test" if a.kind == TokenKind::Ident => is_test = true,
                        _ => {}
                    }
                    j += 1;
                }
                if is_test {
                    pending_test = true;
                    pending_start.get_or_insert(attr_start);
                }
                i = j + 1;
                continue;
            }
        }
        if matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            i += 1;
            continue;
        }
        if pending_test {
            // Consume one item: up to a top-level `;` before any brace,
            // or the matching `}` of the first top-level `{`.
            let start = pending_start.unwrap_or(t.start);
            let mut j = i;
            let mut paren = 0isize;
            let mut bracket = 0isize;
            let mut brace = 0isize;
            let mut entered_brace = false;
            let mut end = tokens[i].end;
            while j < tokens.len() {
                let a = tokens[j];
                match a.text(src) {
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    "[" => bracket += 1,
                    "]" => bracket -= 1,
                    "{" => {
                        brace += 1;
                        entered_brace = true;
                    }
                    "}" => {
                        brace -= 1;
                        if entered_brace && brace == 0 {
                            end = a.end;
                            break;
                        }
                    }
                    ";" if !entered_brace && paren == 0 && bracket == 0 => {
                        end = a.end;
                        break;
                    }
                    _ => {}
                }
                end = a.end;
                j += 1;
            }
            regions.push((start, end));
            pending_test = false;
            pending_start = None;
            i = j + 1;
            continue;
        }
        pending_start = None;
        i += 1;
    }
    regions
}

/// Spans of `use …;` statements (so imports of `Ordering` variants do not
/// count as use sites).
fn find_use_spans(tokens: &[Token], src: &str) -> Vec<(usize, usize)> {
    let mut spans = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        let t = tokens[i];
        if t.kind == TokenKind::Ident && t.text(src) == "use" {
            let start = t.start;
            let mut end = t.end;
            let mut j = i + 1;
            while j < tokens.len() {
                end = tokens[j].end;
                if tokens[j].text(src) == ";" {
                    break;
                }
                j += 1;
            }
            spans.push((start, end));
            i = j + 1;
        } else {
            i += 1;
        }
    }
    spans
}

/// Scan `fn` items: name, visibility, and body span.
fn find_fns(tokens: &[Token], src: &str) -> Vec<FnItem> {
    let mut fns = Vec::new();
    for i in 0..tokens.len() {
        let t = tokens[i];
        if t.kind != TokenKind::Ident || t.text(src) != "fn" {
            continue;
        }
        let Some(name_tok) = tokens.get(i + 1) else {
            continue;
        };
        if name_tok.kind != TokenKind::Ident {
            continue; // `fn(` in a function-pointer type
        }
        let name = name_tok.text(src).to_string();
        // Visibility: walk back over qualifiers (`pub(crate) const unsafe
        // extern "C"`), stopping at anything that ends a previous item.
        let mut is_pub = false;
        let mut k = i;
        while k > 0 {
            k -= 1;
            let b = tokens[k];
            match (b.kind, b.text(src)) {
                (TokenKind::Ident, "pub") => {
                    is_pub = true;
                    break;
                }
                (TokenKind::Ident, "const" | "unsafe" | "async" | "extern" | "crate" | "super")
                | (TokenKind::Str, _)
                | (TokenKind::Punct, "(" | ")") => continue,
                _ => break,
            }
        }
        // Body: first top-level `{` after the name (where-clauses and
        // return types contain no braces), or `;` for a bodyless decl.
        let mut j = i + 2;
        let mut paren = 0isize;
        let mut bracket = 0isize;
        let mut body = None;
        while j < tokens.len() {
            let a = tokens[j];
            match a.text(src) {
                "(" => paren += 1,
                ")" => paren -= 1,
                "[" => bracket += 1,
                "]" => bracket -= 1,
                ";" if paren == 0 && bracket == 0 => break,
                "{" if paren == 0 && bracket == 0 => {
                    let open = a.start;
                    let mut depth = 0isize;
                    while j < tokens.len() {
                        match tokens[j].text(src) {
                            "{" => depth += 1,
                            "}" => {
                                depth -= 1;
                                if depth == 0 {
                                    body = Some((open, tokens[j].end));
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        fns.push(FnItem {
            name,
            is_pub,
            offset: t.start,
            body,
        });
    }
    fns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(src: &str) -> FileCtx<'_> {
        FileCtx::new("test.rs", FileClass::Fixture, src)
    }

    #[test]
    fn cfg_test_mod_is_a_test_region() {
        let src = "pub fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n}\n";
        let c = ctx(src);
        assert_eq!(c.test_regions.len(), 1);
        let helper = src.find("helper").unwrap();
        assert!(c.in_test_region(helper));
        assert!(!c.in_test_region(src.find("lib").unwrap()));
    }

    #[test]
    fn test_attr_fn_is_a_test_region() {
        let src = "#[test]\nfn t() { x(); }\nfn live() {}\n";
        let c = ctx(src);
        assert!(c.in_test_region(src.find("x()").unwrap()));
        assert!(!c.in_test_region(src.find("live").unwrap()));
    }

    #[test]
    fn stacked_attributes_extend_the_region() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nmod t { fn y() {} }\nfn z() {}\n";
        let c = ctx(src);
        assert!(c.in_test_region(src.find("y()").unwrap()));
        assert!(!c.in_test_region(src.find("z()").unwrap()));
    }

    #[test]
    fn use_spans_cover_imports() {
        let src = "use std::sync::atomic::{AtomicU64, Ordering};\nfn f() { Ordering::SeqCst; }\n";
        let c = ctx(src);
        let import = src.find("Ordering").unwrap();
        let use_site = src.rfind("Ordering").unwrap();
        assert!(c.in_use(import));
        assert!(!c.in_use(use_site));
    }

    #[test]
    fn fn_items_with_bodies_and_visibility() {
        let src = "pub fn a() { inner(); }\nfn b();\npub(crate) fn c() {}\n";
        let c = ctx(src);
        let names: Vec<_> = c.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(names, vec![("a", true), ("b", false), ("c", true)]);
        assert!(c.fns[0].body.is_some());
        assert!(c.fns[1].body.is_none());
        let (s, e) = c.fns[0].body.unwrap();
        assert!(src[s..e].contains("inner"));
    }

    #[test]
    fn marker_same_line_and_block_above() {
        let src = "\
// SAFETY: same block
// second line
let x = unsafe { y };
let z = unsafe { w }; // SAFETY: trailing
let q = unsafe { v };
";
        let c = ctx(src);
        let first = src.find("unsafe").unwrap();
        let second = src[first + 1..].find("unsafe").unwrap() + first + 1;
        let third = src.rfind("unsafe").unwrap();
        assert!(c.has_marker(first, "SAFETY:"));
        assert!(c.has_marker(second, "SAFETY:"));
        assert!(!c.has_marker(third, "SAFETY:"), "no adjacency");
    }

    #[test]
    fn blank_line_breaks_marker_adjacency() {
        let src = "// SAFETY: too far\n\nlet x = unsafe { y };\n";
        let c = ctx(src);
        assert!(!c.has_marker(src.find("unsafe").unwrap(), "SAFETY:"));
    }

    #[test]
    fn attribute_lines_are_transparent() {
        let src = "// ord: justified\n#[inline]\nfn f() { a.load(Acquire); }\n";
        let c = ctx(src);
        assert!(c.has_marker(src.find("Acquire").unwrap(), "ord:"));
    }

    #[test]
    fn allow_requires_reason() {
        let src = "\
// lint: allow(panic) the constructor guarantees non-empty
let a = v.last().unwrap();
// lint: allow(panic)
let b = v.last().unwrap();
let c = v.last().unwrap();
";
        let c = ctx(src);
        let offs: Vec<usize> = ["a", "b", "c"]
            .iter()
            .map(|v| src.find(&format!("let {v}")).unwrap())
            .collect();
        assert_eq!(c.allow(offs[0], "panic"), Allow::Yes);
        assert_eq!(c.allow(offs[1], "panic"), Allow::MissingReason);
        assert_eq!(c.allow(offs[2], "panic"), Allow::No);
    }

    #[test]
    fn marker_inside_string_is_ignored() {
        let src = "let s = \"// SAFETY: fake\";\nlet x = unsafe { y };\n";
        let c = ctx(src);
        assert!(!c.has_marker(src.find("unsafe").unwrap(), "SAFETY:"));
    }
}

//! Workspace traversal: find the `.rs` files the rules govern and
//! classify each by its path.

use crate::scan::FileClass;
use std::path::{Path, PathBuf};

/// Directories never descended into: build output, VCS metadata, the
/// offline dependency shims (external-API stand-ins, not our
/// conventions), and farmer-lint's own seeded-violation fixtures.
const SKIP_DIRS: [&str; 4] = ["target", ".git", "shims", "fixtures"];

/// Recursively collect workspace `.rs` files under `root`, sorted by
/// path for deterministic reports. I/O errors on individual entries are
/// skipped rather than fatal (a half-written editor temp file must not
/// wedge CI).
pub fn collect(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    walk(root, &mut out);
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name) {
                walk(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Map a workspace-relative path to the [`FileClass`] that gates which
/// rules apply. The workspace layout convention:
/// `crates/<name>/src/**` is library code, `src/bin/**` binaries,
/// `tests/**` integration tests, `benches/**` benches,
/// `examples/**` examples, and anything under a `fixtures/` directory
/// is lint-fixture corpus (all rules active).
pub fn classify(rel: &str) -> FileClass {
    let parts: Vec<&str> = rel.split('/').collect();
    if parts.contains(&"fixtures") {
        return FileClass::Fixture;
    }
    if parts.contains(&"tests") {
        return FileClass::TestFile;
    }
    if parts.contains(&"benches") {
        return FileClass::Bench;
    }
    if parts.contains(&"examples") {
        return FileClass::Example;
    }
    if parts.windows(2).any(|w| w == ["src", "bin"]) {
        return FileClass::Bin;
    }
    // crates/<name>/src/** → library code of <name>; the umbrella
    // root src/ belongs to the `farmer` facade crate.
    if parts.first() == Some(&"crates") && parts.get(2) == Some(&"src") {
        return FileClass::Library {
            krate: parts[1].to_string(),
        };
    }
    if parts.first() == Some(&"src") {
        return FileClass::Library {
            krate: "farmer".to_string(),
        };
    }
    FileClass::Library {
        krate: "farmer".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_covers_the_layout() {
        assert_eq!(
            classify("crates/farmer-serve/src/ring.rs"),
            FileClass::Library {
                krate: "farmer-serve".into()
            }
        );
        assert_eq!(
            classify("crates/farmer-bench/src/bin/serve_throughput.rs"),
            FileClass::Bin
        );
        assert_eq!(
            classify("crates/farmer-core/tests/props.rs"),
            FileClass::TestFile
        );
        assert_eq!(classify("tests/pipeline.rs"), FileClass::TestFile);
        assert_eq!(classify("examples/mine.rs"), FileClass::Example);
        assert_eq!(
            classify("crates/farmer-lint/fixtures/seeded/r1_ord.rs"),
            FileClass::Fixture
        );
        assert_eq!(
            classify("src/lib.rs"),
            FileClass::Library {
                krate: "farmer".into()
            }
        );
    }

    #[test]
    fn collect_skips_shims_and_fixtures() {
        // Run over this crate's own tree: src/ files must appear,
        // fixtures/ must not.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"));
        let files = collect(root);
        assert!(files.iter().any(|p| p.ends_with("src/walk.rs")));
        assert!(!files
            .iter()
            .any(|p| p.components().any(|c| c.as_os_str() == "fixtures")));
    }
}

//! A token-level Rust lexer, hand-rolled because the offline build has no
//! crates.io (no `syn`, no `proc-macro2`): just enough lexical structure
//! for the rule engine to tell code from comments and strings.
//!
//! What it gets right — the cases a regex-grep gets wrong:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments
//!   (`/* /* */ */`), including doc block comments;
//! * string literals with escapes (`"a\"b"`), byte strings (`b"…"`),
//!   C strings (`c"…"`), and raw (byte) strings with any hash depth
//!   (`r##"…"##`, `br#"…"#`);
//! * char vs. lifetime disambiguation (`'a'` vs. `'a`, `'\u{1F600}'`,
//!   `b'x'`, `'_'` vs. `'_`), raw identifiers (`r#fn`);
//! * identifiers, numbers, and single-char punctuation — everything else.
//!
//! The lexer **never fails**: malformed input (unterminated strings,
//! stray quotes, arbitrary Unicode) produces tokens that still tile the
//! input — every byte of the source is covered by exactly one token or
//! by inter-token whitespace, a property the proptest suite pins. That
//! totality is what lets the lint run over fixture files that are not
//! valid Rust.

/// What a [`Token`] is. Just enough classification for the rules; all
/// punctuation is single-byte [`TokenKind::Punct`] (so `::` is two
/// tokens), and numeric literals are not sub-classified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// `// …` to end of line (doc variants included).
    LineComment,
    /// `/* … */`, nested; unterminated runs to end of input.
    BlockComment,
    /// `"…"`, `b"…"`, or `c"…"` with escapes; unterminated runs to end
    /// of input.
    Str,
    /// `r"…"`, `r#"…"#`, `br#"…"#` at any hash depth.
    RawStr,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// `'a`, `'static`, `'_`.
    Lifetime,
    /// Identifier or keyword, including raw identifiers (`r#fn`).
    Ident,
    /// A numeric literal (integer or float prefix; see module docs).
    Num,
    /// Any other single character.
    Punct,
}

/// One lexed token: kind plus the byte span `[start, end)` into the
/// source. Spans never overlap, never cover whitespace between tokens,
/// and always lie on `char` boundaries.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The source text this token covers.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        // lint: allow(panic) spans are constructed on char boundaries by
        // the lexer below; out-of-range would be a lexer bug caught by the
        // tiling proptest.
        &src[self.start..self.end]
    }
}

/// Byte length of the UTF-8 character starting at `b` (1 for ASCII and —
/// unreachable on valid `&str` input — continuation bytes).
fn char_len(b: u8) -> usize {
    match b {
        0xF0..=0xF7 => 4,
        0xE0..=0xEF => 3,
        0xC0..=0xDF => 2,
        _ => 1,
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    is_ident_start(b) || b.is_ascii_digit()
}

/// Lex `src` into tokens. Total: accepts any string, panics never, and
/// the returned spans tile the input modulo whitespace.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer {
        bytes: src.as_bytes(),
        pos: 0,
    }
    .run()
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Token> {
        let mut out = Vec::new();
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_whitespace() {
                self.pos += 1;
                continue;
            }
            let start = self.pos;
            let kind = self.next_kind(b);
            debug_assert!(self.pos > start, "lexer must always advance");
            out.push(Token {
                kind,
                start,
                end: self.pos,
            });
        }
        out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Dispatch on the first byte; advances `self.pos` past the token.
    fn next_kind(&mut self, b: u8) -> TokenKind {
        match b {
            b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
            b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
            b'"' => self.string(),
            b'\'' => self.char_or_lifetime(),
            b'r' | b'b' | b'c' => self.maybe_prefixed_literal(),
            _ if is_ident_start(b) => self.ident(),
            _ if b.is_ascii_digit() => self.number(),
            _ => {
                self.pos += char_len(b);
                TokenKind::Punct
            }
        }
    }

    fn line_comment(&mut self) -> TokenKind {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.pos += char_len(b);
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2; // consume "/*"
        let mut depth = 1usize;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    break;
                }
            } else {
                self.pos += char_len(b);
            }
        }
        TokenKind::BlockComment
    }

    /// A `"…"` string starting at the current `"`; handles `\"` and
    /// `\\` escapes, runs to end of input when unterminated.
    fn string(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    // An escape consumes the next char too (if any).
                    self.pos += 1;
                    if let Some(e) = self.peek(0) {
                        self.pos += char_len(e);
                    }
                }
                b'"' => {
                    self.pos += 1;
                    return TokenKind::Str;
                }
                _ => self.pos += char_len(b),
            }
        }
        TokenKind::Str
    }

    /// A raw string: the cursor sits on `r` (the `b` of `br` already
    /// consumed by the caller). Counts hashes, requires `"`, scans to
    /// `"` followed by the same number of hashes.
    fn raw_string(&mut self) -> TokenKind {
        self.pos += 1; // consume 'r'
        let mut hashes = 0usize;
        while self.peek(0) == Some(b'#') {
            hashes += 1;
            self.pos += 1;
        }
        if self.peek(0) != Some(b'"') {
            // `r#foo` raw identifier (hashes == 1) or stray `r#`; the
            // caller guarantees we only get here when a quote or hash
            // followed, so treat as identifier-ish and keep going.
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += 1;
            }
            return TokenKind::Ident;
        }
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            if b == b'"' {
                let mut k = 0usize;
                while k < hashes && self.peek(1 + k) == Some(b'#') {
                    k += 1;
                }
                if k == hashes {
                    self.pos += 1 + hashes;
                    return TokenKind::RawStr;
                }
            }
            self.pos += char_len(b);
        }
        TokenKind::RawStr
    }

    /// `r`, `b`, or `c` can prefix a literal (`r"…"`, `r#"…"#`, `r#ident`,
    /// `b"…"`, `b'…'`, `br"…"`, `c"…"`) or just start an identifier.
    fn maybe_prefixed_literal(&mut self) -> TokenKind {
        let b0 = self.bytes[self.pos];
        match (b0, self.peek(1)) {
            (b'r', Some(b'"' | b'#')) => self.raw_string(),
            (b'b', Some(b'"')) | (b'c', Some(b'"')) => {
                self.pos += 1;
                self.string()
            }
            (b'b', Some(b'\'')) => {
                self.pos += 1;
                self.char_literal()
            }
            (b'b', Some(b'r')) if matches!(self.peek(2), Some(b'"' | b'#')) => {
                self.pos += 1;
                self.raw_string()
            }
            _ => self.ident(),
        }
    }

    /// The cursor sits on `'`: a lifetime when followed by an identifier
    /// that is not closed by another `'`, a char literal otherwise.
    fn char_or_lifetime(&mut self) -> TokenKind {
        let first = self.peek(1);
        let is_lifetime = match first {
            Some(f) if is_ident_start(f) => {
                // `'a'` is a char, `'a` (no closing quote after one
                // ident) is a lifetime. Scan the identifier run and look
                // for an immediately following quote.
                let mut j = 1 + char_len(f);
                while self.peek(j).is_some_and(is_ident_continue) {
                    j += char_len(self.bytes[self.pos + j]);
                }
                self.peek(j) != Some(b'\'')
            }
            _ => false,
        };
        if is_lifetime {
            self.pos += 1;
            while self.peek(0).is_some_and(is_ident_continue) {
                self.pos += char_len(self.bytes[self.pos]);
            }
            TokenKind::Lifetime
        } else {
            self.char_literal()
        }
    }

    /// The cursor sits on the opening `'` of a char literal. Terminated
    /// by the matching `'`; bails at a newline or end of input so a stray
    /// quote cannot swallow the rest of the file.
    fn char_literal(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.pos += 1;
                    if let Some(e) = self.peek(0) {
                        self.pos += char_len(e);
                    }
                }
                b'\'' => {
                    self.pos += 1;
                    return TokenKind::Char;
                }
                b'\n' => return TokenKind::Char,
                _ => self.pos += char_len(b),
            }
        }
        TokenKind::Char
    }

    fn ident(&mut self) -> TokenKind {
        while self.peek(0).is_some_and(is_ident_continue) {
            self.pos += char_len(self.bytes[self.pos]);
        }
        TokenKind::Ident
    }

    /// A numeric literal: digits, underscores, alphanumeric suffixes, and
    /// a fractional part when a digit follows the dot (`1.5` is one token,
    /// `0..10`'s `0` is not).
    fn number(&mut self) -> TokenKind {
        let mut seen_dot = false;
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() {
                self.pos += 1;
            } else if b == b'.' && !seen_dot && self.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                seen_dot = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        TokenKind::Num
    }
}

/// Precomputed byte offsets of line starts, for O(log n) offset→line
/// lookups. Lines are 1-based (as editors and compilers report them).
#[derive(Debug)]
pub struct LineIndex {
    starts: Vec<usize>,
}

impl LineIndex {
    /// Index `src`'s line starts.
    pub fn new(src: &str) -> LineIndex {
        let mut starts = vec![0usize];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                starts.push(i + 1);
            }
        }
        LineIndex { starts }
    }

    /// The 1-based line containing byte `offset`.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// Number of lines (at least 1 even for an empty file).
    pub fn num_lines(&self) -> usize {
        self.starts.len()
    }

    /// The byte offsets where each line starts.
    pub fn starts(&self) -> &[usize] {
        &self.starts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, &str)> {
        lex(src).iter().map(|t| (t.kind, t.text(src))).collect()
    }

    #[test]
    fn comments_line_block_nested() {
        let src = "a // line\nb /* x /* y */ z */ c";
        let k = kinds(src);
        assert_eq!(k[0], (TokenKind::Ident, "a"));
        assert_eq!(k[1], (TokenKind::LineComment, "// line"));
        assert_eq!(k[2], (TokenKind::Ident, "b"));
        assert_eq!(k[3], (TokenKind::BlockComment, "/* x /* y */ z */"));
        assert_eq!(k[4], (TokenKind::Ident, "c"));
    }

    #[test]
    fn strings_with_escapes_and_raw() {
        let src = r####"let s = "a\"b"; let r = r#"un"escaped"#; let br = br##"x"##;"####;
        let k = kinds(src);
        assert!(k.contains(&(TokenKind::Str, r#""a\"b""#)));
        assert!(k.contains(&(TokenKind::RawStr, r###"r#"un"escaped"#"###)));
        assert!(k.contains(&(TokenKind::RawStr, r###"br##"x"##"###)));
    }

    #[test]
    fn byte_and_c_strings() {
        let k = kinds(r#"b"bytes" c"cstr" b'x'"#);
        assert_eq!(k[0].0, TokenKind::Str);
        assert_eq!(k[1].0, TokenKind::Str);
        assert_eq!(k[2], (TokenKind::Char, "b'x'"));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let src =
            "fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; let u = '_'; let l: &'_ str; }";
        let k = kinds(src);
        assert!(k.contains(&(TokenKind::Lifetime, "'a")));
        assert!(k.contains(&(TokenKind::Char, "'a'")));
        assert!(k.contains(&(TokenKind::Char, "'\\n'")));
        assert!(k.contains(&(TokenKind::Char, "'_'")));
        assert!(k.contains(&(TokenKind::Lifetime, "'_")));
    }

    #[test]
    fn unicode_escape_char() {
        let k = kinds(r"let c = '\u{1F600}';");
        assert!(k.contains(&(TokenKind::Char, r"'\u{1F600}'")));
    }

    #[test]
    fn raw_identifiers() {
        let k = kinds("let r#fn = 1; r#struct");
        assert!(k.contains(&(TokenKind::Ident, "r#fn")));
        assert!(k.contains(&(TokenKind::Ident, "r#struct")));
    }

    #[test]
    fn numbers_and_ranges() {
        let k = kinds("0..10 1.5 1_000u64 0xff");
        assert_eq!(k[0], (TokenKind::Num, "0"));
        assert_eq!(k[1], (TokenKind::Punct, "."));
        assert_eq!(k[2], (TokenKind::Punct, "."));
        assert_eq!(k[3], (TokenKind::Num, "10"));
        assert_eq!(k[4], (TokenKind::Num, "1.5"));
        assert_eq!(k[5], (TokenKind::Num, "1_000u64"));
        assert_eq!(k[6], (TokenKind::Num, "0xff"));
    }

    #[test]
    fn unterminated_constructs_reach_eof() {
        for src in ["\"never closed", "/* open", "r#\"open", "'"] {
            let toks = lex(src);
            assert_eq!(toks.len(), 1, "{src:?}");
            assert_eq!(toks[0].end, src.len(), "{src:?}");
        }
    }

    #[test]
    fn ordering_in_string_is_not_an_ident() {
        let src = r#"let s = "Ordering::Relaxed"; // Ordering::Acquire"#;
        for t in lex(src) {
            if t.kind == TokenKind::Ident {
                assert!(!t.text(src).contains("Relaxed"));
                assert!(!t.text(src).contains("Acquire"));
            }
        }
    }

    #[test]
    fn line_index_maps_offsets() {
        let idx = LineIndex::new("ab\ncd\n\nx");
        assert_eq!(idx.num_lines(), 4);
        assert_eq!(idx.line_of(0), 1);
        assert_eq!(idx.line_of(2), 1); // the newline belongs to line 1
        assert_eq!(idx.line_of(3), 2);
        assert_eq!(idx.line_of(6), 3);
        assert_eq!(idx.line_of(7), 4);
    }

    #[test]
    fn spans_tile_the_input() {
        let src = "fn main() { let x = \"s\"; /* c */ }";
        let toks = lex(src);
        let mut cursor = 0usize;
        for t in &toks {
            assert!(t.start >= cursor);
            assert!(src[cursor..t.start].chars().all(char::is_whitespace));
            cursor = t.end;
        }
        assert!(src[cursor..].chars().all(char::is_whitespace));
    }
}

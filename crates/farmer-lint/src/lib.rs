//! # farmer-lint — workspace static analysis
//!
//! The FARMER workspace carries conventions that `rustc` and clippy
//! cannot check: atomic-ordering choices in the lock-free modules must
//! be justified in prose, metric names must follow the observability
//! grammar, instrumented entry points must keep uninstrumented
//! siblings. This crate enforces them with a hand-rolled, token-level
//! Rust lexer (the build environment is offline, so no `syn`) and a
//! small rule engine — six rules, `R1`–`R6`, documented in
//! [`rules::RULES`] and the repository README.
//!
//! ## Pipeline
//!
//! 1. [`lexer`] — total, byte-level tokenizer: comments (nested block,
//!    doc), string/raw-string/byte/char literals, lifetimes, idents.
//!    Never panics; spans tile the input.
//! 2. [`scan`] — per-file context: line table, `#[cfg(test)]` regions,
//!    `use` spans, fn items, comment-coverage adjacency, and the
//!    `// lint: allow(<key>) <reason>` escape hatch.
//! 3. [`rules`] — the six rules over a [`scan::FileCtx`].
//! 4. [`walk`] / [`emit`] — workspace traversal and the ordered-JSON
//!    report consumed by CI (`farmer_lint --check`).
//!
//! The `farmer_lint` binary wires these together; [`lint_source`] is
//! the in-process entry point the fixture tests use.

// This crate is unsafe-free by policy (lint rule R2 guards the rest).
#![forbid(unsafe_code)]

pub mod emit;
pub mod lexer;
pub mod rules;
pub mod scan;
pub mod walk;

use rules::{Finding, LintConfig};
use scan::{FileClass, FileCtx};

/// Lint one file's source under the given class and config.
pub fn lint_source(path: &str, class: FileClass, src: &str, cfg: &LintConfig) -> Vec<Finding> {
    let ctx = FileCtx::new(path, class, src);
    rules::lint_file(&ctx, cfg)
}

/// Lint a whole workspace tree rooted at `root`: collect, classify, and
/// run every file, returning `(files_scanned, findings)` with findings
/// in (file, line, rule) order.
pub fn lint_workspace(root: &std::path::Path, cfg: &LintConfig) -> (usize, Vec<Finding>) {
    let files = walk::collect(root);
    let mut findings = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        let Ok(src) = std::fs::read_to_string(path) else {
            continue;
        };
        // Fixture detection looks at the absolute path, not the
        // root-relative one, so linting a fixture tree directly (the CI
        // negative control points ROOT at fixtures/seeded) still
        // classifies its files as fixtures.
        let class = if path.components().any(|c| c.as_os_str() == "fixtures") {
            FileClass::Fixture
        } else {
            walk::classify(&rel)
        };
        findings.extend(lint_source(&rel, class, &src, cfg));
    }
    findings
        .sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    (files.len(), findings)
}

//! Consistent snapshots of the streaming miner's correlator state.
//!
//! A snapshot is the bridge from the always-running miner to its consumers
//! (prefetchers, layout planners, security compilers): a point-in-time,
//! read-only view of every live Correlator List. [`ShardSnapshot`] is one
//! shard's contribution; [`StreamSnapshot::merge`] combines the disjoint
//! per-shard views into one [`CorrelatorTable`] that
//! `farmer-prefetch::FpaPredictor::refresh` can swap in mid-simulation.
//!
//! **Consistency model.** [`crate::ShardedMiner::snapshot`] first flushes
//! its route buffers, then enqueues a snapshot marker on every shard's
//! FIFO inbox. Each shard answers after processing exactly the events
//! routed before the marker, so the merged view corresponds to one precise
//! prefix of the input stream — a consistent cut, not a racy sample.

use farmer_core::{CorrelationSource, Correlator, CorrelatorList, CorrelatorTable};
use farmer_trace::FileId;

/// One shard's point-in-time state.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Which shard produced this.
    pub shard_id: usize,
    /// Correlator Lists of the shard's live owned files (empty lists
    /// omitted), sorted by owner id.
    pub lists: Vec<CorrelatorList>,
    /// Events this shard has ingested (the routed prefix length).
    pub events_seen: u64,
    /// Events whose file this shard owns.
    pub owned_events: u64,
    /// Files currently tracked (≤ the configured `node_cap`).
    pub tracked_files: usize,
    /// Files evicted since the shard started.
    pub evictions: u64,
    /// Approximate resident heap bytes of the shard's miner state.
    pub state_bytes: usize,
}

/// The merged, consistent view across all shards.
#[derive(Debug, Clone, Default)]
pub struct StreamSnapshot {
    /// Every live Correlator List, indexed by owner (owners are disjoint
    /// across shards, so the merge is a plain union).
    pub table: CorrelatorTable,
    /// The stream prefix this snapshot reflects (events routed before the
    /// snapshot was taken).
    pub events: u64,
    /// Shards that contributed.
    pub shards: usize,
    /// Total files tracked across shards.
    pub tracked_files: usize,
    /// Total evictions across shards.
    pub evictions: u64,
    /// Total resident heap bytes across shards.
    pub state_bytes: usize,
}

impl StreamSnapshot {
    /// Merge per-shard snapshots (any order) into the global view.
    ///
    /// Panics if two shards claim the same owner file — that would mean
    /// the ownership partition is broken, and silently keeping either
    /// list would corrupt downstream consumers.
    pub fn merge(parts: impl IntoIterator<Item = ShardSnapshot>) -> StreamSnapshot {
        let mut snap = StreamSnapshot::default();
        for part in parts {
            snap.shards += 1;
            snap.events = snap.events.max(part.events_seen);
            snap.tracked_files += part.tracked_files;
            snap.evictions += part.evictions;
            snap.state_bytes += part.state_bytes;
            for list in part.lists {
                assert!(
                    snap.table.get(list.owner).is_none(),
                    "shard {} re-exported owner {} — ownership partition broken",
                    part.shard_id,
                    list.owner
                );
                snap.table.insert(list);
            }
        }
        snap
    }

    /// The Correlator List of `file`, if it is live.
    pub fn correlators(&self, file: FileId) -> Option<&CorrelatorList> {
        self.table.get(file)
    }

    /// Number of files with a live list.
    pub fn num_lists(&self) -> usize {
        self.table.len()
    }

    /// Consume the snapshot, keeping only the queryable table.
    ///
    /// A move of the already-merged lists — nothing is rebuilt — but
    /// consumers no longer need it: the snapshot itself is a
    /// [`CorrelationSource`], so hand it to `FpaPredictor::refresh` (or
    /// any other consumer) directly and keep the stream-position metadata.
    #[deprecated(
        since = "0.1.0",
        note = "query the snapshot directly through CorrelationSource"
    )]
    pub fn into_table(self) -> CorrelatorTable {
        self.table
    }
}

/// A snapshot serves queries directly — the consistent cut *is* a
/// correlation source, with the stream prefix as its version: two
/// snapshots with equal `version()` reflect the same routed prefix, the
/// staleness check a serving tier needs before swapping tables.
impl CorrelationSource for StreamSnapshot {
    fn version(&self) -> u64 {
        self.events
    }

    fn top_k_into(&self, file: FileId, k: usize, min_degree: f64, out: &mut Vec<Correlator>) {
        self.table.top_k_into(file, k, min_degree, out)
    }

    fn strongest(&self, file: FileId, min_degree: f64) -> Option<Correlator> {
        self.table.strongest(file, min_degree)
    }

    fn degree(&self, from: FileId, to: FileId) -> Option<f64> {
        CorrelationSource::degree(&self.table, from, to)
    }

    fn for_each_list(&self, visit: &mut dyn FnMut(FileId, &[Correlator])) {
        self.table.for_each_list(visit)
    }

    fn heap_bytes(&self) -> usize {
        self.table.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::Correlator;

    fn list(owner: u32, to: u32, degree: f64) -> CorrelatorList {
        CorrelatorList::build(
            FileId::new(owner),
            vec![Correlator {
                file: FileId::new(to),
                degree,
            }],
            0.0,
        )
    }

    fn shard(id: usize, lists: Vec<CorrelatorList>, events: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard_id: id,
            tracked_files: lists.len(),
            lists,
            events_seen: events,
            owned_events: events / 2,
            evictions: id as u64,
            state_bytes: 100,
        }
    }

    #[test]
    fn merge_unions_disjoint_owners() {
        let snap = StreamSnapshot::merge(vec![
            shard(0, vec![list(0, 1, 0.9), list(2, 3, 0.8)], 50),
            shard(1, vec![list(1, 0, 0.7)], 50),
        ]);
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.num_lists(), 3);
        assert_eq!(snap.events, 50);
        assert_eq!(snap.tracked_files, 3);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.state_bytes, 200);
        assert_eq!(
            snap.correlators(FileId::new(1))
                .unwrap()
                .head()
                .unwrap()
                .file,
            FileId::new(0)
        );
        assert!(snap.correlators(FileId::new(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "ownership partition broken")]
    fn merge_rejects_duplicate_owners() {
        let _ = StreamSnapshot::merge(vec![
            shard(0, vec![list(5, 1, 0.9)], 10),
            shard(1, vec![list(5, 2, 0.8)], 10),
        ]);
    }

    #[test]
    #[allow(deprecated)]
    fn into_table_preserves_lists() {
        let snap = StreamSnapshot::merge(vec![shard(0, vec![list(4, 7, 0.6)], 5)]);
        let table = snap.into_table();
        assert_eq!(table.top(FileId::new(4), 1)[0].file, FileId::new(7));
    }

    #[test]
    fn snapshot_is_a_correlation_source() {
        let snap = StreamSnapshot::merge(vec![
            shard(0, vec![list(0, 1, 0.9), list(2, 3, 0.8)], 50),
            shard(1, vec![list(1, 0, 0.7)], 50),
        ]);
        assert_eq!(snap.version(), 50, "version is the stream prefix");
        let mut out = Vec::new();
        snap.top_k_into(FileId::new(0), 4, 0.0, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].file, FileId::new(1));
        assert_eq!(
            snap.strongest(FileId::new(2), 0.0).unwrap().file,
            FileId::new(3)
        );
        assert!(snap.strongest(FileId::new(2), 0.9).is_none());
        let d = CorrelationSource::degree(&snap, FileId::new(1), FileId::new(0)).unwrap();
        assert!((d - 0.7).abs() < 1e-12);
        let mut lists = 0;
        snap.for_each_list(&mut |_, entries| {
            lists += 1;
            assert!(!entries.is_empty());
        });
        assert_eq!(lists, 3);
        assert!(CorrelationSource::heap_bytes(&snap) > 0);
    }
}

//! Consistent snapshots of the streaming miner's correlator state.
//!
//! A snapshot is the bridge from the always-running miner to its consumers
//! (prefetchers, layout planners, security compilers): a point-in-time,
//! read-only view of every live Correlator List. [`ShardSnapshot`] is one
//! shard's contribution; [`StreamSnapshot::merge`] combines the disjoint
//! per-shard views into one [`CorrelatorTable`] that
//! `farmer-prefetch::FpaPredictor::refresh` can swap in mid-simulation.
//!
//! **Consistency model.** [`crate::ShardedMiner::snapshot`] first flushes
//! its route buffers, then enqueues a snapshot marker on every shard's
//! FIFO inbox. Each shard answers after processing exactly the events
//! routed before the marker, so the merged view corresponds to one precise
//! prefix of the input stream — a consistent cut, not a racy sample.

use farmer_core::{CorrelatorList, CorrelatorTable};
use farmer_trace::FileId;

/// One shard's point-in-time state.
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// Which shard produced this.
    pub shard_id: usize,
    /// Correlator Lists of the shard's live owned files (empty lists
    /// omitted), sorted by owner id.
    pub lists: Vec<CorrelatorList>,
    /// Events this shard has ingested (the routed prefix length).
    pub events_seen: u64,
    /// Events whose file this shard owns.
    pub owned_events: u64,
    /// Files currently tracked (≤ the configured `node_cap`).
    pub tracked_files: usize,
    /// Files evicted since the shard started.
    pub evictions: u64,
    /// Approximate resident heap bytes of the shard's miner state.
    pub state_bytes: usize,
}

/// The merged, consistent view across all shards.
#[derive(Debug, Clone, Default)]
pub struct StreamSnapshot {
    /// Every live Correlator List, indexed by owner (owners are disjoint
    /// across shards, so the merge is a plain union).
    pub table: CorrelatorTable,
    /// The stream prefix this snapshot reflects (events routed before the
    /// snapshot was taken).
    pub events: u64,
    /// Shards that contributed.
    pub shards: usize,
    /// Total files tracked across shards.
    pub tracked_files: usize,
    /// Total evictions across shards.
    pub evictions: u64,
    /// Total resident heap bytes across shards.
    pub state_bytes: usize,
}

impl StreamSnapshot {
    /// Merge per-shard snapshots (any order) into the global view.
    ///
    /// Panics if two shards claim the same owner file — that would mean
    /// the ownership partition is broken, and silently keeping either
    /// list would corrupt downstream consumers.
    pub fn merge(parts: impl IntoIterator<Item = ShardSnapshot>) -> StreamSnapshot {
        let mut snap = StreamSnapshot::default();
        for part in parts {
            snap.shards += 1;
            snap.events = snap.events.max(part.events_seen);
            snap.tracked_files += part.tracked_files;
            snap.evictions += part.evictions;
            snap.state_bytes += part.state_bytes;
            for list in part.lists {
                assert!(
                    snap.table.get(list.owner).is_none(),
                    "shard {} re-exported owner {} — ownership partition broken",
                    part.shard_id,
                    list.owner
                );
                snap.table.insert(list);
            }
        }
        snap
    }

    /// The Correlator List of `file`, if it is live.
    pub fn correlators(&self, file: FileId) -> Option<&CorrelatorList> {
        self.table.get(file)
    }

    /// Number of files with a live list.
    pub fn num_lists(&self) -> usize {
        self.table.len()
    }

    /// Consume the snapshot, keeping only the queryable table (what a
    /// predictor refresh needs).
    pub fn into_table(self) -> CorrelatorTable {
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::Correlator;

    fn list(owner: u32, to: u32, degree: f64) -> CorrelatorList {
        CorrelatorList::build(
            FileId::new(owner),
            vec![Correlator {
                file: FileId::new(to),
                degree,
            }],
            0.0,
        )
    }

    fn shard(id: usize, lists: Vec<CorrelatorList>, events: u64) -> ShardSnapshot {
        ShardSnapshot {
            shard_id: id,
            tracked_files: lists.len(),
            lists,
            events_seen: events,
            owned_events: events / 2,
            evictions: id as u64,
            state_bytes: 100,
        }
    }

    #[test]
    fn merge_unions_disjoint_owners() {
        let snap = StreamSnapshot::merge(vec![
            shard(0, vec![list(0, 1, 0.9), list(2, 3, 0.8)], 50),
            shard(1, vec![list(1, 0, 0.7)], 50),
        ]);
        assert_eq!(snap.shards, 2);
        assert_eq!(snap.num_lists(), 3);
        assert_eq!(snap.events, 50);
        assert_eq!(snap.tracked_files, 3);
        assert_eq!(snap.evictions, 1);
        assert_eq!(snap.state_bytes, 200);
        assert_eq!(
            snap.correlators(FileId::new(1))
                .unwrap()
                .head()
                .unwrap()
                .file,
            FileId::new(0)
        );
        assert!(snap.correlators(FileId::new(9)).is_none());
    }

    #[test]
    #[should_panic(expected = "ownership partition broken")]
    fn merge_rejects_duplicate_owners() {
        let _ = StreamSnapshot::merge(vec![
            shard(0, vec![list(5, 1, 0.9)], 10),
            shard(1, vec![list(5, 2, 0.8)], 10),
        ]);
    }

    #[test]
    fn into_table_preserves_lists() {
        let snap = StreamSnapshot::merge(vec![shard(0, vec![list(4, 7, 0.6)], 5)]);
        let table = snap.into_table();
        assert_eq!(table.top(FileId::new(4), 1)[0].file, FileId::new(7));
    }
}

//! Observability handles for the streaming miner (the `stream.*` scope of
//! the workspace registry map).
//!
//! One [`StreamMetrics`] set is shared by the router and *all* shard
//! workers — the handles are relaxed-atomic, so per-shard increments sum
//! into fleet totals without any coordination. Counters cover owned work
//! only (ownership is disjoint across shards), so totals are stream-level
//! facts, not `× num_shards` inflation of the broadcast.

use farmer_obs::{Counter, Gauge, Histogram, Registry};

/// Live handles for the `stream.*` metrics. No-op by default.
#[derive(Debug, Clone, Default)]
pub struct StreamMetrics {
    /// Owned events mined, summed across shards (`stream.events_mined`).
    /// Equals the routed event count: the broadcast copies a shard merely
    /// *windows* are not counted.
    pub events_mined: Counter,
    /// Space-Saving evictions across shards (`stream.evictions`).
    pub evictions: Counter,
    /// Retention-counter decay sweeps across shards (`stream.decay_ticks`).
    pub decay_ticks: Counter,
    /// Forget tombstones applied, per shard (`stream.forgets`).
    pub forgets: Counter,
    /// Events per dispatched batch (`stream.batch_events`), recorded by
    /// the router at broadcast time.
    pub batch_events: Histogram,
    /// Wall-clock nanoseconds one shard spends building its snapshot
    /// (`stream.snapshot_build_ns`).
    pub snapshot_build_ns: Histogram,
    /// Wall-clock nanoseconds the router spends merging shard snapshots
    /// (`stream.snapshot_merge_ns`).
    pub snapshot_merge_ns: Histogram,
    /// Files tracked across shards at the last snapshot
    /// (`stream.tracked_files`).
    pub tracked_files: Gauge,
    /// Resident miner-state bytes across shards at the last snapshot
    /// (`stream.state_bytes`).
    pub state_bytes: Gauge,
}

impl StreamMetrics {
    /// Register the stream metrics under `reg` (pass a `stream`-scoped
    /// registry; [`crate::ShardedMiner::spawn_instrumented`] does this).
    pub fn new(reg: &Registry) -> StreamMetrics {
        StreamMetrics {
            events_mined: reg.counter("events_mined"),
            evictions: reg.counter("evictions"),
            decay_ticks: reg.counter("decay_ticks"),
            forgets: reg.counter("forgets"),
            batch_events: reg.histogram("batch_events"),
            snapshot_build_ns: reg.histogram("snapshot_build_ns"),
            snapshot_merge_ns: reg.histogram("snapshot_merge_ns"),
            tracked_files: reg.gauge("tracked_files"),
            state_bytes: reg.gauge("state_bytes"),
        }
    }
}

//! The shard layer: N miner shards behind bounded channels.
//!
//! [`ShardedMiner`] is the parallel front of the streaming subsystem. It
//! mirrors the namespace partitioning of `farmer-mds::cluster`
//! (`Partition::Hash`, Fx-hash of the file id) but for *mining* instead of
//! serving: each shard runs a [`StreamMiner`] on its own worker thread and
//! owns a disjoint slice of the file namespace.
//!
//! Routing **broadcasts** every event to every shard: a shard needs the
//! full stream so its look-ahead window reflects the true global access
//! order (window context is what makes the shard union exactly equal the
//! batch model — see [`farmer_core::Farmer::observe_where`]). The expensive
//! work — similarity evaluation and edge updates, which only happen for
//! *owned* windowed predecessors — still splits ~1/N per shard, which is
//! where the multi-shard throughput scaling comes from.
//!
//! Events travel in batches (`route_batch`) over *bounded* channels
//! (`channel_capacity` batches): a shard that falls behind eventually
//! blocks the router — back-pressure, not unbounded queueing — so resident
//! memory stays capped end to end.

use std::any::Any;
use std::io;
use std::sync::mpsc::{self, Receiver, SyncSender};
use std::sync::Arc;
use std::thread::{self, JoinHandle};

use farmer_core::Request;
use farmer_obs::Registry;
use farmer_trace::hash::FxHashMap;
use farmer_trace::{FileId, FilePath, Trace, TraceEvent};

use crate::engine::{MinerState, StreamMiner};
use crate::metrics::StreamMetrics;
use crate::snapshot::{ShardSnapshot, StreamSnapshot};
use crate::StreamConfig;

/// One routed request: the attribute tuple plus (for path-bearing traces)
/// the file's path. The path is `Arc`-shared across the N per-shard copies
/// of the broadcast, so fan-out costs one reference-count bump per shard
/// instead of one heap allocation — this is what keeps the router off the
/// critical path at high shard counts.
#[derive(Debug, Clone)]
struct EventMsg {
    req: Request,
    path: Option<Arc<FilePath>>,
}

/// One routed item: an access, or a forget tombstone (unlink/churn).
/// Both travel through the same batched FIFO so a forget lands in every
/// shard at exactly its position in the event stream — the property that
/// keeps the sharded model equal to a batch miner forgetting at the same
/// point.
#[derive(Debug, Clone)]
enum Item {
    Event(EventMsg),
    Forget(FileId),
}

/// Router → shard messages. FIFO channel order is what makes snapshots
/// consistent: a marker enqueued after a set of batches is only answered
/// once exactly those batches have been mined.
enum Msg {
    Batch(Vec<Item>),
    Snapshot(mpsc::Sender<ShardSnapshot>),
    /// Full-state export marker (checkpoint images): answered with both
    /// the serving snapshot and the shard's complete miner state at the
    /// same consistent cut, so a checkpoint's serving view and its
    /// resumable image can never disagree.
    Export(mpsc::Sender<(ShardSnapshot, MinerState)>),
    Flush(mpsc::Sender<()>),
    #[cfg(test)]
    Poison,
}

/// Write-ahead hook on the router: the durable tier logs every routed
/// operation *before* it can mutate any shard's graph, and gets a
/// callback at the batch-dispatch boundary to group-commit (write +
/// fsync) what was logged. See `farmer-stream::durable` for the WAL
/// implementation; the trait lives here so `ShardedMiner` carries no
/// storage dependency of its own.
///
/// I/O errors are fatal to the miner: a durable tier that can no longer
/// write its log must stop accepting events rather than silently degrade
/// to a lossy one, so the router panics on the first sink error.
pub trait WalSink: Send {
    /// Log one access about to be routed.
    fn log_event(&mut self, req: &Request, path: Option<&FilePath>) -> io::Result<()>;
    /// Log one forget tombstone about to be routed.
    fn log_forget(&mut self, file: FileId) -> io::Result<()>;
    /// A batch is about to be dispatched to the shards: make everything
    /// logged so far durable.
    fn on_batch(&mut self) -> io::Result<()>;
}

/// A sharded, threaded, bounded-memory online miner.
pub struct ShardedMiner {
    cfg: StreamConfig,
    senders: Vec<SyncSender<Msg>>,
    handles: Vec<JoinHandle<()>>,
    pending: Vec<Item>,
    /// Per-file shared path, so routing costs one allocation per distinct
    /// file instead of one per event (see [`ShardedMiner::route`]).
    path_cache: FxHashMap<u32, Arc<FilePath>>,
    routed: u64,
    sink: Option<Box<dyn WalSink>>,
    obs: StreamMetrics,
}

impl ShardedMiner {
    /// Spawn `cfg.num_shards` worker threads, each owning one shard's
    /// [`StreamMiner`] (with `cfg.node_cap` applying per shard).
    pub fn spawn(cfg: StreamConfig) -> Self {
        Self::spawn_instrumented(cfg, &Registry::disabled())
    }

    /// [`ShardedMiner::spawn`] with observability: registers the
    /// `stream.*` metrics under `reg` and shares one [`StreamMetrics`] set
    /// between the router and every shard worker (relaxed-atomic handles,
    /// so per-shard increments sum into fleet totals for free). With a
    /// disabled registry this is exactly `spawn`.
    pub fn spawn_instrumented(cfg: StreamConfig, reg: &Registry) -> Self {
        let obs = StreamMetrics::new(&reg.scope("stream"));
        let n = cfg.num_shards.max(1);
        let mut senders = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        for shard_id in 0..n {
            let (tx, rx) = mpsc::sync_channel::<Msg>(cfg.channel_capacity.max(1));
            let mut miner = StreamMiner::for_shard(cfg.clone(), shard_id, n);
            miner.instrument(obs.clone());
            handles.push(
                thread::Builder::new()
                    .name(format!("farmer-stream-shard-{shard_id}"))
                    .spawn(move || shard_worker(miner, rx))
                    // lint: allow(panic) thread-spawn failure at miner
                    // startup is unrecoverable resource exhaustion
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        ShardedMiner {
            cfg,
            senders,
            handles,
            pending: Vec::new(),
            path_cache: FxHashMap::default(),
            routed: 0,
            sink: None,
            obs,
        }
    }

    /// Attach a write-ahead sink: from now on every routed operation is
    /// logged through it before dispatch, and [`WalSink::on_batch`] fires
    /// at each batch boundary. Install the sink before routing anything
    /// it should cover.
    pub fn set_sink(&mut self, sink: Box<dyn WalSink>) {
        self.sink = Some(sink);
    }

    /// Path-cache size at which the cache is reset (bounds router memory
    /// on open-ended file universes at ~24 MiB of map spine).
    const PATH_CACHE_LIMIT: usize = 1 << 20;

    /// Route one request into the subsystem. Blocks only when every queue
    /// slot is full (back-pressure).
    pub fn route(&mut self, req: Request, path: Option<&FilePath>) {
        // Log-before-mutate: the WAL record must exist before the event
        // can reach any shard's graph.
        if let Some(sink) = self.sink.as_mut() {
            sink.log_event(&req, path)
                // lint: allow(panic) losing the log-before-mutate ordering
                // would silently void the durability contract
                .expect("wal append failed; durable miner cannot continue");
        }
        // One shared allocation per distinct file, not per event: paths are
        // learn-once per file downstream (`Farmer::learn_path`), so caching
        // by file id is sound. The cache is cleared if it ever reaches
        // PATH_CACHE_LIMIT so an open-ended file universe cannot grow it
        // without bound.
        let path = path.map(|p| {
            if self.path_cache.len() >= Self::PATH_CACHE_LIMIT {
                self.path_cache.clear();
            }
            self.path_cache
                .entry(req.file.raw())
                .or_insert_with(|| Arc::new(p.clone()))
                .clone()
        });
        self.pending.push(Item::Event(EventMsg { req, path }));
        self.routed += 1;
        if self.pending.len() >= self.cfg.route_batch.max(1) {
            self.dispatch();
        }
    }

    /// Convenience: route a trace event (runs the Stage-1 extraction).
    pub fn route_event(&mut self, trace: &Trace, e: &TraceEvent) {
        self.route(Request::from_event(e), trace.path_of(e.file));
    }

    /// Route a forget tombstone (unlink/churn): every shard drops all
    /// state for `file` after processing exactly the events routed before
    /// this call (see [`StreamMiner::forget`]). Not counted as an event.
    pub fn route_forget(&mut self, file: FileId) {
        if let Some(sink) = self.sink.as_mut() {
            sink.log_forget(file)
                // lint: allow(panic) same durability policy as route()
                .expect("wal append failed; durable miner cannot continue");
        }
        self.pending.push(Item::Forget(file));
        if self.pending.len() >= self.cfg.route_batch.max(1) {
            self.dispatch();
        }
    }

    /// Broadcast the pending batch to every shard.
    fn dispatch(&mut self) {
        if self.pending.is_empty() {
            return;
        }
        // Group-commit the logged prefix before any shard can mine it.
        if let Some(sink) = self.sink.as_mut() {
            sink.on_batch()
                // lint: allow(panic) mining an unsynced prefix would break
                // the group-commit guarantee
                .expect("wal sync failed; durable miner cannot continue");
        }
        let batch = std::mem::take(&mut self.pending);
        self.obs.batch_events.record(batch.len() as u64);
        let mut ok = true;
        {
            // lint: allow(panic) StreamConfig validates shards >= 1, so
            // the sender list is never empty
            let (last, rest) = self.senders.split_last().expect("at least one shard");
            for tx in rest {
                if tx.send(Msg::Batch(batch.clone())).is_err() {
                    ok = false;
                    break;
                }
            }
            if ok && last.send(Msg::Batch(batch)).is_err() {
                ok = false;
            }
        }
        if !ok {
            self.propagate_worker_panic("dispatch");
        }
    }

    /// Barrier: block until every shard has mined everything routed so far.
    pub fn flush(&mut self) {
        self.dispatch();
        let (ack_tx, ack_rx) = mpsc::channel();
        let mut ok = true;
        for tx in &self.senders {
            if tx.send(Msg::Flush(ack_tx.clone())).is_err() {
                ok = false;
                break;
            }
        }
        drop(ack_tx);
        if ok {
            for _ in 0..self.senders.len() {
                if ack_rx.recv().is_err() {
                    ok = false;
                    break;
                }
            }
        }
        if !ok {
            self.propagate_worker_panic("flush");
        }
    }

    /// Take a consistent snapshot: the merged Correlator Lists of every
    /// shard, reflecting exactly the events routed before this call.
    pub fn snapshot(&mut self) -> StreamSnapshot {
        self.dispatch();
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut ok = true;
        for tx in &self.senders {
            if tx.send(Msg::Snapshot(reply_tx.clone())).is_err() {
                ok = false;
                break;
            }
        }
        drop(reply_tx);
        let mut parts: Vec<ShardSnapshot> = reply_rx.iter().collect();
        if !ok || parts.len() != self.senders.len() {
            // A worker died mid-snapshot: surface its panic instead of
            // merging a partial (silently shard-less) snapshot.
            self.propagate_worker_panic("snapshot");
        }
        // Replies arrive in completion order (scheduling-dependent); merge
        // in shard order so the snapshot — including the iteration order of
        // its table — is a deterministic function of the routed stream.
        parts.sort_by_key(|p| p.shard_id);
        let span = self.obs.snapshot_merge_ns.span();
        let snap = StreamSnapshot::merge(parts);
        span.finish();
        self.obs.tracked_files.set(snap.tracked_files as i64);
        self.obs.state_bytes.set(snap.state_bytes as i64);
        snap
    }

    /// Take a consistent snapshot *and* the full per-shard state images
    /// at the same cut — the checkpoint-image export. One barrier
    /// message per shard returns both halves together, so the serving
    /// snapshot embedded in a checkpoint always describes exactly the
    /// state the image resumes from.
    pub fn export_full(&mut self) -> (StreamSnapshot, Vec<MinerState>) {
        self.dispatch();
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut ok = true;
        for tx in &self.senders {
            if tx.send(Msg::Export(reply_tx.clone())).is_err() {
                ok = false;
                break;
            }
        }
        drop(reply_tx);
        let mut parts: Vec<(ShardSnapshot, MinerState)> = reply_rx.iter().collect();
        if !ok || parts.len() != self.senders.len() {
            self.propagate_worker_panic("export");
        }
        // Same determinism rule as `snapshot`: merge in shard order.
        parts.sort_by_key(|(p, _)| p.shard_id);
        let (snaps, states): (Vec<ShardSnapshot>, Vec<MinerState>) = parts.into_iter().unzip();
        let span = self.obs.snapshot_merge_ns.span();
        let snap = StreamSnapshot::merge(snaps);
        span.finish();
        self.obs.tracked_files.set(snap.tracked_files as i64);
        self.obs.state_bytes.set(snap.state_bytes as i64);
        (snap, states)
    }

    /// Spawn a fleet whose shards resume from exported state images
    /// (one per shard, any order) instead of starting empty. `cfg` must
    /// match the configuration the images were taken under, including
    /// the shard count — the images carry their shard identity, and the
    /// restored fleet continues the stream bit for bit.
    pub fn spawn_restored(cfg: StreamConfig, states: &[MinerState]) -> Self {
        Self::spawn_restored_instrumented(cfg, states, &Registry::disabled())
    }

    /// [`ShardedMiner::spawn_restored`] with observability (see
    /// [`ShardedMiner::spawn_instrumented`]).
    pub fn spawn_restored_instrumented(
        cfg: StreamConfig,
        states: &[MinerState],
        reg: &Registry,
    ) -> Self {
        let n = cfg.num_shards.max(1);
        assert_eq!(states.len(), n, "one state image per shard required");
        let obs = StreamMetrics::new(&reg.scope("stream"));
        let mut by_shard: Vec<&MinerState> = states.iter().collect();
        by_shard.sort_by_key(|s| s.shard_id);
        let mut senders = Vec::with_capacity(n);
        let mut handles = Vec::with_capacity(n);
        let mut routed = 0u64;
        for (shard_id, state) in by_shard.into_iter().enumerate() {
            assert_eq!(
                (state.shard_id as usize, state.num_shards as usize),
                (shard_id, n),
                "state image shard identity does not match the fleet"
            );
            let (tx, rx) = mpsc::sync_channel::<Msg>(cfg.channel_capacity.max(1));
            let mut miner = StreamMiner::from_state(cfg.clone(), state);
            miner.instrument(obs.clone());
            // Forgets are not events, so the router's routed counter at
            // the cut equals any shard's events_seen.
            routed = routed.max(state.events_seen);
            handles.push(
                thread::Builder::new()
                    .name(format!("farmer-stream-shard-{shard_id}"))
                    .spawn(move || shard_worker(miner, rx))
                    // lint: allow(panic) thread-spawn failure at miner
                    // startup is unrecoverable resource exhaustion
                    .expect("spawn shard worker"),
            );
            senders.push(tx);
        }
        ShardedMiner {
            cfg,
            senders,
            handles,
            pending: Vec::new(),
            path_cache: FxHashMap::default(),
            routed,
            sink: None,
            obs,
        }
    }

    /// Publication hook for the serving tier: take a consistent
    /// [`ShardedMiner::snapshot`] and install it into `cell`, returning
    /// the new epoch. Readers registered on the cell pick the snapshot up
    /// wait-free; see [`crate::publish`].
    pub fn publish_into(&mut self, cell: &crate::publish::SnapshotCell) -> u64 {
        let snap = self.snapshot();
        cell.install(Arc::new(snap))
    }

    /// Number of miner shards.
    pub fn num_shards(&self) -> usize {
        self.senders.len()
    }

    /// Events routed so far (including any still buffered).
    pub fn events_routed(&self) -> u64 {
        self.routed
    }

    /// The active configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// A shard worker hung up on us: join the whole fleet and re-raise
    /// the first worker's panic payload on the caller, so a shard panic
    /// surfaces with its original message instead of stranding the
    /// router on a dead channel (or silently losing that shard's slice
    /// of the namespace).
    fn propagate_worker_panic(&mut self, context: &str) -> ! {
        self.senders.clear();
        let mut payload: Option<Box<dyn Any + Send>> = None;
        for h in self.handles.drain(..) {
            if let Err(p) = h.join() {
                payload.get_or_insert(p);
            }
        }
        match payload {
            Some(p) => std::panic::resume_unwind(p),
            // lint: allow(panic) a worker that is gone without a payload
            // still died; propagating beats mining into a lost shard
            None => panic!("shard worker exited unexpectedly during {context}"),
        }
    }

    /// Test hook: make one shard's worker panic on its next message.
    #[cfg(test)]
    fn poison_shard(&mut self, shard: usize) {
        let _ = self.senders[shard].send(Msg::Poison);
    }
}

impl Drop for ShardedMiner {
    fn drop(&mut self) {
        // Deliver what is buffered (best-effort), then hang up: workers
        // exit when the channel disconnects.
        if !self.pending.is_empty() {
            let batch = std::mem::take(&mut self.pending);
            for tx in &self.senders {
                let _ = tx.send(Msg::Batch(batch.clone()));
            }
        }
        self.senders.clear();
        let mut payload: Option<Box<dyn Any + Send>> = None;
        for h in self.handles.drain(..) {
            if let Err(p) = h.join() {
                payload.get_or_insert(p);
            }
        }
        // A worker panic must not vanish just because the miner was
        // dropped — re-raise it (unless we are already unwinding, where a
        // double panic would abort).
        if let Some(p) = payload {
            if !thread::panicking() {
                std::panic::resume_unwind(p);
            }
        }
    }
}

/// Worker loop: mine batches, answer markers, exit on disconnect.
fn shard_worker(mut miner: StreamMiner, rx: Receiver<Msg>) {
    for msg in rx {
        match msg {
            Msg::Batch(items) => {
                for item in &items {
                    match item {
                        Item::Event(ev) => miner.ingest(ev.req, ev.path.as_deref()),
                        Item::Forget(file) => miner.forget(*file),
                    }
                }
            }
            Msg::Snapshot(reply) => {
                let _ = reply.send(miner.snapshot());
            }
            Msg::Export(reply) => {
                let _ = reply.send((miner.snapshot(), miner.export_state()));
            }
            Msg::Flush(ack) => {
                let _ = ack.send(());
            }
            #[cfg(test)]
            Msg::Poison => panic!("injected shard worker panic"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_core::{Farmer, FarmerConfig};
    use farmer_trace::{FileId, WorkloadSpec};

    #[test]
    fn snapshot_reflects_exactly_the_routed_prefix() {
        let trace = WorkloadSpec::ins().scaled(0.01).generate();
        let mut m = ShardedMiner::spawn(StreamConfig::default().with_shards(3));
        let half = trace.len() / 2;
        for e in trace.events.iter().take(half) {
            m.route_event(&trace, e);
        }
        let snap = m.snapshot();
        assert_eq!(snap.events, half as u64);
        assert_eq!(snap.shards, 3);
        for e in trace.events.iter().skip(half) {
            m.route_event(&trace, e);
        }
        let snap2 = m.snapshot();
        assert_eq!(snap2.events, trace.len() as u64);
        assert!(snap2.num_lists() >= snap.num_lists() / 2, "state collapsed");
    }

    #[test]
    fn sharded_union_equals_batch_exactly_without_eviction() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let cfg = StreamConfig::default()
            .with_shards(4)
            .with_node_cap(1 << 20);
        let mut m = ShardedMiner::spawn(cfg);
        for e in &trace.events {
            m.route_event(&trace, e);
        }
        let snap = m.snapshot();
        let batch = Farmer::mine_trace(&trace, FarmerConfig::default());
        for f in 0..trace.num_files() as u32 {
            let want = batch.correlators(FileId::new(f));
            match snap.correlators(FileId::new(f)) {
                Some(got) => {
                    assert_eq!(got.len(), want.len(), "list length diverged for f{f}");
                    for (g, w) in got.iter().zip(want.iter()) {
                        assert_eq!(g.file, w.file, "successor diverged for f{f}");
                        assert!((g.degree - w.degree).abs() < 1e-12);
                    }
                }
                None => assert!(want.is_empty(), "missing list for f{f}"),
            }
        }
    }

    #[test]
    fn routed_forgets_match_batch_forgets_exactly() {
        // Interleave unlink-style forgets with the stream: the sharded
        // union must equal a batch miner forgetting at the same positions.
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let cfg = StreamConfig::default()
            .with_shards(3)
            .with_node_cap(1 << 20);
        let mut m = ShardedMiner::spawn(cfg.clone());
        let mut batch = Farmer::new(cfg.farmer.clone());
        for (i, e) in trace.events.iter().enumerate() {
            if i % 97 == 0 {
                let victim = e.file;
                m.route_forget(victim);
                batch.forget_file(victim);
            }
            m.route_event(&trace, e);
            batch.observe_event(&trace, e);
        }
        let snap = m.snapshot();
        for f in 0..trace.num_files() as u32 {
            let want = batch.correlators(FileId::new(f));
            match snap.correlators(FileId::new(f)) {
                Some(got) => {
                    assert_eq!(got.len(), want.len(), "list length diverged for f{f}");
                    for (g, w) in got.iter().zip(want.iter()) {
                        assert_eq!(g.file, w.file, "successor diverged for f{f}");
                        assert!((g.degree - w.degree).abs() < 1e-12);
                    }
                }
                None => assert!(want.is_empty(), "missing list for f{f}"),
            }
        }
        // Forgets are not events.
        assert_eq!(snap.events, trace.len() as u64);
    }

    #[test]
    fn forgotten_file_is_fully_dropped() {
        let trace = WorkloadSpec::ins().scaled(0.02).generate();
        let mut m = ShardedMiner::spawn(StreamConfig::default().with_shards(2));
        for e in &trace.events {
            m.route_event(&trace, e);
        }
        let before = m.snapshot();
        let victim = before.table.iter().next().expect("mined something").owner;
        m.route_forget(victim);
        let after = m.snapshot();
        assert!(after.correlators(victim).is_none(), "victim list survived");
        // No other owner may still list the victim as a successor.
        for list in after.table.iter() {
            assert!(
                list.iter().all(|c| c.file != victim),
                "dangling successor edge to forgotten file"
            );
        }
    }

    #[test]
    fn tiny_channels_do_not_deadlock() {
        let trace = WorkloadSpec::res().scaled(0.01).generate();
        let mut cfg = StreamConfig::default().with_shards(2);
        cfg.channel_capacity = 1;
        cfg.route_batch = 8;
        let mut m = ShardedMiner::spawn(cfg);
        for e in trace.stream().take(3 * trace.len()) {
            m.route_event(&trace, &e);
        }
        m.flush();
        assert_eq!(m.events_routed(), 3 * trace.len() as u64);
    }

    #[test]
    fn instrumented_metrics_report_fleet_totals() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let reg = Registry::enabled();
        let mut m = ShardedMiner::spawn_instrumented(StreamConfig::default().with_shards(3), &reg);
        for e in &trace.events {
            m.route_event(&trace, e);
        }
        let victim = trace.events[0].file;
        m.route_forget(victim);
        let snap = m.snapshot();
        let obs = reg.snapshot();
        // Ownership is disjoint, so owned-event counters sum to the
        // routed stream length regardless of the broadcast fan-out.
        assert_eq!(obs.counter("stream.events_mined"), Some(snap.events));
        assert_eq!(obs.counter("stream.forgets"), Some(3), "one per shard");
        assert_eq!(
            obs.gauge("stream.tracked_files"),
            Some(snap.tracked_files as i64)
        );
        let batches = obs.histogram("stream.batch_events").unwrap();
        assert!(batches.count > 0);
        assert!(batches.max <= m.config().route_batch as u64);
        assert!(obs.histogram("stream.snapshot_build_ns").unwrap().count == 3);
        assert!(obs.histogram("stream.snapshot_merge_ns").unwrap().count == 1);
        // The plain spawn stays observability-free.
        let mut plain = ShardedMiner::spawn(StreamConfig::default());
        for e in trace.events.iter().take(100) {
            plain.route_event(&trace, e);
        }
        plain.flush();
        assert_eq!(obs.counter("stream.events_mined"), Some(snap.events));
    }

    #[test]
    fn drop_with_buffered_events_joins_cleanly() {
        let trace = WorkloadSpec::ins().scaled(0.005).generate();
        let mut m = ShardedMiner::spawn(StreamConfig::default().with_shards(2));
        for e in trace.events.iter().take(13) {
            m.route_event(&trace, e); // fewer than a route batch: stays pending
        }
        drop(m); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "injected shard worker panic")]
    fn worker_panic_propagates_through_flush() {
        let mut m = ShardedMiner::spawn(StreamConfig::default().with_shards(3));
        m.poison_shard(1);
        // Must re-raise the worker's panic, not hang on a dead channel
        // and not return a 2-of-3 result.
        m.flush();
    }

    #[test]
    #[should_panic(expected = "injected shard worker panic")]
    fn worker_panic_propagates_through_snapshot() {
        let trace = WorkloadSpec::ins().scaled(0.005).generate();
        let mut m = ShardedMiner::spawn(StreamConfig::default().with_shards(2));
        for e in trace.events.iter().take(50) {
            m.route_event(&trace, e);
        }
        m.poison_shard(0);
        m.snapshot();
    }

    #[test]
    #[should_panic(expected = "injected shard worker panic")]
    fn worker_panic_propagates_through_routing() {
        let trace = WorkloadSpec::ins().scaled(0.01).generate();
        let mut cfg = StreamConfig::default().with_shards(2);
        cfg.route_batch = 16;
        cfg.channel_capacity = 1;
        let mut m = ShardedMiner::spawn(cfg);
        m.poison_shard(0);
        // Keep routing: once the poisoned worker dies and its bounded
        // queue drains, a dispatch must surface the panic instead of
        // blocking forever or dropping the shard.
        for e in trace.stream().take(100_000) {
            m.route_event(&trace, &e);
        }
    }

    #[test]
    #[should_panic(expected = "injected shard worker panic")]
    fn worker_panic_propagates_on_drop() {
        let mut m = ShardedMiner::spawn(StreamConfig::default().with_shards(2));
        m.poison_shard(1);
        // Give the worker time to consume the poison message and die;
        // Drop must then re-raise its panic rather than swallow it.
        // lint: allow(sleep) there is no completion signal to poll: the
        // worker dies by panicking, observable only through Drop's join
        std::thread::sleep(std::time::Duration::from_millis(50));
        drop(m);
    }
}

//! The durable mining tier: WAL-backed logging and crash recovery for
//! the sharded miner.
//!
//! [`DurableMiner`] wraps a [`ShardedMiner`] and journals the *logical
//! operation stream* — every ingest (attribute tuple + optional path)
//! and every forget — into a [`farmer_store::Wal`] before the operation
//! can mutate any shard's graph (the [`WalSink`] hook on the router).
//! Appends are group-committed on the router's existing two-phase batch
//! boundary: one write+fsync per `route_batch` dispatch, so durability
//! cost amortizes across the batch instead of taxing every event.
//!
//! ## Recovery model
//!
//! Miner state is a deterministic function of the operation sequence
//! (same ingests and forgets, in order, rebuild the same graph bit for
//! bit — including eviction tie-breaks and decay epochs, which depend
//! only on insertion history). [`recover`] therefore replays the logged
//! operations through a fresh miner and lands on the *exact* pre-crash
//! state; the crash-point matrix test asserts bitwise snapshot parity
//! against an uninterrupted oracle at every kill point.
//!
//! Checkpoints make recovery cheap to *serve from*, not cheaper to
//! replay: [`DurableMiner::checkpoint`] persists the consistent
//! [`StreamSnapshot`] at that cut into a sidecar file
//! (`<wal>.ckpt<seq>`, written via tmp+rename) and appends a CHECKPOINT
//! record referencing it (sequence, operation counts, length, CRC). On
//! recovery the sidecar snapshot is available *immediately* — a restarted
//! MDS serves correlation queries from it while the log replays — and
//! when the replay cursor passes the checkpoint's operation count the
//! rebuilt state is compared bitwise against the persisted snapshot
//! ([`RecoveryReport::checkpoint_verified`]), an end-to-end integrity
//! check on both the WAL and the snapshot codec. Truncating the log at
//! a checkpoint (so replay covers only the suffix) needs state-image
//! checkpoints of the full mining graph and is a ROADMAP follow-up.
//!
//! The loss window is explicit: operations appended since the last
//! completed sync (at most one route batch, plus any explicitly
//! unflushed tail) are lost on a crash, exactly as a real power cut
//! would lose them. [`DurableMiner::crash`] simulates that for tests and
//! fault injection.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use farmer_core::{CorrelatorList, Request};
use farmer_obs::Registry;
use farmer_store::codec::{DecodeError, Reader, Writer};
use farmer_store::wal::{crc32, record_kind, Wal, WalError, WalMetrics};
use farmer_trace::{FileId, FilePath, Trace, TraceEvent};

use crate::shard::WalSink;
use crate::snapshot::StreamSnapshot;
use crate::{ShardedMiner, StreamConfig};

/// One logical mining operation, as journaled.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// One access: the Stage-1 attribute tuple plus (for path-bearing
    /// traces) the file's path components.
    Ingest {
        /// The extracted request.
        req: Request,
        /// The file's path, when the trace carries one.
        path: Option<FilePath>,
    },
    /// Drop all state for a file (unlink/churn tombstone).
    Forget(FileId),
}

// Op payload tags. A tag is the first payload byte; the record kind
// (`record_kind::OP`) stays coarse so the tail scan needs no op-level
// knowledge.
const TAG_INGEST: u8 = 1;
const TAG_INGEST_PATH: u8 = 2;
const TAG_FORGET: u8 = 3;

fn encode_ingest(req: &Request, path: Option<&FilePath>) -> Vec<u8> {
    let mut w = Writer::with_capacity(26 + path.map_or(0, |p| 4 + 4 * p.components().len()));
    match path {
        None => {
            w.u8(TAG_INGEST);
        }
        Some(_) => {
            w.u8(TAG_INGEST_PATH);
        }
    }
    w.u32(req.file.raw())
        .u32(req.uid.raw())
        .u32(req.pid.raw())
        .u32(req.host.raw())
        .u32(req.dev.raw());
    if let Some(p) = path {
        w.u32(p.components().len() as u32);
        for &c in p.components() {
            w.u32(c);
        }
    }
    w.finish()
}

fn encode_forget(file: FileId) -> Vec<u8> {
    let mut w = Writer::with_capacity(5);
    w.u8(TAG_FORGET).u32(file.raw());
    w.finish()
}

/// Encode one op into a WAL payload.
pub fn encode_op(op: &WalOp) -> Vec<u8> {
    match op {
        WalOp::Ingest { req, path } => encode_ingest(req, path.as_ref()),
        WalOp::Forget(file) => encode_forget(*file),
    }
}

/// Decode one op payload. Errors only on malformed bytes, which a
/// checksum-verified log never yields.
pub fn decode_op(payload: &[u8]) -> Result<WalOp, DecodeError> {
    let mut r = Reader::new(payload);
    let tag = r.u8()?;
    match tag {
        TAG_INGEST | TAG_INGEST_PATH => {
            let req = Request {
                file: FileId::new(r.u32()?),
                uid: farmer_trace::UserId::new(r.u32()?),
                pid: farmer_trace::ProcId::new(r.u32()?),
                host: farmer_trace::HostId::new(r.u32()?),
                dev: farmer_trace::DevId::new(r.u32()?),
            };
            let path = if tag == TAG_INGEST_PATH {
                let n = r.u32()? as usize;
                if n > r.remaining() / 4 {
                    return Err(DecodeError::BadLength);
                }
                let mut comps = Vec::with_capacity(n);
                for _ in 0..n {
                    comps.push(r.u32()?);
                }
                Some(FilePath::from_components(comps))
            } else {
                None
            };
            Ok(WalOp::Ingest { req, path })
        }
        TAG_FORGET => Ok(WalOp::Forget(FileId::new(r.u32()?))),
        _ => Err(DecodeError::BadLength),
    }
}

/// Serialize a consistent snapshot for the checkpoint sidecar. Degrees
/// are stored as raw f64 bits, so the round trip is bit-exact.
pub fn encode_snapshot(s: &StreamSnapshot) -> Vec<u8> {
    let mut w = Writer::with_capacity(40 + 16 * s.table.num_entries());
    w.u64(s.events)
        .u32(s.shards as u32)
        .u64(s.tracked_files as u64)
        .u64(s.evictions)
        .u64(s.state_bytes as u64)
        .u32(s.table.len() as u32);
    for list in s.table.iter() {
        w.u32(list.owner.raw()).u32(list.len() as u32);
        for c in list.iter() {
            w.u32(c.file.raw()).u64(c.degree.to_bits());
        }
    }
    w.finish()
}

/// Decode a checkpoint sidecar back into a snapshot, preserving list
/// order (and therefore table iteration order) exactly.
pub fn decode_snapshot(bytes: &[u8]) -> Result<StreamSnapshot, DecodeError> {
    let mut r = Reader::new(bytes);
    let events = r.u64()?;
    let shards = r.u32()? as usize;
    let tracked_files = r.u64()? as usize;
    let evictions = r.u64()?;
    let state_bytes = r.u64()? as usize;
    let num_lists = r.u32()? as usize;
    let mut snap = StreamSnapshot {
        events,
        shards,
        tracked_files,
        evictions,
        state_bytes,
        ..StreamSnapshot::default()
    };
    for _ in 0..num_lists {
        let owner = FileId::new(r.u32()?);
        let n = r.u32()? as usize;
        if n > r.remaining() / 12 {
            return Err(DecodeError::BadLength);
        }
        let mut entries = Vec::with_capacity(n);
        for _ in 0..n {
            let file = FileId::new(r.u32()?);
            let degree = f64::from_bits(r.u64()?);
            entries.push(farmer_core::Correlator { file, degree });
        }
        snap.table
            .insert(CorrelatorList::from_sorted(owner, entries));
    }
    Ok(snap)
}

/// Bitwise snapshot equality: every mining-state scalar, every list in
/// order, every degree compared on raw bits. This is the recovery parity
/// invariant — stricter than the epsilon comparisons the cross-mode
/// tests use.
///
/// `state_bytes` is deliberately *not* compared: it reports resident
/// heap including memo-cache capacity, which grows as a side effect of
/// *building snapshots* — so it reflects observation history, not mined
/// state, and two bit-identical graphs can legitimately report slightly
/// different resident footprints.
pub fn snapshots_bitwise_equal(a: &StreamSnapshot, b: &StreamSnapshot) -> bool {
    if a.events != b.events
        || a.shards != b.shards
        || a.tracked_files != b.tracked_files
        || a.evictions != b.evictions
        || a.table.len() != b.table.len()
    {
        return false;
    }
    a.table.iter().zip(b.table.iter()).all(|(la, lb)| {
        la.owner == lb.owner
            && la.len() == lb.len()
            && la
                .iter()
                .zip(lb.iter())
                .all(|(ca, cb)| ca.file == cb.file && ca.degree.to_bits() == cb.degree.to_bits())
    })
}

/// Configuration for the durable tier.
#[derive(Debug, Clone)]
pub struct DurableConfig {
    /// The wrapped miner's configuration. Recovery must use the same
    /// shard count the log was written under (ownership partitioning is
    /// part of the replayed state).
    pub stream: StreamConfig,
    /// Events between automatic checkpoints (0 = only explicit
    /// [`DurableMiner::checkpoint`] calls).
    pub checkpoint_interval: u64,
}

impl DurableConfig {
    /// Durability around `stream` with no automatic checkpoints.
    pub fn new(stream: StreamConfig) -> Self {
        DurableConfig {
            stream,
            checkpoint_interval: 0,
        }
    }

    /// Checkpoint every `n` ingested events.
    pub fn with_checkpoint_interval(mut self, n: u64) -> Self {
        self.checkpoint_interval = n;
        self
    }
}

/// A checkpoint record's contents: which sidecar it references and the
/// cut it was taken at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointInfo {
    /// Monotone checkpoint sequence number (names the sidecar file).
    pub seq: u64,
    /// Events ingested at the cut.
    pub events: u64,
    /// Operations (ingests + forgets) logged at the cut.
    pub ops: u64,
    /// Sidecar length in bytes.
    pub snapshot_len: u64,
    /// CRC-32 of the sidecar bytes.
    pub snapshot_crc: u32,
}

fn encode_checkpoint(c: &CheckpointInfo) -> Vec<u8> {
    let mut w = Writer::with_capacity(36);
    w.u64(c.seq)
        .u64(c.events)
        .u64(c.ops)
        .u64(c.snapshot_len)
        .u32(c.snapshot_crc);
    w.finish()
}

fn decode_checkpoint(payload: &[u8]) -> Result<CheckpointInfo, DecodeError> {
    let mut r = Reader::new(payload);
    Ok(CheckpointInfo {
        seq: r.u64()?,
        events: r.u64()?,
        ops: r.u64()?,
        snapshot_len: r.u64()?,
        snapshot_crc: r.u32()?,
    })
}

/// What [`recover`] found and rebuilt.
#[derive(Debug)]
pub struct RecoveryReport {
    /// Operations replayed from the log.
    pub ops_replayed: u64,
    /// Ingest events among them (forgets excluded).
    pub events_replayed: u64,
    /// True when the log ended in a torn/corrupt tail that was dropped.
    pub torn_tail: bool,
    /// Bytes the tail scan discarded.
    pub dropped_bytes: u64,
    /// The last checkpoint record found, if any.
    pub checkpoint: Option<CheckpointInfo>,
    /// Whether the state rebuilt at the checkpoint's cut matched the
    /// persisted sidecar snapshot bitwise (`None` when there was no
    /// loadable checkpoint to verify against).
    pub checkpoint_verified: Option<bool>,
    /// The checkpoint's snapshot, available for serving the moment
    /// recovery starts (before replay finishes).
    pub serving_snapshot: Option<StreamSnapshot>,
    /// Wall-clock nanoseconds the recovery (scan + replay) took.
    pub replay_ns: u64,
}

fn sidecar_path(wal: &Path, seq: u64) -> PathBuf {
    PathBuf::from(format!("{}.ckpt{}", wal.display(), seq))
}

fn write_durable(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = PathBuf::from(format!("{}.tmp", path.display()));
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_data()?;
    drop(f);
    fs::rename(&tmp, path)
}

fn wal_io(e: WalError) -> io::Error {
    match e {
        WalError::Io(e) => e,
        other => io::Error::other(other),
    }
}

/// The router-side sink: appends each routed op, group-commits at the
/// dispatch boundary. Shares the log with the owning [`DurableMiner`]
/// (single-threaded access; the mutex is uncontended).
struct WalLogger {
    wal: Arc<Mutex<Wal>>,
}

impl WalSink for WalLogger {
    fn log_event(&mut self, req: &Request, path: Option<&FilePath>) -> io::Result<()> {
        let payload = encode_ingest(req, path);
        self.wal
            .lock()
            .expect("wal lock poisoned")
            .append(record_kind::OP, &payload)
            .map_err(wal_io)?;
        Ok(())
    }

    fn log_forget(&mut self, file: FileId) -> io::Result<()> {
        self.wal
            .lock()
            .expect("wal lock poisoned")
            .append(record_kind::OP, &encode_forget(file))
            .map_err(wal_io)?;
        Ok(())
    }

    fn on_batch(&mut self) -> io::Result<()> {
        self.wal.lock().expect("wal lock poisoned").sync()
    }
}

/// A [`ShardedMiner`] whose operation stream is journaled to a WAL, with
/// periodic snapshot checkpoints. See the module docs for the recovery
/// and loss-window contract.
pub struct DurableMiner {
    inner: ShardedMiner,
    wal: Arc<Mutex<Wal>>,
    path: PathBuf,
    cfg: DurableConfig,
    events: u64,
    ops: u64,
    ckpt_seq: u64,
}

impl DurableMiner {
    /// Create a fresh durable miner logging to `path` (truncates any
    /// existing log).
    pub fn create(path: &Path, cfg: DurableConfig) -> Result<DurableMiner, WalError> {
        DurableMiner::create_instrumented(path, cfg, &Registry::disabled())
    }

    /// [`DurableMiner::create`] with observability: the WAL's `wal.*`
    /// metrics and the inner miner's `stream.*` metrics register under
    /// `reg`.
    pub fn create_instrumented(
        path: &Path,
        cfg: DurableConfig,
        reg: &Registry,
    ) -> Result<DurableMiner, WalError> {
        let mut wal = Wal::create(path)?;
        wal.instrument(WalMetrics::new(&reg.scope("wal")));
        let inner = ShardedMiner::spawn_instrumented(cfg.stream.clone(), reg);
        Ok(DurableMiner::assemble(inner, wal, path, cfg, 0, 0, 0))
    }

    fn assemble(
        mut inner: ShardedMiner,
        wal: Wal,
        path: &Path,
        cfg: DurableConfig,
        events: u64,
        ops: u64,
        ckpt_seq: u64,
    ) -> DurableMiner {
        let wal = Arc::new(Mutex::new(wal));
        inner.set_sink(Box::new(WalLogger {
            wal: Arc::clone(&wal),
        }));
        DurableMiner {
            inner,
            wal,
            path: path.to_path_buf(),
            cfg,
            events,
            ops,
            ckpt_seq,
        }
    }

    /// Journal and route one access. Panics if the log can no longer be
    /// written (a durable tier must not silently degrade to a lossy one).
    pub fn ingest(&mut self, req: Request, path: Option<&FilePath>) {
        self.inner.route(req, path);
        self.events += 1;
        self.ops += 1;
        if self.cfg.checkpoint_interval > 0
            && self.events.is_multiple_of(self.cfg.checkpoint_interval)
        {
            self.checkpoint().expect("wal checkpoint failed");
        }
    }

    /// Convenience: journal and route a trace event.
    pub fn ingest_event(&mut self, trace: &Trace, e: &TraceEvent) {
        self.ingest(Request::from_event(e), trace.path_of(e.file));
    }

    /// Journal and route a forget tombstone.
    pub fn forget(&mut self, file: FileId) {
        self.inner.route_forget(file);
        self.ops += 1;
    }

    /// Barrier + group-commit: everything ingested so far is mined and
    /// durable when this returns.
    pub fn flush(&mut self) {
        self.inner.flush();
        self.wal
            .lock()
            .expect("wal lock poisoned")
            .sync()
            .expect("wal sync failed");
    }

    /// Consistent snapshot of the wrapped miner (also group-commits the
    /// logged prefix, since the snapshot dispatches it).
    pub fn snapshot(&mut self) -> StreamSnapshot {
        self.inner.snapshot()
    }

    /// Take a checkpoint now: persist the consistent snapshot at this
    /// cut into the sidecar, append the CHECKPOINT record referencing
    /// it, and sync. Keeps the last two sidecars, pruning older ones.
    pub fn checkpoint(&mut self) -> Result<(), WalError> {
        let snap = self.inner.snapshot();
        let bytes = encode_snapshot(&snap);
        self.ckpt_seq += 1;
        let info = CheckpointInfo {
            seq: self.ckpt_seq,
            events: self.events,
            ops: self.ops,
            snapshot_len: bytes.len() as u64,
            snapshot_crc: crc32(&bytes),
        };
        write_durable(&sidecar_path(&self.path, info.seq), &bytes)?;
        {
            let mut wal = self.wal.lock().expect("wal lock poisoned");
            wal.append(record_kind::CHECKPOINT, &encode_checkpoint(&info))?;
            wal.sync()?;
        }
        if self.ckpt_seq > 2 {
            let _ = fs::remove_file(sidecar_path(&self.path, self.ckpt_seq - 2));
        }
        Ok(())
    }

    /// Events ingested (journaled) so far.
    pub fn events_logged(&self) -> u64 {
        self.events
    }

    /// Operations (ingests + forgets) journaled so far.
    pub fn ops_logged(&self) -> u64 {
        self.ops
    }

    /// Logical size of the log in bytes (including unsynced appends).
    pub fn wal_len_bytes(&self) -> u64 {
        self.wal.lock().expect("wal lock poisoned").len_bytes()
    }

    /// The log file path.
    pub fn wal_path(&self) -> &Path {
        &self.path
    }

    /// The active configuration.
    pub fn config(&self) -> &DurableConfig {
        &self.cfg
    }

    /// Access the wrapped miner.
    pub fn miner(&mut self) -> &mut ShardedMiner {
        &mut self.inner
    }

    /// Simulate a process crash: the unsynced WAL buffer is dropped on
    /// the floor (as a power cut would) and the miner is torn down. The
    /// on-disk state is exactly what the last completed sync left.
    pub fn crash(self) {
        self.wal.lock().expect("wal lock poisoned").abandon();
    }
}

/// Recover a durable miner from its log: scan (dropping any torn tail),
/// load the last checkpoint's sidecar for immediate serving, replay the
/// logged operations through a fresh miner to the exact pre-crash state
/// (verifying the rebuilt state against the sidecar at the checkpoint's
/// cut), and return the miner positioned to keep logging where the
/// survivor left off.
pub fn recover(
    path: &Path,
    cfg: DurableConfig,
) -> Result<(DurableMiner, RecoveryReport), WalError> {
    recover_instrumented(path, cfg, &Registry::disabled())
}

/// [`recover`] with observability: replay counters and latency land
/// under `wal.*` (`wal.recoveries`, `wal.recovery_replay_events`,
/// `wal.recovery_ns`), alongside the reopened log's own metrics.
pub fn recover_instrumented(
    path: &Path,
    cfg: DurableConfig,
    reg: &Registry,
) -> Result<(DurableMiner, RecoveryReport), WalError> {
    let t0 = Instant::now();
    let wal_scope = reg.scope("wal");
    let (mut wal, entries, tail) = Wal::open(path)?;
    wal.instrument(WalMetrics::new(&wal_scope));

    let mut ops: Vec<WalOp> = Vec::with_capacity(entries.len());
    let mut last_ckpt: Option<CheckpointInfo> = None;
    for e in &entries {
        match e.kind {
            record_kind::OP => match decode_op(&e.payload) {
                Ok(op) => ops.push(op),
                // A checksum-verified record that fails to decode is a
                // codec-version mismatch; stop replaying rather than
                // rebuild a wrong state.
                Err(_) => break,
            },
            record_kind::CHECKPOINT => {
                if let Ok(c) = decode_checkpoint(&e.payload) {
                    last_ckpt = Some(c);
                }
            }
            _ => {}
        }
    }

    // The sidecar gives a restarted server its serving state instantly;
    // a missing or corrupt sidecar only costs that head start (replay
    // alone is exact).
    let mut serving: Option<StreamSnapshot> = None;
    if let Some(c) = &last_ckpt {
        if let Ok(bytes) = fs::read(sidecar_path(path, c.seq)) {
            if bytes.len() as u64 == c.snapshot_len && crc32(&bytes) == c.snapshot_crc {
                if let Ok(snap) = decode_snapshot(&bytes) {
                    serving = Some(snap);
                }
            }
        }
    }

    let mut miner = ShardedMiner::spawn_instrumented(cfg.stream.clone(), reg);
    let mut events_replayed = 0u64;
    let mut verified: Option<bool> = None;
    let ckpt_ops = last_ckpt.as_ref().map(|c| c.ops);
    for (i, op) in ops.iter().enumerate() {
        match op {
            WalOp::Ingest { req, path } => {
                miner.route(*req, path.as_ref());
                events_replayed += 1;
            }
            WalOp::Forget(f) => miner.route_forget(*f),
        }
        if Some(i as u64 + 1) == ckpt_ops {
            if let Some(expect) = serving.as_ref() {
                // Integrity self-check: the state rebuilt at the
                // checkpoint's cut must equal the persisted snapshot.
                verified = Some(snapshots_bitwise_equal(&miner.snapshot(), expect));
            }
        }
    }
    miner.flush();
    let replay_ns = t0.elapsed().as_nanos() as u64;

    wal_scope.counter("recoveries").inc();
    wal_scope
        .counter("recovery_replay_events")
        .add(events_replayed);
    wal_scope.histogram("recovery_ns").record(replay_ns);

    let ops_replayed = ops.len() as u64;
    let ckpt_seq = last_ckpt.as_ref().map_or(0, |c| c.seq);
    let report = RecoveryReport {
        ops_replayed,
        events_replayed,
        torn_tail: tail.torn,
        dropped_bytes: tail.dropped_bytes,
        checkpoint: last_ckpt,
        checkpoint_verified: verified,
        serving_snapshot: serving,
        replay_ns,
    };
    let miner = DurableMiner::assemble(
        miner,
        wal,
        path,
        cfg,
        events_replayed,
        ops_replayed,
        ckpt_seq,
    );
    Ok((miner, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use farmer_trace::WorkloadSpec;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_wal(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
        dir.pop();
        dir.pop();
        dir.push("target");
        dir.push("durable-tests");
        std::fs::create_dir_all(&dir).expect("create durable test dir");
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        dir.join(format!("{tag}-{}-{n}.wal", std::process::id()))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = fs::remove_file(&self.0);
            for seq in 0..64 {
                let _ = fs::remove_file(sidecar_path(&self.0, seq));
            }
        }
    }

    fn small_cfg(shards: usize) -> DurableConfig {
        let mut stream = StreamConfig::default()
            .with_shards(shards)
            .with_node_cap(1 << 20);
        stream.route_batch = 32;
        DurableConfig::new(stream)
    }

    #[test]
    fn op_codec_roundtrips() {
        let req = Request {
            file: FileId::new(7),
            uid: farmer_trace::UserId::new(1),
            pid: farmer_trace::ProcId::new(2),
            host: farmer_trace::HostId::new(3),
            dev: farmer_trace::DevId::new(4),
        };
        for op in [
            WalOp::Ingest { req, path: None },
            WalOp::Ingest {
                req,
                path: Some(FilePath::from_components(vec![5, 6, 7])),
            },
            WalOp::Forget(FileId::new(42)),
        ] {
            let bytes = encode_op(&op);
            assert_eq!(decode_op(&bytes).unwrap(), op);
        }
        assert!(decode_op(&[]).is_err());
        assert!(decode_op(&[99, 0, 0]).is_err());
    }

    #[test]
    fn snapshot_codec_is_bit_exact() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let path = tmp_wal("snapcodec");
        let _c = Cleanup(path.clone());
        let mut m = DurableMiner::create(&path, small_cfg(2)).unwrap();
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        let snap = m.snapshot();
        let decoded = decode_snapshot(&encode_snapshot(&snap)).unwrap();
        assert!(snapshots_bitwise_equal(&snap, &decoded));
    }

    #[test]
    fn durable_miner_state_equals_plain_miner() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let path = tmp_wal("parity");
        let _c = Cleanup(path.clone());
        let cfg = small_cfg(2);
        let mut durable = DurableMiner::create(&path, cfg.clone()).unwrap();
        let mut plain = ShardedMiner::spawn(cfg.stream.clone());
        for (i, e) in trace.events.iter().enumerate() {
            if i % 61 == 0 {
                durable.forget(e.file);
                plain.route_forget(e.file);
            }
            durable.ingest_event(&trace, e);
            plain.route_event(&trace, e);
        }
        // Journaling must not perturb mining state in any way.
        assert!(snapshots_bitwise_equal(
            &durable.snapshot(),
            &plain.snapshot()
        ));
    }

    #[test]
    fn crash_loses_only_the_unsynced_tail_and_recovers_exactly() {
        let trace = WorkloadSpec::ins().scaled(0.01).generate();
        let path = tmp_wal("crash");
        let _c = Cleanup(path.clone());
        let cfg = small_cfg(2);
        let batch = cfg.stream.route_batch;
        let kill = trace.len() * 2 / 3 + 7; // deliberately off-boundary
        let mut m = DurableMiner::create(&path, cfg.clone()).unwrap();
        for e in trace.events.iter().take(kill) {
            m.ingest_event(&trace, e);
        }
        m.crash();
        let synced = kill - kill % batch;

        let (mut recovered, report) = recover(&path, cfg.clone()).unwrap();
        assert_eq!(report.events_replayed, synced as u64);
        assert!(!report.torn_tail);

        // Oracle: an uninterrupted miner over exactly the synced prefix.
        let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
        for e in trace.events.iter().take(synced) {
            oracle.route_event(&trace, e);
        }
        assert!(snapshots_bitwise_equal(
            &recovered.snapshot(),
            &oracle.snapshot()
        ));

        // And the recovered miner keeps going: finish the stream on both.
        for e in trace.events.iter().skip(synced) {
            recovered.ingest_event(&trace, e);
            oracle.route_event(&trace, e);
        }
        assert!(snapshots_bitwise_equal(
            &recovered.snapshot(),
            &oracle.snapshot()
        ));
    }

    #[test]
    fn checkpoint_sidecar_serves_and_verifies() {
        let trace = WorkloadSpec::hp().scaled(0.01).generate();
        let path = tmp_wal("ckpt");
        let _c = Cleanup(path.clone());
        let interval = (trace.len() / 3) as u64;
        let cfg = small_cfg(1);
        let cfg = DurableConfig {
            checkpoint_interval: interval,
            ..cfg
        };
        let mut m = DurableMiner::create(&path, cfg.clone()).unwrap();
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        m.crash();

        let reg = Registry::enabled();
        let (_, report) = recover_instrumented(&path, cfg, &reg).unwrap();
        let ckpt = report.checkpoint.expect("checkpoint record found");
        assert!(ckpt.seq >= 2, "interval checkpoints fired");
        assert_eq!(report.checkpoint_verified, Some(true));
        let serving = report.serving_snapshot.expect("sidecar loaded");
        assert_eq!(serving.events, ckpt.events);
        let obs = reg.snapshot();
        assert_eq!(obs.counter("wal.recoveries"), Some(1));
        assert_eq!(
            obs.counter("wal.recovery_replay_events"),
            Some(report.events_replayed)
        );
        assert!(obs.histogram("wal.recovery_ns").unwrap().count == 1);
    }

    #[test]
    fn recovery_tolerates_missing_sidecar() {
        let trace = WorkloadSpec::hp().scaled(0.005).generate();
        let path = tmp_wal("nosidecar");
        let _c = Cleanup(path.clone());
        let cfg = DurableConfig {
            checkpoint_interval: (trace.len() / 2) as u64,
            ..small_cfg(1)
        };
        let mut m = DurableMiner::create(&path, cfg.clone()).unwrap();
        for e in &trace.events {
            m.ingest_event(&trace, e);
        }
        m.flush();
        drop(m);
        for seq in 0..16 {
            let _ = fs::remove_file(sidecar_path(&path, seq));
        }
        let (mut recovered, report) = recover(&path, cfg.clone()).unwrap();
        // No serving head start, but replay is still exact.
        assert!(report.serving_snapshot.is_none());
        assert_eq!(report.checkpoint_verified, None);
        let mut oracle = ShardedMiner::spawn(cfg.stream.clone());
        for e in &trace.events {
            oracle.route_event(&trace, e);
        }
        assert!(snapshots_bitwise_equal(
            &recovered.snapshot(),
            &oracle.snapshot()
        ));
    }
}
